/// \file bm_tile.cpp
/// Tiling-engine throughput: optimizes a replicated full chip through the
/// tile scheduler at 1/2/4 workers, reports tiles/sec and the parallel
/// speedup, and emits BENCH_tile.json for trend tracking. Kernel sets are
/// pre-cached on disk before timing so every run measures the scheduler,
/// not the one-off TCC eigendecomposition.
///
/// With --cache (or --cache-only) it also measures the pattern-library
/// cache on a repeated-cell chip: a cold run that fills the store, then a
/// warm run that must exact-hit, stitch a bit-identical mask, and beat the
/// cold wall time. Results land in BENCH_cache.json; --min-warm-speedup
/// and --min-hit-rate turn the measurement into a pass/fail gate (the
/// tier-1 `cache_effectiveness` ctest).

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "tile/scheduler.hpp"

namespace {

/// Pattern-cache effectiveness phase. Returns false when a gate fails.
bool runCachePhase(const mosaic::Layout& chip, mosaic::ChipConfig cfg,
                   const std::string& jsonPath, double minWarmSpeedup,
                   double minHitRate) {
  using namespace mosaic;
  const std::string storeDir = "bm_tile_pattern_cache";
  std::filesystem::remove_all(storeDir);  // cold means cold
  cfg.patternCacheDir = storeDir;

  const ChipResult cold = optimizeChip(chip, cfg);
  MOSAIC_CHECK(cold.allOk(), "cold cache chip run failed");
  const ChipResult warmRun = optimizeChip(chip, cfg);
  MOSAIC_CHECK(warmRun.allOk(), "warm cache chip run failed");

  const double speedup = warmRun.wallSeconds > 0.0
                             ? cold.wallSeconds / warmRun.wallSeconds
                             : 0.0;
  const double hitRate = warmRun.cacheStats.hitRate();
  const BitGrid& coldMask = cold.stitched.maskBinary;
  const BitGrid& warmMask = warmRun.stitched.maskBinary;
  bool identical = coldMask.rows() == warmMask.rows() &&
                   coldMask.cols() == warmMask.cols();
  if (identical) {
    for (int r = 0; r < coldMask.rows() && identical; ++r) {
      for (int c = 0; c < coldMask.cols(); ++c) {
        if (coldMask(r, c) != warmMask(r, c)) {
          identical = false;
          break;
        }
      }
    }
  }

  std::printf("== pattern cache: %d tiles ==\n",
              cold.partition.tileCount());
  std::printf("cold: %.2f s (%llu misses, %llu inserted)\n",
              cold.wallSeconds,
              static_cast<unsigned long long>(cold.cacheStats.misses),
              static_cast<unsigned long long>(cold.cacheStats.inserts));
  std::printf("warm: %.2f s (%llu exact hits, %.1f%% hit rate)\n",
              warmRun.wallSeconds,
              static_cast<unsigned long long>(warmRun.cacheStats.exactHits),
              100.0 * hitRate);
  std::printf("warm speedup: %.2fx, stitched masks %s\n", speedup,
              identical ? "bit-identical" : "DIFFER");

  FILE* json = std::fopen(jsonPath.c_str(), "w");
  MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
  std::fprintf(
      json,
      "{\n  \"bench\": \"bm_tile_cache\",\n  \"tiles\": %d,\n"
      "  \"cold_seconds\": %.4f,\n  \"warm_seconds\": %.4f,\n"
      "  \"warm_speedup\": %.3f,\n  \"hit_rate\": %.4f,\n"
      "  \"exact_hits\": %llu,\n  \"misses_cold\": %llu,\n"
      "  \"bit_identical\": %s\n}\n",
      cold.partition.tileCount(), cold.wallSeconds, warmRun.wallSeconds,
      speedup, hitRate,
      static_cast<unsigned long long>(warmRun.cacheStats.exactHits),
      static_cast<unsigned long long>(cold.cacheStats.misses),
      identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", jsonPath.c_str());

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "FAIL: warm stitched mask differs from cold\n");
    ok = false;
  }
  if (minWarmSpeedup > 0.0 && speedup < minWarmSpeedup) {
    std::fprintf(stderr, "FAIL: warm speedup %.2fx below the %.2fx floor\n",
                 speedup, minWarmSpeedup);
    ok = false;
  }
  if (minHitRate > 0.0 && hitRate < minHitRate) {
    std::fprintf(stderr, "FAIL: hit rate %.3f below the %.3f floor\n",
                 hitRate, minHitRate);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIdx = 1;
  int replicate = 2;
  int tileSize = 512;
  int halo = 128;
  int pixel = 16;
  int iterations = 5;
  std::string cacheDir = "bm_tile_kernels";
  std::string jsonPath = "BENCH_tile.json";
  std::string cacheJsonPath = "BENCH_cache.json";
  bool cacheBench = false;
  bool cacheOnly = false;
  double minWarmSpeedup = 0.0;
  double minHitRate = 0.0;
  std::string logLevel = "warn";

  CliParser cli("bm_tile", "tile scheduler throughput and parallel speedup");
  cli.addInt("case", &caseIdx, "testcase replicated into the chip");
  cli.addInt("replicate", &replicate, "replication factor per axis");
  cli.addInt("tile-size", &tileSize, "core tile edge in nm");
  cli.addInt("halo", &halo, "requested halo in nm (-1 = optics default)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations per tile");
  cli.addString("kernel-cache", &cacheDir, "kernel cache directory");
  cli.addString("json", &jsonPath, "output JSON path");
  cli.addFlag("cache", &cacheBench,
              "also measure the pattern cache (cold fill vs warm reuse)");
  cli.addFlag("cache-only", &cacheOnly,
              "run only the pattern-cache phase (the ctest gate)");
  cli.addString("cache-json", &cacheJsonPath,
                "pattern-cache phase output JSON path");
  cli.addDouble("min-warm-speedup", &minWarmSpeedup,
                "fail unless the warm run is this much faster (0 = report)");
  cli.addDouble("min-hit-rate", &minHitRate,
                "fail unless the warm hit rate reaches this (0 = report)");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    const Layout chip = replicateLayout(buildTestcase(caseIdx), replicate,
                                        replicate);
    ChipConfig cfg;
    cfg.tiling.tileSizeNm = tileSize;
    cfg.tiling.haloNm = halo;
    cfg.tiling.pixelNm = pixel;
    cfg.iterations = iterations;
    cfg.kernelCacheDir = cacheDir;

    if (cacheOnly) {
      return runCachePhase(chip, cfg, cacheJsonPath, minWarmSpeedup,
                           minHitRate)
                 ? 0
                 : 1;
    }

    // Untimed warm-up run: populates the on-disk kernel cache and touches
    // every code path once.
    setParallelism(1);
    const ChipResult warm = optimizeChip(chip, cfg);
    MOSAIC_CHECK(warm.allOk(), "warm-up chip run failed");
    const int tiles = warm.partition.tileCount();

    struct Run {
      int workers;
      double seconds;
      double tilesPerSec;
    };
    std::vector<Run> runs;
    TextTable table;
    table.setHeader({"workers", "time (s)", "tiles/s", "speedup"});
    for (const int workers : {1, 2, 4}) {
      setParallelism(workers);
      const ChipResult res = optimizeChip(chip, cfg);
      MOSAIC_CHECK(res.allOk(), "chip run failed at " << workers
                                                      << " workers");
      const double seconds = res.wallSeconds;
      runs.push_back({workers, seconds, tiles / seconds});
      table.addRow({std::to_string(workers), TextTable::num(seconds, 2),
                    TextTable::num(tiles / seconds, 2),
                    TextTable::num(runs.front().seconds / seconds, 2)});
    }
    setParallelism(0);

    std::printf("== bm_tile: %d tiles of %d nm window, %d iters ==\n", tiles,
                warm.partition.windowNm, iterations);
    std::printf("%s", table.render().c_str());
    const double speedup4 = runs.front().seconds / runs.back().seconds;
    std::printf("speedup at 4 workers: %.2fx (hardware threads: %d)\n",
                speedup4, hardwareParallelism());

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json,
                 "{\n  \"bench\": \"bm_tile\",\n  \"chip_nm\": %d,\n"
                 "  \"tiles\": %d,\n  \"window_nm\": %d,\n"
                 "  \"iterations\": %d,\n  \"runs\": [\n",
                 chip.sizeNm, tiles, warm.partition.windowNm, iterations);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(json,
                   "    {\"workers\": %d, \"seconds\": %.4f, "
                   "\"tiles_per_sec\": %.3f}%s\n",
                   runs[i].workers, runs[i].seconds, runs[i].tilesPerSec,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"speedup_4\": %.3f\n}\n", speedup4);
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (cacheBench &&
        !runCachePhase(chip, cfg, cacheJsonPath, minWarmSpeedup,
                       minHitRate)) {
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_tile: %s\n", e.what());
    return 1;
  }
  return 0;
}
