#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry: counters, gauges, and fixed-bucket
/// latency histograms (docs/observability.md).
///
/// Design constraints, in order:
///   1. Recording must be cheap enough for per-FFT-call use: counter adds
///      and histogram records are a handful of relaxed atomics, no locks.
///   2. Registration is lock-sharded by name hash, so concurrent workers
///      registering different metrics rarely contend; call sites cache the
///      returned reference (MOSAIC_SPAN does this via a function-local
///      static) so the map lookup is paid once per site, not per call.
///   3. Snapshots are wait-free for writers: readers just load the atomics.
///
/// Returned Counter/Gauge/Histogram references stay valid for the process
/// lifetime.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mosaic {
namespace telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. peak RSS at snapshot time).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Derived statistics of one histogram at snapshot time. Latencies are in
/// microseconds throughout. `buckets` carries the raw per-bucket counts
/// (non-cumulative, same sampling moment as `count`) so exporters that
/// need the full distribution — the Prometheus renderer's cumulative
/// `_bucket` series — do not have to re-read the live atomics.
struct HistogramStats {
  static constexpr int kBuckets = 46;
  std::uint64_t count = 0;
  double sumUs = 0.0;
  double minUs = 0.0;
  double maxUs = 0.0;
  double meanUs = 0.0;
  double p50Us = 0.0;
  double p95Us = 0.0;
  double p99Us = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};
};

/// Concurrent fixed-bucket latency histogram. Buckets are powers of two in
/// microseconds: bucket 0 holds [0, 1) us, bucket i holds [2^(i-1), 2^i) us,
/// the last bucket is open-ended (~= 9 hours). Percentiles are estimated by
/// linear interpolation inside the selected bucket and clamped to the
/// observed [min, max], so a histogram whose samples all share one value
/// reports that value exactly.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramStats::kBuckets;

  /// Bucket index for a latency in microseconds (clamped to the range).
  [[nodiscard]] static int bucketIndex(double micros);
  /// Upper bound (exclusive) of a bucket in microseconds.
  [[nodiscard]] static double bucketUpperUs(int index);

  void record(double micros);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramStats stats() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sumUs_{0.0};
  std::atomic<double> minUs_{std::numeric_limits<double>::infinity()};
  std::atomic<double> maxUs_{-std::numeric_limits<double>::infinity()};
};

/// Immutable copy of every registered metric, taken without stopping
/// writers (values are relaxed loads; a snapshot concurrent with updates
/// is a consistent-enough point-in-time view for reporting).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Pretty-printed JSON document (stable key order).
  [[nodiscard]] std::string toJson() const;
  /// Human-readable summary reusing support/table: histograms sorted by
  /// total time, then counters and gauges.
  [[nodiscard]] std::string summaryTable() const;
};

/// Lock-sharded name -> metric registry.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric (objects stay valid; cached references
  /// keep working). For benches and tests.
  void resetAll();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  };
  [[nodiscard]] Shard& shardFor(std::string_view name);

  std::array<Shard, kShards> shards_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

/// Refresh the `process.peak_rss_mb` / `process.user_cpu_sec` /
/// `process.sys_cpu_sec` gauges from a getrusage probe (support/timer.hpp).
/// Called by the scrape handlers (/metrics, the serve stats op) so the
/// exported values are sampled at read time, not at some earlier tick.
void updateProcessGauges();

}  // namespace telemetry
}  // namespace mosaic
