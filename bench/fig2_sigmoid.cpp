/// \file fig2_sigmoid.cpp
/// Reproduces paper Fig. 2: the sigmoid photoresist approximation with
/// theta_Z = 50 and th_r = 0.225. Prints the curve as (intensity, Z) rows
/// and asserts the step-function limit behaviour.

#include <cstdio>
#include <exception>

#include "litho/optics.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  double thetaZ = 50.0;
  double threshold = 0.225;
  int points = 25;

  CliParser cli("fig2_sigmoid", "Reproduce paper Fig. 2 (resist sigmoid)");
  cli.addDouble("thetaZ", &thetaZ, "sigmoid steepness");
  cli.addDouble("threshold", &threshold, "resist threshold th_r");
  cli.addInt("points", &points, "sample count on [0, 1]");
  try {
    if (!cli.parse(argc, argv)) return 0;
    ResistModel resist;
    resist.thetaZ = thetaZ;
    resist.threshold = threshold;

    std::printf("=== Fig. 2: sigmoid resist model (theta_Z=%.0f, th_r=%.3f) "
                "===\n",
                thetaZ, threshold);
    std::printf("%10s  %10s  %8s\n", "intensity", "Z=sig(I)", "prints");
    for (int i = 0; i <= points; ++i) {
      const double intensity = static_cast<double>(i) / points;
      std::printf("%10.4f  %10.6f  %8s\n", intensity,
                  resist.sigmoid(intensity),
                  resist.prints(intensity) ? "yes" : "no");
    }
    std::printf("\nZ(th_r) = %.6f (curve crosses 1/2 at the threshold)\n",
                resist.sigmoid(threshold));
    std::printf("Z(0)    = %.6f, Z(1) = %.6f (step-function limits)\n",
                resist.sigmoid(0.0), resist.sigmoid(1.0));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig2_sigmoid failed: %s\n", e.what());
    return 1;
  }
}
