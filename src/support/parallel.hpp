#pragma once
/// \file parallel.hpp
/// A small thread pool plus parallelFor helper. On single-core hosts the
/// pool degrades to serial execution with no thread overhead, so library
/// code can call parallelFor unconditionally.

#include <cstddef>
#include <functional>

namespace mosaic {

/// Number of worker threads the global pool uses (>= 1).
int hardwareParallelism();

/// Override the global worker count (0 restores the hardware default).
/// Must be called before the first parallelFor of the process to take
/// effect deterministically.
void setParallelism(int workers);

/// Run fn(i) for i in [begin, end). Iterations are distributed over the
/// global pool in contiguous chunks; the call returns after all complete.
/// fn must be safe to call concurrently for distinct i. Exceptions thrown
/// by fn are rethrown on the calling thread (first one wins).
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mosaic
