file(REMOVE_RECURSE
  "libmosaic_math.a"
)
