#include "opc/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/flightrec.hpp"
#include "support/telemetry/runlog.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

/// One JSONL record per optimizer iteration (schema: docs/observability.md),
/// mirrored to the streaming progress sink when one is attached.
void emitIterationRecord(const OptimizeOptions& options,
                         const IterationRecord& record) {
  if (options.progressSink) options.progressSink(record);
  telemetry::RunLog* runLog = options.runLog;
  const std::string& scope = options.runLogScope;
  if (!runLog) return;
  telemetry::JsonObject obj;
  obj.set("type", "iteration");
  if (!scope.empty()) obj.set("scope", scope);
  obj.set("iter", record.iteration);
  obj.set("F", record.objective);
  obj.set("F_target", record.targetTerm);
  obj.set("F_pvb", record.pvbTerm);
  obj.set("grad_rms", record.rmsGradient);
  obj.set("step", record.stepSize);
  obj.set("improved", record.improved);
  obj.set("jumped", record.jumped);
  obj.set("recovered", record.recovered);
  obj.set("wall_ms", record.wallMs);
  runLog->write(obj);
}

bool allFinite(const RealGrid& g) {
  for (double v : g) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Guardrail screen: objective value, mask gradient, and parameters must
/// all be finite before the iterate is trusted.
bool iterateIsFinite(const IltObjective::Evaluation& eval,
                     const RealGrid& params) {
  return std::isfinite(eval.value) && allFinite(eval.gradMask) &&
         allFinite(params);
}

}  // namespace

std::string stopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kAbortedNonFinite:
      return "aborted-non-finite";
    case StopReason::kCanceled:
      return "canceled";
  }
  throw InvalidArgument("unknown stop reason");
}

OptimizeResult optimizeMask(const IltObjective& objective,
                            const RealGrid& initialMask,
                            const IterationCallback& callback,
                            const OptimizeOptions& options) {
  const IltConfig& cfg = objective.config();
  const MaskTransform transform(cfg.thetaM, cfg.maskLow, cfg.maskHigh);
  WallTimer timer;

  OptimizeResult result;

  RealGrid params;
  double step = cfg.stepSize;
  double previousValue = 0.0;
  int sinceImprovement = 0;
  int startIter = 1;

  // State for the momentum / Adam descent variants.
  RealGrid velocity;
  RealGrid adamM;
  RealGrid adamV;

  const bool resumed = !options.resumePath.empty();
  if (resumed) {
    OptimizerCheckpoint ckpt = loadOptimizerCheckpoint(options.resumePath);
    MOSAIC_CHECK(ckpt.params.rows() == initialMask.rows() &&
                     ckpt.params.cols() == initialMask.cols(),
                 "checkpoint P-grid is " << ckpt.params.rows() << "x"
                                         << ckpt.params.cols()
                                         << ", expected " << initialMask.rows()
                                         << "x" << initialMask.cols());
    params = std::move(ckpt.params);
    step = ckpt.step;
    previousValue = ckpt.previousValue;
    sinceImprovement = ckpt.sinceImprovement;
    startIter = ckpt.iteration + 1;
    result.bestMask = std::move(ckpt.bestMask);
    result.bestObjective = ckpt.bestObjective;
    result.bestIteration = ckpt.bestIteration;
    result.nonFiniteEvents = ckpt.nonFiniteEvents;
    result.recoveries = ckpt.recoveries;
    result.history = std::move(ckpt.history);
    velocity = std::move(ckpt.velocity);
    adamM = std::move(ckpt.adamM);
    adamV = std::move(ckpt.adamV);
    LOG_INFO("resumed from " << options.resumePath << " at iteration "
                             << (startIter - 1));
  } else {
    params = transform.toParams(initialMask);
  }

  if (cfg.descentVariant == DescentVariant::kMomentum && velocity.empty()) {
    velocity = RealGrid(params.rows(), params.cols(), 0.0);
  } else if (cfg.descentVariant == DescentVariant::kAdam && adamM.empty()) {
    adamM = RealGrid(params.rows(), params.cols(), 0.0);
    adamV = RealGrid(params.rows(), params.cols(), 0.0);
  }

  RealGrid mask = transform.toMask(params);
  IltObjective::Evaluation eval = objective.evaluate(mask, true);

  if (!resumed) {
    result.bestMask = mask;
    result.bestObjective = eval.value;
    result.bestIteration = 0;
    previousValue = eval.value;
  }

  // A non-finite initial evaluation has nothing to roll back to: abort.
  if (!iterateIsFinite(eval, params)) {
    ++result.nonFiniteEvents;
    result.stopReason = StopReason::kAbortedNonFinite;
    LOG_WARN("initial evaluation is non-finite; aborting before descent");
    return result;
  }

  // Last known-good iterate for rollback (descent state included, so a
  // diverged momentum/Adam update cannot leak into the retry).
  RealGrid goodParams = params;
  RealGrid goodMask = mask;
  IltObjective::Evaluation goodEval = eval;
  RealGrid goodVelocity = velocity;
  RealGrid goodAdamM = adamM;
  RealGrid goodAdamV = adamV;

  const bool checkpointing =
      !options.checkpointPath.empty() && options.checkpointEvery > 0;
  auto writeCheckpoint = [&](int iter) {
    OptimizerCheckpoint ckpt;
    ckpt.iteration = iter;
    ckpt.step = step;
    ckpt.previousValue = previousValue;
    ckpt.sinceImprovement = sinceImprovement;
    ckpt.bestObjective = result.bestObjective;
    ckpt.bestIteration = result.bestIteration;
    ckpt.nonFiniteEvents = result.nonFiniteEvents;
    ckpt.recoveries = result.recoveries;
    ckpt.params = params;
    ckpt.bestMask = result.bestMask;
    ckpt.velocity = velocity;
    ckpt.adamM = adamM;
    ckpt.adamV = adamV;
    ckpt.history = result.history;
    saveOptimizerCheckpoint(options.checkpointPath, ckpt);
    telemetry::flightrec::record(
        "checkpoint", options.runLogScope + " iter=" + std::to_string(iter));
  };

  for (int iter = startIter; iter <= cfg.maxIterations; ++iter) {
    MOSAIC_SPAN("opt.iteration");
    WallTimer iterTimer;
    if (options.cancel != nullptr && options.cancel->stopRequested()) {
      result.stopReason = StopReason::kCanceled;
      // Checkpoint the interrupted state (iteration iter-1 is the last
      // completed one) so the run can resume bit-identically even when
      // the interrupt lands between periodic checkpoints.
      if (checkpointing) writeCheckpoint(iter - 1);
      LOG_WARN("canceled at iteration " << iter
                                        << "; returning best-so-far");
      break;
    }
    if (cfg.deadlineSeconds > 0.0 &&
        timer.seconds() >= cfg.deadlineSeconds) {
      result.stopReason = StopReason::kDeadline;
      if (checkpointing) writeCheckpoint(iter - 1);
      LOG_WARN("deadline of " << cfg.deadlineSeconds
                              << " s reached at iteration " << iter
                              << "; returning best-so-far");
      break;
    }
    MOSAIC_FAILPOINT("optimizer.step");

    // Gradient in P-space via the sigmoid chain rule (Eq. 8).
    RealGrid gradP = eval.gradMask;
    transform.chainRule(mask, gradP);
    const double gradRms = rms(gradP);

    IterationRecord record;
    record.iteration = iter;
    record.rmsGradient = gradRms;

    if (gradRms < cfg.tolRmsGradient) {
      record.objective = eval.value;
      record.targetTerm = eval.targetValue;
      record.pvbTerm = eval.pvbValue;
      record.stepSize = step;
      record.wallMs = iterTimer.seconds() * 1000.0;
      result.history.push_back(record);
      emitIterationRecord(options, record);
      result.converged = true;
      result.stopReason = StopReason::kConverged;
      if (callback) callback(record, mask);
      break;
    }

    // Jump technique [12]: after a streak without improvement, blow the
    // step up once to hop to a different basin; the best iterate is kept
    // separately so this is risk-free.
    bool jumped = false;
    if (sinceImprovement >= cfg.jumpPeriod) {
      step *= cfg.jumpFactor;
      sinceImprovement = 0;
      jumped = true;
    }

    // Descent update (Alg. 1 line 6 for the plain variant).
    switch (cfg.descentVariant) {
      case DescentVariant::kPlain: {
        const double scale = step / gradRms;
        for (std::size_t i = 0; i < params.size(); ++i) {
          params.data()[i] -= scale * gradP.data()[i];
        }
        break;
      }
      case DescentVariant::kMomentum: {
        const double invRms = 1.0 / gradRms;
        for (std::size_t i = 0; i < params.size(); ++i) {
          velocity.data()[i] = cfg.momentum * velocity.data()[i] +
                               invRms * gradP.data()[i];
          params.data()[i] -= step * velocity.data()[i];
        }
        break;
      }
      case DescentVariant::kAdam: {
        const double b1 = cfg.adamBeta1;
        const double b2 = cfg.adamBeta2;
        const double corr1 = 1.0 - std::pow(b1, iter);
        const double corr2 = 1.0 - std::pow(b2, iter);
        for (std::size_t i = 0; i < params.size(); ++i) {
          const double g = gradP.data()[i];
          adamM.data()[i] = b1 * adamM.data()[i] + (1.0 - b1) * g;
          adamV.data()[i] = b2 * adamV.data()[i] + (1.0 - b2) * g * g;
          const double mHat = adamM.data()[i] / corr1;
          const double vHat = adamV.data()[i] / corr2;
          params.data()[i] -=
              step * mHat / (std::sqrt(vHat) + cfg.adamEpsilon);
        }
        break;
      }
    }
    mask = transform.toMask(params);
    eval = objective.evaluate(mask, true);

    if (!iterateIsFinite(eval, params)) {
      ++result.nonFiniteEvents;
      telemetry::metrics().counter("optimizer.non_finite").add();
      record.objective = eval.value;
      record.stepSize = step;
      if (result.recoveries >= cfg.maxRecoveries) {
        result.stopReason = StopReason::kAbortedNonFinite;
        record.wallMs = iterTimer.seconds() * 1000.0;
        result.history.push_back(record);
        emitIterationRecord(options, record);
        LOG_WARN("iter " << iter << ": non-finite evaluation with recovery "
                            "budget exhausted; returning best-so-far");
        break;
      }
      // Roll back to the last good iterate and retry with a shrunk step.
      ++result.recoveries;
      telemetry::metrics().counter("optimizer.recoveries").add();
      params = goodParams;
      mask = goodMask;
      eval = goodEval;
      velocity = goodVelocity;
      adamM = goodAdamM;
      adamV = goodAdamV;
      previousValue = eval.value;
      step = std::max(step * cfg.recoveryBackoff, cfg.minRecoveryStep);
      record.recovered = true;
      record.objective = eval.value;
      record.targetTerm = eval.targetValue;
      record.pvbTerm = eval.pvbValue;
      record.stepSize = step;
      record.wallMs = iterTimer.seconds() * 1000.0;
      result.history.push_back(record);
      emitIterationRecord(options, record);
      LOG_WARN("iter " << iter << ": non-finite evaluation, rolled back to "
                       << "last good iterate, step -> " << step);
      if (callback) callback(record, mask);
      if (checkpointing && iter % options.checkpointEvery == 0) {
        writeCheckpoint(iter);
      }
      continue;
    }
    goodParams = params;
    goodMask = mask;
    goodEval = eval;
    if (cfg.descentVariant == DescentVariant::kMomentum) {
      goodVelocity = velocity;
    } else if (cfg.descentVariant == DescentVariant::kAdam) {
      goodAdamM = adamM;
      goodAdamV = adamV;
    }

    const bool improved = eval.value < previousValue;
    if (improved) {
      step *= cfg.stepGrowth;
      sinceImprovement = 0;
    } else {
      step *= cfg.stepShrink;
      ++sinceImprovement;
    }
    previousValue = eval.value;

    if (eval.value < result.bestObjective) {
      result.bestObjective = eval.value;
      result.bestMask = mask;
      result.bestIteration = iter;
    }

    record.objective = eval.value;
    record.targetTerm = eval.targetValue;
    record.pvbTerm = eval.pvbValue;
    record.stepSize = step;
    record.improved = improved;
    record.jumped = jumped;
    record.wallMs = iterTimer.seconds() * 1000.0;
    result.history.push_back(record);
    emitIterationRecord(options, record);
    LOG_DEBUG("iter " << iter << " F=" << eval.value << " target="
                      << eval.targetValue << " pvb=" << eval.pvbValue
                      << " |g|=" << gradRms << " step=" << step
                      << (jumped ? " [jump]" : ""));
    if (callback) callback(record, mask);
    if (checkpointing && iter % options.checkpointEvery == 0) {
      writeCheckpoint(iter);
    }
  }
  return result;
}

}  // namespace mosaic
