#include "support/image_io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace mosaic {
namespace {

unsigned char quantize(double v, double lo, double hi) {
  if (hi <= lo) return 0;
  const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<unsigned char>(t * 255.0 + 0.5);
}

}  // namespace

void writePgm(const std::string& path, std::span<const double> values,
              int rows, int cols, double lo, double hi) {
  MOSAIC_CHECK(rows > 0 && cols > 0, "image dimensions must be positive");
  MOSAIC_CHECK(values.size() == static_cast<std::size_t>(rows) * cols,
               "value count " << values.size() << " != " << rows << "x"
                              << cols);
  std::ofstream out(path, std::ios::binary);
  MOSAIC_CHECK(out.good(), "cannot open for writing: " << path);
  out << "P5\n" << cols << " " << rows << "\n255\n";
  std::vector<unsigned char> line(static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      line[static_cast<std::size_t>(c)] =
          quantize(values[static_cast<std::size_t>(r) * cols + c], lo, hi);
    }
    out.write(reinterpret_cast<const char*>(line.data()),
              static_cast<std::streamsize>(line.size()));
  }
  MOSAIC_CHECK(out.good(), "write failed: " << path);
}

void writePpm(const std::string& path, std::span<const double> red,
              std::span<const double> green, std::span<const double> blue,
              int rows, int cols) {
  MOSAIC_CHECK(rows > 0 && cols > 0, "image dimensions must be positive");
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  MOSAIC_CHECK(red.size() == n && green.size() == n && blue.size() == n,
               "channel sizes must all be " << n);
  std::ofstream out(path, std::ios::binary);
  MOSAIC_CHECK(out.good(), "cannot open for writing: " << path);
  out << "P6\n" << cols << " " << rows << "\n255\n";
  std::vector<unsigned char> line(static_cast<std::size_t>(cols) * 3);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * cols + c;
      line[static_cast<std::size_t>(c) * 3 + 0] = quantize(red[i], 0.0, 1.0);
      line[static_cast<std::size_t>(c) * 3 + 1] = quantize(green[i], 0.0, 1.0);
      line[static_cast<std::size_t>(c) * 3 + 2] = quantize(blue[i], 0.0, 1.0);
    }
    out.write(reinterpret_cast<const char*>(line.data()),
              static_cast<std::streamsize>(line.size()));
  }
  MOSAIC_CHECK(out.good(), "write failed: " << path);
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(std::string path) : impl_(new Impl) {
  impl_->out.open(path);
  MOSAIC_CHECK(impl_->out.good(), "cannot open for writing: " << path);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::writeHeader(const std::vector<std::string>& columns) {
  writeRow(columns);
}

void CsvWriter::writeRow(const std::vector<double>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ",";
    os << values[i];
  }
  impl_->out << os.str() << "\n";
}

void CsvWriter::writeRow(const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) impl_->out << ",";
    impl_->out << values[i];
  }
  impl_->out << "\n";
}

}  // namespace mosaic
