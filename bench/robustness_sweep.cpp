/// \file robustness_sweep.cpp
/// Generalization check: the ten handcrafted clips could in principle be
/// over-fit by tuning; this bench runs the full method stack on seeded
/// *random* clips and reports the score distribution. The method ordering
/// of Table 2 should survive on layouts nobody tuned against.
///
/// --serve switches to the chaos soak of the mosaic_serve job service
/// (docs/serving.md): a batch of jobs is first run on a fault-free
/// JobService to record reference mask hashes, then replayed on a second
/// service with randomized throw/delay fail points armed at the
/// serve.worker, serve.submit and optimizer.step sites plus a few
/// mid-flight client cancels. The soak fails on any deadlock (a job that
/// never reaches a terminal state), any leaked job, or any wrong-but-OK
/// result (a job reported done whose mask hash differs from the fault-free
/// reference). Only throw/delay actions are armed: NaN/Inf injection
/// legitimately changes the optimization trajectory, which would make the
/// hash check flag correct recoveries as corruption.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "serve/service.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace mosaic;

serve::JobSpec chaosSpec(int index) {
  serve::JobSpec spec;
  spec.caseName = "random:" + std::to_string(2000 + index % 10);
  spec.method = "baseline";
  spec.pixelNm = 16;
  spec.iterations = 8 + index % 5;
  spec.maxAttempts = 3;
  spec.checkpointEvery = 3;
  return spec;
}

/// Run every job on a fault-free service and return the per-index hash —
/// the ground truth the chaos run's "done" results must reproduce.
std::vector<std::string> referenceHashes(int jobs, int workers) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "serve_chaos_ref";
  std::filesystem::remove_all(dir);
  serve::ServeConfig cfg;
  cfg.workDir = dir.string();
  cfg.workers = workers;
  cfg.queueCapacity = jobs + 2;
  serve::JobService service(cfg);
  std::vector<std::string> ids;
  for (int i = 0; i < jobs; ++i) {
    const serve::SubmitResult res = service.submit(chaosSpec(i));
    MOSAIC_CHECK(res.status == serve::SubmitStatus::kAccepted,
                 "reference submit rejected: " << res.message);
    ids.push_back(res.id);
  }
  service.drain(serve::DrainMode::kFinish);
  std::vector<std::string> hashes;
  for (const std::string& id : ids) {
    serve::JobSnapshot snap;
    MOSAIC_CHECK(service.snapshot(id, &snap), "reference job lost: " << id);
    MOSAIC_CHECK(snap.state == serve::JobState::kDone,
                 "reference job not done: " << id << " (" << snap.error
                                            << ")");
    hashes.push_back(snap.maskHash);
  }
  std::filesystem::remove_all(dir);
  return hashes;
}

int runServeChaos(int jobs, int workers, unsigned chaosSeed) {
  std::printf("=== Serve chaos soak: %d jobs, %d workers, seed %u ===\n",
              jobs, workers, chaosSeed);
  const std::vector<std::string> reference = referenceHashes(jobs, workers);

  // Randomized fault plan. Hit counters are global per site, so arming
  // "@iter=N" picks the Nth time ANY job reaches the site — which worker
  // and which job that is depends on scheduling, exactly the
  // nondeterminism a soak wants to explore.
  std::mt19937 rng(chaosSeed);
  std::string spec;
  const auto arm = [&spec](const std::string& s) {
    if (!spec.empty()) spec += ",";
    spec += s;
  };
  std::uniform_int_distribution<int> workerHit(1, jobs + jobs / 4);
  for (int i = 0; i < std::max(2, jobs / 8); ++i) {
    arm("serve.worker:throw@iter=" + std::to_string(workerHit(rng)));
  }
  std::uniform_int_distribution<int> stepHit(1, jobs * 10);
  for (int i = 0; i < std::max(2, jobs / 10); ++i) {
    arm("optimizer.step:throw@iter=" + std::to_string(stepHit(rng)));
  }
  std::uniform_int_distribution<int> delayMs(5, 25);
  for (int i = 0; i < std::max(3, jobs / 6); ++i) {
    arm("optimizer.step:delay=" + std::to_string(delayMs(rng)) + "@iter=" +
        std::to_string(stepHit(rng)));
  }
  arm("serve.submit:delay=" + std::to_string(delayMs(rng)) + "@iter=" +
      std::to_string(std::uniform_int_distribution<int>(1, jobs)(rng)));
  std::printf("armed fail points: %s\n", spec.c_str());
  failpoint::ScopedFailpoints armed(spec);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "serve_chaos_run";
  std::filesystem::remove_all(dir);
  serve::ServeConfig cfg;
  cfg.workDir = dir.string();
  cfg.workers = workers;
  cfg.queueCapacity = jobs + 2;
  cfg.backoffMs = 2;
  serve::JobService service(cfg);

  std::vector<std::string> ids;
  for (int i = 0; i < jobs; ++i) {
    const serve::SubmitResult res = service.submit(chaosSpec(i));
    MOSAIC_CHECK(res.status == serve::SubmitStatus::kAccepted,
                 "chaos submit rejected: " << res.message);
    ids.push_back(res.id);
  }

  // A few mid-flight client cancels (they may race job completion; both
  // outcomes are legal, and the canceled set is checked below).
  std::vector<bool> cancelRequested(static_cast<std::size_t>(jobs), false);
  std::uniform_int_distribution<int> pick(0, jobs - 1);
  for (int i = 0; i < std::max(1, jobs / 16); ++i) {
    const int victim = pick(rng);
    std::string message;
    service.cancel(ids[static_cast<std::size_t>(victim)], &message);
    cancelRequested[static_cast<std::size_t>(victim)] = true;
  }

  // No-deadlock assertion: every job must reach a terminal state.
  WallTimer clock;
  for (;;) {
    int open = 0;
    for (const std::string& id : ids) {
      serve::JobSnapshot snap;
      MOSAIC_CHECK(service.snapshot(id, &snap), "leaked job: " << id);
      if (snap.state == serve::JobState::kQueued ||
          snap.state == serve::JobState::kRunning) {
        ++open;
      }
    }
    if (open == 0) break;
    MOSAIC_CHECK(clock.seconds() < 300.0,
                 "deadlock: " << open << " jobs still open after "
                              << clock.seconds() << " s");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  service.drain(serve::DrainMode::kFinish);

  int done = 0;
  int failed = 0;
  int canceled = 0;
  int wrong = 0;
  for (int i = 0; i < jobs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    serve::JobSnapshot snap;
    MOSAIC_CHECK(service.snapshot(ids[idx], &snap), "leaked job: " << ids[idx]);
    switch (snap.state) {
      case serve::JobState::kDone:
        ++done;
        // The wrong-but-OK check: a retried/recovered job that reports
        // success must have produced exactly the fault-free mask.
        if (snap.maskHash != reference[idx]) {
          std::fprintf(stderr,
                       "WRONG RESULT: %s done with hash %s, reference %s\n",
                       ids[idx].c_str(), snap.maskHash.c_str(),
                       reference[idx].c_str());
          ++wrong;
        }
        break;
      case serve::JobState::kFailed:
        ++failed;
        MOSAIC_CHECK(snap.error.find("failpoint") != std::string::npos,
                     "job failed for a non-injected reason: " << snap.error);
        break;
      case serve::JobState::kCanceled:
        ++canceled;
        MOSAIC_CHECK(cancelRequested[idx],
                     "job canceled without a cancel request: " << ids[idx]);
        break;
      default:
        MOSAIC_CHECK(false, "job " << ids[idx] << " left non-terminal: "
                                   << jobStateName(snap.state));
    }
  }
  const serve::ServiceStats stats = service.stats();
  MOSAIC_CHECK(stats.queued == 0 && stats.running == 0,
               "leaked jobs after drain: " << stats.queued << " queued, "
                                           << stats.running << " running");
  std::filesystem::remove_all(dir);

  std::printf("soak result: %d done (%d hash-verified), %d failed "
              "(injected), %d canceled, %lld retries in %.1f s\n",
              done, done - wrong, failed, canceled, stats.retries,
              clock.seconds());
  if (wrong > 0) {
    std::fprintf(stderr, "serve chaos soak FAILED: %d wrong-but-OK results\n",
                 wrong);
    return 1;
  }
  std::printf("serve chaos soak OK: no deadlocks, no leaked jobs, no wrong "
              "results\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 15;
  int clips = 6;
  int firstSeed = 1000;
  bool serveMode = false;
  int jobs = 50;
  int workers = 4;
  int chaosSeed = 7;
  std::string logLevel = "warn";

  CliParser cli("robustness_sweep",
                "method comparison on seeded random clips");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addInt("clips", &clips, "number of random clips");
  cli.addInt("seed", &firstSeed, "first seed (clips use seed..seed+n-1)");
  cli.addFlag("serve", &serveMode,
              "chaos-soak the serve job service instead (docs/serving.md)");
  cli.addInt("jobs", &jobs, "serve mode: jobs in the soak");
  cli.addInt("workers", &workers, "serve mode: worker threads");
  cli.addInt("chaos-seed", &chaosSeed,
             "serve mode: RNG seed for the fault plan");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));
    if (serveMode) {
      MOSAIC_CHECK(jobs > 0 && workers > 0, "jobs and workers must be > 0");
      return runServeChaos(jobs, workers, static_cast<unsigned>(chaosSeed));
    }

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    struct Agg {
      std::string name;
      double scoreSum = 0.0;
      long long epeSum = 0;
      int wins = 0;
    };
    std::vector<Agg> aggs = {{"no_opc"}, {"ILT_baseline"}, {"MOSAIC_fast"},
                             {"MOSAIC_exact"}};

    TextTable table;
    table.setHeader({"clip", "rects", "no_opc", "ILT", "fast", "exact",
                     "winner"});
    for (int i = 0; i < clips; ++i) {
      const Layout layout =
          buildRandomClip(static_cast<std::uint64_t>(firstSeed + i));
      const BitGrid target = rasterize(layout, pixel);

      std::vector<double> scores;
      {
        const CaseEvaluation ev =
            evaluateMask(sim, noOpcMask(target), target, 0.0);
        scores.push_back(ev.score);
        aggs[0].scoreSum += ev.score;
        aggs[0].epeSum += ev.epeViolations;
      }
      std::size_t m = 1;
      for (OpcMethod method : {OpcMethod::kIltBaseline,
                               OpcMethod::kMosaicFast,
                               OpcMethod::kMosaicExact}) {
        IltConfig cfg = defaultIltConfig(method, pixel);
        cfg.maxIterations = (method == OpcMethod::kMosaicExact)
                                ? iterations + 10
                                : iterations;
        const OpcResult res = runOpc(sim, target, method, &cfg);
        const CaseEvaluation ev =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
        scores.push_back(ev.score);
        aggs[m].scoreSum += ev.score;
        aggs[m].epeSum += ev.epeViolations;
        ++m;
      }
      const std::size_t winner = static_cast<std::size_t>(
          std::min_element(scores.begin() + 1, scores.end()) -
          scores.begin());
      ++aggs[winner].wins;
      table.addRow({layout.name,
                    TextTable::integer(static_cast<long long>(
                        layout.rects.size())),
                    TextTable::num(scores[0], 0), TextTable::num(scores[1], 0),
                    TextTable::num(scores[2], 0), TextTable::num(scores[3], 0),
                    aggs[winner].name});
    }

    std::vector<std::string> totals = {"TOTAL", "-"};
    for (const auto& agg : aggs) totals.push_back(TextTable::num(agg.scoreSum, 0));
    totals.push_back("-");
    table.addRow(totals);

    std::printf("=== Robustness: random clips (seeds %d..%d) ===\n%s\n",
                firstSeed, firstSeed + clips - 1, table.render().c_str());
    std::printf("EPE totals: no_opc %lld, ILT %lld, fast %lld, exact %lld; "
                "wins: ILT %d, fast %d, exact %d\n",
                aggs[0].epeSum, aggs[1].epeSum, aggs[2].epeSum,
                aggs[3].epeSum, aggs[1].wins, aggs[2].wins, aggs[3].wins);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "robustness_sweep failed: %s\n", e.what());
    return 1;
  }
}
