#include "support/telemetry/runlog.hpp"

#include "support/error.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace telemetry {

RunLog::RunLog(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  MOSAIC_CHECK(file_ != nullptr, "cannot open run log for writing: " << path);
}

RunLog::~RunLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLog::write(const JsonObject& record) {
  std::string line;
  // Stamp the thread's active trace context into every record here, so
  // the emitters (optimizer, scheduler, serve) don't each need to thread
  // the id through. Records that already carry a trace keep theirs.
  const std::uint64_t trace = currentTraceId();
  if (trace != 0 && !record.has("trace")) {
    JsonObject stamped = record;
    stamped.set("trace", traceIdString(trace));
    line = stamped.str();
  } else {
    line = record.str();
  }
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  MOSAIC_CHECK(written == line.size(),
               "short write on run log: " << path_);
  std::fflush(file_);
  ++records_;
}

long long RunLog::recordsWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace telemetry
}  // namespace mosaic
