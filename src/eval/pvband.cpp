#include "eval/pvband.hpp"

#include "geometry/bitmap_ops.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {

PvBandResult computePvBand(const LithoSimulator& sim, const RealGrid& mask,
                           const std::vector<ProcessCorner>& corners) {
  return computePvBand(sim, sim.maskSpectrum(mask), corners);
}

PvBandResult computePvBand(const LithoSimulator& sim,
                           const ComplexGrid& spectrum,
                           const std::vector<ProcessCorner>& corners) {
  MOSAIC_CHECK(!corners.empty(), "PV band needs at least one corner");
  MOSAIC_SPAN("eval.pvband");
  PvBandResult result;
  bool first = true;
  for (const auto& corner : corners) {
    const BitGrid print =
        sim.printBinary(sim.aerialFromSpectrum(spectrum, corner));
    if (first) {
      result.outer = print;
      result.inner = print;
      first = false;
    } else {
      result.outer = bitOr(result.outer, print);
      result.inner = bitAnd(result.inner, print);
    }
  }
  result.band = bitSub(result.outer, result.inner);
  result.bandPixels = countSet(result.band);
  const double pixelArea = static_cast<double>(sim.optics().pixelNm) *
                           static_cast<double>(sim.optics().pixelNm);
  result.bandAreaNm2 = static_cast<double>(result.bandPixels) * pixelArea;
  return result;
}

}  // namespace mosaic
