#pragma once
/// \file stats.hpp
/// Small numeric reductions over grids and vectors (RMS for the optimizer's
/// stopping rule, sums for objective values).

#include <cmath>
#include <cstddef>

#include "math/grid.hpp"

namespace mosaic {

/// Root-mean-square of all elements (paper Alg. 1 line 8 stop criterion).
inline double rms(const RealGrid& g) {
  double acc = 0.0;
  for (double v : g) acc += v * v;
  return std::sqrt(acc / static_cast<double>(g.size()));
}

/// Sum of all elements.
inline double sum(const RealGrid& g) {
  double acc = 0.0;
  for (double v : g) acc += v;
  return acc;
}

/// Maximum absolute element.
inline double maxAbs(const RealGrid& g) {
  double best = 0.0;
  for (double v : g) best = std::max(best, std::fabs(v));
  return best;
}

/// Count of nonzero entries in a binary raster.
inline long long popcount(const BitGrid& g) {
  long long n = 0;
  for (unsigned char v : g) n += (v != 0);
  return n;
}

}  // namespace mosaic
