#pragma once
/// \file pvband.hpp
/// Process variability band (paper Fig. 4): the area between the outermost
/// and innermost printed contour over all process corners, computed with
/// boolean raster operations.

#include <vector>

#include "litho/simulator.hpp"
#include "math/grid.hpp"

namespace mosaic {

struct PvBandResult {
  BitGrid outer;        ///< union of all corner prints
  BitGrid inner;        ///< intersection of all corner prints
  BitGrid band;         ///< outer AND NOT inner
  long long bandPixels = 0;
  double bandAreaNm2 = 0.0;
};

/// Print the mask at every corner and assemble the PV band. The mask
/// spectrum is computed once and shared across corners.
PvBandResult computePvBand(const LithoSimulator& sim, const RealGrid& mask,
                           const std::vector<ProcessCorner>& corners);

/// Same, starting from a precomputed mask spectrum — callers that already
/// paid the forward FFT (eval/evaluator shares one spectrum between the
/// nominal print and the PV band) must not pay it again per corner set.
PvBandResult computePvBand(const LithoSimulator& sim,
                           const ComplexGrid& spectrum,
                           const std::vector<ProcessCorner>& corners);

}  // namespace mosaic
