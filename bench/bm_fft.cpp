/// \file bm_fft.cpp
/// Microbenchmarks of the math substrate: 1-D/2-D FFT throughput, spectrum
/// products and full cyclic convolutions. These bound every cost in the
/// optimizer (one ILT iteration is a fixed number of these transforms).

#include <benchmark/benchmark.h>

#include "math/convolution.hpp"
#include "math/fft.hpp"
#include "support/rng.hpp"

namespace {

using mosaic::ComplexGrid;

ComplexGrid randomGrid(int n, std::uint64_t seed) {
  mosaic::Rng rng(seed);
  ComplexGrid g(n, n);
  for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return g;
}

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mosaic::FftPlan plan(n);
  mosaic::Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(512)->Arg(1024)->Arg(4096);

void BM_Fft2dForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mosaic::Fft2d fft(n, n);
  ComplexGrid g = randomGrid(n, 2);
  for (auto _ : state) {
    fft.forward(g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n);
}
BENCHMARK(BM_Fft2dForward)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_Fft2dRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mosaic::Fft2d fft(n, n);
  ComplexGrid g = randomGrid(n, 3);
  for (auto _ : state) {
    fft.forward(g);
    fft.inverse(g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Fft2dRoundTrip)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_CyclicConvolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ComplexGrid a = randomGrid(n, 4);
  const ComplexGrid b = randomGrid(n, 5);
  for (auto _ : state) {
    auto out = mosaic::cyclicConvolve(a, b);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CyclicConvolve)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GaussianBlur(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mosaic::Rng rng(9);
  mosaic::RealGrid g(n, n);
  for (auto& v : g) v = rng.uniform(0, 1);
  for (auto _ : state) {
    auto out = mosaic::gaussianBlur(g, 2.5);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GaussianBlur)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_SpectrumProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ComplexGrid a = randomGrid(n, 6);
  const ComplexGrid b = randomGrid(n, 7);
  for (auto _ : state) {
    mosaic::multiplySpectraInPlace(a, b);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_SpectrumProduct)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
