# Empty compiler generated dependencies file for bm_fft.
# This may be replaced when dependencies are built.
