#pragma once
/// \file convolution.hpp
/// Cyclic (circular) convolution helpers on top of the FFT, plus an O(N^4)
/// direct reference used by the tests. The lithography engine keeps kernels
/// as full-grid spectra, so the hot path is "multiply spectra, inverse FFT".

#include "math/fft.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// Element-wise product c = a .* b (shapes must match).
ComplexGrid multiplySpectra(const ComplexGrid& a, const ComplexGrid& b);

/// In-place element-wise product a .*= b.
void multiplySpectraInPlace(ComplexGrid& a, const ComplexGrid& b);

/// Spectrum of the spatially flipped signal h(-x,-y): S'(i,j) =
/// S((R-i)%R, (C-j)%C). Used for correlation terms in the ILT gradient.
ComplexGrid flippedSpectrum(const ComplexGrid& s);

/// Element-wise complex conjugate.
ComplexGrid conjugateSpectrum(const ComplexGrid& s);

/// Cyclic convolution via FFT: (a (*) b)(x) = sum_t a(t) b(x - t), indices
/// wrapping modulo the grid shape.
ComplexGrid cyclicConvolve(const ComplexGrid& a, const ComplexGrid& b);

/// Direct O(N^4) cyclic convolution -- reference implementation for tests.
ComplexGrid directCyclicConvolve(const ComplexGrid& a, const ComplexGrid& b);

/// Convolve a signal given in the spatial domain with a kernel given as a
/// full-grid spectrum: returns ifft(fft(signal) .* kernelSpectrum).
ComplexGrid convolveWithSpectrum(const ComplexGrid& signal,
                                 const ComplexGrid& kernelSpectrum);

/// Same but the signal is already in the frequency domain.
ComplexGrid convolveSpectrumWithSpectrum(const ComplexGrid& signalSpectrum,
                                         const ComplexGrid& kernelSpectrum);

/// Cyclic Gaussian blur of a real grid with standard deviation `sigma`
/// (in pixels), computed spectrally: multiply by exp(-2 pi^2 sigma^2 |f|^2)
/// using the signed frequency convention (the Nyquist bin of an even size
/// is -1/2). Runs on the real-input/real-output FFT fast path with pooled
/// scratch. sigma <= 0 returns the input unchanged. The operator is
/// self-adjoint, which the ILT gradient chain relies on.
RealGrid gaussianBlur(const RealGrid& grid, double sigmaPx);

}  // namespace mosaic
