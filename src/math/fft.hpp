#pragma once
/// \file fft.hpp
/// From-scratch FFT engine. Provides cached 1-D radix-2 plans and a 2-D
/// transform over ComplexGrid, plus half-spectrum real-input/real-output
/// fast paths. This is the computational core of the lithography
/// simulator: every aerial image and every gradient term is a handful of
/// these transforms (paper Sec. 3.5).
///
/// Engine layout (docs/performance.md):
///  - Row transforms run the scalar 1-D plan on contiguous rows.
///  - Column transforms are "row-vector butterflies": the radix-2
///    algorithm over row indices where each butterfly combines two whole
///    rows element-wise. Memory access stays contiguous and the inner
///    loops autovectorize; there is no per-column gather/scatter and no
///    per-call scratch.
///  - Real input (masks, gradients) packs two real rows into one complex
///    transform and only runs the column pass on the non-redundant half
///    of the spectrum; the other half is reconstructed from Hermitian
///    symmetry. Same trick in reverse for real output (gaussianBlur).
///  - forwardLegacy/inverseLegacy keep the original per-column
///    gather/scatter path as a bit-exact reference for tests and the
///    legacy-vs-new benchmark (bench/bm_fft).

#include <complex>
#include <memory>
#include <vector>

#include "math/grid.hpp"

namespace mosaic {

/// Iterative radix-2 decimation-in-time FFT plan for a fixed power-of-two
/// size. Precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms only pay the butterfly cost.
class FftPlan {
 public:
  /// \param n transform length; must be a power of two >= 1.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2 pi i jk / n).
  void forward(std::complex<double>* data) const;

  /// In-place inverse DFT including the 1/n normalization.
  void inverse(std::complex<double>* data) const;

  /// The seed implementation's butterflies (one radix-2 sweep per stage),
  /// kept frozen as the reference/legacy path for equivalence tests and
  /// the legacy-vs-new benchmark.
  void transformReference(std::complex<double>* data, bool invert) const;

  [[nodiscard]] static bool isPowerOfTwo(std::size_t n) {
    return n != 0 && (n & (n - 1)) == 0;
  }

  /// Bit-reversal permutation (index i swaps with bitReversal()[i]).
  /// Exposed so Fft2d can permute whole rows for its column pass.
  [[nodiscard]] const std::vector<std::size_t>& bitReversal() const {
    return bitrev_;
  }

  /// Forward twiddles for the stage with half-length h: factor j lives at
  /// stageTwiddles(h)[j], j in [0, h). The inverse uses the conjugates.
  [[nodiscard]] const std::complex<double>* stageTwiddles(
      std::size_t h) const {
    return &twiddle_[h];
  }

 private:
  void transform(std::complex<double>* data, bool invert) const;

  std::size_t n_;
  int logN_;
  std::vector<std::size_t> bitrev_;
  /// Twiddles for the forward transform, stage-packed: the factors for the
  /// stage with half-length h live at [h, 2h).
  std::vector<std::complex<double>> twiddle_;
};

/// 2-D FFT over a ComplexGrid (rows then columns). Both dimensions must be
/// powers of two. Plans are cached per instance, so reuse one Fft2d per
/// grid shape in hot loops (or go through fft2dFor). All member functions
/// are const and keep no shared mutable scratch, so one instance is safe
/// to use concurrently from the tile scheduler's worker threads.
class Fft2d {
 public:
  Fft2d(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// In-place forward 2-D DFT.
  void forward(ComplexGrid& grid) const;
  /// In-place inverse 2-D DFT (normalized by 1/(rows*cols)).
  void inverse(ComplexGrid& grid) const;

  /// Forward transform of a real grid, exploiting Hermitian symmetry
  /// (about half the work of the complex path). Returns the full
  /// rows x cols spectrum.
  [[nodiscard]] ComplexGrid forwardReal(const RealGrid& grid) const;

  /// Same, writing into a caller-provided (e.g. pooled) grid.
  void forwardRealInto(const RealGrid& grid, ComplexGrid& out) const;

  /// Inverse transform of a Hermitian spectrum straight to its real
  /// result, exploiting symmetry like forwardRealInto. Only columns
  /// [0, cols/2] of `spectrum` are read; the grid is clobbered (it is
  /// used as workspace for the column pass). The imaginary part of the
  /// mathematical result is discarded, so the caller is responsible for
  /// `spectrum` actually being (half of) a Hermitian spectrum.
  void inverseRealInto(ComplexGrid& spectrum, RealGrid& out) const;

  /// Original per-column gather/scatter implementation, kept as the
  /// reference the rebuilt engine is validated and benchmarked against.
  void forwardLegacy(ComplexGrid& grid) const;
  void inverseLegacy(ComplexGrid& grid) const;

  /// The cached 1-D plans, exposed so execution backends (math/backend)
  /// can drive their own pruned/batched passes off the same twiddle and
  /// bit-reversal tables instead of rebuilding them.
  [[nodiscard]] const FftPlan& rowPlan() const { return rowPlan_; }
  [[nodiscard]] const FftPlan& colPlan() const { return colPlan_; }

 private:
  void transformRows(ComplexGrid& grid, bool invert) const;
  /// Row-vector-butterfly column pass over columns [0, colLimit).
  void transformCols(ComplexGrid& grid, bool invert, int colLimit) const;
  /// Legacy passes: reference 1-D butterflies per row, and per-column
  /// gather / transform / scatter.
  void transformRowsLegacy(ComplexGrid& grid, bool invert) const;
  void transformColsLegacy(ComplexGrid& grid, bool invert) const;

  int rows_;
  int cols_;
  FftPlan rowPlan_;
  FftPlan colPlan_;
};

/// Shared plan cache: returns an Fft2d for (rows, cols), constructing it on
/// first use. Lookups of already-constructed plans are lock-free (an
/// atomic walk of an append-only list), so concurrent tile workers never
/// contend here; only first-time construction of a new shape takes a
/// mutex. The returned reference stays valid for the process lifetime.
const Fft2d& fft2dFor(int rows, int cols);

}  // namespace mosaic
