#pragma once
/// \file eigen.hpp
/// Dense symmetric / Hermitian eigensolvers (cyclic Jacobi). Used to
/// decompose the Hopkins TCC operator into SOCS kernels (paper Eq. 1-2):
/// the kernels h_k are the top eigenvectors and the weights w_k the
/// eigenvalues.

#include <complex>
#include <vector>

#include "support/error.hpp"

namespace mosaic {

/// Dense row-major real matrix, just enough surface for the eigensolvers.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, init) {
    MOSAIC_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  [[nodiscard]] bool isSquare() const { return rows_ == cols_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Result of a symmetric eigendecomposition A = V diag(w) V^T with
/// eigenvalues sorted in descending order; eigenvectors are the columns
/// of V (stored per-eigenpair as vectors here).
struct SymmetricEigenResult {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;  ///< [k][i]
};

/// Cyclic Jacobi eigensolver for a real symmetric matrix.
/// \param a symmetric square matrix (symmetry is validated to tolerance).
/// \param maxSweeps maximum full sweeps before giving up (throws if the
///        off-diagonal norm has not converged by then).
SymmetricEigenResult jacobiEigenSymmetric(const Matrix& a, int maxSweeps = 64);

/// Result of a Hermitian eigendecomposition H = sum_k w_k v_k v_k^H with
/// real eigenvalues sorted descending and orthonormal complex eigenvectors.
struct HermitianEigenResult {
  std::vector<double> eigenvalues;
  std::vector<std::vector<std::complex<double>>> eigenvectors;  ///< [k][i]
};

/// Hermitian eigensolver via the real 2n x 2n embedding
/// [[Re(H), -Im(H)], [Im(H), Re(H)]]. Each complex eigenpair appears twice
/// in the embedding; the implementation deduplicates by complex
/// Gram-Schmidt within eigenvalue clusters.
/// \param h row-major n x n Hermitian matrix.
HermitianEigenResult jacobiEigenHermitian(
    const std::vector<std::complex<double>>& h, int n, int maxSweeps = 64);

}  // namespace mosaic
