#pragma once
/// \file scratch.hpp
/// Per-thread reusable grid pool. The inner ILT loop needs a handful of
/// full-size temporary grids per iteration (the SOCS field in
/// aerialFromSpectrum, the gradient-chain field and accumulator in
/// IltObjective::accumulateGradient, the blur spectrum in gaussianBlur);
/// allocating 16 MB+ per call churns the allocator and the page tables.
/// A Lease borrows a grid of the requested shape from a thread-local free
/// list and returns it on destruction, so steady-state iterations run
/// allocation-free. Pool hits/misses are exported as the telemetry
/// counters scratch.hit / scratch.miss (docs/performance.md).
///
/// Leased grids are NOT zeroed: their contents are whatever the previous
/// user left behind. Callers must fully overwrite or fill() them.
/// Thread-safety: leases are cheap thread-local operations; a Lease must
/// be released on the thread that acquired it (keep leases function-local
/// and don't move them across threads).

#include <complex>
#include <memory>
#include <type_traits>

#include "math/grid.hpp"

namespace mosaic {
namespace scratch {

namespace detail {
std::unique_ptr<RealGrid> acquireReal(int rows, int cols);
void releaseReal(std::unique_ptr<RealGrid> grid);
std::unique_ptr<ComplexGrid> acquireComplex(int rows, int cols);
void releaseComplex(std::unique_ptr<ComplexGrid> grid);
}  // namespace detail

/// RAII lease of a pooled grid (contents unspecified on acquisition).
template <typename GridT>
class Lease {
  static_assert(std::is_same_v<GridT, RealGrid> ||
                    std::is_same_v<GridT, ComplexGrid>,
                "scratch pool serves RealGrid and ComplexGrid only");

 public:
  Lease(int rows, int cols) {
    if constexpr (std::is_same_v<GridT, RealGrid>) {
      grid_ = detail::acquireReal(rows, cols);
    } else {
      grid_ = detail::acquireComplex(rows, cols);
    }
  }
  ~Lease() { release(); }

  Lease(Lease&& other) noexcept : grid_(std::move(other.grid_)) {}
  Lease& operator=(Lease&& other) noexcept {
    if (this != &other) {
      release();
      grid_ = std::move(other.grid_);
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

  GridT& operator*() { return *grid_; }
  GridT* operator->() { return grid_.get(); }
  [[nodiscard]] GridT& grid() { return *grid_; }

 private:
  void release() {
    if (!grid_) return;
    if constexpr (std::is_same_v<GridT, RealGrid>) {
      detail::releaseReal(std::move(grid_));
    } else {
      detail::releaseComplex(std::move(grid_));
    }
  }
  std::unique_ptr<GridT> grid_;
};

using RealLease = Lease<RealGrid>;
using ComplexLease = Lease<ComplexGrid>;

/// Drop every grid cached by the calling thread (tests / memory pressure,
/// worker-thread teardown — parallelFor workers run this automatically
/// via registerWorkerTeardown; serve workers call it on loop exit).
void clearThreadPool();

/// Bytes currently cached across all threads' free lists (leased grids
/// are not counted). Also exported as the scratch.resident_bytes gauge.
long long residentBytes();

}  // namespace scratch
}  // namespace mosaic
