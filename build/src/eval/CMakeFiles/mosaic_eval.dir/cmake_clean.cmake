file(REMOVE_RECURSE
  "CMakeFiles/mosaic_eval.dir/epe.cpp.o"
  "CMakeFiles/mosaic_eval.dir/epe.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/evaluator.cpp.o"
  "CMakeFiles/mosaic_eval.dir/evaluator.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/mrc.cpp.o"
  "CMakeFiles/mosaic_eval.dir/mrc.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/process_window.cpp.o"
  "CMakeFiles/mosaic_eval.dir/process_window.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/pvband.cpp.o"
  "CMakeFiles/mosaic_eval.dir/pvband.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/score.cpp.o"
  "CMakeFiles/mosaic_eval.dir/score.cpp.o.d"
  "CMakeFiles/mosaic_eval.dir/shape.cpp.o"
  "CMakeFiles/mosaic_eval.dir/shape.cpp.o.d"
  "libmosaic_eval.a"
  "libmosaic_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
