#pragma once
/// \file http.hpp
/// Minimal HTTP/1.1 observability endpoint of the mosaic_serve daemon
/// (docs/observability.md). A second loopback listener, separate from the
/// JSONL job protocol, speaking just enough HTTP for curl and a Prometheus
/// scraper:
///
///   GET /metrics          Prometheus text exposition of every registered
///                         metric (prometheus.hpp), process gauges
///                         refreshed at scrape time
///   GET /healthz          200 {"ok":true,...} while serving, 503 when
///                         draining
///   GET /jobs             JSON: queue depth, per-state counts, and one
///                         entry per job with live phase/iteration/F
///   GET /debug/flightrec  the flight-recorder ring as JSONL
///
/// Scope limits are deliberate: GET only (405 otherwise), request headers
/// read and discarded, every response carries Content-Length and
/// Connection: close. One connection is served at a time — scrapes are
/// tiny and an observability port must never compete with workers for
/// threads.

#include <atomic>
#include <string>
#include <thread>

namespace mosaic {
namespace serve {

class JobService;

class HttpServer {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral; port() reports the choice) and
  /// starts the accept thread. Throws mosaic::Error when the bind fails.
  HttpServer(JobService& service, int port);

  /// Stops the accept loop and joins the thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] int port() const { return port_; }

  void stop();

 private:
  void acceptLoop();

  JobService& service_;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  void* listener_ = nullptr;  ///< ServerSocket, kept out of the header
  std::thread thread_;
};

/// Route one request path to its response body + content type + status.
/// Pure function of the service state, so unit tests cover the routing
/// without sockets. Unknown paths yield 404.
struct HttpResponse {
  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
};
[[nodiscard]] HttpResponse routeHttpRequest(JobService& service,
                                            const std::string& path);

}  // namespace serve
}  // namespace mosaic
