file(REMOVE_RECURSE
  "CMakeFiles/fig2_sigmoid.dir/fig2_sigmoid.cpp.o"
  "CMakeFiles/fig2_sigmoid.dir/fig2_sigmoid.cpp.o.d"
  "fig2_sigmoid"
  "fig2_sigmoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sigmoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
