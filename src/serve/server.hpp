#pragma once
/// \file server.hpp
/// TCP front end of the serve daemon: a loopback listener, one thread per
/// connection, line-delimited JSON requests dispatched through
/// protocol.hpp (docs/serving.md). The accept loop polls so it can notice
/// a stop request (SIGINT/SIGTERM via the cancellation token, or a client
/// shutdown op) within ~100 ms; connection threads poll their sockets the
/// same way so a drain never hangs on an idle client.

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "support/cancel.hpp"
#include "support/socket.hpp"

namespace mosaic {
namespace serve {

struct ServerOptions {
  int port = 0;        ///< 0 = ephemeral; the bound port is written to
                       ///< <workDir>/serve.port for clients and tests
  int pollMs = 100;    ///< accept/read poll granularity
};

class ServeServer {
 public:
  /// Binds 127.0.0.1:<port> and writes the port file. Throws on failure.
  ServeServer(JobService& service, const ServerOptions& opts);
  ~ServeServer();

  [[nodiscard]] int port() const { return listener_.port(); }

  /// Accept-and-serve until `stop` fires or a client shutdown op arrives.
  /// Joins every connection thread before returning. Returns the drain
  /// mode to apply: a signal stop maps to kCheckpoint (preserve work), a
  /// shutdown op carries its own mode.
  DrainMode serveForever(const CancelToken* stop);

 private:
  void handleConnection(Socket socket);
  [[nodiscard]] bool stopRequested(const CancelToken* stop) const;

  JobService& service_;
  ServerOptions opts_;
  ServerSocket listener_;
  std::atomic<bool> shutdownOp_{false};
  std::atomic<bool> checkpointMode_{false};
  std::atomic<bool> stopping_{false};
  std::mutex threadsMutex_;
  std::vector<std::thread> threads_;
};

}  // namespace serve
}  // namespace mosaic
