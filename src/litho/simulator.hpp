#pragma once
/// \file simulator.hpp
/// Forward lithography engine (paper Sec. 2, Fig. 1): mask -> aerial image
/// (SOCS) -> printed image (resist model), for any process corner. Kernel
/// sets are computed lazily per focus value and cached.

#include <map>
#include <memory>
#include <mutex>

#include "litho/kernels.hpp"
#include "litho/optics.hpp"
#include "math/backend.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// Forward lithography simulator.
///
/// The expensive part of a simulation is the per-kernel inverse FFT; when
/// evaluating several corners of the same mask, compute the mask spectrum
/// once via maskSpectrum() and reuse it.
///
/// Thread-safety contract: all const member functions are safe to call
/// concurrently on one shared instance. The lazy per-focus kernel cache
/// serializes only per focus value: each focus has its own std::call_once
/// entry, so two corners with distinct focus values compute their kernel
/// sets concurrently while a second request for the same focus blocks just
/// until the first finishes (the returned KernelSet reference stays valid
/// for the simulator's lifetime). The FFT layer keeps no shared mutable
/// scratch. This is what lets the batch runner and the tile scheduler
/// share one simulator — and its kernel sets — across workers. Non-const
/// members (setKernelCacheDir) must not race with concurrent use.
class LithoSimulator {
 public:
  explicit LithoSimulator(OpticsConfig optics, ResistModel resist = {});

  [[nodiscard]] const OpticsConfig& optics() const { return optics_; }
  [[nodiscard]] const ResistModel& resist() const { return resist_; }
  [[nodiscard]] int gridSize() const { return optics_.gridSize(); }

  /// Directory for on-disk kernel caching (io/kernel_cache format). When
  /// set, kernels(focus) first tries to load the cached decomposition and
  /// persists freshly computed ones. Empty (default) disables it. The
  /// cache filename covers grid size, focus and a hash of every optics
  /// parameter (source, NA, aberrations, ...), so settings changes can
  /// never resurrect a stale file.
  void setKernelCacheDir(std::string dir) { cacheDir_ = std::move(dir); }

  /// Kernel set for a focus offset (computed on first use, then cached).
  /// Safe to call concurrently; see the class thread-safety contract.
  const KernelSet& kernels(double focusNm) const;

  /// Eagerly compute/load the kernel sets for a list of focus values.
  /// Purely a warm-up: concurrent first use is already correct, but
  /// pre-warming keeps the expensive TCC eigendecompositions off the
  /// worker threads (the tile scheduler calls this before fan-out).
  void warmKernels(const std::vector<double>& focusValuesNm) const;

  /// Execution backend for the SOCS hot loops (aerial sum; the gradient
  /// chains in opc/objective follow this too). nullptr (the default)
  /// defers to the process-wide exec::currentBackend(), so a simulator
  /// normally inherits the --backend selection; tests and benchmarks pin
  /// one explicitly. Not thread-safe against concurrent use — set it
  /// before sharing the simulator.
  void setBackend(const exec::Backend* backend) { backend_ = backend; }
  [[nodiscard]] const exec::Backend& activeBackend() const {
    return backend_ ? *backend_ : exec::currentBackend();
  }

  /// Forward FFT of a real mask.
  [[nodiscard]] ComplexGrid maskSpectrum(const RealGrid& mask) const;

  /// Aerial image I = dose * sum_k w_k |M (x) h_k|^2 (Eq. 2).
  /// \param maxKernels 0 = use all kernels; otherwise truncate the SOCS sum
  ///        (used by the optimizer's cheaper in-loop model).
  [[nodiscard]] RealGrid aerial(const RealGrid& mask,
                                const ProcessCorner& corner,
                                int maxKernels = 0) const;

  /// Same, starting from a precomputed mask spectrum.
  [[nodiscard]] RealGrid aerialFromSpectrum(const ComplexGrid& spectrum,
                                            const ProcessCorner& corner,
                                            int maxKernels = 0) const;

  /// Continuous printed image Z = sig(I) (Eq. 4).
  [[nodiscard]] RealGrid printContinuous(const RealGrid& aerialImage) const;

  /// Binary printed image via the hard threshold (Eq. 3).
  [[nodiscard]] BitGrid printBinary(const RealGrid& aerialImage) const;

  /// Convenience: mask -> binary print at a corner with the full kernel set.
  [[nodiscard]] BitGrid print(const RealGrid& mask,
                              const ProcessCorner& corner) const;

 private:
  /// One lazily-computed kernel set. The once_flag gates computation so
  /// the map mutex is never held across computeKernelSet — distinct focus
  /// values proceed in parallel.
  struct KernelEntry {
    std::once_flag once;
    std::unique_ptr<KernelSet> set;
  };

  KernelEntry& kernelEntry(double focusNm) const;
  void computeInto(KernelEntry& entry, double focusNm) const;

  OpticsConfig optics_;
  ResistModel resist_;
  std::string cacheDir_;
  const exec::Backend* backend_ = nullptr;
  /// Guards only the map itself (entry lookup/insert), never kernel
  /// computation. Entries are shared_ptrs so references stay stable after
  /// the lock is released.
  mutable std::mutex kernelMutex_;
  mutable std::map<double, std::shared_ptr<KernelEntry>> kernelCache_;
};

}  // namespace mosaic
