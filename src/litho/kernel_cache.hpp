#pragma once
/// \file kernel_cache.hpp
/// Binary serialization of SOCS kernel sets. The TCC eigendecomposition
/// costs ~1 s per focus condition; persisting the result makes repeated
/// CLI invocations and CI runs start instantly. The format is a
/// little-endian private binary with a magic/version header; files are
/// validated on load and rejected on any mismatch.

#include <cstdint>
#include <string>

#include "litho/kernels.hpp"
#include "litho/optics.hpp"

namespace mosaic {

/// Write a kernel set to a binary file.
void saveKernelSet(const std::string& path, const KernelSet& set);

/// Read a kernel set back. Throws InvalidArgument on malformed files or
/// version mismatch.
KernelSet loadKernelSet(const std::string& path);

/// Deterministic cache filename from grid size + focus only, e.g.
/// "kernels_g256_f250.bin" (focus in tenths of nm). Legacy key: two
/// kernel sets built under different pupil/source settings map to the
/// same name — prefer the OpticsConfig overload for on-disk caches.
std::string kernelCacheName(int gridSize, double focusNm);

/// Deterministic cache filename covering *every* optical parameter, e.g.
/// "kernels_g256_f250_o1a2b3c4d5e6f708.bin". The trailing token is an
/// FNV-1a hash over wavelength, NA, source sigmas, immersion index,
/// kernel count, source oversampling and the Zernike aberration vector,
/// so kernel sets computed under different optics can never collide with
/// a stale cache file. This is the key the simulator's disk cache uses.
std::string kernelCacheName(const OpticsConfig& optics, double focusNm);

/// The optics-parameter hash used by the cache name (16 lowercase hex
/// digits); exposed for tests and external cache tooling.
std::string opticsParameterHash(const OpticsConfig& optics);

/// Raw 64-bit form of opticsParameterHash, for callers that fold it into
/// larger keys (the pattern-library fingerprint) instead of printing it.
std::uint64_t opticsParameterDigest(const OpticsConfig& optics);

}  // namespace mosaic
