#pragma once
/// \file backend.hpp
/// Execution-backend layer for the SOCS hot path (docs/performance.md).
///
/// One ILT iteration spends nearly all of its time in two math-level
/// primitives: the aerial-intensity sum over the SOCS kernel set
/// (per-kernel sparse product + inverse FFT + weighted |.|^2 accumulate,
/// Eq. 2) and the gradient convolution chains (inverse FFT, element-wise
/// product, forward FFT, flipped sparse accumulate, Eq. 17). A Backend
/// implements exactly those two primitives, so the simulator and the
/// objective stay algorithm-shaped while the execution strategy —
/// scalar loops, AVX2 lanes, pruned transforms, float32 — is swappable
/// at runtime and GPU-shaped backends have a socket to land in later.
///
/// Implementations:
///  - `cpu_scalar`: the pre-backend code paths, frozen operation-for-
///    operation so results are bit-identical to the historical engine.
///    This is the library default and the equivalence oracle.
///  - `cpu_simd`: batched multi-spectrum inverse transforms that skip
///    all-zero rows of the band-limited kernel spectra, a liveness-aware
///    column pass, explicit AVX2/FMA butterflies (portable 4-wide lanes
///    when AVX2 is unavailable), and fused weighted-|.|^2 accumulation.
///    Agrees with cpu_scalar to ~1e-12 (tested at 1e-10).
///  - `cpu_simd_f32`: opt-in single-precision aerial path (gradients stay
///    double); gated by the acceptance tests in tests/test_backend.cpp.
///
/// Thread-safety: backends are immutable singletons; every method is
/// const and uses only per-thread scratch. The process-wide selection
/// (currentBackend/setCurrentBackend) is an atomic pointer — set it once
/// at startup (CLI `--backend`), not concurrently with running work.

#include <complex>
#include <string>
#include <string_view>

#include "math/fft.hpp"
#include "math/grid.hpp"

namespace mosaic {
namespace exec {

/// Non-owning view of a sparse spectrum: `count` nonzero lattice samples
/// of a rows x cols frequency grid, addressed by flat index r * cols + c.
/// litho's SparseSpectrum converts to this without copying.
struct SpectrumView {
  const int* flatIndex = nullptr;
  const std::complex<double>* value = nullptr;
  std::size_t count = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier used by --backend and the bench/JSON output.
  [[nodiscard]] virtual const char* name() const = 0;

  /// True when the fast path actually runs hardware SIMD (AVX2+FMA) as
  /// opposed to portable fallback lanes.
  [[nodiscard]] virtual bool accelerated() const { return false; }

  /// intensity += dose * sum_k weights[k] * |ifft(kernels[k] .* spectrum)|^2.
  ///
  /// `intensity` is accumulated into (callers pass a zeroed grid). How the
  /// dose factor is applied is backend-defined: cpu_scalar replicates the
  /// historical order (sum first, one dose sweep at the end) for bit
  /// equality; SIMD backends fold it into the per-kernel weights. The two
  /// orders agree to roundoff and the regression tests in
  /// tests/test_backend.cpp pin the combination with resist blur.
  virtual void accumulateCoherentIntensity(const Fft2d& fft,
                                           const ComplexGrid& spectrum,
                                           const SpectrumView* kernels,
                                           const double* weights, int count,
                                           double dose,
                                           RealGrid& intensity) const = 0;

  /// accum += sum_k weights[k] * flip(kernels[k]) .*
  ///          fft(gField .* conj(ifft(kernels[k] .* maskSpectrum)))
  ///
  /// The gradient convolution chain of Eq. 17, summed over a kernel set
  /// into the spectral accumulator (the caller inverse-transforms `accum`
  /// once per evaluation). flip(s) moves the sample at (r, c) to
  /// ((R-r)%R, (C-c)%C) with the value unchanged.
  virtual void accumulateGradientChains(const Fft2d& fft,
                                        const ComplexGrid& maskSpectrum,
                                        const SpectrumView* kernels,
                                        const double* weights, int count,
                                        const RealGrid& gField,
                                        ComplexGrid& accum) const = 0;
};

/// The frozen pre-backend implementation (library default).
const Backend& scalarBackend();
/// Batched/pruned implementation; AVX2+FMA when the CPU has it.
const Backend& simdBackend();
/// Opt-in float32 aerial path on top of the SIMD structure.
const Backend& simdFloatBackend();

/// Runtime AVX2+FMA detection (x86 only; false elsewhere).
bool cpuHasAvx2();

/// Resolve a --backend name: "cpu_scalar", "cpu_simd", "cpu_simd_f32" or
/// "auto" (detection: cpu_simd, whose kernels degrade to portable lanes
/// without AVX2). Returns nullptr for unknown names.
const Backend* findBackend(std::string_view name);

/// Comma-separated list of accepted --backend names (for help/usage text).
std::string backendNames();

/// Process-wide backend selection. Defaults to cpu_scalar so library
/// consumers (and the existing test corpus) keep bit-identical behavior;
/// the apps resolve --backend (default "auto") and set this at startup.
const Backend& currentBackend();
void setCurrentBackend(const Backend& backend);

}  // namespace exec
}  // namespace mosaic
