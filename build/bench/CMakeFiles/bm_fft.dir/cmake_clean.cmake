file(REMOVE_RECURSE
  "CMakeFiles/bm_fft.dir/bm_fft.cpp.o"
  "CMakeFiles/bm_fft.dir/bm_fft.cpp.o.d"
  "bm_fft"
  "bm_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
