#pragma once
/// \file grid.hpp
/// Dense row-major 2-D array. This is the pixel container for masks, aerial
/// images, printed images and gradients throughout the library.

#include <complex>
#include <vector>

#include "support/error.hpp"

namespace mosaic {

/// Dense row-major 2-D array of T with value semantics.
///
/// Indexing is (row, col). Rows map to the layout's y axis (row 0 = bottom
/// edge by the rasterizer's convention) and columns to x.
template <typename T>
class Grid {
 public:
  Grid() = default;

  Grid(int rows, int cols, T init = T{}) : rows_(rows), cols_(cols) {
    MOSAIC_CHECK(rows > 0 && cols > 0,
                 "grid dimensions must be positive, got " << rows << "x"
                                                          << cols);
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                 init);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] bool sameShape(const Grid& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  T& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Bounds-checked access (throws); use in non-hot paths.
  T& at(int r, int c) {
    MOSAIC_CHECK(inBounds(r, c), "grid index (" << r << "," << c
                                                << ") out of " << rows_ << "x"
                                                << cols_);
    return (*this)(r, c);
  }
  const T& at(int r, int c) const {
    MOSAIC_CHECK(inBounds(r, c), "grid index (" << r << "," << c
                                                << ") out of " << rows_ << "x"
                                                << cols_);
    return (*this)(r, c);
  }

  [[nodiscard]] bool inBounds(int r, int c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* rowPtr(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* rowPtr(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  bool operator==(const Grid& other) const = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

using RealGrid = Grid<double>;
using ComplexGrid = Grid<std::complex<double>>;
using BitGrid = Grid<unsigned char>;  ///< binary raster (0 or 1)

/// Promote a real grid to complex (imaginary part zero).
inline ComplexGrid toComplex(const RealGrid& g) {
  ComplexGrid out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out.data()[i] = g.data()[i];
  return out;
}

/// Extract the real part of a complex grid.
inline RealGrid realPart(const ComplexGrid& g) {
  RealGrid out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out.data()[i] = g.data()[i].real();
  return out;
}

/// Squared magnitude |g|^2 per pixel.
inline RealGrid squaredMagnitude(const ComplexGrid& g) {
  RealGrid out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) {
    out.data()[i] = std::norm(g.data()[i]);
  }
  return out;
}

/// Convert a binary raster to doubles {0.0, 1.0}.
inline RealGrid toReal(const BitGrid& g) {
  RealGrid out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) {
    out.data()[i] = g.data()[i] ? 1.0 : 0.0;
  }
  return out;
}

/// Threshold a real grid into a binary raster: 1 where value > threshold.
inline BitGrid thresholdGrid(const RealGrid& g, double threshold) {
  BitGrid out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) {
    out.data()[i] = g.data()[i] > threshold ? 1u : 0u;
  }
  return out;
}

}  // namespace mosaic
