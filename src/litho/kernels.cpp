#include "litho/kernels.hpp"

#include "support/error.hpp"

namespace mosaic {

std::complex<double> SparseSpectrum::dcValue() const {
  for (std::size_t i = 0; i < flatIndex.size(); ++i) {
    if (flatIndex[i] == 0) return value[i];
  }
  return {0.0, 0.0};
}

SparseSpectrum SparseSpectrum::flipped() const {
  SparseSpectrum out;
  out.gridSize = gridSize;
  out.flatIndex.reserve(flatIndex.size());
  out.value = value;
  const int n = gridSize;
  for (int flat : flatIndex) {
    const int r = flat / n;
    const int c = flat % n;
    out.flatIndex.push_back(((n - r) % n) * n + ((n - c) % n));
  }
  return out;
}

SparseSpectrum SparseSpectrum::conjugated() const {
  SparseSpectrum out = *this;
  for (auto& v : out.value) v = std::conj(v);
  return out;
}

ComplexGrid SparseSpectrum::dense() const {
  MOSAIC_CHECK(gridSize > 0, "sparse spectrum has no grid size");
  ComplexGrid out(gridSize, gridSize);
  for (std::size_t i = 0; i < flatIndex.size(); ++i) {
    out.data()[static_cast<std::size_t>(flatIndex[i])] = value[i];
  }
  return out;
}

void SparseSpectrum::multiplyInto(const ComplexGrid& signalSpectrum,
                                  ComplexGrid& out) const {
  MOSAIC_CHECK(signalSpectrum.rows() == gridSize &&
                   signalSpectrum.cols() == gridSize,
               "signal spectrum grid mismatch");
  MOSAIC_CHECK(out.rows() == gridSize && out.cols() == gridSize,
               "output grid mismatch");
  out.fill({0.0, 0.0});
  for (std::size_t i = 0; i < flatIndex.size(); ++i) {
    const auto flat = static_cast<std::size_t>(flatIndex[i]);
    out.data()[flat] = signalSpectrum.data()[flat] * value[i];
  }
}

void SparseSpectrum::accumulateProduct(const ComplexGrid& signalSpectrum,
                                       std::complex<double> scale,
                                       ComplexGrid& accum) const {
  MOSAIC_CHECK(signalSpectrum.rows() == gridSize &&
                   accum.rows() == gridSize,
               "grid mismatch in accumulateProduct");
  for (std::size_t i = 0; i < flatIndex.size(); ++i) {
    const auto flat = static_cast<std::size_t>(flatIndex[i]);
    accum.data()[flat] += signalSpectrum.data()[flat] * value[i] * scale;
  }
}

double KernelSet::weightSum() const {
  double acc = 0.0;
  for (double w : weights) acc += w;
  return acc;
}

}  // namespace mosaic
