#include "geometry/layout.hpp"

#include <algorithm>

namespace mosaic {

long long Layout::patternArea() const {
  validateDisjoint();
  long long area = 0;
  for (const auto& r : rects) area += r.area();
  return area;
}

void Layout::validateDisjoint() const {
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      MOSAIC_CHECK(!rects[i].intersects(rects[j]),
                   "layout " << name << ": rects " << i << " and " << j
                             << " overlap");
    }
  }
}

Layout clipLayout(const Layout& source, const RectNm& windowNm,
                  const std::string& name) {
  MOSAIC_CHECK(windowNm.valid(), "clip window is degenerate");
  MOSAIC_CHECK(windowNm.width() == windowNm.height(),
               "clip window must be square, got " << windowNm.width() << "x"
                                                  << windowNm.height());
  Layout out;
  out.name = name;
  out.sizeNm = windowNm.width();
  for (const RectNm& r : source.rects) {
    const int x0 = std::max(r.x0, windowNm.x0);
    const int y0 = std::max(r.y0, windowNm.y0);
    const int x1 = std::min(r.x1, windowNm.x1);
    const int y1 = std::min(r.y1, windowNm.y1);
    if (x1 > x0 && y1 > y0) {
      out.addRect(x0 - windowNm.x0, y0 - windowNm.y0, x1 - windowNm.x0,
                  y1 - windowNm.y0);
    }
  }
  return out;
}

Layout replicateLayout(const Layout& source, int kx, int ky) {
  MOSAIC_CHECK(kx >= 1 && ky >= 1, "replication counts must be >= 1");
  MOSAIC_CHECK(source.sizeNm > 0, "cannot replicate an unsized layout");
  Layout out;
  out.name = source.name + "_x" + std::to_string(kx) + "y" +
             std::to_string(ky);
  // Layout windows are square: a non-square array sits in the max-extent
  // square with the extra area left empty.
  out.sizeNm = source.sizeNm * std::max(kx, ky);
  for (int j = 0; j < ky; ++j) {
    for (int i = 0; i < kx; ++i) {
      const int dx = i * source.sizeNm;
      const int dy = j * source.sizeNm;
      for (const RectNm& r : source.rects) {
        out.addRect(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy);
      }
    }
  }
  return out;
}

}  // namespace mosaic
