# Empty compiler generated dependencies file for ablation_psm.
# This may be replaced when dependencies are built.
