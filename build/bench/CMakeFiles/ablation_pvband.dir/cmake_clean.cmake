file(REMOVE_RECURSE
  "CMakeFiles/ablation_pvband.dir/ablation_pvband.cpp.o"
  "CMakeFiles/ablation_pvband.dir/ablation_pvband.cpp.o.d"
  "ablation_pvband"
  "ablation_pvband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pvband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
