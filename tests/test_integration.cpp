/// End-to-end integration tests: full MOSAIC runs on benchmark clips with
/// contest-style evaluation. These assert the paper's qualitative claims
/// on a coarse grid (8 nm pixels) so the whole suite stays fast.

#include <gtest/gtest.h>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/edge_opc.hpp"
#include "opc/levelset.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"

namespace mosaic {
namespace {

LithoSimulator& sim() {
  static LithoSimulator s([] {
    OpticsConfig o;
    o.pixelNm = 8;
    return o;
  }());
  return s;
}

struct CaseFixture {
  BitGrid target;
  CaseEvaluation noOpc;
};

const CaseFixture& fixtureFor(int index) {
  static std::map<int, CaseFixture> cache;
  auto it = cache.find(index);
  if (it == cache.end()) {
    CaseFixture f;
    f.target = rasterize(buildTestcase(index), 8);
    f.noOpc = evaluateMask(sim(), noOpcMask(f.target), f.target, 0.0);
    it = cache.emplace(index, std::move(f)).first;
  }
  return it->second;
}

OpcResult runMethod(const BitGrid& target, OpcMethod method, int iters = 12) {
  IltConfig cfg = defaultIltConfig(method, 8);
  cfg.maxIterations = iters;
  return runOpc(sim(), target, method, &cfg);
}

// ------------------------------------------------------------ mosaic fast

TEST(Integration, FastImprovesScoreOnB1) {
  const auto& f = fixtureFor(1);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast);
  const CaseEvaluation ev =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, res.runtimeSec);
  EXPECT_LT(ev.score, f.noOpc.score);
  EXPECT_LE(ev.epeViolations, f.noOpc.epeViolations);
  EXPECT_EQ(ev.shapeViolations, 0);
}

TEST(Integration, FastImprovesScoreOnB4) {
  const auto& f = fixtureFor(4);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast);
  const CaseEvaluation ev =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, res.runtimeSec);
  EXPECT_LT(ev.score, f.noOpc.score);
  EXPECT_LT(ev.epeViolations, f.noOpc.epeViolations);
}

TEST(Integration, FastRecoversContacts) {
  // B3's contacts do not print at all without OPC; MOSAIC must recover
  // every one of them (no missing features).
  const auto& f = fixtureFor(3);
  EXPECT_GE(f.noOpc.missingFeatures, 1);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast);
  const CaseEvaluation ev =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, res.runtimeSec);
  EXPECT_EQ(ev.missingFeatures, 0);
  EXPECT_LT(ev.score, 0.5 * f.noOpc.score);
}

// ----------------------------------------------------------- mosaic exact

TEST(Integration, ExactImprovesEpeOnB4) {
  const auto& f = fixtureFor(4);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicExact);
  const CaseEvaluation ev =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, res.runtimeSec);
  EXPECT_LT(ev.epeViolations, f.noOpc.epeViolations);
  EXPECT_LT(ev.score, f.noOpc.score);
}

// -------------------------------------------------------------- baseline

TEST(Integration, BaselineIltAlsoImprovesButMosaicMatchesOrBeats) {
  const auto& f = fixtureFor(6);
  const OpcResult base = runMethod(f.target, OpcMethod::kIltBaseline);
  const OpcResult fast = runMethod(f.target, OpcMethod::kMosaicFast);
  const CaseEvaluation evBase =
      evaluateMask(sim(), toReal(base.maskBinary), f.target, 0.0);
  const CaseEvaluation evFast =
      evaluateMask(sim(), toReal(fast.maskBinary), f.target, 0.0);
  EXPECT_LT(evBase.score, f.noOpc.score);
  // The paper's headline: process-window-aware MOSAIC beats plain ILT.
  // On a coarse grid we only require it not be worse by more than 10%.
  EXPECT_LE(evFast.score, 1.1 * evBase.score);
}

// ------------------------------------------------------------- mechanics

TEST(Integration, RunsAreDeterministic) {
  const auto& f = fixtureFor(2);
  const OpcResult a = runMethod(f.target, OpcMethod::kMosaicFast, 5);
  const OpcResult b = runMethod(f.target, OpcMethod::kMosaicFast, 5);
  EXPECT_EQ(a.maskBinary, b.maskBinary);
}

TEST(Integration, HistoryTracksBothTerms) {
  const auto& f = fixtureFor(4);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast, 6);
  ASSERT_GE(res.history.size(), 2u);
  for (const auto& rec : res.history) {
    EXPECT_GE(rec.targetTerm, 0.0);
    EXPECT_GE(rec.pvbTerm, 0.0);
    EXPECT_GT(rec.stepSize, 0.0);
  }
}

TEST(Integration, ContinuousAndBinaryMasksAgreeOnPrint) {
  // Binarization must not destroy the solution: the binary mask's nominal
  // print should still beat no-OPC on EPE.
  const auto& f = fixtureFor(7);
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast);
  const CaseEvaluation evBin =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, 0.0);
  EXPECT_LT(evBin.epeViolations, f.noOpc.epeViolations);
}

TEST(Integration, AttenuatedPsmAlsoImproves) {
  // Extension (generalized ILT of ref. [10]): a 6 % attenuated PSM
  // background must still beat no-OPC; the evaluation uses the two-level
  // transmission mask, not the feature raster.
  const auto& f = fixtureFor(2);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 10;
  cfg.maskLow = -0.2449489743;
  const OpcResult res = runOpc(sim(), f.target, OpcMethod::kMosaicFast, &cfg);
  EXPECT_LT(res.maskTwoLevel.data()[0], 0.0);  // PSM background present
  const CaseEvaluation ev =
      evaluateMask(sim(), res.maskTwoLevel, f.target, 0.0);
  EXPECT_LT(ev.score, f.noOpc.score);
}

TEST(Integration, MethodStackWorksOnRandomClip) {
  // Generalization smoke test: the whole method stack must function on a
  // clip nobody hand-tuned, and the ILT methods must beat no-OPC.
  const Layout layout = buildRandomClip(777);
  const BitGrid target = rasterize(layout, 8);
  const CaseEvaluation no = evaluateMask(sim(), noOpcMask(target), target, 0.0);

  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 10;
  const OpcResult fast = runOpc(sim(), target, OpcMethod::kMosaicFast, &cfg);
  const CaseEvaluation evFast =
      evaluateMask(sim(), fast.maskTwoLevel, target, 0.0);
  EXPECT_LT(evFast.score, no.score);

  LevelSetConfig lsCfg;
  lsCfg.maxIterations = 10;
  const LevelSetResult ls = runLevelSetIlt(sim(), target, lsCfg);
  const CaseEvaluation evLs = evaluateMask(sim(), toReal(ls.mask), target, 0.0);
  EXPECT_LT(evLs.score, no.score);

  EdgeOpcConfig eoCfg;
  eoCfg.maxIterations = 8;
  const EdgeOpcResult eo = runEdgeOpc(sim(), target, eoCfg);
  const CaseEvaluation evEo = evaluateMask(sim(), toReal(eo.mask), target, 0.0);
  EXPECT_LE(evEo.score, no.score);
}

class AllCasesImprove : public ::testing::TestWithParam<int> {};

TEST_P(AllCasesImprove, FastBeatsNoOpcEverywhere) {
  const auto& f = fixtureFor(GetParam());
  const OpcResult res = runMethod(f.target, OpcMethod::kMosaicFast, 10);
  const CaseEvaluation ev =
      evaluateMask(sim(), toReal(res.maskBinary), f.target, 0.0);
  EXPECT_LT(ev.score, f.noOpc.score) << "case B" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(B, AllCasesImprove,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace mosaic
