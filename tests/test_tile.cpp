/// \file test_tile.cpp
/// Full-chip tiling engine: partitioner geometry, seam-consistent
/// stitching, fault-isolated scheduling, and the end-to-end tiled-vs-whole
/// acceptance run (docs/tiling.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "geometry/raster.hpp"
#include "eval/epe.hpp"
#include "litho/simulator.hpp"
#include "suite/testcases.hpp"
#include "support/failpoint.hpp"
#include "support/parallel.hpp"
#include "tile/scheduler.hpp"
#include "tile/stitch.hpp"
#include "tile/tiling.hpp"

namespace mosaic {
namespace {

bool isPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// Kernel cache shared by every scheduler test in this binary so the TCC
/// eigendecomposition for a given window size is paid exactly once.
std::string sharedKernelCache() {
  static const std::string dir = ::testing::TempDir() + "mosaic_tile_kernels";
  return dir;
}

TEST(TilePartition, DefaultHaloIsTwiceTheOpticalRadius) {
  const OpticsConfig optics;
  const int radius = opticalInteractionRadiusNm(optics);
  EXPECT_EQ(radius, static_cast<int>(
                        std::ceil(optics.wavelengthNm / optics.na)));
  const int halo = defaultHaloNm(optics, 16);
  EXPECT_GE(halo, 2 * radius);
  EXPECT_EQ(halo % 16, 0);
}

TEST(TilePartition, CoresTileTheChipDisjointly) {
  const Layout chip = replicateLayout(buildTestcase(1), 3, 3);
  ASSERT_EQ(chip.sizeNm, 3072);
  TilingConfig cfg;
  cfg.tileSizeNm = 1024;
  cfg.pixelNm = 16;
  const ChipPartition part = partitionChip(chip, cfg);

  EXPECT_EQ(part.tileRows, 3);
  EXPECT_EQ(part.tileCols, 3);
  ASSERT_EQ(part.tileCount(), 9);
  EXPECT_TRUE(isPowerOfTwo(part.windowGrid()));
  EXPECT_EQ(part.windowNm, part.tileSizeNm + 2 * part.haloNm);
  // Effective halo is never below the optics-derived default.
  EXPECT_GE(part.haloNm, defaultHaloNm(OpticsConfig{}, cfg.pixelNm));

  // Every chip nm cell belongs to exactly one core; every core sits
  // centered in its window.
  long long coreArea = 0;
  for (const TilePlan& tile : part.tiles) {
    EXPECT_TRUE(tile.coreNm.valid());
    coreArea += tile.coreNm.area();
    EXPECT_EQ(tile.coreNm.x0 - tile.windowNm.x0, part.haloNm);
    EXPECT_EQ(tile.coreNm.y0 - tile.windowNm.y0, part.haloNm);
    EXPECT_EQ(tile.windowNm.width(), part.windowNm);
    EXPECT_EQ(tile.windowNm.height(), part.windowNm);
    EXPECT_EQ(tile.window.sizeNm, part.windowNm);
    for (const TilePlan& other : part.tiles) {
      if (other.index == tile.index) continue;
      EXPECT_FALSE(tile.coreNm.intersects(other.coreNm))
          << "cores " << tile.index << " and " << other.index << " overlap";
    }
  }
  EXPECT_EQ(coreArea,
            static_cast<long long>(chip.sizeNm) * chip.sizeNm);
}

TEST(TilePartition, EdgeCoresClampToAnOddSizedChip) {
  Layout chip;
  chip.name = "odd";
  chip.sizeNm = 1536;
  chip.addRect(100, 100, 300, 200);
  TilingConfig cfg;
  cfg.tileSizeNm = 1024;
  cfg.pixelNm = 16;
  const ChipPartition part = partitionChip(chip, cfg);
  ASSERT_EQ(part.tileRows, 2);
  ASSERT_EQ(part.tileCols, 2);
  // Right/bottom cores shrink to the chip boundary, never past it.
  for (const TilePlan& tile : part.tiles) {
    EXPECT_LE(tile.coreNm.x1, chip.sizeNm);
    EXPECT_LE(tile.coreNm.y1, chip.sizeNm);
  }
  EXPECT_EQ(part.tiles.back().coreNm.width(), 512);
  EXPECT_EQ(part.tiles.back().coreNm.height(), 512);
}

TEST(TilePartition, WindowsClipThePatternAndFlagEmptyTiles) {
  Layout chip;
  chip.name = "corner";
  chip.sizeNm = 4096;
  chip.addRect(0, 0, 200, 200);  // pattern only in the min corner
  TilingConfig cfg;
  cfg.tileSizeNm = 1024;
  cfg.haloNm = 128;
  cfg.pixelNm = 16;
  const ChipPartition part = partitionChip(chip, cfg);
  ASSERT_EQ(part.tileCount(), 16);
  const TilePlan& first = part.tiles.front();
  EXPECT_FALSE(first.empty);
  ASSERT_EQ(first.window.rects.size(), 1u);
  // Window-local coordinates: the rect moved by the window origin.
  EXPECT_EQ(first.window.rects[0].x0, -first.windowNm.x0);
  const TilePlan& last = part.tiles.back();
  EXPECT_TRUE(last.empty);
  EXPECT_TRUE(last.window.rects.empty());
}

TEST(TilePartition, RejectsBadConfigs) {
  const Layout chip = buildTestcase(1);
  TilingConfig cfg;
  cfg.tileSizeNm = 1000;  // not a multiple of the pixel
  cfg.pixelNm = 16;
  EXPECT_THROW(partitionChip(chip, cfg), InvalidArgument);
  cfg.tileSizeNm = 0;
  EXPECT_THROW(partitionChip(chip, cfg), InvalidArgument);
}

ChipPartition smallPartition() {
  Layout chip;
  chip.name = "stitch";
  chip.sizeNm = 1024;
  chip.addRect(200, 200, 800, 400);
  TilingConfig cfg;
  cfg.tileSizeNm = 512;
  cfg.haloNm = 64;
  cfg.pixelNm = 16;
  return partitionChip(chip, cfg);
}

TEST(TileStitch, AgreeingTilesBlendWithoutSeams) {
  const ChipPartition part = smallPartition();
  const std::vector<RealGrid> masks(
      part.tiles.size(), RealGrid(part.windowGrid(), part.windowGrid(), 1.0));
  const StitchResult res = stitchTiles(part, masks, 0.5);
  EXPECT_GT(res.report.overlapPixels, 0);
  EXPECT_EQ(res.report.disagreeingPixels, 0);
  EXPECT_EQ(res.report.disagreementFraction, 0.0);
  EXPECT_EQ(res.report.nonFinitePixels, 0);
  EXPECT_EQ(res.report.coreMismatchPixels, 0);
  EXPECT_GE(res.report.maxCoverage, 2);
  for (int r = 0; r < part.chipGrid(); ++r) {
    for (int c = 0; c < part.chipGrid(); ++c) {
      ASSERT_NEAR(res.maskContinuous.at(r, c), 1.0, 1e-12);
      ASSERT_EQ(res.maskBinary.at(r, c), 1u);
    }
  }
}

TEST(TileStitch, DisagreementIsCountedInTheOverlap) {
  const ChipPartition part = smallPartition();
  std::vector<RealGrid> masks(
      part.tiles.size(), RealGrid(part.windowGrid(), part.windowGrid(), 0.0));
  masks[0] = RealGrid(part.windowGrid(), part.windowGrid(), 1.0);
  const StitchResult res = stitchTiles(part, masks, 0.5);
  // Tile 0 says "print", its neighbors say "background": every overlap
  // pixel that tile 0's window covers disagrees.
  EXPECT_GT(res.report.disagreeingPixels, 0);
  EXPECT_LE(res.report.disagreeingPixels, res.report.overlapPixels);
  EXPECT_GT(res.report.disagreementFraction, 0.0);
  // Blending a unanimous-0 neighborhood against tile 0's 1s flips pixels
  // near tile 0's core boundary: that is exactly what coreMismatch flags.
  EXPECT_GT(res.report.coreMismatchPixels, 0);
}

TEST(TileStitch, NonFiniteTilePixelsAreReported) {
  const ChipPartition part = smallPartition();
  std::vector<RealGrid> masks(
      part.tiles.size(), RealGrid(part.windowGrid(), part.windowGrid(), 0.0));
  masks[0].at(part.windowGrid() / 2, part.windowGrid() / 2) =
      std::numeric_limits<double>::quiet_NaN();
  const StitchResult res = stitchTiles(part, masks, 0.5);
  EXPECT_GT(res.report.nonFinitePixels, 0);
}

TEST(TileStitch, SeamBandMatchesOverlapCount) {
  const ChipPartition part = smallPartition();
  const std::vector<RealGrid> masks(
      part.tiles.size(), RealGrid(part.windowGrid(), part.windowGrid(), 0.0));
  const StitchResult res = stitchTiles(part, masks, 0.5);
  const BitGrid band = seamBand(part);
  long long bandPixels = 0;
  for (std::size_t i = 0; i < band.size(); ++i) {
    bandPixels += band.data()[i] ? 1 : 0;
  }
  EXPECT_EQ(bandPixels, res.report.overlapPixels);
}

ChipConfig fastChipConfig() {
  ChipConfig cfg;
  cfg.tiling.tileSizeNm = 512;
  cfg.tiling.haloNm = 128;
  cfg.tiling.pixelNm = 16;
  cfg.method = OpcMethod::kMosaicFast;
  cfg.iterations = 2;
  cfg.backoffMs = 1;
  cfg.kernelCacheDir = sharedKernelCache();
  return cfg;
}

TEST(TileScheduler, EmptyChipIsTriviallyOptimized) {
  Layout chip;
  chip.name = "blank";
  chip.sizeNm = 1024;
  const ChipResult res = optimizeChip(chip, fastChipConfig());
  EXPECT_TRUE(res.allOk());
  EXPECT_EQ(res.failed, 0);
  for (const TileOutcome& outcome : res.outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.skippedEmpty);
  }
  for (std::size_t i = 0; i < res.stitched.maskBinary.size(); ++i) {
    ASSERT_EQ(res.stitched.maskBinary.data()[i], 0u);
  }
  EXPECT_EQ(res.stitched.report.nonFinitePixels, 0);
}

TEST(TileScheduler, FailpointTileFallsBackAndChipSurvives) {
  setParallelism(1);  // deterministic hit order: tile 0 eats both hits
  const Layout chip = replicateLayout(buildTestcase(1), 2, 2);
  ChipConfig cfg = fastChipConfig();
  cfg.retries = 1;
  failpoint::ScopedFailpoints fp(
      "tile.optimize:throw@iter=1,tile.optimize:throw@iter=2");
  const ChipResult res = optimizeChip(chip, cfg);
  setParallelism(0);
  EXPECT_FALSE(res.allOk());
  EXPECT_EQ(res.failed, 1);
  EXPECT_EQ(res.succeeded, res.partition.tileCount() - 1);
  // The failed tile fell back to its uncorrected target; the stitched
  // chip is still complete and finite.
  EXPECT_EQ(res.stitched.report.nonFinitePixels, 0);
  const TileOutcome& failedTile = res.outcomes.front();
  EXPECT_FALSE(failedTile.ok);
  EXPECT_EQ(failedTile.attempts, 2);
  EXPECT_FALSE(failedTile.error.empty());
}

TEST(TileScheduler, CheckpointsAreWrittenPerTile) {
  const Layout chip = replicateLayout(buildTestcase(1), 2, 2);
  ChipConfig cfg = fastChipConfig();
  cfg.checkpointDir = ::testing::TempDir() + "mosaic_tile_ckpt";
  cfg.checkpointEvery = 1;
  const ChipResult res = optimizeChip(chip, cfg);
  EXPECT_TRUE(res.allOk());
  int checkpoints = 0;
  for (const TilePlan& tile : res.partition.tiles) {
    const std::string path = cfg.checkpointDir + "/tile_r" +
                             std::to_string(tile.row) + "_c" +
                             std::to_string(tile.col) + "_x" +
                             std::to_string(tile.coreNm.x0) + "_y" +
                             std::to_string(tile.coreNm.y0) + ".ckpt";
    if (std::ifstream(path).good()) ++checkpoints;
  }
  EXPECT_GT(checkpoints, 0);
  // Resuming from the finished checkpoints must also succeed.
  cfg.resume = true;
  const ChipResult resumed = optimizeChip(chip, cfg);
  EXPECT_TRUE(resumed.allOk());
}

TEST(TileScheduler, PoolSchedulingMatchesSpawnOracleBitForBit) {
  // The work-stealing executor (nested tile + PV-corner parallelism) must
  // produce exactly the mask the legacy spawn-per-call scheduler did —
  // the optimizer is deterministic and the executor must not perturb it.
  const Layout chip = replicateLayout(buildTestcase(1), 2, 2);
  const ChipConfig cfg = fastChipConfig();

  setParallelism(2);
  setParallelBackend(ParallelBackend::kPool);
  const ChipResult pool = optimizeChip(chip, cfg);
  setParallelBackend(ParallelBackend::kSpawn);
  const ChipResult spawn = optimizeChip(chip, cfg);
  setParallelBackend(ParallelBackend::kPool);
  setParallelism(0);

  ASSERT_TRUE(pool.allOk());
  ASSERT_TRUE(spawn.allOk());
  const BitGrid& a = pool.stitched.maskBinary;
  const BitGrid& b = spawn.stitched.maskBinary;
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c)) << "mask differs at (" << r << "," << c
                                  << ")";
    }
  }
}

TEST(TileScheduler, CacheAwareOrderingPastesMembersFromRepresentatives) {
  // Cache-aware scheduling on a cold store: one representative per
  // fingerprint class optimizes in the first wave, every other member
  // exact-hits the representative's freshly inserted solution. A warm
  // rerun with ordering disabled (the unordered code path) must then
  // exact-hit everything and stitch a bit-identical chip.
  const Layout chip = replicateLayout(buildTestcase(1), 3, 3);
  ChipConfig cfg = fastChipConfig();
  cfg.patternCacheDir = ::testing::TempDir() + "mosaic_tile_order";
  std::filesystem::remove_all(cfg.patternCacheDir);  // cold means cold

  cfg.cacheAwareOrder = true;
  const ChipResult ordered = optimizeChip(chip, cfg);
  ASSERT_TRUE(ordered.allOk());
  EXPECT_TRUE(ordered.cacheOrdered);
  EXPECT_GT(ordered.representatives, 0);
  EXPECT_LT(ordered.representatives, ordered.partition.tileCount());
  int reps = 0, pasted = 0, nonEmpty = 0;
  for (const TileOutcome& o : ordered.outcomes) {
    if (o.skippedEmpty) continue;
    ++nonEmpty;
    if (o.representative) {
      ++reps;
      EXPECT_FALSE(o.fromCache);  // first of its class: a genuine miss
    } else {
      EXPECT_TRUE(o.fromCache) << "member tile " << o.index
                               << " did not exact-hit its representative";
      EXPECT_EQ(o.cacheHit, CacheHitKind::kExact);
      ++pasted;
    }
  }
  EXPECT_EQ(reps, ordered.representatives);
  EXPECT_EQ(pasted, nonEmpty - reps);

  cfg.cacheAwareOrder = false;
  const ChipResult warm = optimizeChip(chip, cfg);
  ASSERT_TRUE(warm.allOk());
  EXPECT_FALSE(warm.cacheOrdered);
  for (const TileOutcome& o : warm.outcomes) {
    if (!o.skippedEmpty) EXPECT_TRUE(o.fromCache);
  }
  const BitGrid& a = ordered.stitched.maskBinary;
  const BitGrid& b = warm.stitched.maskBinary;
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c)) << "mask differs at (" << r << "," << c
                                  << ")";
    }
  }
}

/// Count EPE violations restricted to the seam band. A sample sits on a
/// pixel boundary; it belongs to the seam if either adjacent pixel does.
int seamViolations(const EpeResult& epe, const BitGrid& band) {
  int violations = 0;
  for (const EpeSampleResult& s : epe.perSample) {
    const int b = s.sample.boundary;
    const int a = s.sample.along;
    const int r0 = s.sample.horizontal ? std::max(b - 1, 0) : a;
    const int c0 = s.sample.horizontal ? a : std::max(b - 1, 0);
    const int r1 = s.sample.horizontal ? std::min(b, band.rows() - 1) : a;
    const int c1 = s.sample.horizontal ? a : std::min(b, band.cols() - 1);
    const bool onSeam = band.at(r0, c0) != 0 || band.at(r1, c1) != 0;
    if (onSeam && s.violation) ++violations;
  }
  return violations;
}

/// The acceptance run (ISSUE 2): a synthetic 2048 x 2048 nm chip through
/// 2x2 tiles must stitch with no non-finite pixels, seam disagreement
/// under the documented 5% bound, and seam EPE within +-1 violation of a
/// whole-region reference optimization.
TEST(TileChip, EndToEndTiledMatchesWholeRegionOnSeams) {
  const Layout chip = replicateLayout(buildTestcase(1), 2, 2);
  ASSERT_EQ(chip.sizeNm, 2048);

  ChipConfig cfg;
  cfg.tiling.tileSizeNm = 1024;
  cfg.tiling.pixelNm = 16;  // haloNm < 0: optics-derived default
  cfg.method = OpcMethod::kMosaicFast;
  cfg.iterations = 30;
  cfg.kernelCacheDir = sharedKernelCache();
  const ChipResult res = optimizeChip(chip, cfg);

  ASSERT_TRUE(res.allOk());
  EXPECT_EQ(res.partition.tileRows, 2);
  EXPECT_EQ(res.partition.tileCols, 2);
  EXPECT_EQ(res.stitched.report.nonFinitePixels, 0);
  EXPECT_LT(res.stitched.report.disagreementFraction, 0.05);

  // Whole-region reference: one optimization of the full 2048 nm window,
  // sharing the kernel cache so the TCC decomposition is reused.
  OpticsConfig refOptics;
  refOptics.clipSizeNm = chip.sizeNm;
  refOptics.pixelNm = cfg.tiling.pixelNm;
  LithoSimulator sim(refOptics);
  sim.setKernelCacheDir(sharedKernelCache());
  IltConfig refConfig = defaultIltConfig(cfg.method, cfg.tiling.pixelNm);
  refConfig.maxIterations = cfg.iterations;
  const OpcResult ref =
      runOpc(sim, res.chipTarget, cfg.method, &refConfig, {}, {}, {});

  // Print both masks at nominal conditions and compare seam-band EPE.
  const BitGrid printedTiled =
      sim.print(toReal(res.stitched.maskBinary), nominalCorner());
  const BitGrid printedRef = sim.print(ref.maskTwoLevel, nominalCorner());
  const auto samples = extractSamples(res.chipTarget, 4);
  ASSERT_FALSE(samples.empty());
  const double thresholdNm = 15.0;
  const EpeResult epeTiled = measureEpe(printedTiled, res.chipTarget, samples,
                                        cfg.tiling.pixelNm, thresholdNm);
  const EpeResult epeRef = measureEpe(printedRef, res.chipTarget, samples,
                                      cfg.tiling.pixelNm, thresholdNm);
  const BitGrid band = seamBand(res.partition);
  const int tiledSeam = seamViolations(epeTiled, band);
  const int refSeam = seamViolations(epeRef, band);
  std::cout << "[ e2e ] seam disagreement "
            << res.stitched.report.disagreementFraction * 100.0
            << "% over " << res.stitched.report.overlapPixels
            << " px; seam EPE " << tiledSeam << " tiled vs " << refSeam
            << " reference (totals " << epeTiled.violations << " vs "
            << epeRef.violations << ")\n";
  EXPECT_LE(std::abs(tiledSeam - refSeam), 1)
      << "tiled seam violations " << tiledSeam << " (of "
      << epeTiled.violations << " total) vs whole-region " << refSeam
      << " (of " << epeRef.violations << " total)";
}

}  // namespace
}  // namespace mosaic
