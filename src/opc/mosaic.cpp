#include "opc/mosaic.hpp"

#include "support/log.hpp"
#include "support/timer.hpp"

namespace mosaic {

std::string methodName(OpcMethod method) {
  switch (method) {
    case OpcMethod::kMosaicFast:
      return "MOSAIC_fast";
    case OpcMethod::kMosaicExact:
      return "MOSAIC_exact";
    case OpcMethod::kIltBaseline:
      return "ILT_baseline";
  }
  throw InvalidArgument("unknown OPC method");
}

IltConfig defaultIltConfig(OpcMethod method, int pixelNm) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  const double pixelArea = static_cast<double>(pixelNm) * pixelNm;
  IltConfig cfg;
  switch (method) {
    case OpcMethod::kMosaicFast:
      cfg.targetTerm = TargetTerm::kImageDiff;
      cfg.gamma = 4.0;
      // F_id sums |Z-Zt|^4 per pixel: a mismatch band of area A nm^2
      // contributes ~A/pixelArea, so alpha ~ pixel area keeps the term on
      // the PV-band scale; EPE pressure comes through the band shrinking.
      cfg.alpha = 10.0 * pixelArea;
      cfg.beta = 4.0 * pixelArea;
      break;
    case OpcMethod::kMosaicExact:
      cfg.targetTerm = TargetTerm::kEpe;
      // F_epe counts violations: weight them like the contest does.
      cfg.alpha = 5000.0;
      cfg.beta = 4.0 * pixelArea;
      // The paper's exact mode spends ~6x the compute of the fast mode per
      // run (per-sample gradient accumulation); our aggregated-field
      // gradient is cheaper per iteration, so exact banks a part of that
      // budget as extra descent iterations instead (still well under the
      // paper's runtime ratio).
      cfg.maxIterations = 30;
      break;
    case OpcMethod::kIltBaseline:
      cfg.targetTerm = TargetTerm::kImageDiff;
      cfg.gamma = 2.0;
      cfg.alpha = 10.0 * pixelArea;
      cfg.beta = 0.0;  // no process-window awareness
      break;
  }
  return cfg;
}

OpcResult runOpc(const LithoSimulator& sim, const BitGrid& target,
                 OpcMethod method, const IltConfig* configOverride,
                 const SrafConfig& sraf, const IterationCallback& callback,
                 const OptimizeOptions& optimizeOptions) {
  WallTimer timer;
  const IltConfig cfg = configOverride != nullptr
                            ? *configOverride
                            : defaultIltConfig(method, sim.optics().pixelNm);

  // Alg. 1 line 2: initial mask = target with rule-based SRAFs — unless a
  // warm start (e.g. a pattern-cache near hit) supplies a better one.
  RealGrid initial;
  if (!optimizeOptions.warmStartMask.empty()) {
    MOSAIC_CHECK(optimizeOptions.warmStartMask.rows() == target.rows() &&
                     optimizeOptions.warmStartMask.cols() == target.cols(),
                 "warm-start mask shape "
                     << optimizeOptions.warmStartMask.rows() << "x"
                     << optimizeOptions.warmStartMask.cols()
                     << " does not match the target " << target.rows() << "x"
                     << target.cols());
    initial = optimizeOptions.warmStartMask;
  } else {
    initial = toReal(insertSraf(target, sim.optics().pixelNm, sraf));
  }

  IltObjective objective(sim, target, cfg);
  OptimizeResult opt = optimizeMask(objective, initial, callback, optimizeOptions);

  OpcResult result;
  result.method = methodName(method);
  result.maskContinuous = std::move(opt.bestMask);
  const MaskTransform transform(cfg.thetaM, cfg.maskLow, cfg.maskHigh);
  result.maskBinary = transform.quantizeFeatures(result.maskContinuous);
  result.maskTwoLevel = transform.materialize(result.maskBinary);
  result.history = std::move(opt.history);
  result.iterations = static_cast<int>(result.history.size());
  result.converged = opt.converged;
  result.stopReason = opt.stopReason;
  result.nonFiniteEvents = opt.nonFiniteEvents;
  result.recoveries = opt.recoveries;
  result.runtimeSec = timer.seconds();
  LOG_INFO(result.method << " finished: best F = " << opt.bestObjective
                         << " (iteration " << opt.bestIteration << ") in "
                         << result.runtimeSec << " s");
  return result;
}

}  // namespace mosaic
