/// \file checkpoint.cpp
/// Versioned binary serialization of the optimizer state (optimizer.hpp's
/// OptimizerCheckpoint). Doubles are stored verbatim so a resumed run
/// continues bit-identically. Files are host-endian: checkpoints are local
/// crash-recovery artifacts, not an interchange format.
///
/// Loading is corruption-proof by construction: every read is bounds- and
/// plausibility-checked and any violation — truncation, garbage bytes,
/// version mismatch, implausible shapes, trailing data — throws the typed
/// CheckpointError instead of crashing or silently resuming from poisoned
/// state. Recovery paths (tile scheduler, serve workers) catch it and
/// restart the job from scratch.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <new>

#include "opc/optimizer.hpp"
#include "support/error.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

constexpr std::uint32_t kMagic = 0x4d4f4350u;  // "MOCP"
// v2: IterationRecord gained wallMs. Older files are rejected, not migrated:
// checkpoints are crash-recovery artifacts tied to the writing binary.
constexpr std::uint32_t kVersion = 2;

// A checkpoint grid is an optimizer-window P-grid or mask; anything larger
// than this is corrupt length bytes, not data (also caps the allocation a
// garbage file can trigger to ~128 MiB before the product check below).
constexpr std::int32_t kMaxGridSide = 1 << 14;

[[noreturn]] void failCheckpoint(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

void checkCkpt(bool ok, const char* what) {
  if (!ok) failCheckpoint(what);
}

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeI32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t readU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  checkCkpt(in.good(), "truncated file");
  return v;
}

std::int32_t readI32(std::istream& in) {
  std::int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  checkCkpt(in.good(), "truncated file");
  return v;
}

double readF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  checkCkpt(in.good(), "truncated file");
  return v;
}

void writeGrid(std::ostream& out, const RealGrid& g) {
  writeI32(out, g.rows());
  writeI32(out, g.cols());
  if (!g.empty()) {
    out.write(reinterpret_cast<const char*>(g.data()),
              static_cast<std::streamsize>(g.size() * sizeof(double)));
  }
}

RealGrid readGrid(std::istream& in) {
  const std::int32_t rows = readI32(in);
  const std::int32_t cols = readI32(in);
  if (rows == 0 && cols == 0) return {};
  checkCkpt(rows > 0 && cols > 0 && rows <= kMaxGridSide &&
                cols <= kMaxGridSide,
            "implausible grid shape");
  RealGrid g(rows, cols);
  in.read(reinterpret_cast<char*>(g.data()),
          static_cast<std::streamsize>(g.size() * sizeof(double)));
  checkCkpt(in.good(), "truncated grid data");
  return g;
}

/// Auxiliary grids (bestMask, momentum/Adam state) must be empty or match
/// the P-grid shape; a mismatch means torn or foreign bytes.
void checkAuxShape(const RealGrid& g, const RealGrid& params,
                   const char* name) {
  if (g.empty()) return;
  if (!g.sameShape(params)) {
    failCheckpoint(std::string(name) + " shape does not match the P-grid");
  }
}

void writeRecord(std::ostream& out, const IterationRecord& r) {
  writeI32(out, r.iteration);
  writeF64(out, r.objective);
  writeF64(out, r.targetTerm);
  writeF64(out, r.pvbTerm);
  writeF64(out, r.rmsGradient);
  writeF64(out, r.stepSize);
  writeF64(out, r.wallMs);
  writeU32(out, (r.improved ? 1u : 0u) | (r.jumped ? 2u : 0u) |
                    (r.recovered ? 4u : 0u));
}

IterationRecord readRecord(std::istream& in) {
  IterationRecord r;
  r.iteration = readI32(in);
  r.objective = readF64(in);
  r.targetTerm = readF64(in);
  r.pvbTerm = readF64(in);
  r.rmsGradient = readF64(in);
  r.stepSize = readF64(in);
  r.wallMs = readF64(in);
  const std::uint32_t flags = readU32(in);
  checkCkpt((flags & ~7u) == 0, "bad iteration record flags");
  r.improved = (flags & 1u) != 0;
  r.jumped = (flags & 2u) != 0;
  r.recovered = (flags & 4u) != 0;
  return r;
}

OptimizerCheckpoint loadImpl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) failCheckpoint("cannot open file");
  checkCkpt(readU32(in) == kMagic, "bad magic (not a checkpoint file)");
  const std::uint32_t version = readU32(in);
  if (version != kVersion) {
    failCheckpoint("unsupported version " + std::to_string(version) +
                   " (this binary writes v" + std::to_string(kVersion) + ")");
  }
  OptimizerCheckpoint ckpt;
  ckpt.iteration = readI32(in);
  ckpt.step = readF64(in);
  ckpt.previousValue = readF64(in);
  ckpt.sinceImprovement = readI32(in);
  ckpt.bestObjective = readF64(in);
  ckpt.bestIteration = readI32(in);
  ckpt.nonFiniteEvents = readI32(in);
  ckpt.recoveries = readI32(in);
  ckpt.params = readGrid(in);
  ckpt.bestMask = readGrid(in);
  ckpt.velocity = readGrid(in);
  ckpt.adamM = readGrid(in);
  ckpt.adamV = readGrid(in);
  checkCkpt(!ckpt.params.empty(), "missing P-grid");
  checkCkpt(ckpt.iteration >= 0, "negative iteration");
  checkCkpt(ckpt.bestIteration >= 0, "negative best iteration");
  checkCkpt(ckpt.sinceImprovement >= 0, "negative improvement streak");
  checkCkpt(ckpt.nonFiniteEvents >= 0 && ckpt.recoveries >= 0,
            "negative guardrail counters");
  checkCkpt(std::isfinite(ckpt.step) && ckpt.step > 0.0,
            "non-finite or non-positive step size");
  checkAuxShape(ckpt.bestMask, ckpt.params, "bestMask");
  checkAuxShape(ckpt.velocity, ckpt.params, "velocity");
  checkAuxShape(ckpt.adamM, ckpt.params, "adamM");
  checkAuxShape(ckpt.adamV, ckpt.params, "adamV");
  const std::uint32_t count = readU32(in);
  checkCkpt(count <= 1u << 20, "implausible history length");
  ckpt.history.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ckpt.history.push_back(readRecord(in));
  }
  // A well-formed checkpoint ends exactly here; trailing bytes mean the
  // file was concatenated, doubly-written, or is not ours after all.
  in.peek();
  checkCkpt(in.eof(), "trailing bytes after checkpoint payload");
  return ckpt;
}

}  // namespace

void saveOptimizerCheckpoint(const std::string& path,
                             const OptimizerCheckpoint& ckpt) {
  MOSAIC_SPAN("checkpoint.save");
  MOSAIC_CHECK(!ckpt.params.empty(), "cannot checkpoint an empty P-grid");
  // Write to a sibling temp file, then rename: a crash mid-write never
  // clobbers the previous good checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MOSAIC_CHECK(out.good(), "cannot open for writing: " << tmp);
    writeU32(out, kMagic);
    writeU32(out, kVersion);
    writeI32(out, ckpt.iteration);
    writeF64(out, ckpt.step);
    writeF64(out, ckpt.previousValue);
    writeI32(out, ckpt.sinceImprovement);
    writeF64(out, ckpt.bestObjective);
    writeI32(out, ckpt.bestIteration);
    writeI32(out, ckpt.nonFiniteEvents);
    writeI32(out, ckpt.recoveries);
    writeGrid(out, ckpt.params);
    writeGrid(out, ckpt.bestMask);
    writeGrid(out, ckpt.velocity);
    writeGrid(out, ckpt.adamM);
    writeGrid(out, ckpt.adamV);
    writeU32(out, static_cast<std::uint32_t>(ckpt.history.size()));
    for (const IterationRecord& r : ckpt.history) writeRecord(out, r);
    MOSAIC_CHECK(out.good(), "write failed: " << tmp);
  }
  MOSAIC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot move checkpoint into place: " << path);
}

OptimizerCheckpoint loadOptimizerCheckpoint(const std::string& path) {
  MOSAIC_SPAN("checkpoint.load");
  try {
    return loadImpl(path);
  } catch (const CheckpointError& e) {
    throw CheckpointError(std::string(e.what()) + " [" + path + "]");
  } catch (const std::bad_alloc&) {
    failCheckpoint("allocation failed (corrupt length bytes?) in " + path);
  } catch (const Error& e) {
    // Grid construction and similar internal checks surface here when fed
    // corrupt dimensions; normalize to the typed checkpoint error.
    failCheckpoint(std::string(e.what()) + " in " + path);
  }
}

}  // namespace mosaic
