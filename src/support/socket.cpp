#include "support/socket.hpp"

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#error "support/socket.cpp requires a POSIX platform"
#endif

namespace mosaic {
namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno));
}

/// poll() one fd for `events`; returns false on timeout, true when ready.
bool waitFor(int fd, short events, int timeoutMs) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = events;
  const int rc = ::poll(&pfd, 1, timeoutMs);
  if (rc < 0) {
    if (errno == EINTR) return false;  // signal: let the caller re-check
    throwErrno("poll");
  }
  return rc > 0;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ServerSocket::ServerSocket(int port, int backlog) {
  MOSAIC_CHECK(port >= 0 && port <= 65535, "bad listen port " << port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket()");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0) {
    throwErrno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) throwErrno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    throwErrno("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listener_ = std::move(sock);
}

Socket ServerSocket::accept(int timeoutMs) {
  MOSAIC_CHECK(listener_.valid(), "accept on a closed server socket");
  if (!waitFor(listener_.fd(), POLLIN, timeoutMs)) return Socket();
  const int fd = ::accept(listener_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Socket();
    }
    throwErrno("accept");
  }
  return Socket(fd);
}

Socket connectTcp(const std::string& host, int port, int timeoutMs) {
  MOSAIC_CHECK(port > 0 && port <= 65535, "bad connect port " << port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket()");

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string target = host.empty() ? "127.0.0.1" : host;
  MOSAIC_CHECK(::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) == 1,
               "bad IPv4 address: " << target);

  // Connect with a timeout: non-blocking connect + poll for writability.
  struct timeval tv {};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    throwErrno("connect " + target + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

bool LineChannel::readLine(std::string* line, int timeoutMs) {
  MOSAIC_CHECK(line != nullptr, "readLine needs an output string");
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line->assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    MOSAIC_CHECK(socket_.valid(), "readLine on a closed channel");
    if (!waitFor(socket_.fd(), POLLIN, timeoutMs)) return false;
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("recv");
    }
    if (n == 0) {
      eof_ = true;  // clean EOF (a torn partial line is dropped)
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    MOSAIC_CHECK(buffer_.size() <= (1u << 20),
                 "line exceeds 1 MiB; not a mosaic_serve peer?");
  }
}

void LineChannel::writeLine(const std::string& line) {
  std::string out = line;
  out += '\n';
  writeAll(out);
}

void LineChannel::writeAll(std::string_view data) {
  MOSAIC_CHECK(socket_.valid(), "write on a closed channel");
  std::size_t sent = 0;
  while (sent < data.size()) {
#if defined(MSG_NOSIGNAL)
    const int flags = MSG_NOSIGNAL;  // EPIPE as errno, not SIGPIPE
#else
    const int flags = 0;
#endif
    const ssize_t n =
        ::send(socket_.fd(), data.data() + sent, data.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace mosaic
