/// \file mask_export_and_mrc.cpp
/// The tape-out side of the pipeline: optimize a mask, export it as GLP
/// geometry, read it back (as a mask shop would), verify the round trip,
/// check mask manufacturing rules, and report sub-pixel EPE from the
/// aerial image. Demonstrates io/, eval/mrc and measureEpeAerial.
///
/// Run:  ./mask_export_and_mrc --case 6 --pixel 4 --out /tmp

#include <cstdio>
#include <exception>
#include <string>

#include "eval/epe.hpp"
#include "eval/evaluator.hpp"
#include "eval/mrc.hpp"
#include "geometry/contour.hpp"
#include "geometry/raster.hpp"
#include "io/glp.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIndex = 6;
  int pixel = 4;
  int iterations = 20;
  std::string outDir = "/tmp";
  std::string logLevel = "warn";

  CliParser cli("mask_export_and_mrc",
                "optimize, export as GLP, re-import, MRC-check");
  cli.addInt("case", &caseIndex, "testcase index (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("out", &outDir, "output directory");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    const Layout layout = buildTestcase(caseIndex);
    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);
    const BitGrid target = rasterize(layout, pixel);

    // 1. Optimize.
    IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicExact, pixel);
    cfg.maxIterations = iterations;
    const OpcResult res = runOpc(sim, target, OpcMethod::kMosaicExact, &cfg);

    // 2. Export the mask as geometry and read it back.
    const Layout maskLayout =
        rasterToLayout(res.maskBinary, pixel, layout.name + "_mask");
    const std::string glpPath = outDir + "/" + maskLayout.name + ".glp";
    writeGlpFile(glpPath, maskLayout);
    GlpReadOptions readOpts;
    readOpts.recenter = false;
    const Layout reloaded = readGlpFile(glpPath, readOpts);
    const BitGrid maskBack = rasterize(reloaded, pixel);
    const bool roundTripExact = maskBack == res.maskBinary;

    // 3. Mask rule check + complexity of the exported mask.
    const MrcResult mrc = checkMask(maskBack, pixel);

    // 4. Contest metrics + sub-pixel EPE of the reloaded mask.
    const CaseEvaluation ev =
        evaluateMask(sim, toReal(maskBack), target, res.runtimeSec);
    const RealGrid aerial = sim.aerial(toReal(maskBack), nominalCorner());
    const auto samples = extractSamples(target, 40 / pixel);
    const EpeResult sub = measureEpeAerial(
        aerial, sim.resist().threshold, target, samples, pixel, 15.0);

    TextTable t;
    t.setHeader({"metric", "value"});
    t.addRow({"GLP round trip exact", roundTripExact ? "yes" : "NO"});
    t.addRow({"mask rects (VSB shots)", TextTable::integer(mrc.rectangles)});
    t.addRow({"mask vertices", TextTable::integer(mrc.contourVertices)});
    t.addRow({"MRC clean", mrc.clean() ? "yes" : "no"});
    t.addRow({"EPE violations (pixel)", TextTable::integer(ev.epeViolations)});
    t.addRow({"EPE violations (subpixel)", TextTable::integer(sub.violations)});
    t.addRow({"mean |EPE| subpixel (nm)", TextTable::num(sub.meanAbsEpeNm, 2)});
    t.addRow({"PV band (nm^2)", TextTable::num(ev.pvbandAreaNm2, 0)});
    t.addRow({"contest score", TextTable::num(ev.score, 0)});
    std::printf("== %s -> %s ==\n%s", layout.name.c_str(), glpPath.c_str(),
                t.render().c_str());
    return roundTripExact ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mask_export_and_mrc failed: %s\n", e.what());
    return 1;
  }
}
