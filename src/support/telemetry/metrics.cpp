#include "support/telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "support/hash.hpp"
#include "support/table.hpp"
#include "support/telemetry/json.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace telemetry {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void atomicAdd(std::atomic<double>& target, double delta) {
  double old = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(old, old + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomicMin(std::atomic<double>& target, double v) {
  double old = target.load(std::memory_order_relaxed);
  while (v < old &&
         !target.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<double>& target, double v) {
  double old = target.load(std::memory_order_relaxed);
  while (v > old &&
         !target.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
  }
}

/// Percentile estimate from bucket counts: find the bucket holding the
/// target rank, interpolate linearly inside it, clamp to [min, max].
double percentileFromBuckets(
    const std::array<std::uint64_t, Histogram::kBuckets>& counts,
    std::uint64_t total, double fraction, double minUs, double maxUs) {
  if (total == 0) return 0.0;
  const double targetRank =
      std::max(1.0, std::ceil(fraction * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double prev = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= targetRank) {
      const double lo = i == 0 ? 0.0 : Histogram::bucketUpperUs(i - 1);
      const double hi = Histogram::bucketUpperUs(i);
      const double within =
          (targetRank - prev) / static_cast<double>(counts[i]);
      const double estimate = lo + within * (hi - lo);
      return std::clamp(estimate, minUs, maxUs);
    }
  }
  return maxUs;
}

}  // namespace

int Histogram::bucketIndex(double micros) {
  if (!(micros >= 1.0)) return 0;  // also catches NaN
  const auto u = static_cast<std::uint64_t>(micros);
  const int index = std::bit_width(u);  // 1 + floor(log2(u))
  return std::min(index, kBuckets - 1);
}

double Histogram::bucketUpperUs(int index) { return std::ldexp(1.0, index); }

void Histogram::record(double micros) {
  if (!(micros >= 0.0)) micros = 0.0;  // NaN / negative clock glitches
  buckets_[static_cast<std::size_t>(bucketIndex(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sumUs_, micros);
  atomicMin(minUs_, micros);
  atomicMax(maxUs_, micros);
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sumUs = sumUs_.load(std::memory_order_relaxed);
  s.minUs = minUs_.load(std::memory_order_relaxed);
  s.maxUs = maxUs_.load(std::memory_order_relaxed);
  s.meanUs = s.sumUs / static_cast<double>(s.count);
  s.p50Us = percentileFromBuckets(s.buckets, s.count, 0.50, s.minUs, s.maxUs);
  s.p95Us = percentileFromBuckets(s.buckets, s.count, 0.95, s.minUs, s.maxUs);
  s.p99Us = percentileFromBuckets(s.buckets, s.count, 0.99, s.minUs, s.maxUs);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sumUs_.store(0.0, std::memory_order_relaxed);
  minUs_.store(kInf, std::memory_order_relaxed);
  maxUs_.store(-kInf, std::memory_order_relaxed);
}

MetricsRegistry::Shard& MetricsRegistry::shardFor(std::string_view name) {
  // FNV-1a (support/hash.hpp) rather than std::hash: the shard spread is
  // then identical across standard libraries, so contention behavior seen
  // in CI reproduces what production binaries do.
  return shards_[fnv1a(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = shardFor(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = shardFor(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = shardFor(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, counter] : shard.counters) {
      snap.counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : shard.gauges) {
      snap.gauges[name] = gauge->value();
    }
    for (const auto& [name, hist] : shard.histograms) {
      snap.histograms[name] = hist->stats();
    }
  }
  return snap;
}

void MetricsRegistry::resetAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [name, counter] : shard.counters) counter->reset();
    for (auto& [name, gauge] : shard.gauges) gauge->reset();
    for (auto& [name, hist] : shard.histograms) hist->reset();
  }
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + jsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + jsonEscape(name) + "\": " + jsonNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    JsonObject o;
    o.set("count", static_cast<unsigned long long>(h.count))
        .set("sum_us", h.sumUs)
        .set("min_us", h.minUs)
        .set("max_us", h.maxUs)
        .set("mean_us", h.meanUs)
        .set("p50_us", h.p50Us)
        .set("p95_us", h.p95Us)
        .set("p99_us", h.p99Us);
    out += "    \"" + jsonEscape(name) + "\": " + o.str();
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::summaryTable() const {
  std::string out;
  if (!histograms.empty()) {
    std::vector<std::pair<std::string, HistogramStats>> rows(
        histograms.begin(), histograms.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.sumUs > b.second.sumUs;
    });
    TextTable t;
    t.setHeader({"span", "count", "total ms", "mean us", "p50 us", "p95 us",
                 "p99 us", "max us"});
    for (const auto& [name, h] : rows) {
      t.addRow({name, TextTable::integer(static_cast<long long>(h.count)),
                TextTable::num(h.sumUs / 1e3, 1), TextTable::num(h.meanUs, 1),
                TextTable::num(h.p50Us, 1), TextTable::num(h.p95Us, 1),
                TextTable::num(h.p99Us, 1), TextTable::num(h.maxUs, 1)});
    }
    out += t.render();
  }
  if (!counters.empty()) {
    TextTable t;
    t.setHeader({"counter", "value"});
    for (const auto& [name, value] : counters) {
      t.addRow({name, TextTable::integer(static_cast<long long>(value))});
    }
    out += t.render();
  }
  if (!gauges.empty()) {
    TextTable t;
    t.setHeader({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      t.addRow({name, TextTable::num(value, 2)});
    }
    out += t.render();
  }
  return out;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

void updateProcessGauges() {
  const ResourceProbe probe = ResourceProbe::sample();
  metrics().gauge("process.peak_rss_mb").set(probe.peakRssMb);
  metrics().gauge("process.user_cpu_sec").set(probe.userCpuSec);
  metrics().gauge("process.sys_cpu_sec").set(probe.sysCpuSec);
}

}  // namespace telemetry
}  // namespace mosaic
