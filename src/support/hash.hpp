#pragma once
/// \file hash.hpp
/// The library's one FNV-1a 64-bit implementation. Every stable digest in
/// the system — the optics-parameter hash keying the on-disk kernel cache,
/// the serve layer's mask hashes, the pattern-library fingerprints, and
/// the telemetry registry's shard selector — funnels through this header,
/// so the algorithm exists exactly once and golden-value tests in
/// test_support.cpp pin it down.
///
/// FNV-1a is used deliberately: it is endian-independent over bytes,
/// trivially incremental, and fast enough to hash megabyte masks without
/// showing up in profiles. It is NOT cryptographic; digests here detect
/// accidental divergence (config drift, torn files), not adversaries.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

namespace mosaic {

/// Standard FNV-1a 64-bit parameters.
inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Incremental FNV-1a 64 hasher. Values are mixed through their raw byte
/// patterns, which is exact and deterministic for the config values we
/// care about; `mix(int)` widens to 64 bits first so int and long long
/// inputs of equal value hash identically.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Non-standard seeds exist only to preserve historical digests (see
  /// serve::maskHashHex); new call sites should use the default basis.
  explicit Fnv1a(std::uint64_t seed) : state_(seed) {}

  Fnv1a& mixBytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kFnv1aPrime;
    }
    return *this;
  }

  Fnv1a& mix(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return mixBytes(&bits, sizeof bits);
  }

  Fnv1a& mix(int v) {
    const std::int64_t wide = v;
    return mixBytes(&wide, sizeof wide);
  }

  Fnv1a& mix(long long v) {
    const std::int64_t wide = v;
    return mixBytes(&wide, sizeof wide);
  }

  Fnv1a& mix(std::uint64_t v) { return mixBytes(&v, sizeof v); }

  Fnv1a& mix(std::string_view s) { return mixBytes(s.data(), s.size()); }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

  /// Digest as 16 lowercase hex characters (the format every on-disk name
  /// and wire field uses).
  [[nodiscard]] std::string hex() const { return hashHex(state_); }

  /// Format any 64-bit digest as 16 lowercase hex characters.
  [[nodiscard]] static std::string hashHex(std::uint64_t digest) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest));
    return std::string(buf, 16);
  }

 private:
  std::uint64_t state_ = kFnv1aOffsetBasis;
};

/// One-shot FNV-1a 64 over a byte range.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t size,
                                         std::uint64_t seed =
                                             kFnv1aOffsetBasis) {
  return Fnv1a(seed).mixBytes(data, size).digest();
}

/// One-shot FNV-1a 64 over a string (the telemetry shard selector).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s) {
  return Fnv1a().mix(s).digest();
}

}  // namespace mosaic
