#pragma once
/// \file levelset.hpp
/// Level-set based inverse lithography (the family of paper ref. [8],
/// Shen/Wong/Lam): the mask is the sub-zero set of a level-set function
/// phi, which is evolved by the image-fidelity gradient and periodically
/// reinitialized to a signed distance function. Compared with the
/// pixel-sigmoid ILT of MOSAIC, the level-set representation keeps the
/// mask strictly two-level at every step and regularizes its topology.
///
/// Included as the second ILT-class baseline for the Table 2 comparison.

#include "litho/simulator.hpp"
#include "math/grid.hpp"
#include "opc/sraf.hpp"

namespace mosaic {

struct LevelSetConfig {
  int maxIterations = 20;
  double timeStep = 0.8;      ///< CFL-style step (fraction of max speed)
  int reinitEvery = 5;        ///< signed-distance reinitialization period
  double interfaceWidth = 1.0;  ///< smeared Heaviside half-width in pixels
  double gamma = 2.0;         ///< image-difference exponent of the fidelity
  int inLoopKernels = 9;      ///< SOCS truncation during evolution
  SrafConfig sraf = {};       ///< assist features on the initial mask
};

struct LevelSetResult {
  BitGrid mask;          ///< best binary mask (phi < 0)
  RealGrid phi;          ///< final level-set function (pixel units)
  int iterations = 0;
  double bestObjective = 0.0;
  std::vector<double> objectiveHistory;
};

/// Signed L1 distance to the mask boundary: negative inside the feature,
/// positive outside, in pixel units (the zero level set lies between the
/// boundary pixels).
RealGrid signedDistance(const BitGrid& mask);

/// Run level-set ILT against a target raster.
LevelSetResult runLevelSetIlt(const LithoSimulator& sim,
                              const BitGrid& target,
                              const LevelSetConfig& config = {});

}  // namespace mosaic
