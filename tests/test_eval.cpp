/// Tests for the evaluation subsystem: EPE measurement, PV band, shape
/// violations and the contest score.

#include <gtest/gtest.h>

#include "eval/epe.hpp"
#include "eval/evaluator.hpp"
#include "eval/process_window.hpp"
#include "eval/pvband.hpp"
#include "eval/score.hpp"
#include "eval/shape.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"

namespace mosaic {
namespace {

/// Rectangle raster helper: block [r0, r1) x [c0, c1) set in an n x n grid.
BitGrid block(int n, int r0, int r1, int c0, int c1) {
  BitGrid g(n, n, 0);
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) g(r, c) = 1;
  }
  return g;
}

LithoSimulator& evalSim() {
  static LithoSimulator sim([] {
    OpticsConfig o;
    o.pixelNm = 8;
    return o;
  }());
  return sim;
}

// ------------------------------------------------------------------ epe

class EpeShift : public ::testing::TestWithParam<int> {};

TEST_P(EpeShift, VerticalTranslationMeasuredPerEdge) {
  // Translate the printed block by `shift` rows: the bottom edge recedes
  // (EPE = -shift * px), the top edge advances (+shift * px), vertical
  // edges stay put (EPE = 0).
  const int shift = GetParam();
  const int n = 32;
  const BitGrid target = block(n, 10, 20, 8, 24);
  const BitGrid printed = block(n, 10 + shift, 20 + shift, 8, 24);
  const auto samples = extractSamples(target, 4);
  ASSERT_FALSE(samples.empty());
  const int pixelNm = 4;
  const auto result =
      measureEpe(printed, target, samples, pixelNm, /*thresholdNm=*/14.0);
  // Rows still covered by both target and printed block.
  const int coveredLo = std::max(10, 10 + shift);
  const int coveredHi = std::min(20, 20 + shift);  // exclusive
  int horizontalSamples = 0;
  int lostVertical = 0;
  for (const auto& sr : result.perSample) {
    if (!sr.sample.horizontal) {
      if (sr.sample.along >= coveredLo && sr.sample.along < coveredHi) {
        EXPECT_TRUE(sr.edgeFound);
        EXPECT_NEAR(sr.epeNm, 0.0, 1e-9);
      } else {
        // The translated block no longer spans this row: the scan along
        // the perpendicular finds no edge, which must count as violation.
        EXPECT_FALSE(sr.edgeFound);
        EXPECT_TRUE(sr.violation);
        ++lostVertical;
      }
      continue;
    }
    ++horizontalSamples;
    EXPECT_TRUE(sr.edgeFound);
    const double want = (sr.sample.boundary == 10 ? -shift : shift) * pixelNm;
    EXPECT_NEAR(sr.epeNm, want, 1e-9);
  }
  EXPECT_GT(horizontalSamples, 0);
  // threshold 14 nm -> violations iff |shift| * 4 > 14, i.e. |shift| >= 4.
  const int expectHorizontal =
      (std::abs(shift) * pixelNm > 14) ? horizontalSamples : 0;
  EXPECT_EQ(result.violations, expectHorizontal + lostVertical);
}

INSTANTIATE_TEST_SUITE_P(Shifts, EpeShift, ::testing::Values(-4, -2, 0, 1, 3, 4));

TEST(Epe, MissingFeatureIsViolation) {
  const int n = 32;
  const BitGrid target = block(n, 10, 20, 8, 24);
  const BitGrid printed(n, n, 0);
  const auto samples = extractSamples(target, 4);
  const auto result = measureEpe(printed, target, samples, 4, 14.0);
  EXPECT_EQ(result.violations, static_cast<int>(samples.size()));
  for (const auto& sr : result.perSample) {
    EXPECT_FALSE(sr.edgeFound);
    EXPECT_LT(sr.epeNm, 0.0);  // vanished = negative convention
  }
}

TEST(Epe, BloatedBeyondRangeIsPositiveViolation) {
  const int n = 32;
  const BitGrid target = block(n, 14, 18, 14, 18);
  const BitGrid printed(n, n, 1);  // everything prints
  const auto samples = extractSamples(target, 4, 1);
  ASSERT_FALSE(samples.empty());
  const auto result = measureEpe(printed, target, samples, 4, 14.0, 20.0);
  for (const auto& sr : result.perSample) {
    EXPECT_FALSE(sr.edgeFound);
    EXPECT_GT(sr.epeNm, 0.0);
    EXPECT_TRUE(sr.violation);
  }
}

TEST(Epe, MixedEdgesMeasureIndependently) {
  const int n = 32;
  const BitGrid target = block(n, 10, 20, 8, 24);
  // Shift only the top edge outward by two rows.
  BitGrid printed = target;
  for (int r = 20; r < 22; ++r) {
    for (int c = 8; c < 24; ++c) printed(r, c) = 1;
  }
  const auto samples = extractSamples(target, 4);
  const auto result = measureEpe(printed, target, samples, 4, 14.0);
  for (const auto& sr : result.perSample) {
    if (sr.sample.horizontal && sr.sample.boundary == 20) {
      EXPECT_NEAR(sr.epeNm, 8.0, 1e-9);  // top edge moved out 2 px
    } else if (sr.sample.horizontal && sr.sample.boundary == 10) {
      EXPECT_NEAR(sr.epeNm, 0.0, 1e-9);
    }
  }
  EXPECT_DOUBLE_EQ(result.maxAbsEpeNm, 8.0);
  EXPECT_GT(result.meanAbsEpeNm, 0.0);
}

TEST(Epe, ValidationErrors) {
  const BitGrid a(4, 4, 0);
  const BitGrid b(5, 5, 0);
  EXPECT_THROW(measureEpe(a, b, {}, 4, 14.0), InvalidArgument);
  EXPECT_THROW(measureEpe(a, a, {}, 0, 14.0), InvalidArgument);
  EXPECT_THROW(measureEpe(a, a, {}, 4, -1.0), InvalidArgument);
}

TEST(Epe, EmptySampleListGivesZero) {
  const BitGrid a(4, 4, 0);
  const auto result = measureEpe(a, a, {}, 4, 14.0);
  EXPECT_EQ(result.violations, 0);
  EXPECT_DOUBLE_EQ(result.meanAbsEpeNm, 0.0);
}

// ----------------------------------------------------------- subpixel epe

TEST(EpeAerial, RecoversSubPixelEdgeShift) {
  // Synthetic aerial image: a linear intensity ramp along rows whose
  // threshold crossing sits at a known sub-pixel position.
  const int n = 32;
  const double threshold = 0.5;
  const int pixelNm = 4;
  // Target: block rows 8..16 (boundary at row 16, inside below).
  const BitGrid target = block(n, 8, 16, 4, 28);
  for (double shiftPx : {-0.75, -0.25, 0.0, 0.4, 1.3}) {
    // Intensity 1 inside, falls linearly to 0 across 4 px centered at the
    // shifted edge position 16 + shiftPx (in boundary coordinates).
    RealGrid aerial(n, n, 0.0);
    const double edge = 16.0 + shiftPx;
    for (int r = 0; r < n; ++r) {
      const double center = r + 0.5;
      const double v = 0.5 - (center - edge) / 4.0;
      for (int c = 0; c < n; ++c) {
        aerial(r, c) = std::clamp(v, 0.0, 1.0);
      }
    }
    // One sample on the top edge (boundary 16, insideLow = true).
    std::vector<SamplePoint> samples = {
        SamplePoint{true, 16, 16, true}};
    const auto result = measureEpeAerial(aerial, threshold, target, samples,
                                         pixelNm, 15.0);
    ASSERT_TRUE(result.perSample[0].edgeFound) << "shift " << shiftPx;
    EXPECT_NEAR(result.perSample[0].epeNm, shiftPx * pixelNm, 0.05)
        << "shift " << shiftPx;
  }
}

TEST(EpeAerial, LostEdgeIsViolation) {
  const int n = 16;
  const BitGrid target = block(n, 4, 8, 4, 12);
  const RealGrid aerial(n, n, 0.0);  // nothing prints
  std::vector<SamplePoint> samples = {SamplePoint{true, 8, 8, true}};
  const auto result =
      measureEpeAerial(aerial, 0.5, target, samples, 4, 15.0);
  EXPECT_FALSE(result.perSample[0].edgeFound);
  EXPECT_TRUE(result.perSample[0].violation);
  EXPECT_LT(result.perSample[0].epeNm, 0.0);
}

TEST(EpeAerial, AgreesWithPixelMeasureOnSharpImages) {
  // A steep synthetic profile makes both measurements agree to a pixel.
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "bar";
  l.sizeNm = 1024;
  l.addRect(320, 384, 704, 640);
  const BitGrid target = rasterize(l, 8);
  const RealGrid aerial = sim.aerial(toReal(target), nominalCorner());
  const BitGrid printed = sim.printBinary(aerial);
  const auto samples = extractSamples(target, 5);
  const auto pixelRes = measureEpe(printed, target, samples, 8, 15.0);
  const auto subRes = measureEpeAerial(aerial, sim.resist().threshold,
                                       target, samples, 8, 15.0);
  ASSERT_EQ(pixelRes.perSample.size(), subRes.perSample.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!pixelRes.perSample[i].edgeFound || !subRes.perSample[i].edgeFound) {
      continue;
    }
    EXPECT_NEAR(subRes.perSample[i].epeNm, pixelRes.perSample[i].epeNm,
                8.0 + 1e-9);  // within one pixel
  }
}

// --------------------------------------------------------------- pvband

TEST(PvBand, SingleCornerHasNoBand) {
  LithoSimulator& sim = evalSim();
  const BitGrid target = rasterize(
      [] {
        Layout l;
        l.name = "line";
        l.sizeNm = 1024;
        l.addRect(256, 480, 768, 544);
        return l;
      }(),
      8);
  const auto result =
      computePvBand(sim, toReal(target), {nominalCorner()});
  EXPECT_EQ(result.bandPixels, 0);
  EXPECT_EQ(result.outer, result.inner);
}

TEST(PvBand, DoseSpreadCreatesBand) {
  LithoSimulator& sim = evalSim();
  const BitGrid target = rasterize(
      [] {
        Layout l;
        l.name = "line";
        l.sizeNm = 1024;
        l.addRect(256, 480, 768, 544);
        return l;
      }(),
      8);
  const auto result = computePvBand(
      sim, toReal(target), {{0.0, 0.90}, {0.0, 1.10}});
  EXPECT_GT(result.bandPixels, 0);
  // Band area accounts for pixel area (8 nm pixels -> 64 nm^2 each).
  EXPECT_DOUBLE_EQ(result.bandAreaNm2,
                   static_cast<double>(result.bandPixels) * 64.0);
  // outer contains inner.
  EXPECT_EQ(countSet(bitSub(result.inner, result.outer)), 0);
}

TEST(PvBand, MoreCornersNeverShrinkTheBand) {
  LithoSimulator& sim = evalSim();
  const BitGrid target = rasterize(
      [] {
        Layout l;
        l.name = "bar";
        l.sizeNm = 1024;
        l.addRect(320, 320, 704, 512);
        return l;
      }(),
      8);
  const RealGrid mask = toReal(target);
  const auto few = computePvBand(sim, mask, {{0.0, 0.98}, {0.0, 1.02}});
  const auto many = computePvBand(sim, mask, evaluationCorners());
  EXPECT_GE(many.bandPixels, few.bandPixels);
}

TEST(PvBand, EmptyCornerListThrows) {
  LithoSimulator& sim = evalSim();
  const int n = sim.gridSize();
  EXPECT_THROW(computePvBand(sim, RealGrid(n, n, 0.0), {}), InvalidArgument);
}

// ---------------------------------------------------------------- shape

TEST(Shape, CleanPrintHasNoViolations) {
  const BitGrid target = block(16, 4, 12, 4, 12);
  const ShapeResult r = analyzeShape(target, target);
  EXPECT_EQ(r.holes, 0);
  EXPECT_EQ(r.missingFeatures, 0);
  EXPECT_EQ(r.extraFeatures, 0);
  EXPECT_EQ(r.violations(), 0);
}

TEST(Shape, HoleDetected) {
  const BitGrid target = block(16, 4, 12, 4, 12);
  BitGrid printed = target;
  printed(8, 8) = 0;
  const ShapeResult r = analyzeShape(printed, target);
  EXPECT_EQ(r.holes, 1);
  EXPECT_EQ(r.violations(), 1);
}

TEST(Shape, MissingFeatureDetected) {
  BitGrid target = block(16, 2, 6, 2, 6);
  for (int r = 10; r < 14; ++r) {
    for (int c = 10; c < 14; ++c) target(r, c) = 1;
  }
  const BitGrid printed = block(16, 2, 6, 2, 6);  // second blob lost
  const ShapeResult r = analyzeShape(printed, target);
  EXPECT_EQ(r.missingFeatures, 1);
  EXPECT_EQ(r.extraFeatures, 0);
  EXPECT_EQ(r.violations(), 1);
}

TEST(Shape, ExtraFeatureDetected) {
  const BitGrid target = block(16, 2, 6, 2, 6);
  BitGrid printed = target;
  printed(12, 12) = 1;  // SRAF printed through
  const ShapeResult r = analyzeShape(printed, target);
  EXPECT_EQ(r.extraFeatures, 1);
  EXPECT_EQ(r.missingFeatures, 0);
}

TEST(Shape, BrokenFeatureCountsViaOverlap) {
  // A line broken in half still overlaps its target -> not "missing",
  // but the gap creates no hole either; both halves touch the target.
  const BitGrid target = block(16, 7, 9, 2, 14);
  BitGrid printed = target;
  for (int r = 7; r < 9; ++r) printed(r, 8) = 0;
  const ShapeResult r = analyzeShape(printed, target);
  EXPECT_EQ(r.missingFeatures, 0);
  EXPECT_EQ(r.holes, 0);
}

// ---------------------------------------------------------------- score

TEST(Score, ContestFormula) {
  const ScoreWeights w;
  EXPECT_DOUBLE_EQ(contestScore(0, 0, 0, 0, w), 0.0);
  EXPECT_DOUBLE_EQ(contestScore(10, 0, 0, 0, w), 10.0);
  EXPECT_DOUBLE_EQ(contestScore(0, 100, 0, 0, w), 400.0);
  EXPECT_DOUBLE_EQ(contestScore(0, 0, 3, 0, w), 15000.0);
  EXPECT_DOUBLE_EQ(contestScore(0, 0, 0, 2, w), 20000.0);
  EXPECT_DOUBLE_EQ(contestScore(10, 100, 3, 2, w), 35410.0);
}

TEST(Score, CustomWeights) {
  ScoreWeights w;
  w.runtime = 0.0;
  w.epe = 1.0;
  EXPECT_DOUBLE_EQ(contestScore(99, 0, 7, 0, w), 7.0);
}

TEST(Score, NegativeIngredientsRejected) {
  EXPECT_THROW(contestScore(-1, 0, 0, 0), InvalidArgument);
  EXPECT_THROW(contestScore(0, -1, 0, 0), InvalidArgument);
  EXPECT_THROW(contestScore(0, 0, -1, 0), InvalidArgument);
}

// ------------------------------------------------------------ evaluator

TEST(Evaluator, EndToEndOnSimpleLine) {
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "line";
  l.sizeNm = 1024;
  l.addRect(256, 480, 768, 544);
  const BitGrid target = rasterize(l, 8);
  const CaseEvaluation ev = evaluateMask(sim, toReal(target), target, 2.0);
  EXPECT_GE(ev.epeViolations, 0);
  EXPECT_GT(ev.pvbandAreaNm2, 0.0);
  EXPECT_DOUBLE_EQ(ev.runtimeSec, 2.0);
  const ScoreWeights w;
  EXPECT_NEAR(ev.score,
              contestScore(2.0, ev.pvbandAreaNm2, ev.epeViolations,
                           ev.shapeViolations, w),
              1e-9);
}

// -------------------------------------------------------- process window

TEST(ProcessWindow, PerfectPrinterHasFullWindow) {
  // A hypothetical mask whose print equals the target at every corner is
  // emulated by measuring the target against itself with huge tolerance.
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "bar";
  l.sizeNm = 1024;
  l.addRect(320, 384, 704, 640);
  const BitGrid target = rasterize(l, 8);
  ProcessWindowConfig cfg;
  cfg.epeToleranceNm = 1000.0;  // everything within spec
  cfg.focusSteps = 3;
  cfg.doseSteps = 3;
  const auto w = measureProcessWindow(sim, toReal(target), target, cfg);
  EXPECT_DOUBLE_EQ(w.windowFraction, 1.0);
  EXPECT_DOUBLE_EQ(w.dofNm, cfg.maxFocusNm);
  EXPECT_GT(w.exposureLatitudePct, 0.0);
}

TEST(ProcessWindow, TightToleranceShrinksWindow) {
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "bar";
  l.sizeNm = 1024;
  l.addRect(320, 384, 704, 640);
  const BitGrid target = rasterize(l, 8);
  ProcessWindowConfig loose;
  loose.focusSteps = 3;
  loose.doseSteps = 5;
  loose.epeToleranceNm = 30.0;
  ProcessWindowConfig tight = loose;
  tight.epeToleranceNm = 8.0;
  const auto wLoose = measureProcessWindow(sim, toReal(target), target, loose);
  const auto wTight = measureProcessWindow(sim, toReal(target), target, tight);
  EXPECT_LE(wTight.windowFraction, wLoose.windowFraction);
  EXPECT_LE(wTight.dofNm, wLoose.dofNm);
}

TEST(ProcessWindow, MatrixIsCompleteAndIndexed) {
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "line";
  l.sizeNm = 1024;
  l.addRect(256, 480, 768, 544);
  const BitGrid target = rasterize(l, 8);
  ProcessWindowConfig cfg;
  cfg.focusSteps = 4;
  cfg.doseSteps = 5;
  const auto w = measureProcessWindow(sim, toReal(target), target, cfg);
  ASSERT_EQ(w.matrix.size(), 20u);
  EXPECT_DOUBLE_EQ(w.at(0, 0).focusNm, 0.0);
  EXPECT_DOUBLE_EQ(w.at(3, 0).focusNm, cfg.maxFocusNm);
  EXPECT_NEAR(w.at(0, 0).dose, 1.0 - cfg.doseSpan, 1e-12);
  EXPECT_NEAR(w.at(0, 4).dose, 1.0 + cfg.doseSpan, 1e-12);
  // Nominal condition sits at the dose midpoint.
  EXPECT_NEAR(w.at(0, 2).dose, 1.0, 1e-12);
}

TEST(ProcessWindow, ConfigValidation) {
  LithoSimulator& sim = evalSim();
  const int n = sim.gridSize();
  const BitGrid target(n, n, 0);
  ProcessWindowConfig cfg;
  cfg.focusSteps = 1;
  EXPECT_THROW(
      measureProcessWindow(sim, RealGrid(n, n, 0.0), target, cfg),
      InvalidArgument);
}

TEST(Evaluator, BlankMaskScoresWorseThanTargetMask) {
  LithoSimulator& sim = evalSim();
  Layout l;
  l.name = "bar";
  l.sizeNm = 1024;
  l.addRect(320, 384, 704, 640);
  const BitGrid target = rasterize(l, 8);
  const int n = sim.gridSize();
  const CaseEvaluation good = evaluateMask(sim, toReal(target), target, 0.0);
  const CaseEvaluation bad =
      evaluateMask(sim, RealGrid(n, n, 0.0), target, 0.0);
  EXPECT_GT(bad.score, good.score);
  EXPECT_GE(bad.missingFeatures, 1);
}

}  // namespace
}  // namespace mosaic
