#pragma once
/// \file optics.hpp
/// Optical system and resist model configuration. Defaults reproduce the
/// MOSAIC paper's setup: 193 nm immersion lithography for 32 nm M1, SOCS
/// approximation with h = 24 kernels (Eq. 2), sigmoid resist with
/// theta_Z = 50 and th_r = 0.225 (Fig. 2), defocus range +-25 nm and dose
/// range +-2 % (Sec. 4).

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace mosaic {

/// Low-order Zernike aberrations of the projection lens, in waves
/// (multiples of the wavelength) over the normalized pupil radius.
/// All-zero = the paper's ideal lens; nonzero values model real scanner
/// signatures (see bench/ablation_aberrations).
struct ZernikeAberrations {
  double astigmatism0 = 0.0;   ///< Z5:  rho^2 cos 2theta
  double astigmatism45 = 0.0;  ///< Z6:  rho^2 sin 2theta
  double comaX = 0.0;          ///< Z7:  (3 rho^3 - 2 rho) cos theta
  double comaY = 0.0;          ///< Z8:  (3 rho^3 - 2 rho) sin theta
  double spherical = 0.0;      ///< Z9:  6 rho^4 - 6 rho^2 + 1

  [[nodiscard]] bool any() const {
    return astigmatism0 != 0.0 || astigmatism45 != 0.0 || comaX != 0.0 ||
           comaY != 0.0 || spherical != 0.0;
  }
};

/// Partially coherent projection system parameters.
struct OpticsConfig {
  double wavelengthNm = 193.0;   ///< ArF excimer laser
  double na = 1.35;              ///< immersion numerical aperture
  double sigmaInner = 0.6;       ///< annular source inner partial coherence
  double sigmaOuter = 0.9;       ///< annular source outer partial coherence
  double immersionIndex = 1.44;  ///< water at 193 nm
  int clipSizeNm = 1024;         ///< square clip edge (contest format)
  int pixelNm = 2;               ///< raster pitch (paper: 1 nm)
  int kernelCount = 24;          ///< SOCS truncation order h (Eq. 2)
  int sourceOversample = 4;      ///< source lattice refinement vs pupil lattice
  ZernikeAberrations aberrations = {};  ///< lens aberration signature

  /// Pupil cutoff spatial frequency NA / lambda in cycles per nm.
  [[nodiscard]] double cutoffFreq() const { return na / wavelengthNm; }

  /// Raster grid side (power of two for the FFT engine).
  [[nodiscard]] int gridSize() const {
    MOSAIC_CHECK(pixelNm > 0 && clipSizeNm > 0, "bad optics dimensions");
    MOSAIC_CHECK(clipSizeNm % pixelNm == 0,
                 "pixel " << pixelNm << " nm does not divide clip "
                          << clipSizeNm << " nm");
    const int n = clipSizeNm / pixelNm;
    MOSAIC_CHECK((n & (n - 1)) == 0,
                 "grid size " << n << " must be a power of two");
    return n;
  }

  /// Frequency lattice spacing 1 / clipSize in cycles per nm.
  [[nodiscard]] double freqStep() const { return 1.0 / clipSizeNm; }

  void validate() const {
    MOSAIC_CHECK(wavelengthNm > 0, "wavelength must be positive");
    MOSAIC_CHECK(na > 0 && na < immersionIndex,
                 "NA must be in (0, immersion index)");
    MOSAIC_CHECK(sigmaInner >= 0 && sigmaInner < sigmaOuter &&
                     sigmaOuter <= 1.0,
                 "annular source needs 0 <= sigmaInner < sigmaOuter <= 1");
    MOSAIC_CHECK(kernelCount > 0, "kernel count must be positive");
    MOSAIC_CHECK(sourceOversample >= 1, "source oversample must be >= 1");
    (void)gridSize();
  }
};

/// Constant-threshold resist with the paper's sigmoid relaxation (Eq. 3-4).
struct ResistModel {
  double threshold = 0.225;  ///< th_r, relative to open-frame intensity 1
  double thetaZ = 50.0;      ///< sigmoid steepness
  /// Acid diffusion length (nm): the aerial image is blurred with a
  /// Gaussian of this sigma before the threshold step. 0 disables it
  /// (the paper's constant-threshold model).
  double diffusionSigmaNm = 0.0;

  /// Continuous printed value Z = sig(I) (Eq. 4).
  [[nodiscard]] double sigmoid(double intensity) const {
    return 1.0 / (1.0 + std::exp(-thetaZ * (intensity - threshold)));
  }

  /// d sig / d I = thetaZ * Z * (1 - Z).
  [[nodiscard]] double sigmoidDerivative(double intensity) const {
    const double z = sigmoid(intensity);
    return thetaZ * z * (1.0 - z);
  }

  /// Hard-threshold print decision (Eq. 3).
  [[nodiscard]] bool prints(double intensity) const {
    return intensity > threshold;
  }
};

/// One lithography process condition (paper Sec. 3.4): a focus offset and a
/// relative exposure dose.
struct ProcessCorner {
  double focusNm = 0.0;
  double dose = 1.0;

  bool operator==(const ProcessCorner&) const = default;
};

/// The nominal condition.
inline ProcessCorner nominalCorner() { return {0.0, 1.0}; }

/// Full evaluation corner set: the cross product of {nominal focus,
/// defocus} x {dose-, nominal, dose+} (6 corners, nominal first). The PV
/// band is measured across all of these (paper Fig. 4 "all possible
/// printed images"). Positive and negative defocus produce identical
/// aerial images for a real mask (scalar through-focus symmetry), so only
/// the positive offset is enumerated.
std::vector<ProcessCorner> evaluationCorners(double defocusNm = 25.0,
                                             double doseDelta = 0.02);

/// Reduced in-loop corner set used by the F_pvb gradient term (Eq. 18):
/// the two extreme conditions (defocus with min dose -> innermost edges,
/// nominal focus with max dose -> outermost edges).
std::vector<ProcessCorner> optimizationCorners(double defocusNm = 25.0,
                                               double doseDelta = 0.02);

}  // namespace mosaic
