/// \file ablation_aberrations.cpp
/// Lens aberration study: inject low-order Zernike terms (coma,
/// astigmatism, spherical) into the pupil, regenerate the SOCS kernels and
/// measure the damage before and after MOSAIC_fast. Coma shifts patterns
/// asymmetrically -- the hardest signature for symmetric rule-based
/// corrections, and a classic argument for model-based/inverse OPC.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 15;
  int caseIndex = 4;
  std::string logLevel = "warn";

  CliParser cli("ablation_aberrations",
                "Zernike aberration injection (kernels regenerated)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addInt("case", &caseIndex, "testcase index");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    struct Entry {
      const char* name;
      ZernikeAberrations ab;
    };
    std::vector<Entry> entries;
    entries.push_back({"ideal", {}});
    {
      ZernikeAberrations ab;
      ab.comaX = 0.04;
      entries.push_back({"coma 0.04w", ab});
    }
    {
      ZernikeAberrations ab;
      ab.astigmatism0 = 0.04;
      entries.push_back({"astig 0.04w", ab});
    }
    {
      ZernikeAberrations ab;
      ab.spherical = 0.04;
      entries.push_back({"sphere 0.04w", ab});
    }

    const Layout layout = buildTestcase(caseIndex);
    TextTable table;
    table.setHeader({"aberration", "noOPC EPE", "noOPC PVB", "fast EPE",
                     "fast PVB", "fast score"});
    for (const auto& entry : entries) {
      OpticsConfig optics;
      optics.pixelNm = pixel;
      optics.aberrations = entry.ab;
      LithoSimulator sim(optics);
      const BitGrid target = rasterize(layout, pixel);

      const CaseEvaluation before =
          evaluateMask(sim, toReal(target), target, 0.0);
      IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
      cfg.maxIterations = iterations;
      const OpcResult res =
          runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
      const CaseEvaluation after =
          evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
      table.addRow({entry.name, TextTable::integer(before.epeViolations),
                    TextTable::num(before.pvbandAreaNm2, 0),
                    TextTable::integer(after.epeViolations),
                    TextTable::num(after.pvbandAreaNm2, 0),
                    TextTable::num(after.score, 0)});
    }
    std::printf("=== Ablation: lens aberrations on %s (MOSAIC_fast) "
                "===\n%s\n",
                layout.name.c_str(), table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_aberrations failed: %s\n", e.what());
    return 1;
  }
}
