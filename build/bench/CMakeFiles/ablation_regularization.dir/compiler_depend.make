# Empty compiler generated dependencies file for ablation_regularization.
# This may be replaced when dependencies are built.
