#include "serve/job.hpp"

#include <cstdio>
#include <cstdlib>

#include "suite/testcases.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace mosaic {
namespace serve {

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCanceled:
      return "canceled";
    case JobState::kExpired:
      return "expired";
  }
  return "unknown";
}

void specToJson(const JobSpec& spec, telemetry::JsonObject* out) {
  MOSAIC_CHECK(out != nullptr, "specToJson needs an output object");
  out->set("case", spec.caseName);
  out->set("method", spec.method);
  out->set("pixel_nm", spec.pixelNm);
  out->set("iterations", spec.iterations);
  out->set("deadline_s", spec.deadlineSeconds);
  out->set("max_attempts", spec.maxAttempts);
  out->set("checkpoint_every", spec.checkpointEvery);
}

JobSpec specFromJson(const telemetry::JsonValue& obj) {
  JobSpec spec;
  spec.caseName = obj.stringOr("case", spec.caseName);
  spec.method = obj.stringOr("method", spec.method);
  spec.pixelNm = obj.intOr("pixel_nm", spec.pixelNm);
  spec.iterations = obj.intOr("iterations", spec.iterations);
  spec.deadlineSeconds = obj.numberOr("deadline_s", spec.deadlineSeconds);
  spec.maxAttempts = obj.intOr("max_attempts", spec.maxAttempts);
  spec.checkpointEvery = obj.intOr("checkpoint_every", spec.checkpointEvery);
  validateSpec(spec);
  return spec;
}

void validateSpec(const JobSpec& spec) {
  // Validate eagerly so a bad submit is rejected at admission, not after a
  // worker has already picked the job up.
  MOSAIC_CHECK(!spec.caseName.empty(), "job case must not be empty");
  bool builtin = false;
  if (spec.caseName.size() >= 2 && spec.caseName[0] == 'B') {
    const std::string num = spec.caseName.substr(1);
    if (num.find_first_not_of("0123456789") == std::string::npos) {
      const int index = std::atoi(num.c_str());
      builtin = index >= 1 && index <= kTestcaseCount;
    }
  }
  const bool random = spec.caseName.rfind("random:", 0) == 0;
  MOSAIC_CHECK(builtin || random,
               "job case must be B1..B10 or random:<seed>, got "
                   << spec.caseName);
  if (random) {
    const std::string seed = spec.caseName.substr(7);
    MOSAIC_CHECK(!seed.empty() &&
                     seed.find_first_not_of("0123456789") == std::string::npos,
                 "bad random clip seed: " << spec.caseName);
  }
  MOSAIC_CHECK(spec.method == "fast" || spec.method == "exact" ||
                   spec.method == "baseline",
               "job method must be fast|exact|baseline, got " << spec.method);
  MOSAIC_CHECK(spec.pixelNm >= 1 && spec.pixelNm <= 64,
               "job pixel_nm out of range [1, 64]: " << spec.pixelNm);
  MOSAIC_CHECK(spec.iterations >= 0 && spec.iterations <= 100000,
               "job iterations out of range: " << spec.iterations);
  MOSAIC_CHECK(spec.deadlineSeconds >= 0.0,
               "job deadline_s must be >= 0: " << spec.deadlineSeconds);
  MOSAIC_CHECK(spec.maxAttempts >= 1 && spec.maxAttempts <= 10,
               "job max_attempts out of range [1, 10]: " << spec.maxAttempts);
  MOSAIC_CHECK(spec.checkpointEvery >= 1,
               "job checkpoint_every must be >= 1: " << spec.checkpointEvery);
}

std::string maskHashHex(const RealGrid& mask) {
  // FNV-1a 64 over the raw double bytes: cheap, deterministic, and any
  // single-bit difference between two masks flips the digest. The seed is
  // not the standard basis; it is kept verbatim because these digests are
  // persisted in job journals and compared across daemon restarts.
  constexpr std::uint64_t kLegacyMaskHashSeed = 1469598103934665603ull;
  return Fnv1a::hashHex(
      fnv1a(mask.data(), mask.size() * sizeof(double), kLegacyMaskHashSeed));
}

}  // namespace serve
}  // namespace mosaic
