#include "support/signal.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace mosaic {
namespace {

std::atomic<CancelToken*> gToken{nullptr};
volatile std::sig_atomic_t gSignal = 0;

extern "C" void mosaicTerminationHandler(int signo) {
  if (gSignal != 0) {
    // Second signal: the graceful drain is taking too long (or is stuck).
    // _Exit is async-signal-safe; 128+signo is the shell convention.
    std::_Exit(128 + signo);
  }
  gSignal = signo;
  CancelToken* token = gToken.load(std::memory_order_relaxed);
  if (token != nullptr) token->cancel();  // lock-free atomic store
}

void setDisposition(void (*handler)(int)) {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action {};
  action.sa_handler = handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read must wake
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, handler);
  std::signal(SIGTERM, handler);
#endif
}

}  // namespace

void installTerminationHandler(CancelToken* token) {
  gToken.store(token, std::memory_order_relaxed);
  setDisposition(&mosaicTerminationHandler);
}

int terminationSignal() { return static_cast<int>(gSignal); }

const char* terminationSignalName() {
  switch (terminationSignal()) {
    case SIGINT:
      return "SIGINT";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "none";
  }
}

void resetTerminationHandler() {
  gToken.store(nullptr, std::memory_order_relaxed);
  gSignal = 0;
  setDisposition(SIG_DFL);
}

}  // namespace mosaic
