/// \file backend_simd.cpp
/// cpu_simd and cpu_simd_f32 execution backends (see backend.hpp).
///
/// What makes this faster than cpu_scalar on the same plans:
///  - Pruned inverse transforms: SOCS kernel spectra are band-limited to
///    the pupil disc, so at production sizes ~94% of the rows of
///    (kernel .* spectrum) are exactly zero. The row pass skips dead
///    rows entirely, and the column pass tracks row liveness through the
///    butterflies (a fused 4-row group whose inputs are all zero stays
///    zero) instead of streaming the whole grid every sweep. Skipping
///    exact zeros is exact — zeros transform to zeros — so this is not
///    an approximation.
///  - Batching: up to four kernel fields advance through the column pass
///    together, so every stage's twiddle/liveness bookkeeping is paid
///    once per batch instead of once per kernel.
///  - Explicit AVX2+FMA butterflies for the 1-D plan's fused stage pairs
///    and the 4-row column butterflies, compiled with function-level
///    target attributes and selected at runtime (cpuHasAvx2), with
///    portable scalar lanes as the fallback — no global -mavx2, so the
///    binary still runs on older x86 and non-x86 hosts.
///  - Fused epilogues: the weighted |.|^2 accumulate (aerial) and the
///    g .* conj sweep (gradient) run as single passes over each field.
///
/// Numerics: FMA contraction and the reordered dose fold shift results
/// at the ~1e-14 level relative to cpu_scalar; tests/test_backend.cpp
/// pins agreement at 1e-10. Skipped zero rows can differ from the scalar
/// path in the sign of -0.0 only, which is value-equal and vanishes in
/// |.|^2 and accumulation.

#include "math/backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "math/scratch.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry/trace.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define MOSAIC_SIMD_X86 1
#include <immintrin.h>
#else
#define MOSAIC_SIMD_X86 0
#endif

namespace mosaic {
namespace exec {

namespace {

constexpr int kBatch = 4;  ///< Kernel fields advanced together per sweep.

// ---------------------------------------------------------------------------
// Sparse scatter + row liveness
// ---------------------------------------------------------------------------

/// out = kernel .* spectrum on the sparse support, zero elsewhere; marks
/// live[r] for every row that received a sample.
void scatterProduct(const ComplexGrid& spectrum, const SpectrumView& spec,
                    ComplexGrid& out, std::uint8_t* live, int cols) {
  out.fill({0.0, 0.0});
  for (std::size_t i = 0; i < spec.count; ++i) {
    const auto flat = static_cast<std::size_t>(spec.flatIndex[i]);
    out.data()[flat] = spectrum.data()[flat] * spec.value[i];
    live[flat / static_cast<std::size_t>(cols)] = 1;
  }
}

// ---------------------------------------------------------------------------
// 1-D transforms (row pass)
// ---------------------------------------------------------------------------

#if MOSAIC_SIMD_X86

/// a * b for packed complex doubles [r0,i0,r1,i1].
__attribute__((target("avx2,fma"))) inline __m256d cmul(__m256d a,
                                                        __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);       // [br0,br0,br1,br1]
  const __m256d bi = _mm256_permute_pd(b, 0xF);  // [bi0,bi0,bi1,bi1]
  const __m256d asw = _mm256_permute_pd(a, 0x5);  // [i0,r0,i1,r1]
  // even: ar*br - ai*bi, odd: ai*br + ar*bi
  return _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(asw, bi));
}

/// x * (wr + i wi) with scalar twiddle components, packed complex lanes.
__attribute__((target("avx2,fma"))) inline __m256d cmulScalar(__m256d x,
                                                              __m256d wr,
                                                              __m256d wi) {
  const __m256d xsw = _mm256_permute_pd(x, 0x5);
  return _mm256_fmaddsub_pd(x, wr, _mm256_mul_pd(xsw, wi));
}

/// AVX2 version of FftPlan::transform (fused stage pairs). Two complex
/// elements per vector; the h==1 sub-case falls back to the scalar
/// butterfly since there is only one j.
__attribute__((target("avx2,fma"))) void fft1dAvx2(
    const FftPlan& plan, std::complex<double>* cdata, bool invert) {
  const std::size_t n = plan.size();
  const std::vector<std::size_t>& rev = plan.bitReversal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(cdata[i], cdata[j]);
  }
  int stages = 0;
  for (std::size_t s = 1; s < n; s <<= 1) ++stages;
  const double fullScale = invert ? 1.0 / static_cast<double>(n) : 1.0;
  std::size_t h = 1;
  if (stages % 2 == 1) {
    const double s = (n == 2) ? fullScale : 1.0;
    for (std::size_t base = 0; base < n; base += 2) {
      const std::complex<double> l = cdata[base];
      const std::complex<double> t = cdata[base + 1];
      cdata[base] = (l + t) * s;
      cdata[base + 1] = (l - t) * s;
    }
    h = 2;
  }
  const __m256d negOdd = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  for (; h < n; h <<= 2) {
    const std::size_t len = h << 2;
    const double s = (len >= n) ? fullScale : 1.0;
    const __m256d sv = _mm256_set1_pd(s);
    const std::complex<double>* tw1 = plan.stageTwiddles(h);
    const std::complex<double>* tw2 = plan.stageTwiddles(h << 1);
    for (std::size_t base = 0; base < n; base += len) {
      double* pa = reinterpret_cast<double*>(cdata + base);
      double* pb = pa + 2 * h;
      double* pc = pb + 2 * h;
      double* pd = pc + 2 * h;
      if (h == 1) {
        // Single butterfly in this block; scalar (matches plan code).
        const std::complex<double> w1 = invert ? std::conj(tw1[0]) : tw1[0];
        const std::complex<double> w2c = tw2[0];
        const std::complex<double> w2 = invert ? std::conj(w2c) : w2c;
        const std::complex<double> w3 =
            invert ? std::complex<double>(w2c.imag(), w2c.real())
                   : std::complex<double>(w2c.imag(), -w2c.real());
        std::complex<double>* qa = cdata + base;
        const std::complex<double> tb = qa[1] * w1;
        const std::complex<double> td = qa[3] * w1;
        const std::complex<double> a1 = qa[0] + tb;
        const std::complex<double> b1 = qa[0] - tb;
        const std::complex<double> c1 = qa[2] + td;
        const std::complex<double> d1 = qa[2] - td;
        const std::complex<double> t0 = c1 * w2;
        const std::complex<double> t1 = d1 * w3;
        qa[0] = (a1 + t0) * s;
        qa[2] = (a1 - t0) * s;
        qa[1] = (b1 + t1) * s;
        qa[3] = (b1 - t1) * s;
        continue;
      }
      for (std::size_t j = 0; j < h; j += 2) {
        __m256d w1 =
            _mm256_loadu_pd(reinterpret_cast<const double*>(tw1 + j));
        const __m256d w2c =
            _mm256_loadu_pd(reinterpret_cast<const double*>(tw2 + j));
        __m256d w2, w3;
        const __m256d w2sw = _mm256_permute_pd(w2c, 0x5);  // (c2i, c2r)
        if (invert) {
          w1 = _mm256_xor_pd(w1, negOdd);
          w2 = _mm256_xor_pd(w2c, negOdd);
          w3 = w2sw;  // conj(-i W2) = (c2i, c2r)
        } else {
          w2 = w2c;
          w3 = _mm256_xor_pd(w2sw, negOdd);  // (c2i, -c2r)
        }
        const std::size_t o = 2 * j;
        const __m256d a = _mm256_loadu_pd(pa + o);
        const __m256d b = _mm256_loadu_pd(pb + o);
        const __m256d c = _mm256_loadu_pd(pc + o);
        const __m256d d = _mm256_loadu_pd(pd + o);
        const __m256d tb = cmul(b, w1);
        const __m256d td = cmul(d, w1);
        const __m256d a1 = _mm256_add_pd(a, tb);
        const __m256d b1 = _mm256_sub_pd(a, tb);
        const __m256d c1 = _mm256_add_pd(c, td);
        const __m256d d1 = _mm256_sub_pd(c, td);
        const __m256d t0 = cmul(c1, w2);
        const __m256d t1 = cmul(d1, w3);
        _mm256_storeu_pd(pa + o, _mm256_mul_pd(_mm256_add_pd(a1, t0), sv));
        _mm256_storeu_pd(pc + o, _mm256_mul_pd(_mm256_sub_pd(a1, t0), sv));
        _mm256_storeu_pd(pb + o, _mm256_mul_pd(_mm256_add_pd(b1, t1), sv));
        _mm256_storeu_pd(pd + o, _mm256_mul_pd(_mm256_sub_pd(b1, t1), sv));
      }
    }
  }
}

#endif  // MOSAIC_SIMD_X86

void fft1d(const FftPlan& plan, std::complex<double>* data, bool invert,
           bool avx2) {
#if MOSAIC_SIMD_X86
  if (avx2) {
    fft1dAvx2(plan, data, invert);
    return;
  }
#else
  (void)avx2;
#endif
  if (invert) {
    plan.inverse(data);
  } else {
    plan.forward(data);
  }
}

// ---------------------------------------------------------------------------
// Liveness-aware batched column pass
// ---------------------------------------------------------------------------
//
// Mirrors Fft2d::transformCols (row-vector butterflies, fused stage
// pairs, 1/rows folded into the last sweep) with two changes: it
// advances up to kBatch grids per sweep, and it consults/propagates a
// per-row liveness vector shared by the batch — a butterfly group whose
// input rows are all zero in every grid produces all-zero outputs and is
// skipped. The liveness flags are permuted alongside the bit-reversal
// row swaps so they track physical rows.

/// Swap rows i and j (full width) in every grid of the batch.
void swapRows(ComplexGrid* const* grids, int batch, std::size_t i,
              std::size_t j) {
  for (int b = 0; b < batch; ++b) {
    std::complex<double>* a = grids[b]->rowPtr(static_cast<int>(i));
    std::complex<double>* bb = grids[b]->rowPtr(static_cast<int>(j));
    std::swap_ranges(a, a + grids[b]->cols(), bb);
  }
}

#if MOSAIC_SIMD_X86

__attribute__((target("avx2,fma"))) void colPassAvx2(
    const FftPlan& colPlan, ComplexGrid* const* grids, int batch,
    bool invert, std::uint8_t* live) {
  const std::size_t n = colPlan.size();
  if (n == 1) return;
  const std::size_t limit = static_cast<std::size_t>(grids[0]->cols()) * 2;
  const std::vector<std::size_t>& rev = colPlan.bitReversal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      if (live[i] | live[j]) swapRows(grids, batch, i, j);
      std::swap(live[i], live[j]);
    }
  }
  int stages = 0;
  for (std::size_t s = 1; s < n; s <<= 1) ++stages;
  const double fullScale = invert ? 1.0 / static_cast<double>(n) : 1.0;
  std::size_t h = 1;
  if (stages % 2 == 1) {
    const double s = (n == 2) ? fullScale : 1.0;
    const __m256d sv = _mm256_set1_pd(s);
    for (std::size_t base = 0; base < n; base += 2) {
      if (!(live[base] | live[base + 1])) continue;
      live[base] = live[base + 1] = 1;
      for (int b = 0; b < batch; ++b) {
        double* lo =
            reinterpret_cast<double*>(grids[b]->rowPtr(static_cast<int>(base)));
        double* hi = reinterpret_cast<double*>(
            grids[b]->rowPtr(static_cast<int>(base + 1)));
        for (std::size_t c = 0; c < limit; c += 4) {
          const __m256d l = _mm256_loadu_pd(lo + c);
          const __m256d t = _mm256_loadu_pd(hi + c);
          _mm256_storeu_pd(lo + c, _mm256_mul_pd(_mm256_add_pd(l, t), sv));
          _mm256_storeu_pd(hi + c, _mm256_mul_pd(_mm256_sub_pd(l, t), sv));
        }
      }
    }
    h = 2;
  }
  for (; h < n; h <<= 2) {
    const std::size_t len = h << 2;
    const double s = (len >= n) ? fullScale : 1.0;
    const __m256d sv = _mm256_set1_pd(s);
    const std::complex<double>* tw1 = colPlan.stageTwiddles(h);
    const std::complex<double>* tw2 = colPlan.stageTwiddles(h << 1);
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < h; ++j) {
        const std::size_t r0 = base + j;
        const std::size_t r1 = r0 + h;
        const std::size_t r2 = r1 + h;
        const std::size_t r3 = r2 + h;
        if (!(live[r0] | live[r1] | live[r2] | live[r3])) continue;
        live[r0] = live[r1] = live[r2] = live[r3] = 1;
        const double c2r = tw2[j].real();
        const double c2i = tw2[j].imag();
        double w1r = tw1[j].real(), w1i = tw1[j].imag();
        double w2r = c2r, w2i = c2i;
        double w3r = c2i, w3i = -c2r;
        if (invert) {
          w1i = -w1i;
          w2i = -w2i;
          w3i = c2r;
        }
        const __m256d v1r = _mm256_set1_pd(w1r), v1i = _mm256_set1_pd(w1i);
        const __m256d v2r = _mm256_set1_pd(w2r), v2i = _mm256_set1_pd(w2i);
        const __m256d v3r = _mm256_set1_pd(w3r), v3i = _mm256_set1_pd(w3i);
        for (int b = 0; b < batch; ++b) {
          double* pa = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r0)));
          double* pb = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r1)));
          double* pc = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r2)));
          double* pd = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r3)));
          for (std::size_t c = 0; c < limit; c += 4) {
            const __m256d a = _mm256_loadu_pd(pa + c);
            const __m256d bv = _mm256_loadu_pd(pb + c);
            const __m256d cv = _mm256_loadu_pd(pc + c);
            const __m256d dv = _mm256_loadu_pd(pd + c);
            const __m256d tb = cmulScalar(bv, v1r, v1i);
            const __m256d td = cmulScalar(dv, v1r, v1i);
            const __m256d a1 = _mm256_add_pd(a, tb);
            const __m256d b1 = _mm256_sub_pd(a, tb);
            const __m256d c1 = _mm256_add_pd(cv, td);
            const __m256d d1 = _mm256_sub_pd(cv, td);
            const __m256d t0 = cmulScalar(c1, v2r, v2i);
            const __m256d t1 = cmulScalar(d1, v3r, v3i);
            _mm256_storeu_pd(pa + c,
                             _mm256_mul_pd(_mm256_add_pd(a1, t0), sv));
            _mm256_storeu_pd(pc + c,
                             _mm256_mul_pd(_mm256_sub_pd(a1, t0), sv));
            _mm256_storeu_pd(pb + c,
                             _mm256_mul_pd(_mm256_add_pd(b1, t1), sv));
            _mm256_storeu_pd(pd + c,
                             _mm256_mul_pd(_mm256_sub_pd(b1, t1), sv));
          }
        }
      }
    }
  }
}

#endif  // MOSAIC_SIMD_X86

void colPassPortable(const FftPlan& colPlan, ComplexGrid* const* grids,
                     int batch, bool invert, std::uint8_t* live) {
  const std::size_t n = colPlan.size();
  if (n == 1) return;
  const std::size_t limit = static_cast<std::size_t>(grids[0]->cols()) * 2;
  const std::vector<std::size_t>& rev = colPlan.bitReversal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      if (live[i] | live[j]) swapRows(grids, batch, i, j);
      std::swap(live[i], live[j]);
    }
  }
  int stages = 0;
  for (std::size_t s = 1; s < n; s <<= 1) ++stages;
  const double fullScale = invert ? 1.0 / static_cast<double>(n) : 1.0;
  std::size_t h = 1;
  if (stages % 2 == 1) {
    const double s = (n == 2) ? fullScale : 1.0;
    for (std::size_t base = 0; base < n; base += 2) {
      if (!(live[base] | live[base + 1])) continue;
      live[base] = live[base + 1] = 1;
      for (int b = 0; b < batch; ++b) {
        double* lo =
            reinterpret_cast<double*>(grids[b]->rowPtr(static_cast<int>(base)));
        double* hi = reinterpret_cast<double*>(
            grids[b]->rowPtr(static_cast<int>(base + 1)));
        for (std::size_t c = 0; c < limit; ++c) {
          const double l = lo[c];
          const double t = hi[c];
          lo[c] = (l + t) * s;
          hi[c] = (l - t) * s;
        }
      }
    }
    h = 2;
  }
  for (; h < n; h <<= 2) {
    const std::size_t len = h << 2;
    const double s = (len >= n) ? fullScale : 1.0;
    const std::complex<double>* tw1 = colPlan.stageTwiddles(h);
    const std::complex<double>* tw2 = colPlan.stageTwiddles(h << 1);
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < h; ++j) {
        const std::size_t r0 = base + j;
        const std::size_t r1 = r0 + h;
        const std::size_t r2 = r1 + h;
        const std::size_t r3 = r2 + h;
        if (!(live[r0] | live[r1] | live[r2] | live[r3])) continue;
        live[r0] = live[r1] = live[r2] = live[r3] = 1;
        const double c2r = tw2[j].real();
        const double c2i = tw2[j].imag();
        double w1r = tw1[j].real(), w1i = tw1[j].imag();
        double w2r = c2r, w2i = c2i;
        double w3r = c2i, w3i = -c2r;
        if (invert) {
          w1i = -w1i;
          w2i = -w2i;
          w3i = c2r;
        }
        for (int b = 0; b < batch; ++b) {
          double* pa = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r0)));
          double* pb = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r1)));
          double* pc = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r2)));
          double* pd = reinterpret_cast<double*>(
              grids[b]->rowPtr(static_cast<int>(r3)));
          for (std::size_t c = 0; c < limit; c += 2) {
            const double ar = pa[c], ai = pa[c + 1];
            const double br = pb[c], bi = pb[c + 1];
            const double cr = pc[c], ci = pc[c + 1];
            const double dr = pd[c], di = pd[c + 1];
            const double tbr = br * w1r - bi * w1i;
            const double tbi = br * w1i + bi * w1r;
            const double tdr = dr * w1r - di * w1i;
            const double tdi = dr * w1i + di * w1r;
            const double a1r = ar + tbr, a1i = ai + tbi;
            const double b1r = ar - tbr, b1i = ai - tbi;
            const double c1r = cr + tdr, c1i = ci + tdi;
            const double d1r = cr - tdr, d1i = ci - tdi;
            const double t0r = c1r * w2r - c1i * w2i;
            const double t0i = c1r * w2i + c1i * w2r;
            const double t1r = d1r * w3r - d1i * w3i;
            const double t1i = d1r * w3i + d1i * w3r;
            pa[c] = (a1r + t0r) * s;
            pa[c + 1] = (a1i + t0i) * s;
            pc[c] = (a1r - t0r) * s;
            pc[c + 1] = (a1i - t0i) * s;
            pb[c] = (b1r + t1r) * s;
            pb[c + 1] = (b1i + t1i) * s;
            pd[c] = (b1r - t1r) * s;
            pd[c + 1] = (b1i - t1i) * s;
          }
        }
      }
    }
  }
}

void colPass(const FftPlan& colPlan, ComplexGrid* const* grids, int batch,
             bool invert, std::uint8_t* live, bool avx2) {
#if MOSAIC_SIMD_X86
  if (avx2 && grids[0]->cols() % 2 == 0) {
    colPassAvx2(colPlan, grids, batch, invert, live);
    return;
  }
#endif
  colPassPortable(colPlan, grids, batch, invert, live);
}

// ---------------------------------------------------------------------------
// Fused epilogues
// ---------------------------------------------------------------------------

#if MOSAIC_SIMD_X86

/// out += scale * |field|^2, 4 complex elements per iteration.
__attribute__((target("avx2,fma"))) void accumNormAvx2(
    const ComplexGrid& field, double scale, RealGrid& out) {
  const double* f = reinterpret_cast<const double*>(field.data());
  double* o = out.data();
  const std::size_t n = out.size();
  const std::size_t n4 = n & ~std::size_t{3};
  const __m256d sv = _mm256_set1_pd(scale);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d a = _mm256_loadu_pd(f + 2 * i);      // f0 f1
    const __m256d b = _mm256_loadu_pd(f + 2 * i + 4);  // f2 f3
    const __m256d sa = _mm256_mul_pd(a, a);
    const __m256d sb = _mm256_mul_pd(b, b);
    // hadd: [sa0+sa1, sb0+sb1, sa2+sa3, sb2+sb3] = [|f0|²,|f2|²,|f1|²,|f3|²]
    const __m256d h = _mm256_hadd_pd(sa, sb);
    const __m256d p = _mm256_permute4x64_pd(h, 0xD8);  // [0,2,1,3] lanes
    const __m256d acc = _mm256_loadu_pd(o + i);
    _mm256_storeu_pd(o + i, _mm256_fmadd_pd(p, sv, acc));
  }
  for (std::size_t i = n4; i < n; ++i) {
    o[i] += scale * std::norm(field.data()[i]);
  }
}

#endif  // MOSAIC_SIMD_X86

void accumNorm(const ComplexGrid& field, double scale, RealGrid& out,
               bool avx2) {
#if MOSAIC_SIMD_X86
  if (avx2) {
    accumNormAvx2(field, scale, out);
    return;
  }
#else
  (void)avx2;
#endif
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] += scale * std::norm(field.data()[i]);
  }
}

/// field = gField .* conj(field), in place.
void conjMulInPlace(const RealGrid& gField, ComplexGrid& field) {
  double* f = reinterpret_cast<double*>(field.data());
  const double* g = gField.data();
  const std::size_t n = field.size();
  for (std::size_t i = 0; i < n; ++i) {
    f[2 * i] *= g[i];
    f[2 * i + 1] *= -g[i];
  }
}

// ---------------------------------------------------------------------------
// cpu_simd backend
// ---------------------------------------------------------------------------

class SimdBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const override { return "cpu_simd"; }
  [[nodiscard]] bool accelerated() const override { return cpuHasAvx2(); }

  void accumulateCoherentIntensity(const Fft2d& fft,
                                   const ComplexGrid& spectrum,
                                   const SpectrumView* kernels,
                                   const double* weights, int count,
                                   double dose,
                                   RealGrid& intensity) const override {
    const int rows = fft.rows();
    const int cols = fft.cols();
    if (rows < 8 || cols < 8) {
      // Tiny grids: the batching/pruning machinery costs more than it
      // saves and the lane kernels want multiple-of-4 widths.
      scalarBackend().accumulateCoherentIntensity(fft, spectrum, kernels,
                                                  weights, count, dose,
                                                  intensity);
      return;
    }
    MOSAIC_SPAN("backend.aerial_simd");
    const bool avx2 = cpuHasAvx2();
    const int batchCap = std::min(count, kBatch);
    std::vector<scratch::ComplexLease> leases;
    leases.reserve(static_cast<std::size_t>(batchCap));
    ComplexGrid* grids[kBatch] = {};
    for (int i = 0; i < batchCap; ++i) {
      leases.emplace_back(rows, cols);
      grids[i] = &*leases[static_cast<std::size_t>(i)];
    }
    std::vector<std::uint8_t> live(static_cast<std::size_t>(rows));
    for (int k0 = 0; k0 < count; k0 += batchCap) {
      const int b = std::min(batchCap, count - k0);
      std::fill(live.begin(), live.end(), std::uint8_t{0});
      for (int i = 0; i < b; ++i) {
        scatterProduct(spectrum, kernels[k0 + i], *grids[i], live.data(),
                       cols);
      }
      // Pruned row pass: dead rows are exactly zero and stay zero.
      for (int r = 0; r < rows; ++r) {
        if (!live[static_cast<std::size_t>(r)]) continue;
        for (int i = 0; i < b; ++i) {
          fft1d(fft.rowPlan(), grids[i]->rowPtr(r), /*invert=*/true, avx2);
        }
      }
      colPass(fft.colPlan(), grids, b, /*invert=*/true, live.data(), avx2);
      for (int i = 0; i < b; ++i) {
        accumNorm(*grids[i], weights[k0 + i] * dose, intensity, avx2);
      }
    }
  }

  void accumulateGradientChains(const Fft2d& fft,
                                const ComplexGrid& maskSpectrum,
                                const SpectrumView* kernels,
                                const double* weights, int count,
                                const RealGrid& gField,
                                ComplexGrid& accum) const override {
    const int rows = fft.rows();
    const int cols = fft.cols();
    if (rows < 8 || cols < 8) {
      scalarBackend().accumulateGradientChains(fft, maskSpectrum, kernels,
                                               weights, count, gField,
                                               accum);
      return;
    }
    MOSAIC_SPAN("backend.gradient_simd");
    const bool avx2 = cpuHasAvx2();
    const int batchCap = std::min(count, kBatch);
    std::vector<scratch::ComplexLease> leases;
    leases.reserve(static_cast<std::size_t>(batchCap));
    ComplexGrid* grids[kBatch] = {};
    for (int i = 0; i < batchCap; ++i) {
      leases.emplace_back(rows, cols);
      grids[i] = &*leases[static_cast<std::size_t>(i)];
    }
    std::vector<std::uint8_t> live(static_cast<std::size_t>(rows));
    for (int k0 = 0; k0 < count; k0 += batchCap) {
      const int b = std::min(batchCap, count - k0);
      // A = ifft(Mhat .* spec), pruned + batched like the aerial path.
      std::fill(live.begin(), live.end(), std::uint8_t{0});
      for (int i = 0; i < b; ++i) {
        scatterProduct(maskSpectrum, kernels[k0 + i], *grids[i], live.data(),
                       cols);
      }
      for (int r = 0; r < rows; ++r) {
        if (!live[static_cast<std::size_t>(r)]) continue;
        for (int i = 0; i < b; ++i) {
          fft1d(fft.rowPlan(), grids[i]->rowPtr(r), /*invert=*/true, avx2);
        }
      }
      colPass(fft.colPlan(), grids, b, /*invert=*/true, live.data(), avx2);
      // B = G .* conj(A), then the full (dense) forward transform.
      for (int i = 0; i < b; ++i) {
        conjMulInPlace(gField, *grids[i]);
        // Fault-injection parity with the scalar path's fft.forward call.
        MOSAIC_FAILPOINT_DATA("fft.forward",
                              reinterpret_cast<double*>(grids[i]->data()),
                              grids[i]->size() * 2);
      }
      for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < b; ++i) {
          fft1d(fft.rowPlan(), grids[i]->rowPtr(r), /*invert=*/false, avx2);
        }
      }
      std::fill(live.begin(), live.end(), std::uint8_t{1});
      colPass(fft.colPlan(), grids, b, /*invert=*/false, live.data(), avx2);
      // accum += w * fft(B) .* spec_flipped (same sample order as scalar).
      for (int i = 0; i < b; ++i) {
        const SpectrumView& spec = kernels[k0 + i];
        const ComplexGrid& field = *grids[i];
        const std::complex<double> scale(weights[k0 + i], 0.0);
        for (std::size_t s = 0; s < spec.count; ++s) {
          const int flat = spec.flatIndex[s];
          const int r = flat / cols;
          const int c = flat % cols;
          const auto flipped = static_cast<std::size_t>(
              ((rows - r) % rows) * cols + ((cols - c) % cols));
          accum.data()[flipped] +=
              field.data()[flipped] * spec.value[s] * scale;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cpu_simd_f32: single-precision aerial path
// ---------------------------------------------------------------------------

/// Minimal float radix-2 plan (twiddles computed in double, stored as
/// float). Kept self-contained so the double plans stay untouched.
class FloatPlan {
 public:
  explicit FloatPlan(std::size_t n) : n_(n) {
    logN_ = 0;
    while ((std::size_t{1} << logN_) < n_) ++logN_;
    bitrev_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      std::size_t rev = 0;
      for (int b = 0; b < logN_; ++b) rev = (rev << 1) | ((i >> b) & 1u);
      bitrev_[i] = rev;
    }
    twiddle_.assign(n_ == 1 ? 1 : n_, {1.0f, 0.0f});
    for (std::size_t h = 1; h < n_; h <<= 1) {
      const double theta = -3.14159265358979323846 / static_cast<double>(h);
      for (std::size_t j = 0; j < h; ++j) {
        const double a = theta * static_cast<double>(j);
        twiddle_[h + j] = {static_cast<float>(std::cos(a)),
                           static_cast<float>(std::sin(a))};
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const std::vector<std::size_t>& bitReversal() const {
    return bitrev_;
  }
  [[nodiscard]] const std::complex<float>* stageTwiddles(
      std::size_t h) const {
    return &twiddle_[h];
  }

  void transform(std::complex<float>* data, bool invert) const {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t j = bitrev_[i];
      if (i < j) std::swap(data[i], data[j]);
    }
    for (std::size_t h = 1; h < n_; h <<= 1) {
      const std::size_t len = h << 1;
      const std::complex<float>* tw = &twiddle_[h];
      for (std::size_t base = 0; base < n_; base += len) {
        std::complex<float>* lo = data + base;
        std::complex<float>* hi = lo + h;
        for (std::size_t j = 0; j < h; ++j) {
          const std::complex<float> w = invert ? std::conj(tw[j]) : tw[j];
          const std::complex<float> t = hi[j] * w;
          hi[j] = lo[j] - t;
          lo[j] += t;
        }
      }
    }
    if (invert) {
      const float scale = 1.0f / static_cast<float>(n_);
      for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
    }
  }

 private:
  std::size_t n_;
  int logN_;
  std::vector<std::size_t> bitrev_;
  std::vector<std::complex<float>> twiddle_;
};

const FloatPlan& floatPlanFor(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<FloatPlan>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<FloatPlan>(n);
  return *slot;
}

/// Liveness-aware float column pass (row-vector radix-2 butterflies).
void floatColPass(const FloatPlan& colPlan, std::complex<float>* data,
                  int cols, bool invert, std::uint8_t* live) {
  const std::size_t n = colPlan.size();
  if (n == 1) return;
  const std::size_t limit = static_cast<std::size_t>(cols) * 2;
  auto rowp = [&](std::size_t r) {
    return reinterpret_cast<float*>(data + r * static_cast<std::size_t>(cols));
  };
  const std::vector<std::size_t>& rev = colPlan.bitReversal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      if (live[i] | live[j]) {
        float* a = rowp(i);
        float* b = rowp(j);
        std::swap_ranges(a, a + limit, b);
      }
      std::swap(live[i], live[j]);
    }
  }
  for (std::size_t h = 1; h < n; h <<= 1) {
    const std::size_t len = h << 1;
    const std::complex<float>* tw = colPlan.stageTwiddles(h);
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < h; ++j) {
        const std::size_t rlo = base + j;
        const std::size_t rhi = rlo + h;
        if (!(live[rlo] | live[rhi])) continue;
        live[rlo] = live[rhi] = 1;
        const std::complex<float> w = invert ? std::conj(tw[j]) : tw[j];
        const float wr = w.real(), wi = w.imag();
        float* lo = rowp(rlo);
        float* hi = rowp(rhi);
        for (std::size_t c = 0; c < limit; c += 2) {
          const float hr = hi[c], hii = hi[c + 1];
          const float tr = hr * wr - hii * wi;
          const float ti = hr * wi + hii * wr;
          const float lr = lo[c], li = lo[c + 1];
          lo[c] = lr + tr;
          lo[c + 1] = li + ti;
          hi[c] = lr - tr;
          hi[c + 1] = li - ti;
        }
      }
    }
  }
  if (invert) {
    const float scale = 1.0f / static_cast<float>(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (!live[r]) continue;
      float* p = rowp(r);
      for (std::size_t c = 0; c < limit; ++c) p[c] *= scale;
    }
  }
}

/// Float32 aerial path: the whole kernel sum runs in single precision
/// (scatter, pruned transforms, weighted accumulation) and only the
/// final per-pixel sum is widened back to double. Gradient chains stay
/// double (they feed the optimizer's line search and are much more
/// sensitive to cancellation), so this backend delegates those to
/// cpu_simd. Accepted only under the tolerance tests in
/// tests/test_backend.cpp; see docs/performance.md for the caveats.
class SimdFloatBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const override { return "cpu_simd_f32"; }
  [[nodiscard]] bool accelerated() const override { return cpuHasAvx2(); }

  void accumulateCoherentIntensity(const Fft2d& fft,
                                   const ComplexGrid& spectrum,
                                   const SpectrumView* kernels,
                                   const double* weights, int count,
                                   double dose,
                                   RealGrid& intensity) const override {
    const int rows = fft.rows();
    const int cols = fft.cols();
    if (rows < 8 || cols < 8) {
      scalarBackend().accumulateCoherentIntensity(fft, spectrum, kernels,
                                                  weights, count, dose,
                                                  intensity);
      return;
    }
    MOSAIC_SPAN("backend.aerial_f32");
    const auto total = static_cast<std::size_t>(rows) *
                       static_cast<std::size_t>(cols);
    const FloatPlan& rowPlan = floatPlanFor(static_cast<std::size_t>(cols));
    const FloatPlan& colPlan = floatPlanFor(static_cast<std::size_t>(rows));
    thread_local std::vector<std::complex<float>> field;
    thread_local std::vector<float> acc;
    field.assign(total, {0.0f, 0.0f});
    acc.assign(total, 0.0f);
    std::vector<std::uint8_t> live(static_cast<std::size_t>(rows));
    for (int k = 0; k < count; ++k) {
      const SpectrumView& spec = kernels[k];
      if (k > 0) std::fill(field.begin(), field.end(),
                           std::complex<float>{0.0f, 0.0f});
      std::fill(live.begin(), live.end(), std::uint8_t{0});
      for (std::size_t i = 0; i < spec.count; ++i) {
        const auto flat = static_cast<std::size_t>(spec.flatIndex[i]);
        const std::complex<double> v = spectrum.data()[flat] * spec.value[i];
        field[flat] = {static_cast<float>(v.real()),
                       static_cast<float>(v.imag())};
        live[flat / static_cast<std::size_t>(cols)] = 1;
      }
      for (int r = 0; r < rows; ++r) {
        if (!live[static_cast<std::size_t>(r)]) continue;
        rowPlan.transform(field.data() + static_cast<std::size_t>(r) * cols,
                          /*invert=*/true);
      }
      floatColPass(colPlan, field.data(), cols, /*invert=*/true, live.data());
      const auto w = static_cast<float>(weights[k] * dose);
      for (std::size_t i = 0; i < total; ++i) {
        const float re = field[i].real();
        const float im = field[i].imag();
        acc[i] += w * (re * re + im * im);
      }
    }
    for (std::size_t i = 0; i < total; ++i) {
      intensity.data()[i] += static_cast<double>(acc[i]);
    }
  }

  void accumulateGradientChains(const Fft2d& fft,
                                const ComplexGrid& maskSpectrum,
                                const SpectrumView* kernels,
                                const double* weights, int count,
                                const RealGrid& gField,
                                ComplexGrid& accum) const override {
    simdBackend().accumulateGradientChains(fft, maskSpectrum, kernels,
                                           weights, count, gField, accum);
  }
};

}  // namespace

bool cpuHasAvx2() {
#if MOSAIC_SIMD_X86
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

const Backend& simdBackend() {
  static SimdBackend backend;
  return backend;
}

const Backend& simdFloatBackend() {
  static SimdFloatBackend backend;
  return backend;
}

}  // namespace exec
}  // namespace mosaic
