file(REMOVE_RECURSE
  "libmosaic_opc.a"
)
