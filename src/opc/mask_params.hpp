#pragma once
/// \file mask_params.hpp
/// Sigmoid relaxation of the binary mask constraint (paper Eq. 8):
/// M = sig(theta_M * P) maps the unconstrained pixel variables P to mask
/// transmissions in (0, 1); the optimizer walks in P-space.

#include "math/grid.hpp"

namespace mosaic {

/// The P <-> M variable transformation.
///
/// The default range [0, 1] models a binary (chrome-on-glass) mask. A
/// nonzero lower transmission generalizes the parameterization to
/// phase-shifting masks in the sense of the generalized ILT of Ma & Arce
/// (paper ref. [10]): lo = -0.245 approximates a 6 % attenuated PSM
/// (amplitude -sqrt(0.06)), lo = -1 a strong (alternating) PSM.
class MaskTransform {
 public:
  explicit MaskTransform(double thetaM = 4.0, double low = 0.0,
                         double high = 1.0);

  [[nodiscard]] double thetaM() const { return thetaM_; }
  [[nodiscard]] double low() const { return low_; }
  [[nodiscard]] double high() const { return high_; }

  /// M = low + (high - low) * sig(theta_M * P) element-wise.
  [[nodiscard]] RealGrid toMask(const RealGrid& params) const;

  /// Inverse transform with clamping: mask values are pulled into
  /// [clampEps, 1 - clampEps] before the logit. Used to initialize P from
  /// a binary (target + SRAF) mask.
  [[nodiscard]] RealGrid toParams(const RealGrid& mask,
                                  double clampEps = 0.05) const;

  /// Chain-rule factor dM/dP = theta_M * M * (1 - M) element-wise; converts
  /// a gradient w.r.t. M into a gradient w.r.t. P (in place).
  void chainRule(const RealGrid& mask, RealGrid& gradInOut) const;

  /// Threshold a continuous mask at the mid transmission (P = 0): returns
  /// the feature raster (1 where the mask is in the upper half).
  [[nodiscard]] BitGrid quantizeFeatures(const RealGrid& mask) const;

  /// Map a feature raster back to the two-level transmission mask
  /// {low, high}.
  [[nodiscard]] RealGrid materialize(const BitGrid& features) const;

  /// Binarize a [0,1] mask at transmission 0.5 (binary-mask convenience;
  /// equivalent to quantizeFeatures for the default range).
  [[nodiscard]] static BitGrid binarize(const RealGrid& mask);

 private:
  double thetaM_;
  double low_;
  double high_;
};

}  // namespace mosaic
