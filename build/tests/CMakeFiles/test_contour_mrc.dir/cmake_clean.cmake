file(REMOVE_RECURSE
  "CMakeFiles/test_contour_mrc.dir/test_contour_mrc.cpp.o"
  "CMakeFiles/test_contour_mrc.dir/test_contour_mrc.cpp.o.d"
  "test_contour_mrc"
  "test_contour_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contour_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
