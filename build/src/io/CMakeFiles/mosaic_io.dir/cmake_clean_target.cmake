file(REMOVE_RECURSE
  "libmosaic_io.a"
)
