file(REMOVE_RECURSE
  "CMakeFiles/ablation_init_jump.dir/ablation_init_jump.cpp.o"
  "CMakeFiles/ablation_init_jump.dir/ablation_init_jump.cpp.o.d"
  "ablation_init_jump"
  "ablation_init_jump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_init_jump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
