#include "geometry/bitmap_ops.hpp"

#include <array>
#include <queue>

#include "support/error.hpp"

namespace mosaic {
namespace {

void checkSameShape(const BitGrid& a, const BitGrid& b) {
  MOSAIC_CHECK(a.sameShape(b), "bitmap shape mismatch: "
                                   << a.rows() << "x" << a.cols() << " vs "
                                   << b.rows() << "x" << b.cols());
}

/// 1-D sliding-window max over each row (for separable square dilation).
void rowWindowMax(const BitGrid& in, int radius, BitGrid& out) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int r = 0; r < rows; ++r) {
    // Binary data: output is 1 iff any 1 within the window. Track the most
    // recent set column to make this O(cols).
    int lastSet = -(radius + 1);
    for (int c = 0; c < cols; ++c) {
      if (in(r, c)) lastSet = c;
      // ahead: need to know if a set pixel exists in (c, c+radius];
      out(r, c) = (c - lastSet <= radius) ? 1u : 0u;
    }
    int nextSet = cols + radius + 1;
    for (int c = cols - 1; c >= 0; --c) {
      if (in(r, c)) nextSet = c;
      if (nextSet - c <= radius) out(r, c) = 1u;
    }
  }
}

/// 1-D sliding-window max over each column.
void colWindowMax(const BitGrid& in, int radius, BitGrid& out) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int c = 0; c < cols; ++c) {
    int lastSet = -(radius + 1);
    for (int r = 0; r < rows; ++r) {
      if (in(r, c)) lastSet = r;
      out(r, c) = (r - lastSet <= radius) ? 1u : 0u;
    }
    int nextSet = rows + radius + 1;
    for (int r = rows - 1; r >= 0; --r) {
      if (in(r, c)) nextSet = r;
      if (nextSet - r <= radius) out(r, c) = 1u;
    }
  }
}

}  // namespace

BitGrid bitAnd(const BitGrid& a, const BitGrid& b) {
  checkSameShape(a, b);
  BitGrid out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = (a.data()[i] && b.data()[i]) ? 1u : 0u;
  }
  return out;
}

BitGrid bitOr(const BitGrid& a, const BitGrid& b) {
  checkSameShape(a, b);
  BitGrid out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = (a.data()[i] || b.data()[i]) ? 1u : 0u;
  }
  return out;
}

BitGrid bitXor(const BitGrid& a, const BitGrid& b) {
  checkSameShape(a, b);
  BitGrid out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = ((a.data()[i] != 0) != (b.data()[i] != 0)) ? 1u : 0u;
  }
  return out;
}

BitGrid bitNot(const BitGrid& a) {
  BitGrid out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] ? 0u : 1u;
  }
  return out;
}

BitGrid bitSub(const BitGrid& a, const BitGrid& b) {
  checkSameShape(a, b);
  BitGrid out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = (a.data()[i] && !b.data()[i]) ? 1u : 0u;
  }
  return out;
}

long long countSet(const BitGrid& a) {
  long long n = 0;
  for (unsigned char v : a) n += (v != 0);
  return n;
}

BitGrid dilateSquare(const BitGrid& a, int radius) {
  MOSAIC_CHECK(radius >= 0, "dilation radius must be >= 0");
  if (radius == 0) return a;
  BitGrid tmp(a.rows(), a.cols());
  BitGrid out(a.rows(), a.cols());
  rowWindowMax(a, radius, tmp);
  colWindowMax(tmp, radius, out);
  return out;
}

BitGrid erodeSquare(const BitGrid& a, int radius) {
  MOSAIC_CHECK(radius >= 0, "erosion radius must be >= 0");
  if (radius == 0) return a;
  return bitNot(dilateSquare(bitNot(a), radius));
}

Grid<int> manhattanDistance(const BitGrid& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  const int inf = rows + cols;
  Grid<int> dist(rows, cols, inf);
  std::queue<std::pair<int, int>> frontier;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (a(r, c)) {
        dist(r, c) = 0;
        frontier.emplace(r, c);
      }
    }
  }
  static constexpr std::array<std::array<int, 2>, 4> kSteps{
      {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};
  while (!frontier.empty()) {
    const auto [r, c] = frontier.front();
    frontier.pop();
    for (const auto& s : kSteps) {
      const int nr = r + s[0];
      const int nc = c + s[1];
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      if (dist(nr, nc) > dist(r, c) + 1) {
        dist(nr, nc) = dist(r, c) + 1;
        frontier.emplace(nr, nc);
      }
    }
  }
  return dist;
}

Grid<int> labelComponents(const BitGrid& a, bool eightConnected,
                          int* componentCount) {
  const int rows = a.rows();
  const int cols = a.cols();
  Grid<int> labels(rows, cols, 0);
  int next = 0;
  std::vector<std::pair<int, int>> stack;
  const int steps4[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  const int steps8[8][2] = {{1, 0},  {-1, 0}, {0, 1},  {0, -1},
                            {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
  const auto* steps = eightConnected ? steps8 : steps4;
  const int stepCount = eightConnected ? 8 : 4;

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!a(r, c) || labels(r, c) != 0) continue;
      ++next;
      labels(r, c) = next;
      stack.emplace_back(r, c);
      while (!stack.empty()) {
        const auto [cr, cc] = stack.back();
        stack.pop_back();
        for (int s = 0; s < stepCount; ++s) {
          const int nr = cr + steps[s][0];
          const int nc = cc + steps[s][1];
          if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
          if (a(nr, nc) && labels(nr, nc) == 0) {
            labels(nr, nc) = next;
            stack.emplace_back(nr, nc);
          }
        }
      }
    }
  }
  if (componentCount != nullptr) *componentCount = next;
  return labels;
}

int countComponents(const BitGrid& a, bool eightConnected) {
  int count = 0;
  labelComponents(a, eightConnected, &count);
  return count;
}

int countHoles(const BitGrid& a) {
  const BitGrid background = bitNot(a);
  int count = 0;
  Grid<int> labels = labelComponents(background, /*eightConnected=*/false,
                                     &count);
  if (count == 0) return 0;
  std::vector<bool> touchesBorder(static_cast<std::size_t>(count) + 1, false);
  const int rows = a.rows();
  const int cols = a.cols();
  for (int c = 0; c < cols; ++c) {
    if (labels(0, c)) touchesBorder[static_cast<std::size_t>(labels(0, c))] = true;
    if (labels(rows - 1, c)) {
      touchesBorder[static_cast<std::size_t>(labels(rows - 1, c))] = true;
    }
  }
  for (int r = 0; r < rows; ++r) {
    if (labels(r, 0)) touchesBorder[static_cast<std::size_t>(labels(r, 0))] = true;
    if (labels(r, cols - 1)) {
      touchesBorder[static_cast<std::size_t>(labels(r, cols - 1))] = true;
    }
  }
  int holes = 0;
  for (int label = 1; label <= count; ++label) {
    if (!touchesBorder[static_cast<std::size_t>(label)]) ++holes;
  }
  return holes;
}

}  // namespace mosaic
