/// Tests for the mosaic_serve job service (docs/serving.md): JSON parsing,
/// bounded-queue admission control, the write-ahead journal and its
/// crash-replay semantics, deadline/cancel handling, checkpoint-corruption
/// recovery, and an 8-client concurrent hammer over the real TCP stack.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>

#include "opc/optimizer.hpp"
#include "serve/http.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/progress.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/failpoint.hpp"
#include "support/socket.hpp"
#include "support/telemetry/jsonin.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace serve {
namespace {

namespace fs = std::filesystem;
using telemetry::JsonValue;

/// Fresh per-test work directory under the gtest temp root.
std::string freshWorkDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Sanitizer instrumentation slows the SOCS kernel precompute by an order
/// of magnitude; give polled waits proportionally more rope there so the
/// `tsan` suite exercises the threading, not the wall clock.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kWaitScale = 6.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kWaitScale = 6.0;
#else
constexpr double kWaitScale = 1.0;
#endif
#else
constexpr double kWaitScale = 1.0;
#endif

/// Poll until `pred` holds or `timeoutSec` elapses; true iff it held.
template <typename Pred>
bool eventually(Pred pred, double timeoutSec = 20.0) {
  WallTimer timer;
  timeoutSec *= kWaitScale;
  while (timer.seconds() < timeoutSec) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// The cheap job every service test uses: tiny grid, few iterations.
JobSpec tinySpec(int iterations = 6) {
  JobSpec spec;
  spec.caseName = "B1";
  spec.method = "baseline";
  spec.pixelNm = 16;
  spec.iterations = iterations;
  spec.checkpointEvery = 2;
  return spec;
}

ServeConfig tinyConfig(const std::string& workDir, int workers = 1,
                       int queueCapacity = 4) {
  ServeConfig cfg;
  cfg.workDir = workDir;
  cfg.workers = workers;
  cfg.queueCapacity = queueCapacity;
  cfg.backoffMs = 1;
  return cfg;
}

JobState stateOf(const JobService& service, const std::string& id) {
  JobSnapshot snap;
  EXPECT_TRUE(service.snapshot(id, &snap));
  return snap.state;
}

bool isTerminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

// ------------------------------------------------------------ JSON input

TEST(JsonIn, ParsesScalarsAndNesting) {
  const JsonValue v = JsonValue::parse(
      R"({"s":"a\nbA","n":-2.5e2,"b":true,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  EXPECT_EQ(v.stringOr("s", ""), "a\nbA");
  EXPECT_EQ(v.numberOr("n", 0), -250.0);
  EXPECT_TRUE(v.boolOr("b", false));
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_TRUE(v.find("z")->isNull());
  ASSERT_NE(v.find("arr"), nullptr);
  EXPECT_EQ(v.find("arr")->asArray().size(), 3u);
  EXPECT_EQ(v.find("obj")->stringOr("k", ""), "v");
  EXPECT_EQ(v.stringOr("missing", "dflt"), "dflt");
}

TEST(JsonIn, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), InvalidArgument);
  // Nesting depth is capped so hostile input cannot blow the stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(JsonValue::parse(deep), InvalidArgument);
}

TEST(JsonIn, RoundTripsEmitterOutput) {
  telemetry::JsonObject out;
  out.set("ev", "submit");
  out.set("wall_s", 1.25);
  out.set("ok", true);
  out.set("name", "quote\"back\\slash");
  const JsonValue v = JsonValue::parse(out.str());
  EXPECT_EQ(v.stringOr("ev", ""), "submit");
  EXPECT_EQ(v.numberOr("wall_s", 0), 1.25);
  EXPECT_TRUE(v.boolOr("ok", false));
  EXPECT_EQ(v.stringOr("name", ""), "quote\"back\\slash");
}

// ------------------------------------------------------------- job model

TEST(JobSpecValidation, AcceptsBuiltinAndRandomCases) {
  EXPECT_NO_THROW(validateSpec(tinySpec()));
  JobSpec random = tinySpec();
  random.caseName = "random:42";
  EXPECT_NO_THROW(validateSpec(random));
}

TEST(JobSpecValidation, RejectsBadSpecs) {
  JobSpec spec = tinySpec();
  spec.caseName = "B11";
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
  spec = tinySpec();
  spec.caseName = "random:abc";
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
  spec = tinySpec();
  spec.method = "quantum";
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
  spec = tinySpec();
  spec.pixelNm = 0;
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
  spec = tinySpec();
  spec.maxAttempts = 0;
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
  spec = tinySpec();
  spec.deadlineSeconds = -1.0;
  EXPECT_THROW(validateSpec(spec), InvalidArgument);
}

TEST(JobSpecValidation, JsonRoundTrip) {
  JobSpec spec = tinySpec();
  spec.deadlineSeconds = 1.5;
  spec.maxAttempts = 3;
  telemetry::JsonObject obj;
  specToJson(spec, &obj);
  const JobSpec back = specFromJson(JsonValue::parse(obj.str()));
  EXPECT_EQ(back.caseName, spec.caseName);
  EXPECT_EQ(back.method, spec.method);
  EXPECT_EQ(back.pixelNm, spec.pixelNm);
  EXPECT_EQ(back.iterations, spec.iterations);
  EXPECT_EQ(back.deadlineSeconds, spec.deadlineSeconds);
  EXPECT_EQ(back.maxAttempts, spec.maxAttempts);
  EXPECT_EQ(back.checkpointEvery, spec.checkpointEvery);
}

TEST(MaskHash, DetectsSingleBitDifference) {
  RealGrid a(8, 8, 0.5);
  RealGrid b = a;
  EXPECT_EQ(maskHashHex(a), maskHashHex(b));
  EXPECT_EQ(maskHashHex(a).size(), 16u);
  b(3, 3) = 0.5000000000000001;
  EXPECT_NE(maskHashHex(a), maskHashHex(b));
}

// ------------------------------------------------------------- the queue

TEST(BoundedQueue, AdmissionControlAndFifoOrder) {
  BoundedJobQueue q(2);
  EXPECT_TRUE(q.tryPush("a"));
  EXPECT_TRUE(q.tryPush("b"));
  EXPECT_FALSE(q.tryPush("c"));  // full: rejected without blocking
  EXPECT_EQ(q.size(), 2u);
  std::string id;
  EXPECT_TRUE(q.pop(&id));
  EXPECT_EQ(id, "a");
  EXPECT_TRUE(q.tryPush("c"));
  EXPECT_TRUE(q.pop(&id));
  EXPECT_EQ(id, "b");
  EXPECT_TRUE(q.pop(&id));
  EXPECT_EQ(id, "c");
}

TEST(BoundedQueue, ForcePushBypassesCapacityForRecovery) {
  BoundedJobQueue q(1);
  EXPECT_TRUE(q.forcePush("r1"));
  EXPECT_TRUE(q.forcePush("r2"));
  EXPECT_FALSE(q.tryPush("new"));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, RemoveCancelsQueuedOnly) {
  BoundedJobQueue q(4);
  ASSERT_TRUE(q.tryPush("a"));
  ASSERT_TRUE(q.tryPush("b"));
  EXPECT_TRUE(q.remove("b"));
  EXPECT_FALSE(q.remove("b"));
  EXPECT_FALSE(q.remove("never-queued"));
  std::string id;
  EXPECT_TRUE(q.pop(&id));
  EXPECT_EQ(id, "a");
}

TEST(BoundedQueue, CloseDrainsThenUnblocks) {
  BoundedJobQueue q(4);
  ASSERT_TRUE(q.tryPush("a"));
  q.close();
  EXPECT_FALSE(q.tryPush("late"));
  std::string id;
  EXPECT_TRUE(q.pop(&id));   // queued items still drain after close
  EXPECT_FALSE(q.pop(&id));  // then pop unblocks with false
}

// ----------------------------------------------------------- the journal

TEST(Journal, ReplayReconstructsTerminalStates) {
  const std::string dir = freshWorkDir("journal_replay");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path);
    telemetry::JsonObject submit;
    submit.set("ev", "submit");
    submit.set("job", "job-000001");
    specToJson(tinySpec(), &submit);
    journal.append(submit);
    telemetry::JsonObject start;
    start.set("ev", "start");
    start.set("job", "job-000001");
    start.set("attempt", 1);
    journal.append(start);
    telemetry::JsonObject done;
    done.set("ev", "done");
    done.set("job", "job-000001");
    done.set("mask_hash", "00000000deadbeef");
    done.set("iterations", 6);
    journal.append(done);

    telemetry::JsonObject submit2;
    submit2.set("ev", "submit");
    submit2.set("job", "job-000002");
    specToJson(tinySpec(), &submit2);
    journal.append(submit2);
    telemetry::JsonObject start2;
    start2.set("ev", "start");
    start2.set("job", "job-000002");
    start2.set("attempt", 2);
    journal.append(start2);
    // job-000002 has no terminal record: the daemon died mid-run.
  }
  const ReplayResult replay = JobJournal::replay(path);
  ASSERT_EQ(replay.jobs.size(), 2u);
  EXPECT_EQ(replay.corruptLines, 0);
  EXPECT_EQ(replay.jobs[0].state, JobState::kDone);
  EXPECT_EQ(replay.jobs[0].maskHash, "00000000deadbeef");
  EXPECT_EQ(replay.jobs[0].iterationsDone, 6);
  EXPECT_EQ(replay.jobs[1].state, JobState::kRunning);  // unfinished
  EXPECT_EQ(replay.jobs[1].attempts, 2);
}

TEST(Journal, ToleratesTornTailAndGarbageLines) {
  const std::string dir = freshWorkDir("journal_torn");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path);
    telemetry::JsonObject submit;
    submit.set("ev", "submit");
    submit.set("job", "job-000001");
    specToJson(tinySpec(), &submit);
    journal.append(submit);
  }
  {
    // A crash mid-append can only tear the final line.
    std::ofstream out(path, std::ios::app);
    out << "{\"ev\":\"done\",\"job\":\"job-0000";  // torn
  }
  const ReplayResult replay = JobJournal::replay(path);
  ASSERT_EQ(replay.jobs.size(), 1u);
  EXPECT_EQ(replay.corruptLines, 1);
  EXPECT_EQ(replay.jobs[0].state, JobState::kQueued);  // still unfinished
}

TEST(Journal, MissingFileMeansFreshStart) {
  const ReplayResult replay =
      JobJournal::replay(freshWorkDir("journal_none") + "/journal.jsonl");
  EXPECT_TRUE(replay.jobs.empty());
  EXPECT_EQ(replay.totalLines, 0);
}

// ------------------------------------------------- service happy path

TEST(JobService, RunsASubmittedJobToCompletion) {
  JobService service(tinyConfig(freshWorkDir("svc_done")));
  const SubmitResult res = service.submit(tinySpec());
  ASSERT_EQ(res.status, SubmitStatus::kAccepted);
  EXPECT_EQ(res.id, "job-000001");
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, res.id) == JobState::kDone; }));
  JobSnapshot snap;
  ASSERT_TRUE(service.snapshot(res.id, &snap));
  EXPECT_EQ(snap.iterationsDone, 6);
  EXPECT_EQ(snap.maskHash.size(), 16u);
  EXPECT_GT(snap.wallSeconds, 0.0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.done, 1);
  EXPECT_EQ(stats.submitted, 1);
}

TEST(JobService, RejectsBadSpecsAtAdmission) {
  JobService service(tinyConfig(freshWorkDir("svc_bad")));
  JobSpec bad = tinySpec();
  bad.caseName = "B999";
  const SubmitResult res = service.submit(bad);
  EXPECT_EQ(res.status, SubmitStatus::kBadRequest);
  EXPECT_FALSE(res.message.empty());
}

// --------------------------------------------- admission under pressure

TEST(JobService, QueueFullRejectionIsTypedAndFast) {
  // One worker pinned by a slow job, capacity-1 queue: the third submit
  // must be rejected as queue_full, and the rejection must come back well
  // under the 100 ms admission contract (tryPush never blocks).
  failpoint::ScopedFailpoints slow("serve.worker:delay=400");
  JobService service(tinyConfig(freshWorkDir("svc_full"), 1, 1));
  const SubmitResult first = service.submit(tinySpec());
  ASSERT_EQ(first.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, first.id) == JobState::kRunning; }));
  const SubmitResult second = service.submit(tinySpec());
  ASSERT_EQ(second.status, SubmitStatus::kAccepted);  // fills the queue

  WallTimer rejectTimer;
  const SubmitResult third = service.submit(tinySpec());
  const double rejectSec = rejectTimer.seconds();
  EXPECT_EQ(third.status, SubmitStatus::kQueueFull);
  EXPECT_LT(rejectSec, 0.1);
  EXPECT_FALSE(third.message.empty());

  // Rejected jobs vanish: not queryable, not replayed.
  EXPECT_FALSE(service.snapshot("job-000003", nullptr));
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, second.id) == JobState::kDone; }));
  EXPECT_EQ(service.stats().rejected, 1);
}

// ------------------------------------------------- deadlines and cancel

TEST(JobService, DeadlineExpiryMidOptimization) {
  // 30 ms per iteration vs a 0.15 s budget: the optimizer must stop at a
  // poll point with the typed expired state, not run to completion.
  failpoint::ScopedFailpoints slow("optimizer.step:delay=30");
  JobService service(tinyConfig(freshWorkDir("svc_deadline")));
  JobSpec spec = tinySpec(1000);
  spec.deadlineSeconds = 0.15;
  const SubmitResult res = service.submit(spec);
  ASSERT_EQ(res.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return isTerminal(stateOf(service, res.id)); }));
  JobSnapshot snap;
  ASSERT_TRUE(service.snapshot(res.id, &snap));
  EXPECT_EQ(snap.state, JobState::kExpired);
  EXPECT_LT(snap.iterationsDone, 1000);
  EXPECT_NE(snap.error.find("deadline"), std::string::npos);
  EXPECT_EQ(service.stats().expired, 1);
}

TEST(JobService, CancelsQueuedAndRunningJobs) {
  failpoint::ScopedFailpoints slow("optimizer.step:delay=25");
  JobService service(tinyConfig(freshWorkDir("svc_cancel"), 1, 4));
  const SubmitResult running = service.submit(tinySpec(1000));
  ASSERT_EQ(running.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, running.id) == JobState::kRunning; }));
  const SubmitResult queued = service.submit(tinySpec());
  ASSERT_EQ(queued.status, SubmitStatus::kAccepted);

  // Queued job: canceled immediately, never runs.
  std::string message;
  EXPECT_TRUE(service.cancel(queued.id, &message));
  EXPECT_EQ(stateOf(service, queued.id), JobState::kCanceled);

  // Running job: stops at its next optimizer iteration.
  EXPECT_TRUE(service.cancel(running.id, &message));
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, running.id) == JobState::kCanceled; }));

  // Canceling a terminal job is refused with a reason.
  EXPECT_FALSE(service.cancel(running.id, &message));
  EXPECT_NE(message.find("terminal"), std::string::npos);
  EXPECT_FALSE(service.cancel("job-999999", &message));
  EXPECT_NE(message.find("unknown"), std::string::npos);
}

// ------------------------------------------------------- retry/backoff

TEST(JobService, RetriesWithBackoffThenSucceeds) {
  // First attempt throws, second succeeds.
  failpoint::ScopedFailpoints fp("serve.worker:throw@iter=1");
  JobService service(tinyConfig(freshWorkDir("svc_retry")));
  JobSpec spec = tinySpec();
  spec.maxAttempts = 2;
  const SubmitResult res = service.submit(spec);
  ASSERT_EQ(res.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, res.id) == JobState::kDone; }));
  JobSnapshot snap;
  ASSERT_TRUE(service.snapshot(res.id, &snap));
  EXPECT_EQ(snap.attempts, 2);
  EXPECT_EQ(service.stats().retries, 1);
}

TEST(JobService, FailsAfterExhaustingAttempts) {
  failpoint::ScopedFailpoints fp("serve.worker:throw");  // every attempt
  JobService service(tinyConfig(freshWorkDir("svc_fail")));
  JobSpec spec = tinySpec();
  spec.maxAttempts = 2;
  const SubmitResult res = service.submit(spec);
  ASSERT_EQ(res.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, res.id) == JobState::kFailed; }));
  JobSnapshot snap;
  ASSERT_TRUE(service.snapshot(res.id, &snap));
  EXPECT_EQ(snap.attempts, 2);
  EXPECT_NE(snap.error.find("failpoint"), std::string::npos);
}

// ----------------------------------------- crash recovery (the tentpole)

TEST(JobService, JournalReplayResumesBitIdenticallyAfterSimulatedKill) {
  // Reference: the same job, uninterrupted, in a separate work dir.
  JobSpec spec = tinySpec(12);
  spec.checkpointEvery = 5;  // last checkpoint at iter 10: resume replays 11-12
  std::string referenceHash;
  {
    JobService reference(tinyConfig(freshWorkDir("svc_crash_ref")));
    const SubmitResult res = reference.submit(spec);
    ASSERT_EQ(res.status, SubmitStatus::kAccepted);
    ASSERT_TRUE(eventually(
        [&] { return stateOf(reference, res.id) == JobState::kDone; }));
    JobSnapshot snap;
    ASSERT_TRUE(reference.snapshot(res.id, &snap));
    referenceHash = snap.maskHash;
    ASSERT_FALSE(referenceHash.empty());
  }

  const std::string workDir = freshWorkDir("svc_crash");
  {
    // Incarnation 1: the serve.crash fail point throws after the attempt's
    // work (checkpoints included) but before the terminal journal record —
    // the same window a real SIGKILL hits. The worker vanishes without a
    // trace, exactly like a killed process.
    failpoint::ScopedFailpoints crash("serve.crash:throw@iter=1");
    JobService service(tinyConfig(workDir));
    const SubmitResult res = service.submit(spec);
    ASSERT_EQ(res.status, SubmitStatus::kAccepted);
    ASSERT_TRUE(eventually(
        [&] { return failpoint::hitCount("serve.crash") >= 1; }));
    // The job is stuck running with no terminal journal record.
    EXPECT_EQ(stateOf(service, res.id), JobState::kRunning);
  }

  // Incarnation 2 on the same work dir: replay finds the unfinished job,
  // re-enqueues it, and the optimizer resumes from the checkpoint. The
  // recovered mask must be bit-identical to the uninterrupted run's.
  JobService restarted(tinyConfig(workDir));
  EXPECT_EQ(restarted.recoveredJobs(), 1);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(restarted, "job-000001") == JobState::kDone; }));
  JobSnapshot snap;
  ASSERT_TRUE(restarted.snapshot("job-000001", &snap));
  EXPECT_TRUE(snap.recovered);
  EXPECT_EQ(snap.maskHash, referenceHash);
  EXPECT_EQ(snap.iterationsDone, 12);
}

TEST(JobService, CheckpointDrainLeavesJobsResumable) {
  const std::string workDir = freshWorkDir("svc_drain");
  std::string id;
  {
    failpoint::ScopedFailpoints slow("optimizer.step:delay=25");
    JobService service(tinyConfig(workDir));
    const SubmitResult res = service.submit(tinySpec(1000));
    ASSERT_EQ(res.status, SubmitStatus::kAccepted);
    id = res.id;
    ASSERT_TRUE(eventually(
        [&] { return stateOf(service, id) == JobState::kRunning; }));
    service.drain(DrainMode::kCheckpoint);
    // Interrupted, not terminated: the job went back to queued.
    EXPECT_EQ(stateOf(service, id), JobState::kQueued);
  }
  JobService restarted(tinyConfig(workDir));
  EXPECT_EQ(restarted.recoveredJobs(), 1);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(restarted, id) == JobState::kDone; }, 120.0));
}

TEST(JobService, FinishDrainCompletesBacklog) {
  JobService service(tinyConfig(freshWorkDir("svc_finish"), 1, 8));
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    const SubmitResult res = service.submit(tinySpec());
    ASSERT_EQ(res.status, SubmitStatus::kAccepted);
    ids.push_back(res.id);
  }
  service.drain(DrainMode::kFinish);
  for (const std::string& id : ids) {
    EXPECT_EQ(stateOf(service, id), JobState::kDone) << id;
  }
  EXPECT_EQ(service.submit(tinySpec()).status, SubmitStatus::kShuttingDown);
}

// -------------------------------------- checkpoint-corruption hardening

OptimizerCheckpoint smallCheckpoint() {
  OptimizerCheckpoint ckpt;
  ckpt.iteration = 3;
  ckpt.step = 0.5;
  ckpt.bestObjective = 1.0;
  ckpt.params = RealGrid(4, 4, 0.25);
  ckpt.bestMask = RealGrid(4, 4, 0.5);
  return ckpt;
}

TEST(CheckpointHardening, TypedErrorsForMissingGarbageAndTruncated) {
  const std::string dir = freshWorkDir("ckpt_hard");
  EXPECT_THROW(loadOptimizerCheckpoint(dir + "/missing.ckpt"),
               CheckpointError);
  {
    std::ofstream out(dir + "/garbage.ckpt", std::ios::binary);
    out << "this is not a checkpoint at all, not even close";
  }
  EXPECT_THROW(loadOptimizerCheckpoint(dir + "/garbage.ckpt"),
               CheckpointError);

  const std::string good = dir + "/good.ckpt";
  saveOptimizerCheckpoint(good, smallCheckpoint());
  EXPECT_NO_THROW(loadOptimizerCheckpoint(good));

  // Truncate at every prefix length: each must throw the typed error, and
  // none may crash or silently succeed.
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t len : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{9}, std::size_t{1}}) {
    const std::string path = dir + "/trunc.ckpt";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW(loadOptimizerCheckpoint(path), CheckpointError)
        << "prefix length " << len;
  }
}

TEST(CheckpointHardening, RejectsVersionSkewAndTrailingBytes) {
  const std::string dir = freshWorkDir("ckpt_version");
  const std::string good = dir + "/good.ckpt";
  saveOptimizerCheckpoint(good, smallCheckpoint());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  {
    // Bump the version field (bytes 4..7).
    std::string skewed = bytes;
    skewed[4] = static_cast<char>(skewed[4] + 1);
    std::ofstream out(dir + "/skew.ckpt", std::ios::binary);
    out.write(skewed.data(), static_cast<std::streamsize>(skewed.size()));
    out.close();
    try {
      (void)loadOptimizerCheckpoint(dir + "/skew.ckpt");
      FAIL() << "version skew must throw";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
  {
    // Concatenated/doubly-written files must be rejected too.
    std::ofstream out(dir + "/trailing.ckpt", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
    out.close();
    EXPECT_THROW(loadOptimizerCheckpoint(dir + "/trailing.ckpt"),
                 CheckpointError);
  }
}

TEST(CheckpointHardening, CheckpointErrorIsAnInvalidArgument) {
  // Pre-existing catch sites key on InvalidArgument; the typed error must
  // stay inside that hierarchy.
  try {
    throw CheckpointError("unit");
  } catch (const InvalidArgument&) {
    SUCCEED();
  } catch (...) {
    FAIL() << "CheckpointError must derive from InvalidArgument";
  }
}

TEST(JobService, CorruptCheckpointRestartsJobCleanly) {
  // Hand-craft a crashed incarnation whose checkpoint is garbage: replay
  // re-enqueues the job, the resume fails with CheckpointError, and the
  // worker restarts it from scratch instead of failing it.
  const std::string workDir = freshWorkDir("svc_corrupt_ckpt");
  std::filesystem::create_directories(workDir + "/ckpt");
  {
    JobJournal journal(workDir + "/journal.jsonl");
    telemetry::JsonObject submit;
    submit.set("ev", "submit");
    submit.set("job", "job-000001");
    specToJson(tinySpec(), &submit);
    journal.append(submit);
    telemetry::JsonObject start;
    start.set("ev", "start");
    start.set("job", "job-000001");
    start.set("attempt", 1);
    journal.append(start);
  }
  {
    std::ofstream out(workDir + "/ckpt/job-000001.ckpt", std::ios::binary);
    out << "garbage bytes that are definitely not a checkpoint";
  }
  JobService service(tinyConfig(workDir));
  EXPECT_EQ(service.recoveredJobs(), 1);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, "job-000001") == JobState::kDone; }));
}

// ------------------------------------------------------------- protocol

TEST(Protocol, PingUnknownOpAndMalformedJson) {
  JobService service(tinyConfig(freshWorkDir("proto_basic")));
  EXPECT_NE(handleRequestLine(service, R"({"op":"ping"})")
                .response.find("\"pong\":true"),
            std::string::npos);
  EXPECT_NE(handleRequestLine(service, R"({"op":"frobnicate"})")
                .response.find("bad_request"),
            std::string::npos);
  EXPECT_NE(handleRequestLine(service, "{not json").response.find(
                "bad_request"),
            std::string::npos);
}

TEST(Protocol, SubmitStatusResultCancelFlow) {
  JobService service(tinyConfig(freshWorkDir("proto_flow")));
  const ProtocolResult submitted = handleRequestLine(
      service,
      R"({"op":"submit","case":"B1","method":"baseline","pixel_nm":16,)"
      R"("iterations":6})");
  const JsonValue reply = JsonValue::parse(submitted.response);
  ASSERT_TRUE(reply.boolOr("ok", false)) << submitted.response;
  const std::string id = reply.stringOr("job", "");
  ASSERT_FALSE(id.empty());

  ASSERT_TRUE(eventually([&] {
    const ProtocolResult status = handleRequestLine(
        service, R"({"op":"status","job":")" + id + R"("})");
    return JsonValue::parse(status.response).stringOr("state", "") == "done";
  }));

  const ProtocolResult result = handleRequestLine(
      service, R"({"op":"result","job":")" + id + R"("})");
  const JsonValue resultJson = JsonValue::parse(result.response);
  EXPECT_TRUE(resultJson.boolOr("ok", false));
  EXPECT_EQ(resultJson.stringOr("mask_hash", "").size(), 16u);

  EXPECT_NE(handleRequestLine(service,
                              R"({"op":"status","job":"job-424242"})")
                .response.find("not_found"),
            std::string::npos);
  EXPECT_NE(handleRequestLine(service, R"({"op":"submit","case":"B77"})")
                .response.find("bad_request"),
            std::string::npos);

  const ProtocolResult stats =
      handleRequestLine(service, R"({"op":"stats"})");
  const JsonValue statsJson = JsonValue::parse(stats.response);
  EXPECT_EQ(statsJson.intOr("done", 0), 1);
  EXPECT_EQ(statsJson.intOr("workers", 0), 1);
}

TEST(Protocol, ResultOnUnfinishedJobIsNotReady) {
  failpoint::ScopedFailpoints slow("optimizer.step:delay=25");
  JobService service(tinyConfig(freshWorkDir("proto_notready")));
  const ProtocolResult submitted = handleRequestLine(
      service,
      R"({"op":"submit","case":"B1","method":"baseline","pixel_nm":16,)"
      R"("iterations":1000})");
  const std::string id =
      JsonValue::parse(submitted.response).stringOr("job", "");
  ASSERT_FALSE(id.empty());
  EXPECT_NE(handleRequestLine(service,
                              R"({"op":"result","job":")" + id + R"("})")
                .response.find("not_ready"),
            std::string::npos);
  std::string message;
  service.cancel(id, &message);
}

TEST(Protocol, ShutdownOpCarriesDrainMode) {
  JobService service(tinyConfig(freshWorkDir("proto_shutdown")));
  const ProtocolResult finish =
      handleRequestLine(service, R"({"op":"shutdown"})");
  EXPECT_TRUE(finish.shutdown);
  EXPECT_EQ(finish.shutdownMode, DrainMode::kFinish);
  const ProtocolResult ckpt = handleRequestLine(
      service, R"({"op":"shutdown","mode":"checkpoint"})");
  EXPECT_TRUE(ckpt.shutdown);
  EXPECT_EQ(ckpt.shutdownMode, DrainMode::kCheckpoint);
  const ProtocolResult bad =
      handleRequestLine(service, R"({"op":"shutdown","mode":"maybe"})");
  EXPECT_FALSE(bad.shutdown);
  EXPECT_NE(bad.response.find("bad_request"), std::string::npos);
}

// -------------------------------------------- concurrent clients (TCP)

TEST(ServeServer, EightClientHammerOverTcp) {
  JobService service(tinyConfig(freshWorkDir("tcp_hammer"), 2, 64));
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  ServeServer server(service, opts);
  CancelToken stop;
  std::thread serverThread([&] { server.serveForever(&stop); });

  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 2;
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        LineChannel channel(connectTcp("127.0.0.1", server.port()));
        std::vector<std::string> ids;
        for (int j = 0; j < kJobsPerClient; ++j) {
          // Distinct random clips so concurrent jobs are not all identical.
          const std::string request =
              R"({"op":"submit","case":"random:)" +
              std::to_string(1000 + c * kJobsPerClient + j) +
              R"(","method":"baseline","pixel_nm":16,"iterations":3})";
          channel.writeLine(request);
          std::string line;
          ASSERT_TRUE(channel.readLine(&line, 15000));
          const JsonValue reply = JsonValue::parse(line);
          ASSERT_TRUE(reply.boolOr("ok", false)) << line;
          ids.push_back(reply.stringOr("job", ""));
        }
        for (const std::string& id : ids) {
          WallTimer timer;
          for (;;) {
            channel.writeLine(R"({"op":"status","job":")" + id + R"("})");
            std::string line;
            ASSERT_TRUE(channel.readLine(&line, 15000));
            const std::string state =
                JsonValue::parse(line).stringOr("state", "");
            if (state == "done") {
              completed.fetch_add(1);
              break;
            }
            ASSERT_NE(state, "failed") << line;
            ASSERT_LT(timer.seconds(), 120.0) << "job " << id << " stuck";
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.cancel();
  serverThread.join();
  service.drain(DrainMode::kFinish);

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kJobsPerClient);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kJobsPerClient);
  EXPECT_EQ(stats.done, kClients * kJobsPerClient);
  // No leaked jobs: everything submitted reached a terminal state.
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.running, 0);
}

// ----------------------------------------------------------- progress bus

TEST(ProgressBus, DeliversInOrderAndTerminalCloses) {
  ProgressBus bus;
  auto sub = bus.subscribe("job-1");
  for (int i = 1; i <= 3; ++i) {
    ProgressEvent ev;
    ev.job = "job-1";
    ev.seq = bus.nextSeq("job-1");
    ev.iteration = i;
    ev.objective = 100.0 - i;
    bus.publish(ev);
  }
  bus.publishTerminal("job-1", "done", 3, 97.0, 12.5);

  ProgressEvent ev;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(sub->next(&ev, 1000));
    EXPECT_EQ(ev.iteration, i);
    EXPECT_FALSE(ev.terminal);
  }
  ASSERT_TRUE(sub->next(&ev, 1000));
  EXPECT_TRUE(ev.terminal);
  EXPECT_EQ(ev.state, "done");
  EXPECT_EQ(ev.iteration, 3);
  EXPECT_FALSE(sub->next(&ev, 10));
  EXPECT_TRUE(sub->finished());
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(ProgressBus, ReplayRingServesLateSubscriber) {
  ProgressBus bus;
  for (int i = 1; i <= 2; ++i) {
    ProgressEvent ev;
    ev.job = "job-2";
    ev.seq = bus.nextSeq("job-2");
    ev.iteration = i;
    bus.publish(ev);
  }
  bus.publishTerminal("job-2", "failed", 2, 0.0, 3.0);

  // Subscribe after everything already happened: the replay ring delivers
  // the tail and the stream still terminates.
  auto sub = bus.subscribe("job-2");
  ProgressEvent ev;
  ASSERT_TRUE(sub->next(&ev, 1000));
  EXPECT_EQ(ev.iteration, 1);
  ASSERT_TRUE(sub->next(&ev, 1000));
  EXPECT_EQ(ev.iteration, 2);
  ASSERT_TRUE(sub->next(&ev, 1000));
  EXPECT_TRUE(ev.terminal);
  EXPECT_EQ(ev.state, "failed");
  EXPECT_TRUE(sub->finished());
}

TEST(ProgressBus, SlowConsumerDropsOldestNotNewest) {
  ProgressBus bus;
  auto sub = bus.subscribe("job-3");
  constexpr int kPublished = 600;  // far above the 256-event queue cap
  for (int i = 0; i < kPublished; ++i) {
    ProgressEvent ev;
    ev.job = "job-3";
    ev.seq = bus.nextSeq("job-3");
    ev.iteration = i;
    bus.publish(ev);
  }
  bus.publishTerminal("job-3", "done", kPublished - 1, 0.0, 1.0);

  EXPECT_GT(sub->dropped(), 0u);
  ProgressEvent ev;
  ASSERT_TRUE(sub->next(&ev, 1000));
  // The oldest events were evicted, so the first delivered seq has a gap —
  // exactly what the wire protocol documents as the drop signal.
  EXPECT_GT(ev.seq, 0);
  ProgressEvent last;
  while (sub->next(&last, 1000)) ev = last;
  EXPECT_TRUE(ev.terminal);
  EXPECT_EQ(ev.iteration, kPublished - 1);
}

TEST(ProgressBus, SecondTerminalIsNoOp) {
  ProgressBus bus;
  auto sub = bus.subscribe("job-4");
  bus.publishTerminal("job-4", "done", 1, 0.0, 1.0);
  bus.publishTerminal("job-4", "done", 1, 0.0, 1.0);  // must not double-end
  ProgressEvent ev;
  int ends = 0;
  while (sub->next(&ev, 200)) {
    if (ev.terminal) ++ends;
  }
  EXPECT_EQ(ends, 1);
  EXPECT_TRUE(sub->finished());
}

// ------------------------------------------------------------- watch op

TEST(Protocol, WatchValidatesJobId) {
  const std::string workDir = freshWorkDir("watch_validate");
  JobService service(tinyConfig(workDir));
  ProtocolResult missing = handleRequestLine(service, R"({"op":"watch"})");
  EXPECT_NE(missing.response.find("bad_request"), std::string::npos);
  EXPECT_EQ(missing.watch, nullptr);
  ProtocolResult unknown =
      handleRequestLine(service, R"({"op":"watch","job":"nope"})");
  EXPECT_NE(unknown.response.find("not_found"), std::string::npos);
  EXPECT_EQ(unknown.watch, nullptr);
  service.drain(DrainMode::kFinish);
}

TEST(Protocol, WatchStreamsProgressThenEnd) {
  const std::string workDir = freshWorkDir("watch_stream");
  JobService service(tinyConfig(workDir));
  const SubmitResult submit = service.submit(tinySpec(6));
  ASSERT_EQ(submit.status, SubmitStatus::kAccepted);

  const ProtocolResult watch = handleRequestLine(
      service, R"({"op":"watch","job":")" + submit.id + R"("})");
  ASSERT_NE(watch.watch, nullptr) << watch.response;
  const JsonValue ack = JsonValue::parse(watch.response);
  EXPECT_TRUE(ack.boolOr("ok", false)) << watch.response;
  EXPECT_EQ(ack.stringOr("watching", ""), submit.id);

  int progressEvents = 0;
  long long lastSeq = -1;
  bool sawEnd = false;
  ProgressEvent ev;
  WallTimer timer;
  while (timer.seconds() < 60.0) {
    if (!watch.watch->next(&ev, 200)) {
      if (watch.watch->finished()) break;
      continue;
    }
    EXPECT_GT(ev.seq, lastSeq);
    lastSeq = ev.seq;
    if (ev.terminal) {
      sawEnd = true;
      EXPECT_EQ(ev.state, "done");
      break;
    }
    ++progressEvents;
    EXPECT_GT(ev.iteration, 0);
    EXPECT_TRUE(std::isfinite(ev.objective));
  }
  EXPECT_TRUE(sawEnd);
  EXPECT_GT(progressEvents, 0);

  // The streamed JSON for both event shapes parses and carries the
  // documented fields.
  ProgressEvent sample;
  sample.job = submit.id;
  sample.seq = 5;
  sample.iteration = 3;
  sample.objective = 12.0;
  const std::string progressLine = progressEventToJson(sample);
  const JsonValue parsed = JsonValue::parse(progressLine);
  EXPECT_EQ(parsed.stringOr("ev", ""), "progress");
  EXPECT_EQ(parsed.numberOr("iteration", 0), 3.0);
  sample.terminal = true;
  sample.state = "done";
  const JsonValue endParsed = JsonValue::parse(progressEventToJson(sample));
  EXPECT_EQ(endParsed.stringOr("ev", ""), "end");
  EXPECT_EQ(endParsed.stringOr("state", ""), "done");

  service.drain(DrainMode::kFinish);
}

TEST(Protocol, WatchOnFinishedJobEndsImmediately) {
  const std::string workDir = freshWorkDir("watch_done");
  JobService service(tinyConfig(workDir));
  const SubmitResult submit = service.submit(tinySpec(3));
  ASSERT_EQ(submit.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return isTerminal(stateOf(service, submit.id)); }, 60.0));

  const ProtocolResult watch = handleRequestLine(
      service, R"({"op":"watch","job":")" + submit.id + R"("})");
  ASSERT_NE(watch.watch, nullptr) << watch.response;
  bool sawEnd = false;
  ProgressEvent ev;
  WallTimer timer;
  while (timer.seconds() < 20.0) {
    if (!watch.watch->next(&ev, 200)) {
      if (watch.watch->finished()) break;
      continue;
    }
    if (ev.terminal) {
      sawEnd = true;
      break;
    }
  }
  EXPECT_TRUE(sawEnd) << "watch on a terminal job must end, not hang";
  service.drain(DrainMode::kFinish);
}

// ------------------------------------------------------------- http plane

TEST(Http, RoutesMetricsHealthzJobsAndFlightrec) {
  const std::string workDir = freshWorkDir("http_routes");
  JobService service(tinyConfig(workDir));
  const SubmitResult submit = service.submit(tinySpec(3));
  ASSERT_EQ(submit.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(eventually(
      [&] { return stateOf(service, submit.id) == JobState::kDone; }, 60.0));

  const HttpResponse health = routeHttpRequest(service, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ok\":true"), std::string::npos);

  const HttpResponse metrics = routeHttpRequest(service, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.contentType.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.body.find("process_peak_rss_mb"), std::string::npos)
      << "process gauges must be refreshed at scrape time";

  const HttpResponse jobs = routeHttpRequest(service, "/jobs");
  EXPECT_EQ(jobs.status, 200);
  const JsonValue parsed = JsonValue::parse(jobs.body);
  EXPECT_GE(parsed.numberOr("queue_depth", -1.0), 0.0) << jobs.body;
  EXPECT_NE(jobs.body.find("\"job\":\"" + submit.id + "\""),
            std::string::npos)
      << jobs.body;
  EXPECT_NE(jobs.body.find("\"trace\":\"t-"), std::string::npos) << jobs.body;

  const HttpResponse flightrec = routeHttpRequest(service, "/debug/flightrec");
  EXPECT_EQ(flightrec.status, 200);
  EXPECT_EQ(flightrec.contentType, "application/x-ndjson");
  EXPECT_NE(flightrec.body.find("\"kind\":\"admit\""), std::string::npos)
      << "the submit above must have left an admission event";

  const HttpResponse missing = routeHttpRequest(service, "/nope");
  EXPECT_EQ(missing.status, 404);
  service.drain(DrainMode::kFinish);
}

TEST(Http, ServesCurlStyleRequestsOverTcp) {
  const std::string workDir = freshWorkDir("http_tcp");
  JobService service(tinyConfig(workDir));
  HttpServer http(service, 0);
  ASSERT_GT(http.port(), 0);

  const auto fetch = [&](const std::string& path) {
    LineChannel channel(connectTcp("127.0.0.1", http.port()));
    channel.writeAll("GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
    std::string all;
    std::string line;
    while (channel.readLine(&line, 5000)) {
      all += line;
      all += '\n';
    }
    return all;
  };

  const std::string health = fetch("/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Content-Length:"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos) << health;

  const std::string metrics = fetch("/metrics?refresh=1");  // query stripped
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string missing = fetch("/definitely-not-a-route");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  {
    LineChannel channel(connectTcp("127.0.0.1", http.port()));
    channel.writeAll("POST /metrics HTTP/1.1\r\n\r\n");
    std::string line;
    ASSERT_TRUE(channel.readLine(&line, 5000));
    EXPECT_NE(line.find("405"), std::string::npos) << line;
  }

  http.stop();
  service.drain(DrainMode::kFinish);
}

}  // namespace
}  // namespace serve
}  // namespace mosaic
