#include "opc/mask_params.hpp"

#include <algorithm>
#include <cmath>

namespace mosaic {

MaskTransform::MaskTransform(double thetaM, double low, double high)
    : thetaM_(thetaM), low_(low), high_(high) {
  MOSAIC_CHECK(thetaM > 0, "theta_M must be positive");
  MOSAIC_CHECK(high > low, "mask transmission range must be non-empty");
  MOSAIC_CHECK(high > 0, "the clear transmission must be positive");
}

RealGrid MaskTransform::toMask(const RealGrid& params) const {
  RealGrid mask(params.rows(), params.cols());
  const double span = high_ - low_;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double s = 1.0 / (1.0 + std::exp(-thetaM_ * params.data()[i]));
    mask.data()[i] = low_ + span * s;
  }
  return mask;
}

RealGrid MaskTransform::toParams(const RealGrid& mask, double clampEps) const {
  MOSAIC_CHECK(clampEps > 0 && clampEps < 0.5, "clampEps must be in (0, 0.5)");
  RealGrid params(mask.rows(), mask.cols());
  const double span = high_ - low_;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    const double s = std::clamp((mask.data()[i] - low_) / span, clampEps,
                                1.0 - clampEps);
    params.data()[i] = std::log(s / (1.0 - s)) / thetaM_;
  }
  return params;
}

void MaskTransform::chainRule(const RealGrid& mask, RealGrid& gradInOut) const {
  MOSAIC_CHECK(mask.sameShape(gradInOut), "mask/gradient shape mismatch");
  const double span = high_ - low_;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    // dM/dP = theta_M * span * s * (1 - s) with s the sigmoid value.
    const double s = (mask.data()[i] - low_) / span;
    gradInOut.data()[i] *= thetaM_ * span * s * (1.0 - s);
  }
}

BitGrid MaskTransform::quantizeFeatures(const RealGrid& mask) const {
  const double mid = 0.5 * (low_ + high_);
  BitGrid out(mask.rows(), mask.cols());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out.data()[i] = mask.data()[i] > mid ? 1u : 0u;
  }
  return out;
}

RealGrid MaskTransform::materialize(const BitGrid& features) const {
  RealGrid out(features.rows(), features.cols());
  for (std::size_t i = 0; i < features.size(); ++i) {
    out.data()[i] = features.data()[i] ? high_ : low_;
  }
  return out;
}

BitGrid MaskTransform::binarize(const RealGrid& mask) {
  BitGrid out(mask.rows(), mask.cols());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out.data()[i] = mask.data()[i] > 0.5 ? 1u : 0u;
  }
  return out;
}

}  // namespace mosaic
