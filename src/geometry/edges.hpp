#pragma once
/// \file edges.hpp
/// Boundary edge extraction and EPE sample-point placement (paper Fig. 3:
/// the sets HS / VS of samples on horizontal / vertical edges, spaced every
/// `spacing` nm along the target boundary).

#include <vector>

#include "math/grid.hpp"

namespace mosaic {

/// A maximal straight boundary run of the target raster.
///
/// Horizontal edges separate two vertically adjacent pixel rows: `boundary`
/// is the index b such that the edge lies between rows b-1 and b; the run
/// spans columns [lo, hi]. Vertical edges are symmetric (boundary between
/// columns b-1 and b, run over rows [lo, hi]).
struct EdgeSegment {
  bool horizontal = true;
  int boundary = 0;   ///< in [1, n-1] for interior edges
  int lo = 0;         ///< first pixel index along the edge (inclusive)
  int hi = 0;         ///< last pixel index along the edge (inclusive)
  bool insideLow = false;  ///< true if the pattern is on the lower-index side

  [[nodiscard]] int length() const { return hi - lo + 1; }
};

/// An EPE measurement site on the target boundary.
struct SamplePoint {
  bool horizontal = true;  ///< orientation of the *edge* it sits on
  int boundary = 0;        ///< see EdgeSegment::boundary
  int along = 0;           ///< pixel index along the edge
  bool insideLow = false;  ///< pattern on the lower-index side
};

/// Extract all maximal boundary runs of a binary target raster. Pixels
/// outside the grid are treated as background, so pattern touching the clip
/// border produces edges at boundary 0 / n -- the suite generator keeps a
/// margin so this does not occur in practice.
std::vector<EdgeSegment> extractEdges(const BitGrid& target);

/// Place EPE sample points every `spacingPx` pixels along each edge run.
/// Runs shorter than `spacingPx` but at least `minRunPx` long receive one
/// midpoint sample (line ends matter for EPE); shorter runs are skipped.
std::vector<SamplePoint> placeSamples(const std::vector<EdgeSegment>& edges,
                                      int spacingPx, int minRunPx = 2);

/// Convenience: extractEdges + placeSamples.
std::vector<SamplePoint> extractSamples(const BitGrid& target, int spacingPx,
                                        int minRunPx = 2);

}  // namespace mosaic
