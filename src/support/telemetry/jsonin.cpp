#include "support/telemetry/jsonin.hpp"

#include <cmath>
#include <cstdlib>

#include "support/error.hpp"
#include "support/telemetry/json.hpp"

namespace mosaic {
namespace telemetry {
namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Recursive-descent parser over a string_view; one instance per parse().
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parseValue(0);
    skipSpace();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json: " + what + " at offset " +
                          std::to_string(pos_));
  }

  void check(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expectLiteral(std::string_view word) {
    check(text_.substr(pos_, word.size()) == word, "bad literal");
    pos_ += word.size();
  }

  JsonValue parseValue(int depth) {
    check(depth < kMaxDepth, "nesting too deep");
    skipSpace();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{':
        return parseObject(depth);
      case '[':
        return parseArray(depth);
      case '"':
        value.type_ = JsonValue::Type::kString;
        value.string_ = parseString();
        return value;
      case 't':
        expectLiteral("true");
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = true;
        return value;
      case 'f':
        expectLiteral("false");
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = false;
        return value;
      case 'n':
        expectLiteral("null");
        return value;
      default:
        value.type_ = JsonValue::Type::kNumber;
        value.number_ = parseNumber();
        return value;
    }
  }

  JsonValue parseObject(int depth) {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    skipSpace();
    if (consume('}')) return value;
    for (;;) {
      skipSpace();
      check(peek() == '"', "expected object key string");
      std::string key = parseString();
      skipSpace();
      expect(':');
      value.object_.emplace_back(std::move(key), parseValue(depth + 1));
      skipSpace();
      if (consume(',')) continue;
      expect('}');
      return value;
    }
  }

  JsonValue parseArray(int depth) {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    skipSpace();
    if (consume(']')) return value;
    for (;;) {
      value.array_.push_back(parseValue(depth + 1));
      skipSpace();
      if (consume(',')) continue;
      expect(']');
      return value;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    bool sawHighByte = false;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        // Raw multi-byte input is sanitized on the way in: a malformed
        // UTF-8 sequence in a journal or protocol line becomes U+FFFD
        // instead of propagating garbage bytes into re-emitted records.
        return sawHighByte ? sanitizeUtf8(out) : out;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        if (static_cast<unsigned char>(c) >= 0x80) sawHighByte = true;
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            check(pos_ < text_.size(), "truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          appendUtf8(out, code);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  /// Encode a BMP code point as UTF-8. Surrogate code points (which are
  /// not encodable as UTF-8 and would need pair decoding the emitter never
  /// produces) are sanitized to U+FFFD instead of emitted as invalid
  /// three-byte sequences.
  static void appendUtf8(std::string& out, unsigned code) {
    if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    check(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::asBool() const {
  MOSAIC_CHECK(isBool(), "json value is not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  MOSAIC_CHECK(isNumber(), "json value is not a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  MOSAIC_CHECK(isString(), "json value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  MOSAIC_CHECK(isArray(), "json value is not an array");
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->string_ : std::move(fallback);
}

double JsonValue::numberOr(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->number_ : fallback;
}

int JsonValue::intOr(std::string_view key, int fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->isNumber()) return fallback;
  return static_cast<int>(v->number_);
}

bool JsonValue::boolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isBool() ? v->bool_ : fallback;
}

}  // namespace telemetry
}  // namespace mosaic
