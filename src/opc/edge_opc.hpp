#pragma once
/// \file edge_opc.hpp
/// Forward model-based OPC via edge fragmentation and movement (the
/// classic pre-ILT approach the paper's Sec. 1 attributes to Cobb [2]):
/// target edges are fragmented into segments, each segment carries an
/// integer bias, and the biases are iterated against the simulated print
/// until the EPE at every segment's control point is inside tolerance.
///
/// This is the strongest conventional baseline in the library -- it
/// optimizes the same EPE the contest scores, but with the restricted
/// edge-movement solution space whose limits motivate ILT.

#include <vector>

#include "geometry/edges.hpp"
#include "litho/simulator.hpp"
#include "math/grid.hpp"
#include "opc/sraf.hpp"

namespace mosaic {

struct EdgeOpcConfig {
  int maxIterations = 20;
  int fragmentLengthNm = 64;  ///< maximal segment length along an edge
  int maxBiasNm = 16;         ///< clamp on per-segment edge movement
  int maxStepNm = 8;          ///< largest single-iteration bias change
  double damping = 0.3;       ///< fraction of the measured EPE fed back
                              ///< (gentle damping avoids the oscillation
                              ///< dense line/space neighborhoods excite)
  int inLoopKernels = 9;      ///< SOCS truncation during iteration
  SrafConfig sraf = {};       ///< assist features on the final mask
};

/// One edge fragment with its current bias.
struct EdgeFragment {
  EdgeSegment segment;  ///< sub-run of a target boundary edge
  int biasPx = 0;       ///< outward (+) / inward (-) movement in pixels
};

struct EdgeOpcResult {
  BitGrid mask;                        ///< best corrected mask (with SRAF)
  std::vector<EdgeFragment> fragments; ///< fragment biases of that mask
  int iterations = 0;
  int bestViolations = 0;              ///< EPE violations at control points
  double finalMeanAbsEpeNm = 0.0;      ///< mean |EPE| of the best iterate
};

/// Split the target's boundary edges into fragments of at most
/// `fragmentLengthPx` (the trailing piece absorbs the remainder).
std::vector<EdgeFragment> fragmentEdges(const BitGrid& target,
                                        int fragmentLengthPx);

/// Apply fragment biases to the target raster: each fragment shifts its
/// stretch of boundary outward (grow) or inward (shrink).
BitGrid applyFragmentBiases(const BitGrid& target,
                            const std::vector<EdgeFragment>& fragments);

/// Run iterative model-based OPC.
EdgeOpcResult runEdgeOpc(const LithoSimulator& sim, const BitGrid& target,
                         const EdgeOpcConfig& config = {});

}  // namespace mosaic
