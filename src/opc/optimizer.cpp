#include "opc/optimizer.hpp"

#include <cmath>

#include "math/stats.hpp"
#include "support/log.hpp"

namespace mosaic {

OptimizeResult optimizeMask(const IltObjective& objective,
                            const RealGrid& initialMask,
                            const IterationCallback& callback) {
  const IltConfig& cfg = objective.config();
  const MaskTransform transform(cfg.thetaM, cfg.maskLow, cfg.maskHigh);

  RealGrid params = transform.toParams(initialMask);
  RealGrid mask = transform.toMask(params);
  IltObjective::Evaluation eval = objective.evaluate(mask, true);

  OptimizeResult result;
  result.bestMask = mask;
  result.bestObjective = eval.value;
  result.bestIteration = 0;

  double step = cfg.stepSize;
  double previousValue = eval.value;
  int sinceImprovement = 0;

  // State for the momentum / Adam descent variants.
  RealGrid velocity;
  RealGrid adamM;
  RealGrid adamV;
  if (cfg.descentVariant == DescentVariant::kMomentum) {
    velocity = RealGrid(params.rows(), params.cols(), 0.0);
  } else if (cfg.descentVariant == DescentVariant::kAdam) {
    adamM = RealGrid(params.rows(), params.cols(), 0.0);
    adamV = RealGrid(params.rows(), params.cols(), 0.0);
  }

  for (int iter = 1; iter <= cfg.maxIterations; ++iter) {
    // Gradient in P-space via the sigmoid chain rule (Eq. 8).
    RealGrid gradP = eval.gradMask;
    transform.chainRule(mask, gradP);
    const double gradRms = rms(gradP);

    IterationRecord record;
    record.iteration = iter;
    record.rmsGradient = gradRms;

    if (gradRms < cfg.tolRmsGradient) {
      record.objective = eval.value;
      record.targetTerm = eval.targetValue;
      record.pvbTerm = eval.pvbValue;
      record.stepSize = step;
      result.history.push_back(record);
      result.converged = true;
      if (callback) callback(record, mask);
      break;
    }

    // Jump technique [12]: after a streak without improvement, blow the
    // step up once to hop to a different basin; the best iterate is kept
    // separately so this is risk-free.
    bool jumped = false;
    if (sinceImprovement >= cfg.jumpPeriod) {
      step *= cfg.jumpFactor;
      sinceImprovement = 0;
      jumped = true;
    }

    // Descent update (Alg. 1 line 6 for the plain variant).
    switch (cfg.descentVariant) {
      case DescentVariant::kPlain: {
        const double scale = step / gradRms;
        for (std::size_t i = 0; i < params.size(); ++i) {
          params.data()[i] -= scale * gradP.data()[i];
        }
        break;
      }
      case DescentVariant::kMomentum: {
        const double invRms = 1.0 / gradRms;
        for (std::size_t i = 0; i < params.size(); ++i) {
          velocity.data()[i] = cfg.momentum * velocity.data()[i] +
                               invRms * gradP.data()[i];
          params.data()[i] -= step * velocity.data()[i];
        }
        break;
      }
      case DescentVariant::kAdam: {
        const double b1 = cfg.adamBeta1;
        const double b2 = cfg.adamBeta2;
        const double corr1 = 1.0 - std::pow(b1, iter);
        const double corr2 = 1.0 - std::pow(b2, iter);
        for (std::size_t i = 0; i < params.size(); ++i) {
          const double g = gradP.data()[i];
          adamM.data()[i] = b1 * adamM.data()[i] + (1.0 - b1) * g;
          adamV.data()[i] = b2 * adamV.data()[i] + (1.0 - b2) * g * g;
          const double mHat = adamM.data()[i] / corr1;
          const double vHat = adamV.data()[i] / corr2;
          params.data()[i] -=
              step * mHat / (std::sqrt(vHat) + cfg.adamEpsilon);
        }
        break;
      }
    }
    mask = transform.toMask(params);
    eval = objective.evaluate(mask, true);

    const bool improved = eval.value < previousValue;
    if (improved) {
      step *= cfg.stepGrowth;
      sinceImprovement = 0;
    } else {
      step *= cfg.stepShrink;
      ++sinceImprovement;
    }
    previousValue = eval.value;

    if (eval.value < result.bestObjective) {
      result.bestObjective = eval.value;
      result.bestMask = mask;
      result.bestIteration = iter;
    }

    record.objective = eval.value;
    record.targetTerm = eval.targetValue;
    record.pvbTerm = eval.pvbValue;
    record.stepSize = step;
    record.improved = improved;
    record.jumped = jumped;
    result.history.push_back(record);
    LOG_DEBUG("iter " << iter << " F=" << eval.value << " target="
                      << eval.targetValue << " pvb=" << eval.pvbValue
                      << " |g|=" << gradRms << " step=" << step
                      << (jumped ? " [jump]" : ""));
    if (callback) callback(record, mask);
  }
  return result;
}

}  // namespace mosaic
