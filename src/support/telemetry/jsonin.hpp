#pragma once
/// \file jsonin.hpp
/// Minimal JSON parser, the read-side counterpart of json.hpp. Introduced
/// for the serve subsystem: the JSONL job protocol and the write-ahead job
/// journal are parsed with this (docs/serving.md). It handles the full
/// JSON grammar (objects, arrays, strings with escapes, numbers, bools,
/// null) but stays deliberately small: one DOM value type, no streaming,
/// no comments/extensions. Inputs are single-line records a few KB in
/// size, so a recursive-descent parser over a string_view is the right
/// amount of machinery.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mosaic {
namespace telemetry {

/// Parsed JSON value (DOM node). Accessors throw mosaic::InvalidArgument
/// on type mismatch; the *Or lookups make flat-object protocol parsing
/// terse (missing key or wrong type -> default).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete JSON document; trailing non-space input is an
  /// error. Throws InvalidArgument with an offset on malformed input.
  /// Nesting is capped (64 levels) so hostile input cannot blow the stack.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isBool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool isNumber() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool isString() const { return type_ == Type::kString; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& asArray() const;

  /// Object field lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Flat-object conveniences for protocol/journal records.
  [[nodiscard]] std::string stringOr(std::string_view key,
                                     std::string fallback) const;
  [[nodiscard]] double numberOr(std::string_view key, double fallback) const;
  [[nodiscard]] int intOr(std::string_view key, int fallback) const;
  [[nodiscard]] bool boolOr(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace telemetry
}  // namespace mosaic
