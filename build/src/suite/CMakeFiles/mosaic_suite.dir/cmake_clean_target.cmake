file(REMOVE_RECURSE
  "libmosaic_suite.a"
)
