#include "serve/journal.hpp"

#include <cstdlib>
#include <fstream>

#include "support/error.hpp"
#include "support/log.hpp"

namespace mosaic {
namespace serve {

JobJournal::JobJournal(const std::string& path) : path_(path) {
  // "a" (append), never "w": the journal is the recovery record — opening
  // it must not destroy history from previous daemon incarnations.
  file_ = std::fopen(path.c_str(), "ab");
  MOSAIC_CHECK(file_ != nullptr, "cannot open job journal: " << path);
}

JobJournal::~JobJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void JobJournal::append(const telemetry::JsonObject& record) {
  std::string line = record.str();
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  MOSAIC_CHECK(written == line.size(), "journal write failed: " << path_);
  // fflush moves the line into the kernel: it now survives process death
  // (SIGKILL included), which is the durability the recovery test demands.
  MOSAIC_CHECK(std::fflush(file_) == 0, "journal flush failed: " << path_);
}

ReplayResult JobJournal::replay(const std::string& path) {
  ReplayResult result;
  std::ifstream in(path);
  if (!in.good()) return result;  // fresh work directory: nothing to replay

  // Index into result.jobs per id, preserving submission order.
  std::map<std::string, std::size_t> index;
  std::string line;
  while (std::getline(in, line)) {
    ++result.totalLines;
    if (line.empty()) continue;
    telemetry::JsonValue record;
    try {
      record = telemetry::JsonValue::parse(line);
    } catch (const Error&) {
      // Typically the torn final line of a crashed daemon; anything the
      // parser rejects is skipped, never fatal to recovery.
      ++result.corruptLines;
      continue;
    }
    const std::string ev = record.stringOr("ev", "");
    const std::string id = record.stringOr("job", "");
    if (ev.empty() || id.empty()) {
      ++result.corruptLines;
      continue;
    }

    if (ev == "submit") {
      ReplayedJob job;
      try {
        job.spec = specFromJson(record);
      } catch (const Error& e) {
        LOG_WARN("journal replay: bad submit record for " << id << ": "
                                                          << e.what());
        ++result.corruptLines;
        continue;
      }
      job.spec.id = id;
      const std::string trace = record.stringOr("trace", "");
      if (trace.rfind("t-", 0) == 0) {
        job.traceId = std::strtoull(trace.c_str() + 2, nullptr, 16);
      }
      index[id] = result.jobs.size();
      result.jobs.push_back(std::move(job));
      continue;
    }

    const auto it = index.find(id);
    if (it == index.end()) {
      // Terminal/start record without a submit: only possible if the
      // submit line itself was torn. Nothing to recover.
      ++result.corruptLines;
      continue;
    }
    ReplayedJob& job = result.jobs[it->second];
    if (ev == "start") {
      job.attempts = std::max(job.attempts, record.intOr("attempt", 1));
      job.state = JobState::kRunning;
    } else if (ev == "rejected") {
      // Admission rolled back after journaling the submit; forget the job.
      job.state = JobState::kFailed;
      job.error = "rejected: queue full";
    } else if (ev == "done" || ev == "failed" || ev == "canceled" ||
               ev == "expired") {
      job.state = ev == "done"       ? JobState::kDone
                  : ev == "failed"   ? JobState::kFailed
                  : ev == "canceled" ? JobState::kCanceled
                                     : JobState::kExpired;
      job.iterationsDone = record.intOr("iterations", job.iterationsDone);
      job.objective = record.numberOr("objective", job.objective);
      job.wallSeconds = record.numberOr("wall_s", job.wallSeconds);
      job.maskHash = record.stringOr("mask_hash", job.maskHash);
      job.error = record.stringOr("error", job.error);
    } else {
      ++result.corruptLines;
    }
  }
  return result;
}

}  // namespace serve
}  // namespace mosaic
