#pragma once
/// \file baselines.hpp
/// Comparison methods for the Table 2 / Table 3 reproduction. The contest
/// winners' binaries are not available; these stand-ins cover the method
/// classes the paper compares against (see DESIGN.md section 3):
///   * no-OPC: the target itself as the mask (sanity floor),
///   * rule-based OPC: uniform edge bias plus rule-based SRAFs,
///   * conventional ILT: quadratic image-difference objective (gamma = 2)
///     without the process-window term -- the formulation the paper cites
///     as "used in previous ILT studies" (Sec. 3.3).

#include "litho/simulator.hpp"
#include "math/grid.hpp"
#include "opc/sraf.hpp"

namespace mosaic {

/// The target raster used directly as a mask.
RealGrid noOpcMask(const BitGrid& target);

/// Knobs of the rule-based OPC baseline.
struct RuleOpcConfig {
  int biasNm = 0;          ///< uniform edge bias (+ dilate / - shrink)
  bool serifs = true;      ///< hammerheads on line ends
  int serifMaxEndNm = 96;  ///< edges at most this long count as line ends
  int serifExtendNm = 12;  ///< how far the hammerhead sticks out
  int serifOverhangNm = 0; ///< lateral overhang past the end's corners
  /// A short edge only gets a serif when the region beyond it and beside
  /// it is clear of other geometry by this much -- otherwise it is a notch
  /// between features (e.g. comb-tooth gaps), not a line end.
  int serifClearanceNm = 32;
  SrafConfig sraf = {};
};

/// Rule-based OPC: uniform edge bias, line-end hammerhead serifs and
/// rule-based SRAFs -- the classic pre-ILT correction recipe the paper
/// cites as breaking down at 32 nm.
RealGrid ruleOpcMask(const BitGrid& target, int pixelNm,
                     const RuleOpcConfig& config = {});

/// Back-compat convenience overload: bias + SRAF config only.
RealGrid ruleOpcMask(const BitGrid& target, int pixelNm, int biasNm,
                     const SrafConfig& sraf);

}  // namespace mosaic
