#include "math/fft.hpp"

#include <map>
#include <mutex>

#include "support/failpoint.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  MOSAIC_CHECK(isPowerOfTwo(n), "FFT size must be a power of two, got " << n);
  logN_ = 0;
  while ((std::size_t{1} << logN_) < n_) ++logN_;

  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t rev = 0;
    for (int b = 0; b < logN_; ++b) {
      rev = (rev << 1) | ((i >> b) & 1u);
    }
    bitrev_[i] = rev;
  }

  // Stage-packed twiddles: for half-length h the factors
  // exp(-i pi j / h), j in [0, h) are stored at twiddle_[h + j].
  twiddle_.assign(n_ == 1 ? 1 : n_, {1.0, 0.0});
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double theta = -3.14159265358979323846 / static_cast<double>(h);
    for (std::size_t j = 0; j < h; ++j) {
      const double a = theta * static_cast<double>(j);
      twiddle_[h + j] = {std::cos(a), std::sin(a)};
    }
  }
}

void FftPlan::transform(std::complex<double>* data, bool invert) const {
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies. Inverse uses the conjugated twiddle.
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const std::size_t len = h << 1;
    for (std::size_t base = 0; base < n_; base += len) {
      const std::complex<double>* tw = &twiddle_[h];
      std::complex<double>* lo = data + base;
      std::complex<double>* hi = lo + h;
      for (std::size_t j = 0; j < h; ++j) {
        const std::complex<double> w =
            invert ? std::conj(tw[j]) : tw[j];
        const std::complex<double> t = hi[j] * w;
        hi[j] = lo[j] - t;
        lo[j] += t;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
  }
}

void FftPlan::forward(std::complex<double>* data) const {
  transform(data, /*invert=*/false);
}

void FftPlan::inverse(std::complex<double>* data) const {
  transform(data, /*invert=*/true);
}

Fft2d::Fft2d(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      rowPlan_(static_cast<std::size_t>(cols)),
      colPlan_(static_cast<std::size_t>(rows)) {
  MOSAIC_CHECK(rows > 0 && cols > 0, "FFT grid must be non-empty");
}

void Fft2d::transformRows(ComplexGrid& grid, bool invert) const {
  for (int r = 0; r < rows_; ++r) {
    std::complex<double>* row = grid.rowPtr(r);
    if (invert) {
      rowPlan_.inverse(row);
    } else {
      rowPlan_.forward(row);
    }
  }
}

void Fft2d::transformCols(ComplexGrid& grid, bool invert) const {
  // Per-call scratch keeps concurrent transforms on a shared instance
  // race-free; the allocation is noise next to the O(n^2 log n) butterflies.
  std::vector<std::complex<double>> col(static_cast<std::size_t>(rows_));
  for (int c = 0; c < cols_; ++c) {
    for (int r = 0; r < rows_; ++r) col[static_cast<std::size_t>(r)] = grid(r, c);
    if (invert) {
      colPlan_.inverse(col.data());
    } else {
      colPlan_.forward(col.data());
    }
    for (int r = 0; r < rows_; ++r) grid(r, c) = col[static_cast<std::size_t>(r)];
  }
}

void Fft2d::forward(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape " << grid.rows() << "x" << grid.cols()
                             << " does not match plan " << rows_ << "x"
                             << cols_);
  MOSAIC_FAILPOINT_DATA("fft.forward",
                        reinterpret_cast<double*>(grid.data()),
                        grid.size() * 2);
  MOSAIC_SPAN("fft.forward");
  transformRows(grid, false);
  transformCols(grid, false);
}

void Fft2d::inverse(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape mismatch in inverse FFT");
  MOSAIC_SPAN("fft.inverse");
  transformRows(grid, true);
  transformCols(grid, true);
}

ComplexGrid Fft2d::forwardReal(const RealGrid& grid) const {
  ComplexGrid out = toComplex(grid);
  forward(out);
  return out;
}

const Fft2d& fft2dFor(int rows, int cols) {
  static std::map<std::pair<int, int>, std::unique_ptr<Fft2d>> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(rows, cols);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fft2d>(rows, cols)).first;
  }
  return *it->second;
}

}  // namespace mosaic
