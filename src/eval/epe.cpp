#include "eval/epe.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

/// Reads the pattern value at (row, col) treating out-of-grid as empty.
bool cellValue(const BitGrid& grid, int r, int c) {
  return grid.inBounds(r, c) && grid(r, c) != 0;
}

/// True if boundary position b along the sample's perpendicular axis is a
/// printed edge with the sample's polarity (inside on the low-index side
/// iff insideLow).
bool isPrintedEdge(const BitGrid& printed, const SamplePoint& s, int b) {
  bool lowVal;
  bool highVal;
  if (s.horizontal) {
    lowVal = cellValue(printed, b - 1, s.along);
    highVal = cellValue(printed, b, s.along);
  } else {
    lowVal = cellValue(printed, s.along, b - 1);
    highVal = cellValue(printed, s.along, b);
  }
  if (s.insideLow) return lowVal && !highVal;
  return !lowVal && highVal;
}

}  // namespace

EpeResult measureEpe(const BitGrid& printed, const BitGrid& target,
                     const std::vector<SamplePoint>& samples, int pixelNm,
                     double thresholdNm, double searchRangeNm) {
  MOSAIC_CHECK(printed.sameShape(target), "printed/target shape mismatch");
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  MOSAIC_CHECK(thresholdNm > 0, "EPE threshold must be positive");
  MOSAIC_SPAN("eval.epe");
  if (searchRangeNm <= 0.0) searchRangeNm = 4.0 * thresholdNm;
  const int searchPx =
      std::max(1, static_cast<int>(std::lround(searchRangeNm / pixelNm)));

  EpeResult result;
  result.perSample.reserve(samples.size());
  double absSum = 0.0;

  for (const auto& s : samples) {
    EpeSampleResult sr;
    sr.sample = s;
    // Walk outward from the target boundary; the nearest printed edge with
    // matching polarity defines the EPE.
    int found = -1;
    for (int d = 0; d <= searchPx && found < 0; ++d) {
      if (isPrintedEdge(printed, s, s.boundary + d)) {
        found = d;
        // displacement +d moves the edge toward higher indices; that is
        // outward when the inside is on the low side.
        sr.epeNm = (s.insideLow ? d : -d) * pixelNm;
      } else if (d > 0 && isPrintedEdge(printed, s, s.boundary - d)) {
        found = d;
        sr.epeNm = (s.insideLow ? -d : d) * pixelNm;
      }
    }
    sr.edgeFound = found >= 0;
    if (!sr.edgeFound) {
      // Feature lost (or bloated beyond the search range) at this sample.
      const bool insideNow =
          s.horizontal
              ? cellValue(printed, s.insideLow ? s.boundary - 1 : s.boundary,
                          s.along)
              : cellValue(printed, s.along,
                          s.insideLow ? s.boundary - 1 : s.boundary);
      // If the inside pixel still prints the feature has bloated outward
      // (positive); otherwise it has vanished (negative).
      sr.epeNm = (insideNow ? 1.0 : -1.0) * (searchRangeNm + pixelNm);
    }
    sr.violation = std::fabs(sr.epeNm) > thresholdNm ||
                   !sr.edgeFound;
    if (sr.violation) ++result.violations;
    absSum += std::fabs(sr.epeNm);
    result.maxAbsEpeNm = std::max(result.maxAbsEpeNm, std::fabs(sr.epeNm));
    result.perSample.push_back(sr);
  }
  result.meanAbsEpeNm =
      samples.empty() ? 0.0 : absSum / static_cast<double>(samples.size());
  return result;
}

EpeResult measureEpeAerial(const RealGrid& aerial, double threshold,
                           const BitGrid& target,
                           const std::vector<SamplePoint>& samples,
                           int pixelNm, double thresholdNm,
                           double searchRangeNm) {
  MOSAIC_CHECK(aerial.rows() == target.rows() &&
                   aerial.cols() == target.cols(),
               "aerial/target shape mismatch");
  MOSAIC_CHECK(pixelNm > 0 && thresholdNm > 0, "bad EPE parameters");
  if (searchRangeNm <= 0.0) searchRangeNm = 4.0 * thresholdNm;
  const int searchPx =
      std::max(1, static_cast<int>(std::lround(searchRangeNm / pixelNm)));

  EpeResult result;
  result.perSample.reserve(samples.size());
  double absSum = 0.0;

  for (const auto& s : samples) {
    // Intensity profile reader along the perpendicular (pixel index t).
    auto intensityAt = [&](int t) -> double {
      const int r = s.horizontal ? t : s.along;
      const int c = s.horizontal ? s.along : t;
      if (!aerial.inBounds(r, c)) return 0.0;
      return aerial(r, c);
    };

    EpeSampleResult sr;
    sr.sample = s;
    // Search pixel-center pairs (t, t+1) for threshold crossings with the
    // correct polarity: intensity above threshold on the inside.
    double bestPos = 0.0;
    double bestDist = 1e100;
    bool found = false;
    const int lo = s.boundary - searchPx - 1;
    const int hi = s.boundary + searchPx;
    for (int t = lo; t < hi; ++t) {
      const double a = intensityAt(t);      // center at t + 0.5
      const double b = intensityAt(t + 1);  // center at t + 1.5
      const bool crossesDown = a > threshold && b <= threshold;
      const bool crossesUp = a <= threshold && b > threshold;
      const bool wantDown = s.insideLow;  // inside at lower indices
      if (!(wantDown ? crossesDown : crossesUp)) continue;
      const double frac = (threshold - a) / (b - a);
      const double pos = (t + 0.5) + frac;  // boundary-coordinate units
      const double dist =
          std::fabs(pos - static_cast<double>(s.boundary));
      if (dist < bestDist) {
        bestDist = dist;
        bestPos = pos;
        found = true;
      }
    }
    sr.edgeFound = found && bestDist <= searchPx;
    if (sr.edgeFound) {
      const double delta = bestPos - static_cast<double>(s.boundary);
      sr.epeNm = (s.insideLow ? delta : -delta) * pixelNm;
    } else {
      const double inside = intensityAt(
          s.insideLow ? s.boundary - 1 : s.boundary);
      sr.epeNm = (inside > threshold ? 1.0 : -1.0) *
                 (searchRangeNm + pixelNm);
    }
    sr.violation = !sr.edgeFound || std::fabs(sr.epeNm) > thresholdNm;
    if (sr.violation) ++result.violations;
    absSum += std::fabs(sr.epeNm);
    result.maxAbsEpeNm = std::max(result.maxAbsEpeNm, std::fabs(sr.epeNm));
    result.perSample.push_back(sr);
  }
  result.meanAbsEpeNm =
      samples.empty() ? 0.0 : absSum / static_cast<double>(samples.size());
  return result;
}

}  // namespace mosaic
