#pragma once
/// \file manifest.hpp
/// Fingerprint manifest for incremental re-OPC (ECO flow, docs/caching.md).
///
/// A cache-enabled chip run records one line per tile — the core's chip
/// origin in nm plus the tile's full fingerprint — into
/// `fingerprints.jsonl` in the pattern-store directory. A later ECO run
/// diffs its own fingerprints against this manifest to report exactly
/// which tiles a layout revision touched; keying by core origin in nm (not
/// tile index) keeps the diff meaningful even if the grid was re-indexed.
/// Hashes are serialized as 16-digit hex strings: JSON numbers are doubles
/// and would silently drop bits of a 64-bit digest.

#include <string>
#include <vector>

#include "cache/fingerprint.hpp"

namespace mosaic {

/// One manifest line: where a core sits on the chip and what problem it
/// posed.
struct ManifestEntry {
  int coreXNm = 0;  ///< core origin (min corner), chip coordinates
  int coreYNm = 0;
  TileFingerprint fp;
};

/// Conventional manifest file name inside a pattern-store directory.
[[nodiscard]] std::string manifestPath(const std::string& storeDir);

/// Write a manifest atomically (temp file + rename). Throws on I/O errors.
void writeFingerprintManifest(const std::string& path,
                              const std::vector<ManifestEntry>& entries);

/// Read a manifest. Returns false (and an empty vector) when the file is
/// missing or malformed — ECO then conservatively treats every tile as
/// changed instead of failing the run.
bool readFingerprintManifest(const std::string& path,
                             std::vector<ManifestEntry>* out);

}  // namespace mosaic
