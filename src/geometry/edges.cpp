#include "geometry/edges.hpp"

#include "support/error.hpp"

namespace mosaic {
namespace {

/// Emits maximal runs for one family of boundaries.
/// valueAt(b, t): pattern value at boundary b, track t, on the lower-index
/// side (b-1) and the higher-index side (b).
template <typename Lower, typename Upper>
void scanBoundaries(int boundaryCount, int trackCount, Lower lower,
                    Upper upper, bool horizontal,
                    std::vector<EdgeSegment>& out) {
  for (int b = 0; b < boundaryCount; ++b) {
    int runStart = -1;
    bool runInsideLow = false;
    auto flush = [&](int end) {
      if (runStart >= 0) {
        out.push_back(EdgeSegment{horizontal, b, runStart, end - 1,
                                  runInsideLow});
        runStart = -1;
      }
    };
    for (int t = 0; t < trackCount; ++t) {
      const bool lowVal = lower(b, t);
      const bool highVal = upper(b, t);
      const bool isEdge = lowVal != highVal;
      const bool insideLow = lowVal;
      if (isEdge && runStart >= 0 && insideLow != runInsideLow) {
        flush(t);
      }
      if (isEdge && runStart < 0) {
        runStart = t;
        runInsideLow = insideLow;
      } else if (!isEdge) {
        flush(t);
      }
    }
    flush(trackCount);
  }
}

}  // namespace

std::vector<EdgeSegment> extractEdges(const BitGrid& target) {
  std::vector<EdgeSegment> edges;
  const int rows = target.rows();
  const int cols = target.cols();

  auto rowValue = [&](int r, int c) -> bool {
    return r >= 0 && r < rows && target(r, c) != 0;
  };
  auto colValue = [&](int r, int c) -> bool {
    return c >= 0 && c < cols && target(r, c) != 0;
  };

  // Horizontal edges: boundary b between rows b-1 and b, tracks = columns.
  scanBoundaries(
      rows + 1, cols, [&](int b, int c) { return rowValue(b - 1, c); },
      [&](int b, int c) { return rowValue(b, c); }, /*horizontal=*/true,
      edges);
  // Vertical edges: boundary b between cols b-1 and b, tracks = rows.
  scanBoundaries(
      cols + 1, rows, [&](int b, int r) { return colValue(r, b - 1); },
      [&](int b, int r) { return colValue(r, b); }, /*horizontal=*/false,
      edges);
  return edges;
}

std::vector<SamplePoint> placeSamples(const std::vector<EdgeSegment>& edges,
                                      int spacingPx, int minRunPx) {
  MOSAIC_CHECK(spacingPx > 0, "sample spacing must be positive");
  MOSAIC_CHECK(minRunPx > 0, "minimum run length must be positive");
  std::vector<SamplePoint> samples;
  for (const auto& edge : edges) {
    const int len = edge.length();
    if (len < minRunPx) continue;
    if (len < spacingPx) {
      samples.push_back(SamplePoint{edge.horizontal, edge.boundary,
                                    edge.lo + len / 2, edge.insideLow});
      continue;
    }
    // Distribute samples centered in the run: k samples with spacing
    // `spacingPx`, offset so leftover margin splits evenly at the ends.
    const int k = len / spacingPx;
    const int margin = (len - (k - 1) * spacingPx - 1) / 2;
    for (int i = 0; i < k; ++i) {
      samples.push_back(SamplePoint{edge.horizontal, edge.boundary,
                                    edge.lo + margin + i * spacingPx,
                                    edge.insideLow});
    }
  }
  return samples;
}

std::vector<SamplePoint> extractSamples(const BitGrid& target, int spacingPx,
                                        int minRunPx) {
  return placeSamples(extractEdges(target), spacingPx, minRunPx);
}

}  // namespace mosaic
