#pragma once
/// \file failpoint.hpp
/// Deterministic fault injection for robustness testing.
///
/// A fail point is a named site in the library (e.g. "objective.gradient",
/// "io.glp.parse") that can be armed at runtime to inject a fault the Nth
/// time execution reaches it: poison data with NaN/Inf, throw a
/// mosaic::Error, or sleep for a configurable delay. Sites are armed via
/// the MOSAIC_FAILPOINTS environment variable or programmatically:
///
///   MOSAIC_FAILPOINTS="objective.gradient:nan@iter=7,io.glp.parse:throw"
///
/// Spec grammar (comma-separated list):
///   <site>:<action>[@iter=<N>]
///   action := nan | inf | throw | delay=<milliseconds>
///   @iter=N fires on the Nth hit of the site only (1-based); omitted, the
///   action fires on every hit. `@hit=N` is accepted as an alias.
///
/// When no site is armed the per-site cost is a single relaxed atomic load
/// (the MOSAIC_FAILPOINT macros), so instrumentation can live on hot paths.

#include <atomic>
#include <cstddef>
#include <string>

namespace mosaic {
namespace failpoint {

/// What an armed fail point does when it fires.
enum class Action {
  kNone,   ///< site is not armed (or not armed for this hit)
  kNan,    ///< caller should poison its data with a quiet NaN
  kInf,    ///< caller should poison its data with +infinity
  kThrow,  ///< onHit throws mosaic::Error itself
  kDelay,  ///< onHit sleeps for the configured delay itself
};

namespace detail {
extern std::atomic<bool> gActive;
}

/// True iff at least one site is armed. Relaxed: the instrumented fast
/// path needs no ordering, only an eventually-visible flag.
inline bool active() {
  return detail::gActive.load(std::memory_order_relaxed);
}

/// Parse a spec string and arm the listed sites (additive across calls).
/// Throws InvalidArgument on malformed specs.
void configure(const std::string& spec);

/// Arm sites from $MOSAIC_FAILPOINTS; no-op when unset or empty.
void configureFromEnv();

/// Disarm every site and zero all hit counters.
void reset();

/// Number of times an armed site has been reached (0 for unarmed sites).
int hitCount(const std::string& site);

/// True iff the site has at least one armed spec.
bool isArmed(const std::string& site);

/// Slow path behind the macros: count a hit at `site` and fire any spec
/// armed for this hit. kThrow and kDelay are executed here; kNan/kInf are
/// returned so the caller can poison its own data.
Action onHit(const char* site);

/// Convenience for sites with injectable numeric payloads: on kNan/kInf,
/// overwrite the middle element of [data, data+size).
void maybePoison(const char* site, double* data, std::size_t size);

/// RAII guard for tests: resets, arms `spec`, and resets again on scope
/// exit so fail points never leak between test cases.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec) {
    reset();
    configure(spec);
  }
  ~ScopedFailpoints() { reset(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

}  // namespace failpoint
}  // namespace mosaic

/// Instrument a control-flow site (throw / delay injection).
#define MOSAIC_FAILPOINT(site)                                        \
  do {                                                                \
    if (::mosaic::failpoint::active()) ::mosaic::failpoint::onHit(site); \
  } while (false)

/// Instrument a data-producing site (NaN / Inf / throw / delay injection).
#define MOSAIC_FAILPOINT_DATA(site, ptr, count)                       \
  do {                                                                \
    if (::mosaic::failpoint::active())                                \
      ::mosaic::failpoint::maybePoison(site, ptr, count);             \
  } while (false)
