#pragma once
/// \file cli.hpp
/// A tiny declarative command-line parser used by the bench harnesses and
/// examples. Supports `--name value`, `--name=value`, boolean flags, and
/// generates a usage screen.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mosaic {

/// Declarative option parser.
///
/// Usage:
/// \code
///   CliParser cli("table2", "Reproduce paper Table 2");
///   int pixel = 2;
///   cli.addInt("pixel", &pixel, "pixel size in nm");
///   cli.parse(argc, argv);   // throws InvalidArgument on bad input
/// \endcode
class CliParser {
 public:
  CliParser(std::string programName, std::string description);

  /// Register an integer option with a default taken from *target.
  void addInt(const std::string& name, int* target, const std::string& help);
  /// Register a double option with a default taken from *target.
  void addDouble(const std::string& name, double* target,
                 const std::string& help);
  /// Register a string option with a default taken from *target.
  void addString(const std::string& name, std::string* target,
                 const std::string& help);
  /// Register a boolean flag (presence sets true; `--name=false` clears).
  void addFlag(const std::string& name, bool* target, const std::string& help);

  /// Parse argv. Returns false if `--help` was requested (usage already
  /// printed); on malformed input (unknown option, bad value) prints the
  /// usage screen to stderr and throws InvalidArgument.
  bool parse(int argc, const char* const* argv);

  /// Render the usage/help screen.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    void* target;
    std::string help;
    std::string defaultValue;
  };

  void add(const std::string& name, Kind kind, void* target,
           const std::string& help, std::string defaultValue);
  void assign(const std::string& name, const std::string& value);
  bool parseImpl(int argc, const char* const* argv);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace mosaic
