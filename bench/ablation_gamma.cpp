/// \file ablation_gamma.cpp
/// Ablation for Sec. 3.3: the image-difference exponent gamma. The paper
/// states the quadratic form (gamma = 2) is the prior art and that
/// gamma = 4 trades design-target fidelity against the process window
/// when co-optimizing. Sweeps gamma on MOSAIC_fast.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "2,4,6";
  std::string logLevel = "warn";

  CliParser cli("ablation_gamma",
                "gamma sweep for the F_id design-target term (Sec. 3.3)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    const std::vector<double> gammas = {2.0, 3.0, 4.0, 6.0};
    TextTable table;
    table.setHeader({"case", "gamma", "#EPE", "PVB(nm^2)", "score",
                     "runtime(s)"});

    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      for (double gamma : gammas) {
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = iterations;
        cfg.gamma = gamma;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev = evaluateMask(sim, toReal(res.maskBinary),
                                               target, res.runtimeSec);
        table.addRow({layout.name, TextTable::num(gamma, 0),
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::num(ev.score, 0),
                      TextTable::num(res.runtimeSec, 2)});
      }
    }
    std::printf("=== Ablation: F_id exponent gamma (MOSAIC_fast) ===\n%s\n",
                table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_gamma failed: %s\n", e.what());
    return 1;
  }
}
