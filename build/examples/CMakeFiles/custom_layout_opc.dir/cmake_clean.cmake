file(REMOVE_RECURSE
  "CMakeFiles/custom_layout_opc.dir/custom_layout_opc.cpp.o"
  "CMakeFiles/custom_layout_opc.dir/custom_layout_opc.cpp.o.d"
  "custom_layout_opc"
  "custom_layout_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_layout_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
