#include "support/telemetry/json.hpp"

#include <cmath>
#include <cstdio>

namespace mosaic {
namespace telemetry {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

JsonObject& JsonObject::set(std::string_view key, double value) {
  return setRaw(key, jsonNumber(value));
}

JsonObject& JsonObject::set(std::string_view key, long long value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, unsigned long long value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, int value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, bool value) {
  return setRaw(key, value ? "true" : "false");
}

JsonObject& JsonObject::set(std::string_view key, std::string_view value) {
  std::string quoted;
  quoted += '"';
  quoted += jsonEscape(value);
  quoted += '"';
  return setRaw(key, std::move(quoted));
}

JsonObject& JsonObject::set(std::string_view key, const char* value) {
  return set(key, std::string_view(value));
}

JsonObject& JsonObject::setRaw(std::string_view key, std::string rawJson) {
  fields_.emplace_back(std::string(key), std::move(rawJson));
  return *this;
}

std::string JsonObject::str() const {
  std::string out;
  out += '{';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += jsonEscape(fields_[i].first);
    out += "\":";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

}  // namespace telemetry
}  // namespace mosaic
