#include "support/telemetry/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "support/error.hpp"
#include "support/telemetry/json.hpp"

namespace mosaic {
namespace telemetry {
namespace {

/// One completed span. `name` must point at a string literal.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
  std::uint64_t trace = 0;  // currentTraceId() at record time, 0 = none
};

/// Per-thread ring of completed spans. The owning thread appends under the
/// buffer mutex (uncontended except during export); when full, the oldest
/// event is overwritten so a long run keeps its most recent window.
struct ThreadTraceBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;

  explicit ThreadTraceBuffer(int id) : tid(id) { events.reserve(1024); }

  std::mutex mutex;
  int tid;
  std::vector<SpanEvent> events;  // grows up to kCapacity, then wraps
  std::size_t next = 0;           // overwrite cursor once at capacity
  std::uint64_t overwritten = 0;

  void push(const SpanEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kCapacity) {
      events.push_back(e);
    } else {
      events[next] = e;
      next = (next + 1) % kCapacity;
      ++overwritten;
    }
  }
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::atomic<int> nextTid{0};
};

TraceState& traceState() {
  static TraceState* state = new TraceState();  // leaked: outlives threads
  return *state;
}

std::atomic<bool> g_traceEnabled{false};

thread_local std::uint64_t t_traceId = 0;

ThreadTraceBuffer& threadBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    TraceState& state = traceState();
    auto b = std::make_shared<ThreadTraceBuffer>(
        state.nextTid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(state.mutex);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

int threadId() { return threadBuffer().tid; }

std::uint64_t currentTraceId() { return t_traceId; }

std::string traceIdString(std::uint64_t traceId) {
  if (traceId == 0) return "";
  char buf[24];
  std::snprintf(buf, sizeof buf, "t-%016llx",
                static_cast<unsigned long long>(traceId));
  return buf;
}

std::uint64_t newTraceId() {
  // Sequence counter mixed with the pid via splitmix64 so a recovered
  // daemon never reissues ids already persisted in its journal.
  static std::atomic<std::uint64_t> next{1};
  std::uint64_t x = next.fetch_add(1, std::memory_order_relaxed);
  x += 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(::getpid()) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

TraceScope::TraceScope(std::uint64_t traceId) : previous_(t_traceId) {
  t_traceId = traceId;
}

TraceScope::~TraceScope() { t_traceId = previous_; }

std::uint64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

bool traceEnabled() { return g_traceEnabled.load(std::memory_order_relaxed); }

void setTraceEnabled(bool enabled) {
  (void)nowNs();  // pin the epoch before the first span
  g_traceEnabled.store(enabled, std::memory_order_relaxed);
}

void clearTrace() {
  TraceState& state = traceState();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->overwritten = 0;
  }
}

std::uint64_t traceEventCount() {
  TraceState& state = traceState();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t total = 0;
  for (auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::uint64_t traceDroppedCount() {
  TraceState& state = traceState();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t total = 0;
  for (auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    total += buffer->overwritten;
  }
  return total;
}

namespace detail {

void recordSpan(const char* name, std::uint64_t startNs,
                std::uint64_t durNs) {
  threadBuffer().push({name, startNs, durNs, t_traceId});
}

}  // namespace detail

std::string chromeTraceJson() {
  struct TaggedEvent {
    SpanEvent event;
    int tid;
  };
  std::vector<TaggedEvent> all;
  std::vector<int> tids;
  {
    TraceState& state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto& buffer : state.buffers) {
      std::lock_guard<std::mutex> bufferLock(buffer->mutex);
      tids.push_back(buffer->tid);
      for (const SpanEvent& e : buffer->events) {
        all.push_back({e, buffer->tid});
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TaggedEvent& a, const TaggedEvent& b) {
              return a.event.startNs < b.event.startNs;
            });

  // Chrome trace_event "X" (complete) events; ts/dur are microseconds.
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  {
    JsonObject meta;
    meta.set("name", "process_name")
        .set("ph", "M")
        .set("pid", 1)
        .setRaw("args", "{\"name\":\"mosaic\"}");
    out += meta.str();
    first = false;
  }
  std::sort(tids.begin(), tids.end());
  for (const int tid : tids) {
    JsonObject meta;
    meta.set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 1)
        .set("tid", tid)
        .setRaw("args",
                "{\"name\":\"worker-" + std::to_string(tid) + "\"}");
    out += ",\n" + meta.str();
  }
  for (const TaggedEvent& te : all) {
    JsonObject o;
    o.set("name", te.event.name)
        .set("cat", "mosaic")
        .set("ph", "X")
        .set("ts", static_cast<double>(te.event.startNs) * 1e-3)
        .set("dur", static_cast<double>(te.event.durNs) * 1e-3)
        .set("pid", 1)
        .set("tid", te.tid);
    if (te.event.trace != 0) {
      o.setRaw("args", "{\"trace\":\"" + traceIdString(te.event.trace) + "\"}");
    }
    if (!first) out += ",\n";
    out += o.str();
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void writeChromeTrace(const std::string& path) {
  const std::string json = chromeTraceJson();
  FILE* f = std::fopen(path.c_str(), "w");
  MOSAIC_CHECK(f != nullptr, "cannot write trace file: " << path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  MOSAIC_CHECK(written == json.size() && closed == 0,
               "short write on trace file: " << path);
}

}  // namespace telemetry
}  // namespace mosaic
