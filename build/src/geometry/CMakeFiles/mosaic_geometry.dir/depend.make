# Empty dependencies file for mosaic_geometry.
# This may be replaced when dependencies are built.
