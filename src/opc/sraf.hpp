#pragma once
/// \file sraf.hpp
/// Rule-based sub-resolution assist feature (SRAF) insertion (paper Alg. 1
/// line 2: the initial mask is the target plus rule-based SRAFs). Assist
/// bars are placed in a band at a fixed distance from every feature edge;
/// they brighten the defocus response of the main features without
/// printing themselves.

#include "math/grid.hpp"

namespace mosaic {

struct SrafConfig {
  bool enabled = true;
  int minDistanceNm = 100;  ///< inner edge of the assist band
  int maxDistanceNm = 124;  ///< outer edge of the assist band
  int clipMarginNm = 32;    ///< keep-out ring at the clip border
};

/// Insert rule-based SRAFs around a target raster. Returns target OR band,
/// where the band covers pixels whose Chebyshev distance to the pattern is
/// in [minDistance, maxDistance]. Bands between features closer than twice
/// the minimum distance cancel automatically (the dilations overlap).
BitGrid insertSraf(const BitGrid& target, int pixelNm,
                   const SrafConfig& config = {});

/// The assist band alone (no target), e.g. for visualization.
BitGrid srafBand(const BitGrid& target, int pixelNm,
                 const SrafConfig& config = {});

}  // namespace mosaic
