#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "support/error.hpp"

namespace mosaic {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sinkMutex;

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parseLogLevel(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

namespace detail {

void logEmit(LogLevel level, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  std::fprintf(stderr, "[%9.3fs %s] %s\n", elapsed, levelTag(level),
               message.c_str());
}

}  // namespace detail
}  // namespace mosaic
