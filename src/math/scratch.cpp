#include "math/scratch.hpp"

#include <atomic>
#include <vector>

#include "support/parallel.hpp"
#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace scratch {
namespace {

/// Free lists are intentionally tiny: the deepest nesting in the library
/// is two or three live temporaries per thread, and every cached 1024 grid
/// is 16 MB. Overflow is simply freed.
constexpr std::size_t kMaxCachedPerThread = 6;

/// Bytes currently cached (not leased) across every thread's free list.
/// Kept in a plain atomic so ThreadPool destructors — which can run
/// during thread/process teardown, after telemetry statics may already be
/// gone — never touch the metrics registry.
std::atomic<long long> g_residentBytes{0};

template <typename GridT>
long long bytesOf(const GridT& grid) {
  return static_cast<long long>(grid.size() * sizeof(*grid.data()));
}

/// Mirror the atomic into the scratch.resident_bytes gauge. Only called
/// from the normal acquire/release/clear paths, never from destructors.
void publishResidentBytes() {
  static telemetry::Gauge& gauge =
      telemetry::metrics().gauge("scratch.resident_bytes");
  gauge.set(static_cast<double>(
      g_residentBytes.load(std::memory_order_relaxed)));
}

template <typename GridT>
struct ThreadPool {
  std::vector<std::unique_ptr<GridT>> freeList;

  ~ThreadPool() {
    // Account for grids freed by thread exit (atomic only; see above).
    long long bytes = 0;
    for (const auto& grid : freeList) {
      if (grid) bytes += bytesOf(*grid);
    }
    if (bytes != 0) {
      g_residentBytes.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }
};

template <typename GridT>
ThreadPool<GridT>& threadPool() {
  thread_local ThreadPool<GridT> pool;
  return pool;
}

template <typename GridT>
std::unique_ptr<GridT> acquire(int rows, int cols) {
  auto& list = threadPool<GridT>().freeList;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i]->rows() == rows && list[i]->cols() == cols) {
      std::unique_ptr<GridT> grid = std::move(list[i]);
      list[i] = std::move(list.back());
      list.pop_back();
      static telemetry::Counter& hits =
          telemetry::metrics().counter("scratch.hit");
      hits.add();
      g_residentBytes.fetch_sub(bytesOf(*grid), std::memory_order_relaxed);
      publishResidentBytes();
      return grid;
    }
  }
  static telemetry::Counter& misses =
      telemetry::metrics().counter("scratch.miss");
  misses.add();
  return std::make_unique<GridT>(rows, cols);
}

template <typename GridT>
void release(std::unique_ptr<GridT> grid) {
  if (!grid) return;
  auto& list = threadPool<GridT>().freeList;
  if (list.size() < kMaxCachedPerThread) {
    g_residentBytes.fetch_add(bytesOf(*grid), std::memory_order_relaxed);
    list.push_back(std::move(grid));
    publishResidentBytes();
  }
}

/// Persistent executor workers drop their cached grids when they
/// idle-trim and when the pool resizes or shuts down; long-lived daemon
/// threads run the hook themselves on loop exit. Without it every parked
/// or dead worker pins kMaxCachedPerThread full-size grids.
[[maybe_unused]] const bool g_teardownRegistered = [] {
  registerWorkerTeardown(&clearThreadPool);
  return true;
}();

}  // namespace

namespace detail {

std::unique_ptr<RealGrid> acquireReal(int rows, int cols) {
  return acquire<RealGrid>(rows, cols);
}
void releaseReal(std::unique_ptr<RealGrid> grid) {
  release<RealGrid>(std::move(grid));
}
std::unique_ptr<ComplexGrid> acquireComplex(int rows, int cols) {
  return acquire<ComplexGrid>(rows, cols);
}
void releaseComplex(std::unique_ptr<ComplexGrid> grid) {
  release<ComplexGrid>(std::move(grid));
}

}  // namespace detail

void clearThreadPool() {
  long long bytes = 0;
  for (const auto& grid : threadPool<RealGrid>().freeList) {
    if (grid) bytes += bytesOf(*grid);
  }
  for (const auto& grid : threadPool<ComplexGrid>().freeList) {
    if (grid) bytes += bytesOf(*grid);
  }
  threadPool<RealGrid>().freeList.clear();
  threadPool<ComplexGrid>().freeList.clear();
  if (bytes != 0) {
    g_residentBytes.fetch_sub(bytes, std::memory_order_relaxed);
  }
  publishResidentBytes();
}

long long residentBytes() {
  return g_residentBytes.load(std::memory_order_relaxed);
}

}  // namespace scratch
}  // namespace mosaic
