#pragma once
/// \file eigen.hpp
/// Dense symmetric / Hermitian eigensolvers (cyclic Jacobi). Used to
/// decompose the Hopkins TCC operator into SOCS kernels (paper Eq. 1-2):
/// the kernels h_k are the top eigenvectors and the weights w_k the
/// eigenvalues.

#include <complex>
#include <vector>

#include "support/error.hpp"

namespace mosaic {

/// Dense row-major real matrix, just enough surface for the eigensolvers.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, init) {
    MOSAIC_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  [[nodiscard]] bool isSquare() const { return rows_ == cols_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Result of a symmetric eigendecomposition A = V diag(w) V^T with
/// eigenvalues sorted in descending order; eigenvectors are the columns
/// of V (stored per-eigenpair as vectors here).
struct SymmetricEigenResult {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;  ///< [k][i]
};

/// Cyclic Jacobi eigensolver for a real symmetric matrix.
/// \param a symmetric square matrix (symmetry is validated to tolerance).
/// \param maxSweeps maximum full sweeps before giving up (throws if the
///        off-diagonal norm has not converged by then).
SymmetricEigenResult jacobiEigenSymmetric(const Matrix& a, int maxSweeps = 64);

/// Result of a Hermitian eigendecomposition H = sum_k w_k v_k v_k^H with
/// real eigenvalues sorted descending and orthonormal complex eigenvectors.
struct HermitianEigenResult {
  std::vector<double> eigenvalues;
  std::vector<std::vector<std::complex<double>>> eigenvectors;  ///< [k][i]
};

/// Hermitian eigensolver via the real 2n x 2n embedding
/// [[Re(H), -Im(H)], [Im(H), Re(H)]]. Each complex eigenpair appears twice
/// in the embedding; the implementation deduplicates by complex
/// Gram-Schmidt within eigenvalue clusters.
/// \param h row-major n x n Hermitian matrix.
HermitianEigenResult jacobiEigenHermitian(
    const std::vector<std::complex<double>>& h, int n, int maxSweeps = 64);

/// Top-k eigenpairs of a Hermitian matrix via blocked subspace iteration
/// with Rayleigh-Ritz extraction. Converges to the k algebraically largest
/// eigenpairs (the dominant ones for the PSD TCC operator) without paying
/// the O(n^3)-per-sweep cost of the full Jacobi solve -- the difference
/// between seconds and many minutes for chip-scale tile windows whose
/// pupil lattices run to hundreds of samples.
///
/// The iteration block is sized internally above k, start vectors come
/// from a fixed-seed generator, and each returned eigenvector is rotated
/// so its largest-magnitude component is real positive, so results are
/// deterministic run to run.
/// \param h row-major n x n Hermitian matrix.
/// \param k number of leading eigenpairs to return (1 <= k <= n).
/// \param maxIters iteration cap (throws if Ritz values have not settled).
/// \param tol relative Ritz-value settling tolerance.
HermitianEigenResult topEigenpairsHermitian(
    const std::vector<std::complex<double>>& h, int n, int k,
    int maxIters = 600, double tol = 1e-11);

}  // namespace mosaic
