#pragma once
/// \file journal.hpp
/// Write-ahead job journal of the serve daemon (docs/serving.md). One
/// append-only JSONL file records every job's submission, each execution
/// attempt, and its terminal state. On restart the journal is replayed:
/// a job with a submit record but no terminal record did not finish —
/// whether the daemon crashed, was SIGKILLed, or drained in checkpoint
/// mode — and is re-enqueued, resuming from its optimizer checkpoint when
/// one exists.
///
/// Durability model: every append is one fwrite + fflush, so the record is
/// in the kernel page cache before append() returns. That survives any
/// process death (the SIGKILL recovery contract); it does not survive a
/// host power cut, which is out of scope for a local job daemon. Replay
/// tolerates a torn final line — the one write a crash can interrupt.

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace mosaic {
namespace serve {

/// What replay reconstructs for one job.
struct ReplayedJob {
  JobSpec spec;
  JobState state = JobState::kQueued;  ///< kQueued/kRunning => unfinished
  int attempts = 0;       ///< start records seen (crash-interrupted ones too)
  int iterationsDone = 0;
  double objective = 0.0;
  double wallSeconds = 0.0;
  std::string maskHash;
  std::string error;
  /// Trace id from the submit record ("t-%016llx"; 0 when the journal
  /// predates trace stamping), so a recovered job keeps correlating with
  /// its pre-crash records.
  std::uint64_t traceId = 0;
};

/// Everything replay learned from one journal file.
struct ReplayResult {
  /// Jobs in submission order (the order recovery re-enqueues them).
  std::vector<ReplayedJob> jobs;
  int corruptLines = 0;   ///< unparseable lines skipped (torn tail, noise)
  int totalLines = 0;
};

class JobJournal {
 public:
  /// Opens `path` for appending (creates it if missing). Throws
  /// mosaic::Error on failure.
  explicit JobJournal(const std::string& path);
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Append one record as a single flushed line. Thread-safe.
  void append(const telemetry::JsonObject& record);

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Parse an existing journal into per-job end states. Missing file =>
  /// empty result (a fresh work directory). Never throws on content: bad
  /// lines are counted and skipped so a torn tail cannot block recovery.
  [[nodiscard]] static ReplayResult replay(const std::string& path);

 private:
  std::string path_;
  FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace serve
}  // namespace mosaic
