#include "opc/edge_opc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/epe.hpp"
#include "geometry/bitmap_ops.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace mosaic {
namespace {

/// Control point of a fragment: its middle, as an EPE sample.
SamplePoint controlPoint(const EdgeFragment& fragment) {
  const EdgeSegment& seg = fragment.segment;
  return SamplePoint{seg.horizontal, seg.boundary, (seg.lo + seg.hi) / 2,
                     seg.insideLow};
}

}  // namespace

std::vector<EdgeFragment> fragmentEdges(const BitGrid& target,
                                        int fragmentLengthPx) {
  MOSAIC_CHECK(fragmentLengthPx >= 2, "fragments need >= 2 pixels");
  std::vector<EdgeFragment> fragments;
  for (const auto& edge : extractEdges(target)) {
    const int len = edge.length();
    const int count = std::max(1, len / fragmentLengthPx);
    const int base = len / count;
    int cursor = edge.lo;
    for (int i = 0; i < count; ++i) {
      EdgeSegment piece = edge;
      piece.lo = cursor;
      piece.hi = (i + 1 == count) ? edge.hi : cursor + base - 1;
      cursor = piece.hi + 1;
      fragments.push_back(EdgeFragment{piece, 0});
    }
  }
  return fragments;
}

BitGrid applyFragmentBiases(const BitGrid& target,
                            const std::vector<EdgeFragment>& fragments) {
  BitGrid mask = target;
  const int rows = mask.rows();
  const int cols = mask.cols();
  auto paint = [&](const EdgeFragment& f, bool add) {
    const EdgeSegment& seg = f.segment;
    const int bias = f.biasPx;
    // Rows (or columns) covered by the move: outward from the boundary
    // for growth, inward for shrink.
    int p0;
    int p1;
    if (bias > 0) {
      // Outward = away from the inside.
      p0 = seg.insideLow ? seg.boundary : seg.boundary - bias;
      p1 = seg.insideLow ? seg.boundary + bias : seg.boundary;
    } else {
      // Inward strip to clear.
      const int b = -bias;
      p0 = seg.insideLow ? seg.boundary - b : seg.boundary;
      p1 = seg.insideLow ? seg.boundary : seg.boundary + b;
    }
    for (int p = p0; p < p1; ++p) {
      for (int t = seg.lo; t <= seg.hi; ++t) {
        const int r = seg.horizontal ? p : t;
        const int c = seg.horizontal ? t : p;
        if (r < 0 || r >= rows || c < 0 || c >= cols) continue;
        mask(r, c) = add ? 1u : 0u;
      }
    }
  };
  // Clear shrinks first, then paint growths (growth wins at corners --
  // light is easier to remove by neighbors than to create).
  for (const auto& f : fragments) {
    if (f.biasPx < 0) paint(f, false);
  }
  for (const auto& f : fragments) {
    if (f.biasPx > 0) paint(f, true);
  }
  return mask;
}

EdgeOpcResult runEdgeOpc(const LithoSimulator& sim, const BitGrid& target,
                         const EdgeOpcConfig& config) {
  const int pixelNm = sim.optics().pixelNm;
  MOSAIC_CHECK(config.fragmentLengthNm >= 2 * pixelNm,
               "fragment length below two pixels");
  const int maxBiasPx = std::max(1, config.maxBiasNm / pixelNm);
  const int maxStepPx = std::max(1, config.maxStepNm / pixelNm);

  EdgeOpcResult result;
  result.fragments =
      fragmentEdges(target, config.fragmentLengthNm / pixelNm);

  std::vector<SamplePoint> controls;
  controls.reserve(result.fragments.size());
  for (const auto& f : result.fragments) controls.push_back(controlPoint(f));

  // The assist features are part of the mask being iterated, so the
  // feedback loop sees exactly the mask it will emit.
  const BitGrid srafOverlay = config.sraf.enabled
                                  ? srafBand(target, pixelNm, config.sraf)
                                  : BitGrid(target.rows(), target.cols(), 0);

  BitGrid mask = target;
  double bestMeanEpe = std::numeric_limits<double>::infinity();
  std::vector<EdgeFragment> bestFragments = result.fragments;
  int bestViolations = std::numeric_limits<int>::max();
  for (int iter = 1; iter <= config.maxIterations; ++iter) {
    mask = bitOr(applyFragmentBiases(target, result.fragments), srafOverlay);
    const BitGrid printed = sim.printBinary(
        sim.aerial(toReal(mask), nominalCorner(), config.inLoopKernels));
    const EpeResult epe = measureEpe(printed, target, controls, pixelNm,
                                     /*thresholdNm=*/15.0);
    result.iterations = iter;
    // Keep the best iterate: fewest violations, mean |EPE| as tiebreak.
    if (epe.violations < bestViolations ||
        (epe.violations == bestViolations &&
         epe.meanAbsEpeNm < bestMeanEpe)) {
      bestViolations = epe.violations;
      bestMeanEpe = epe.meanAbsEpeNm;
      bestFragments = result.fragments;
    }

    bool anyMove = false;
    for (std::size_t i = 0; i < result.fragments.size(); ++i) {
      const double epePx = epe.perSample[i].epeNm / pixelNm;
      // Positive EPE = printed edge outside the target = too much light:
      // move the mask edge inward (negative bias change).
      int step = static_cast<int>(std::lround(-config.damping * epePx));
      step = std::clamp(step, -maxStepPx, maxStepPx);
      if (step == 0) continue;
      const int updated =
          std::clamp(result.fragments[i].biasPx + step, -maxBiasPx,
                     maxBiasPx);
      if (updated != result.fragments[i].biasPx) {
        result.fragments[i].biasPx = updated;
        anyMove = true;
      }
    }
    LOG_DEBUG("edge OPC iter " << iter << ": mean |EPE| "
                               << epe.meanAbsEpeNm << " nm, moved "
                               << (anyMove ? "yes" : "no"));
    if (!anyMove) break;  // converged (or fully clamped)
  }

  result.fragments = std::move(bestFragments);
  result.bestViolations = bestViolations;
  result.finalMeanAbsEpeNm = bestMeanEpe;
  result.mask = bitOr(applyFragmentBiases(target, result.fragments),
                      srafOverlay);
  return result;
}

}  // namespace mosaic
