# Empty compiler generated dependencies file for fig2_sigmoid.
# This may be replaced when dependencies are built.
