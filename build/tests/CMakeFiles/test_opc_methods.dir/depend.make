# Empty dependencies file for test_opc_methods.
# This may be replaced when dependencies are built.
