#pragma once
/// \file optimizer.hpp
/// Gradient-descent driver for the ILT objective (paper Alg. 1) with the
/// step-size "jump" technique of Zhao & Chu [12] to escape local minima.
/// The returned mask is the iterate with the lowest objective value seen
/// (Alg. 1 line 9), not necessarily the last one.
///
/// The driver carries numerical guardrails (docs/robustness.md): every
/// evaluation is screened for non-finite values and rolled back to the
/// last good iterate with a shrunk step, a wall-clock deadline returns the
/// best iterate instead of running over budget, and the full optimizer
/// state can be checkpointed to disk and resumed bit-identically.

#include <functional>
#include <string>
#include <vector>

#include "opc/mask_params.hpp"
#include "opc/objective.hpp"
#include "support/cancel.hpp"

namespace mosaic {

namespace telemetry {
class RunLog;
}

/// Telemetry for one optimizer iteration (drives the paper's Fig. 6 and
/// the JSONL run log, docs/observability.md).
struct IterationRecord {
  int iteration = 0;
  double objective = 0.0;
  double targetTerm = 0.0;
  double pvbTerm = 0.0;
  double rmsGradient = 0.0;
  double stepSize = 0.0;
  double wallMs = 0.0;  ///< wall-clock time this iteration took
  bool improved = false;
  bool jumped = false;
  bool recovered = false;  ///< non-finite iterate rolled back this iteration
};

/// Why the optimizer stopped.
enum class StopReason {
  kConverged,         ///< RMS-gradient rule satisfied
  kMaxIterations,     ///< iteration budget exhausted
  kDeadline,          ///< wall-clock budget exhausted
  kAbortedNonFinite,  ///< non-finite values exceeded cfg.maxRecoveries
  kCanceled,          ///< OptimizeOptions.cancel token requested a stop
};

[[nodiscard]] std::string stopReasonName(StopReason reason);

struct OptimizeResult {
  RealGrid bestMask;       ///< continuous mask with the lowest objective
  double bestObjective = 0.0;
  int bestIteration = 0;
  std::vector<IterationRecord> history;
  bool converged = false;  ///< stopped on the RMS-gradient rule
  StopReason stopReason = StopReason::kMaxIterations;
  int nonFiniteEvents = 0;  ///< evaluations with a NaN/Inf value/grad/param
  int recoveries = 0;       ///< rollbacks performed (<= nonFiniteEvents)
};

/// Full optimizer state between iterations; what a checkpoint stores.
/// Resuming from a checkpoint reproduces the uninterrupted run's remaining
/// iterations bit-identically (the objective is deterministic).
struct OptimizerCheckpoint {
  int iteration = 0;  ///< last completed iteration
  double step = 0.0;
  double previousValue = 0.0;
  int sinceImprovement = 0;
  double bestObjective = 0.0;
  int bestIteration = 0;
  int nonFiniteEvents = 0;
  int recoveries = 0;
  RealGrid params;    ///< current P-grid
  RealGrid bestMask;
  RealGrid velocity;  ///< momentum state (empty unless kMomentum)
  RealGrid adamM;     ///< Adam first moment (empty unless kAdam)
  RealGrid adamV;     ///< Adam second moment (empty unless kAdam)
  std::vector<IterationRecord> history;
};

/// Typed error for unreadable checkpoints: missing file, truncated or
/// garbage bytes, version mismatch, implausible shapes. Derives from
/// InvalidArgument so pre-existing catch sites keep working; catching it
/// specifically lets recovery paths (tile scheduler, serve workers)
/// restart cleanly from scratch instead of failing the whole job.
class CheckpointError : public InvalidArgument {
 public:
  explicit CheckpointError(const std::string& what) : InvalidArgument(what) {}
};

/// Serialize a checkpoint to a versioned binary file (written atomically:
/// temp file + rename). Throws on I/O failure.
void saveOptimizerCheckpoint(const std::string& path,
                             const OptimizerCheckpoint& ckpt);

/// Load a checkpoint; throws CheckpointError on missing/truncated/corrupt/
/// version-mismatched files (never crashes on garbage bytes).
[[nodiscard]] OptimizerCheckpoint loadOptimizerCheckpoint(
    const std::string& path);

/// Checkpoint/resume and telemetry controls for optimizeMask.
struct OptimizeOptions {
  std::string checkpointPath;  ///< write checkpoints here (empty = off)
  int checkpointEvery = 0;     ///< iterations between checkpoints (0 = off)
  std::string resumePath;      ///< resume from this checkpoint (empty = off)
  /// When set, one JSONL record per iteration is appended here (type
  /// "iteration", docs/observability.md). Not owned; must outlive the run.
  telemetry::RunLog* runLog = nullptr;
  /// Scope label stamped into every run-log record (e.g. the clip name or
  /// "tile_r2_c3") so concurrent optimizers sharing one log stay
  /// distinguishable.
  std::string runLogScope;
  /// Cooperative stop: polled once per iteration. When it fires the run
  /// stops with StopReason::kCanceled and — if checkpointing is armed — a
  /// final checkpoint is written first, so an interrupted run (Ctrl-C, a
  /// serve drain, a client cancel, a job deadline) can resume
  /// bit-identically. Not owned; may be nullptr.
  const CancelToken* cancel = nullptr;
  /// Warm start: when non-empty, runOpc descends from this continuous mask
  /// instead of the SRAF-initialized target (pattern-cache near hits,
  /// docs/caching.md). Must match the target's grid shape. Ignored when
  /// `resumePath` is set — a checkpoint carries its own full state.
  RealGrid warmStartMask;
  /// Invoked once per iteration with the same record the run log gets
  /// (streaming progress: serve's watch op, docs/observability.md). Called
  /// from the optimizing thread, so implementations must be cheap and
  /// non-blocking — push to a bounded buffer, never write a socket.
  std::function<void(const IterationRecord&)> progressSink;
};

/// Called after every iteration with the current (not best) mask.
using IterationCallback =
    std::function<void(const IterationRecord&, const RealGrid& mask)>;

/// Run gradient descent from an initial mask. Steps are taken in P-space
/// (MaskTransform), with the update normalized by the gradient RMS so the
/// configured step size is in P units. When `options.resumePath` is set the
/// initial mask only fixes the grid shape; all state comes from the
/// checkpoint.
OptimizeResult optimizeMask(const IltObjective& objective,
                            const RealGrid& initialMask,
                            const IterationCallback& callback = {},
                            const OptimizeOptions& options = {});

}  // namespace mosaic
