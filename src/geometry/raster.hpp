#pragma once
/// \file raster.hpp
/// Layout -> pixel grid rasterization. Row r / column c of the raster maps
/// to the pixel whose nm-space center is ((c + 0.5) * pixelNm,
/// (r + 0.5) * pixelNm); i.e. row 0 is the bottom edge of the clip.

#include "geometry/layout.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// Rasterize a layout clip at the given pixel pitch (center sampling).
/// The raster is exact when all rect coordinates are multiples of pixelNm.
/// \throws InvalidArgument if pixelNm does not divide the clip size.
BitGrid rasterize(const Layout& layout, int pixelNm);

/// Grid side length for a layout at a pixel pitch.
int gridSizeFor(const Layout& layout, int pixelNm);

/// Area-coverage (anti-aliased) rasterization: each pixel holds the exact
/// fraction of its area covered by the (disjoint) rect union, so layouts
/// whose coordinates are NOT multiples of the pitch keep their area. The
/// result equals toReal(rasterize(...)) for aligned layouts.
RealGrid rasterizeGray(const Layout& layout, int pixelNm);

}  // namespace mosaic
