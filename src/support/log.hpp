#pragma once
/// \file log.hpp
/// Minimal leveled logger. Single global sink (stderr) with a runtime level
/// threshold; formatting is plain ostream based so the library carries no
/// formatting dependency.
///
/// Every record carries a monotonic timestamp (seconds since the telemetry
/// epoch, shared with the trace clock so log lines align with trace spans)
/// and the small dense id of the emitting thread. Emission is atomic: the
/// full line is assembled first and written with one call under the sink
/// mutex, so records from parallel tile workers never interleave.
///
/// Two output formats (setLogFormat / --log-format):
///   text  [    0.123s INFO  t00] message
///   json  {"ts":0.123,"level":"info","tid":0,"msg":"message"}

#include <sstream>
#include <string>

namespace mosaic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parseLogLevel(const std::string& name);

/// Output format of the stderr sink.
enum class LogFormat { kText = 0, kJson = 1 };

void setLogFormat(LogFormat format);
LogFormat logFormat();

/// Parse "text"/"json" (case-insensitive).
LogFormat parseLogFormat(const std::string& name);

namespace detail {
void logEmit(LogLevel level, const std::string& message);
}

}  // namespace mosaic

#define MOSAIC_LOG(level, msg)                                      \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::mosaic::logLevel())) {                   \
      ::mosaic::detail::logEmit(                                    \
          level, (std::ostringstream{} << msg).str());              \
    }                                                               \
  } while (false)

#define LOG_DEBUG(msg) MOSAIC_LOG(::mosaic::LogLevel::kDebug, msg)
#define LOG_INFO(msg) MOSAIC_LOG(::mosaic::LogLevel::kInfo, msg)
#define LOG_WARN(msg) MOSAIC_LOG(::mosaic::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) MOSAIC_LOG(::mosaic::LogLevel::kError, msg)
