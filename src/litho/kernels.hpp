#pragma once
/// \file kernels.hpp
/// SOCS kernel set: the optical system decomposed into coherent kernels
/// h_k with weights w_k (paper Eq. 1-2). Kernels are band-limited to the
/// pupil, so their spectra are sparse on the FFT lattice -- we store only
/// the nonzero frequency samples.

#include <complex>
#include <vector>

#include "math/grid.hpp"

namespace mosaic {

/// A spectrum that is nonzero only at a small set of FFT lattice sites.
struct SparseSpectrum {
  int gridSize = 0;                          ///< full FFT grid side N
  std::vector<int> flatIndex;                ///< r * N + c of each sample
  std::vector<std::complex<double>> value;   ///< sample values

  [[nodiscard]] std::size_t sampleCount() const { return flatIndex.size(); }

  /// Value at the DC site (0,0); zero if DC is not in the support.
  [[nodiscard]] std::complex<double> dcValue() const;

  /// Spectrum of the spatially flipped kernel h(-x,-y): sample at (r,c)
  /// moves to ((N-r)%N, (N-c)%N), value unchanged.
  [[nodiscard]] SparseSpectrum flipped() const;

  /// Element-wise complex conjugate (spectrum of conj(h) is the flipped
  /// conjugate; this is just the value conjugation half).
  [[nodiscard]] SparseSpectrum conjugated() const;

  /// Densify to a full grid (mostly zeros).
  [[nodiscard]] ComplexGrid dense() const;

  /// out = (this spectrum) .* signalSpectrum, written into a full-size
  /// grid that is zero outside the support. `out` must be N x N.
  void multiplyInto(const ComplexGrid& signalSpectrum, ComplexGrid& out) const;

  /// Accumulate scale * (this .* signalSpectrum) into `accum` (N x N).
  void accumulateProduct(const ComplexGrid& signalSpectrum,
                         std::complex<double> scale, ComplexGrid& accum) const;
};

/// The decomposed optical system for one focus condition.
struct KernelSet {
  int gridSize = 0;
  double focusNm = 0.0;
  std::vector<double> weights;           ///< w_k, descending
  std::vector<SparseSpectrum> kernels;   ///< \hat h_k on the FFT lattice
  SparseSpectrum combined;               ///< sum_k w_k \hat h_k (Eq. 21)

  [[nodiscard]] int kernelCount() const {
    return static_cast<int>(kernels.size());
  }

  /// Sum of weights (after normalization this relates to total captured
  /// TCC energy).
  [[nodiscard]] double weightSum() const;
};

}  // namespace mosaic
