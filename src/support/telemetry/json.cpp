#include "support/telemetry/json.hpp"

#include <cmath>
#include <cstdio>

namespace mosaic {
namespace telemetry {
namespace {

constexpr const char* kReplacement = "\xEF\xBF\xBD";  // U+FFFD

/// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not well-formed (truncated, overlong, surrogate, or
/// out-of-range encodings all count as invalid).
std::size_t utf8SequenceLength(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  if (lead < 0x80) return 1;
  std::size_t len = 0;
  unsigned lo = 0x80, hi = 0xBF;  // allowed range of the first continuation
  if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    len = 3;
    if (lead == 0xE0) lo = 0xA0;        // reject overlong
    if (lead == 0xED) hi = 0x9F;        // reject surrogates U+D800..DFFF
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
    if (lead == 0xF0) lo = 0x90;        // reject overlong
    if (lead == 0xF4) hi = 0x8F;        // reject > U+10FFFF
  } else {
    return 0;  // lone continuation byte or the invalid 0xC0/0xC1/0xF5+
  }
  if (i + len > s.size()) return 0;
  const unsigned char c1 = byte(i + 1);
  if (c1 < lo || c1 > hi) return 0;
  for (std::size_t k = 2; k < len; ++k) {
    const unsigned char c = byte(i + k);
    if (c < 0x80 || c > 0xBF) return 0;
  }
  return len;
}

}  // namespace

std::string sanitizeUtf8(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t len = utf8SequenceLength(s, i);
    if (len == 0) {
      out += kReplacement;
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else if (c < 0x80) {
          out += s[i];
        } else {
          // Multi-byte sequence: copy only when well-formed so the emitted
          // document stays valid UTF-8 even for garbage inputs (truncated
          // file names, raw bytes smuggled into error strings).
          const std::size_t len = utf8SequenceLength(s, i);
          if (len == 0) {
            out += kReplacement;
          } else {
            out.append(s.substr(i, len));
            i += len - 1;
          }
        }
    }
    ++i;
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

JsonObject& JsonObject::set(std::string_view key, double value) {
  return setRaw(key, jsonNumber(value));
}

JsonObject& JsonObject::set(std::string_view key, long long value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, unsigned long long value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, int value) {
  return setRaw(key, std::to_string(value));
}

JsonObject& JsonObject::set(std::string_view key, bool value) {
  return setRaw(key, value ? "true" : "false");
}

JsonObject& JsonObject::set(std::string_view key, std::string_view value) {
  std::string quoted;
  quoted += '"';
  quoted += jsonEscape(value);
  quoted += '"';
  return setRaw(key, std::move(quoted));
}

JsonObject& JsonObject::set(std::string_view key, const char* value) {
  return set(key, std::string_view(value));
}

JsonObject& JsonObject::setRaw(std::string_view key, std::string rawJson) {
  fields_.emplace_back(std::string(key), std::move(rawJson));
  return *this;
}

bool JsonObject::has(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

std::string JsonObject::str() const {
  std::string out;
  out += '{';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += jsonEscape(fields_[i].first);
    out += "\":";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

}  // namespace telemetry
}  // namespace mosaic
