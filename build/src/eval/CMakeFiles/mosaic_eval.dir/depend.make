# Empty dependencies file for mosaic_eval.
# This may be replaced when dependencies are built.
