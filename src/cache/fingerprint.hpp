#pragma once
/// \file fingerprint.hpp
/// Tile fingerprints for the pattern-library mask cache (docs/caching.md).
///
/// A fingerprint answers one question: "has this optimization problem been
/// solved before?" For a tile that means three independent things must
/// match — the geometry the optimizer corrects (the core), the geometry it
/// merely sees as optical context (the halo), and every knob that shapes
/// the solution (optics, ILT configuration, method, raster). Each gets its
/// own 64-bit FNV-1a digest:
///
///   - coreHash:   canonicalized rect set clipped to the core region,
///                 translated so its bounding-box corner sits at the
///                 origin. Translation-invariant by construction: the same
///                 standard cell placed anywhere in the chip (at the same
///                 sub-pixel phase) hashes identically.
///   - windowHash: the full window rect set under the same canonical
///                 translation — the "halo hash". Two tiles with equal
///                 coreHash but different windowHash contain the same cell
///                 in a different neighborhood: a near-miss, good for a
///                 warm start but not for verbatim reuse.
///   - configHash: opticsParameterDigest + every IltConfig field + the
///                 method + window/pixel geometry. A key therefore fully
///                 determines the solved mask.
///
/// The canonical anchor is carried alongside (in pixels) so a cache hit
/// whose content is translated within the window can be shifted back into
/// place.

#include <cstdint>
#include <string>

#include "geometry/layout.hpp"
#include "litho/optics.hpp"
#include "opc/ilt_config.hpp"

namespace mosaic {

/// The cache identity of one tile-sized optimization problem.
struct TileFingerprint {
  std::uint64_t coreHash = 0;    ///< canonical core-region geometry
  std::uint64_t windowHash = 0;  ///< canonical core + halo geometry
  std::uint64_t configHash = 0;  ///< optics + ILT config + method + raster
  /// Canonical translation applied to the rect set, in whole pixels
  /// (window-local; the sub-pixel phase is folded into the hashes, so two
  /// equal fingerprints are always an exact pixel shift apart).
  int anchorPxRow = 0;
  int anchorPxCol = 0;
  bool empty = false;  ///< no pattern anywhere in the window

  /// Exact-solution identity: same key => same solved mask, up to the
  /// anchor translation.
  [[nodiscard]] bool sameKey(const TileFingerprint& o) const {
    return coreHash == o.coreHash && windowHash == o.windowHash &&
           configHash == o.configHash;
  }
  /// Near-miss identity: same corrected geometry and solver, different
  /// optical neighborhood.
  [[nodiscard]] bool sameCore(const TileFingerprint& o) const {
    return coreHash == o.coreHash && configHash == o.configHash;
  }

  /// One combined digest over (coreHash, windowHash, configHash) — the
  /// on-disk entry name.
  [[nodiscard]] std::uint64_t combined() const;
  [[nodiscard]] std::string keyHex() const;

  bool operator==(const TileFingerprint&) const = default;
};

/// Digest of every IltConfig field that shapes the solution (weights,
/// sigmoid steepnesses, corner set, optimizer schedule, guardrails).
[[nodiscard]] std::uint64_t iltConfigDigest(const IltConfig& cfg);

/// Digest of everything outside the geometry: optics, ILT config, the
/// method id (pass the OpcMethod cast to int), window edge and pixel
/// pitch. Feed the result to fingerprintWindow as `configHash`.
[[nodiscard]] std::uint64_t solverConfigDigest(const OpticsConfig& optics,
                                               const IltConfig& ilt,
                                               int methodId, int windowNm,
                                               int pixelNm);

/// Fingerprint a tile window. `window` is the clipped, window-local layout
/// (TilePlan::window); `coreLocalNm` is the core region in the same
/// window-local coordinates; `pixelNm` the raster pitch; `configHash` from
/// solverConfigDigest.
[[nodiscard]] TileFingerprint fingerprintWindow(const Layout& window,
                                                const RectNm& coreLocalNm,
                                                int pixelNm,
                                                std::uint64_t configHash);

}  // namespace mosaic
