#pragma once
/// \file runlog.hpp
/// JSON-lines run telemetry sink (docs/observability.md). One RunLog is
/// one append-only .jsonl file; every write() emits exactly one line with
/// a single OS write, so records from parallel tile workers never
/// interleave. Record schemas are owned by the emitters (optimizer
/// iteration records, tile scheduler tile/chip records, batch runner clip
/// records); this class only guarantees atomic, flushed line emission.

#include <cstdio>
#include <mutex>
#include <string>

#include "support/telemetry/json.hpp"

namespace mosaic {
namespace telemetry {

class RunLog {
 public:
  /// Opens (truncates) the file. Throws InvalidArgument on failure.
  explicit RunLog(const std::string& path);
  ~RunLog();
  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;

  /// Serialize the record and append it as one line. Thread-safe; the
  /// line is written with a single fwrite and flushed so a crashed run
  /// keeps everything emitted before the crash.
  void write(const JsonObject& record);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] long long recordsWritten() const;

 private:
  std::string path_;
  FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  long long records_ = 0;
};

}  // namespace telemetry
}  // namespace mosaic
