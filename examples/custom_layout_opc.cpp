/// \file custom_layout_opc.cpp
/// Shows how a downstream user brings their own layout: build a Layout
/// from rectangles (here: an SRAM-like cell fragment), run both MOSAIC
/// modes, and compare against the uncorrected mask and conventional ILT.
///
/// Run:  ./custom_layout_opc --pixel 4

#include <cstdio>
#include <exception>
#include <string>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

/// A hand-drawn M1-style routing fragment: two rails, a jogged connection
/// and a landing pad.
mosaic::Layout makeCustomLayout() {
  mosaic::Layout layout;
  layout.name = "custom_sram_frag";
  layout.sizeNm = 1024;
  layout.addRect(224, 640, 800, 704);  // upper rail
  layout.addRect(224, 320, 800, 384);  // lower rail
  layout.addRect(480, 384, 544, 640);  // vertical connector
  layout.addRect(640, 448, 752, 560);  // landing pad
  layout.addRect(256, 448, 368, 560);  // second pad
  return layout;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string logLevel = "warn";

  CliParser cli("custom_layout_opc", "OPC on a user-provided layout");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    const Layout layout = makeCustomLayout();
    const BitGrid target = rasterize(layout, pixel);

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    TextTable table;
    table.setHeader({"method", "#EPE", "PVB (nm^2)", "shape", "score",
                     "runtime (s)"});
    auto report = [&](const std::string& name, const RealGrid& mask,
                      double runtime) {
      const CaseEvaluation ev = evaluateMask(sim, mask, target, runtime);
      table.addRow({name, TextTable::integer(ev.epeViolations),
                    TextTable::num(ev.pvbandAreaNm2, 0),
                    TextTable::integer(ev.shapeViolations),
                    TextTable::num(ev.score, 0), TextTable::num(runtime, 1)});
    };

    report("no_opc", noOpcMask(target), 0.0);
    report("rule_opc", ruleOpcMask(target, pixel), 0.0);

    for (OpcMethod method : {OpcMethod::kIltBaseline, OpcMethod::kMosaicFast,
                             OpcMethod::kMosaicExact}) {
      IltConfig cfg = defaultIltConfig(method, pixel);
      cfg.maxIterations = iterations;
      const OpcResult res = runOpc(sim, target, method, &cfg);
      report(res.method, toReal(res.maskBinary), res.runtimeSec);
    }

    std::printf("%s\n", table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "custom_layout_opc failed: %s\n", e.what());
    return 1;
  }
}
