/// \file window_comparison.cpp
/// Process-window comparison across OPC methods: sweeps the full
/// focus-exposure matrix for the uncorrected mask, the conventional ILT
/// baseline and both MOSAIC modes, and reports DOF / exposure latitude /
/// in-spec window fraction. This quantifies the paper's motivation: the
/// F_pvb term should buy a *wider usable window*, not just a smaller PV
/// band surrogate.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/process_window.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "2,4";
  std::string logLevel = "warn";

  CliParser cli("window_comparison",
                "focus-exposure window per OPC method");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    TextTable table;
    table.setHeader({"case", "method", "DOF (nm)", "EL (%)",
                     "window (%)"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      auto report = [&](const std::string& name, const RealGrid& mask) {
        const ProcessWindowResult w =
            measureProcessWindow(sim, mask, target);
        table.addRow({layout.name, name, TextTable::num(w.dofNm, 0),
                      TextTable::num(w.exposureLatitudePct, 1),
                      TextTable::num(100.0 * w.windowFraction, 1)});
      };

      report("no_opc", noOpcMask(target));
      for (OpcMethod m : {OpcMethod::kIltBaseline, OpcMethod::kMosaicFast,
                          OpcMethod::kMosaicExact}) {
        IltConfig cfg = defaultIltConfig(m, pixel);
        cfg.maxIterations =
            (m == OpcMethod::kMosaicExact) ? iterations + 10 : iterations;
        const OpcResult res = runOpc(sim, target, m, &cfg);
        report(res.method, res.maskTwoLevel);
      }
    }
    std::printf("=== Process window (focus 0..60 nm x dose +-10%%) ===\n%s\n",
                table.render().c_str());
    std::printf("DOF at nominal dose; EL at nominal focus; window = in-spec "
                "fraction of the swept matrix (zero EPE violations, no "
                "shape defects)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "window_comparison failed: %s\n", e.what());
    return 1;
  }
}
