# Empty compiler generated dependencies file for bm_optimizer.
# This may be replaced when dependencies are built.
