file(REMOVE_RECURSE
  "CMakeFiles/mosaic_opc.dir/baselines.cpp.o"
  "CMakeFiles/mosaic_opc.dir/baselines.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/edge_opc.cpp.o"
  "CMakeFiles/mosaic_opc.dir/edge_opc.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/levelset.cpp.o"
  "CMakeFiles/mosaic_opc.dir/levelset.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/mask_params.cpp.o"
  "CMakeFiles/mosaic_opc.dir/mask_params.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/mosaic.cpp.o"
  "CMakeFiles/mosaic_opc.dir/mosaic.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/multires.cpp.o"
  "CMakeFiles/mosaic_opc.dir/multires.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/objective.cpp.o"
  "CMakeFiles/mosaic_opc.dir/objective.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/optimizer.cpp.o"
  "CMakeFiles/mosaic_opc.dir/optimizer.cpp.o.d"
  "CMakeFiles/mosaic_opc.dir/sraf.cpp.o"
  "CMakeFiles/mosaic_opc.dir/sraf.cpp.o.d"
  "libmosaic_opc.a"
  "libmosaic_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
