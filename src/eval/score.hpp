#pragma once
/// \file score.hpp
/// ICCAD 2013 contest scoring (paper Eq. 22):
///   Score = w_rt * Runtime + 4 * PVBand + 5000 * #EPE + w_sv * ShapeViol.
/// PVBand is an area in nm^2; #EPE a count. The paper notes runtime is a
/// small fraction of the score (0.12 % / 0.75 % for fast / exact).

namespace mosaic {

struct ScoreWeights {
  double runtime = 1.0;    ///< per second
  double pvband = 4.0;     ///< per nm^2
  double epe = 5000.0;     ///< per violation
  double shape = 10000.0;  ///< per shape violation (contest: prohibitive)
};

/// Compose the contest score from its ingredients.
double contestScore(double runtimeSec, double pvbandAreaNm2,
                    int epeViolations, int shapeViolations,
                    const ScoreWeights& weights = {});

}  // namespace mosaic
