# Empty compiler generated dependencies file for mosaic_io.
# This may be replaced when dependencies are built.
