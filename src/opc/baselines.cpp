#include "opc/baselines.hpp"

#include <cstdlib>

#include "geometry/bitmap_ops.hpp"
#include "geometry/edges.hpp"
#include "support/error.hpp"

namespace mosaic {

RealGrid noOpcMask(const BitGrid& target) { return toReal(target); }

namespace {

/// Stamp hammerhead serifs onto every line end: a short boundary run is
/// treated as a line end and the mask is extended outward over it.
void addLineEndSerifs(BitGrid& mask, const BitGrid& target, int pixelNm,
                      const RuleOpcConfig& cfg) {
  const int maxEndPx = cfg.serifMaxEndNm / pixelNm;
  const int extendPx = std::max(1, cfg.serifExtendNm / pixelNm);
  const int overPx = cfg.serifOverhangNm / pixelNm;
  const int rows = mask.rows();
  const int cols = mask.cols();
  const int clearPx = std::max(1, cfg.serifClearanceNm / pixelNm);
  auto targetAt = [&](int r, int c) {
    return r >= 0 && r < rows && c >= 0 && c < cols && target(r, c) != 0;
  };
  for (const auto& edge : extractEdges(target)) {
    if (edge.length() > maxEndPx) continue;
    // Line-end test: the probe zone beyond and beside the run must be
    // clear of geometry, else this is a notch between features.
    const int probe0 = edge.insideLow ? edge.boundary
                                      : edge.boundary - extendPx - clearPx;
    const int probe1 = edge.insideLow ? edge.boundary + extendPx + clearPx
                                      : edge.boundary;
    bool clear = true;
    for (int p = probe0; p < probe1 && clear; ++p) {
      for (int t = edge.lo - clearPx; t <= edge.hi + clearPx && clear; ++t) {
        if (edge.horizontal ? targetAt(p, t) : targetAt(t, p)) clear = false;
      }
    }
    if (!clear) continue;
    // Outward span perpendicular to the edge.
    const int out0 = edge.insideLow ? edge.boundary
                                    : edge.boundary - extendPx;
    const int out1 = edge.insideLow ? edge.boundary + extendPx
                                    : edge.boundary;
    const int lo = edge.lo - overPx;
    const int hi = edge.hi + overPx;
    for (int p = out0; p < out1; ++p) {
      for (int t = lo; t <= hi; ++t) {
        const int r = edge.horizontal ? p : t;
        const int c = edge.horizontal ? t : p;
        if (r >= 0 && r < rows && c >= 0 && c < cols) mask(r, c) = 1u;
      }
    }
  }
}

}  // namespace

RealGrid ruleOpcMask(const BitGrid& target, int pixelNm,
                     const RuleOpcConfig& config) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  const int biasPx = std::abs(config.biasNm) / pixelNm;
  BitGrid mask = config.biasNm >= 0 ? dilateSquare(target, biasPx)
                                    : erodeSquare(target, biasPx);
  if (config.serifs) addLineEndSerifs(mask, target, pixelNm, config);
  mask = insertSraf(mask, pixelNm, config.sraf);
  return toReal(mask);
}

RealGrid ruleOpcMask(const BitGrid& target, int pixelNm, int biasNm,
                     const SrafConfig& sraf) {
  RuleOpcConfig config;
  config.biasNm = biasNm;
  config.serifs = false;  // this overload is bias + SRAF only
  config.sraf = sraf;
  return ruleOpcMask(target, pixelNm, config);
}

}  // namespace mosaic
