#include "support/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/telemetry/flightrec.hpp"

namespace mosaic {
namespace failpoint {

namespace detail {
std::atomic<bool> gActive{false};
}

namespace {

/// One armed injection at a site.
struct Spec {
  Action action = Action::kNone;
  int hit = 0;          ///< fire on this 1-based hit only; 0 = every hit
  double delayMs = 0.0; ///< payload for kDelay
};

struct Site {
  std::vector<Spec> specs;
  int hits = 0;
};

std::mutex& registryMutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Site>& registry() {
  static std::map<std::string, Site> sites;
  return sites;
}

int parsePositiveInt(const std::string& text, const std::string& context) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    MOSAIC_CHECK(consumed == text.size() && value >= 1,
                 "failpoint: " << context << " must be a positive integer");
    return value;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("failpoint: bad " + context + ": " + text);
  }
}

/// Parse one "site:action[@iter=N]" clause.
std::pair<std::string, Spec> parseClause(const std::string& clause) {
  const auto colon = clause.find(':');
  MOSAIC_CHECK(colon != std::string::npos && colon > 0,
               "failpoint: expected <site>:<action>, got: " << clause);
  const std::string site = clause.substr(0, colon);
  std::string actionText = clause.substr(colon + 1);

  Spec spec;
  const auto at = actionText.find('@');
  if (at != std::string::npos) {
    std::string trigger = actionText.substr(at + 1);
    actionText = actionText.substr(0, at);
    const auto eq = trigger.find('=');
    MOSAIC_CHECK(eq != std::string::npos,
                 "failpoint: expected @iter=<N>, got: @" << trigger);
    const std::string key = trigger.substr(0, eq);
    MOSAIC_CHECK(key == "iter" || key == "hit",
                 "failpoint: unknown trigger '" << key
                                                << "' (use iter or hit)");
    spec.hit = parsePositiveInt(trigger.substr(eq + 1), "trigger index");
  }

  if (actionText == "nan") {
    spec.action = Action::kNan;
  } else if (actionText == "inf") {
    spec.action = Action::kInf;
  } else if (actionText == "throw") {
    spec.action = Action::kThrow;
  } else if (actionText.rfind("delay=", 0) == 0) {
    spec.action = Action::kDelay;
    const std::string ms = actionText.substr(6);
    try {
      spec.delayMs = std::stod(ms);
    } catch (const std::exception&) {
      throw InvalidArgument("failpoint: bad delay: " + ms);
    }
    MOSAIC_CHECK(spec.delayMs >= 0.0, "failpoint: delay must be >= 0");
  } else {
    throw InvalidArgument(
        "failpoint: unknown action '" + actionText +
        "' (use nan, inf, throw, or delay=<ms>)");
  }
  return {site, spec};
}

}  // namespace

void configure(const std::string& spec) {
  // Parse every clause before arming any, so a malformed list arms nothing.
  std::vector<std::pair<std::string, Spec>> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    auto end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    if (!clause.empty()) parsed.push_back(parseClause(clause));
    begin = end + 1;
  }
  if (parsed.empty()) return;

  std::lock_guard<std::mutex> lock(registryMutex());
  for (auto& [site, armed] : parsed) {
    registry()[site].specs.push_back(armed);
  }
  detail::gActive.store(true, std::memory_order_relaxed);
}

void configureFromEnv() {
  const char* env = std::getenv("MOSAIC_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') configure(env);
}

void reset() {
  std::lock_guard<std::mutex> lock(registryMutex());
  registry().clear();
  detail::gActive.store(false, std::memory_order_relaxed);
}

int hitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(registryMutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

bool isArmed(const std::string& site) {
  std::lock_guard<std::mutex> lock(registryMutex());
  const auto it = registry().find(site);
  return it != registry().end() && !it->second.specs.empty();
}

Action onHit(const char* site) {
  Action fired = Action::kNone;
  double delayMs = 0.0;
  {
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto it = registry().find(site);
    if (it == registry().end()) return Action::kNone;
    Site& entry = it->second;
    ++entry.hits;
    for (const Spec& spec : entry.specs) {
      if (spec.hit == 0 || spec.hit == entry.hits) {
        fired = spec.action;
        delayMs = spec.delayMs;
        break;
      }
    }
  }
  if (fired != Action::kNone) {
    // An armed site firing is exactly the kind of event a post-mortem
    // wants in view; unarmed hits stay off the recorder (hot paths).
    telemetry::flightrec::record("failpoint", site);
  }
  switch (fired) {
    case Action::kThrow:
      throw Error(std::string("failpoint: injected fault at ") + site);
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delayMs));
      return Action::kNone;
    default:
      return fired;
  }
}

void maybePoison(const char* site, double* data, std::size_t size) {
  const Action action = onHit(site);
  if (size == 0 || data == nullptr) return;
  if (action == Action::kNan) {
    data[size / 2] = std::numeric_limits<double>::quiet_NaN();
  } else if (action == Action::kInf) {
    data[size / 2] = std::numeric_limits<double>::infinity();
  }
}

}  // namespace failpoint
}  // namespace mosaic
