#pragma once
/// \file image_io.hpp
/// Plain PGM/PPM/CSV writers used to dump masks, aerial images, PV bands
/// (paper Fig. 5) and convergence traces (paper Fig. 6). Kept in support so
/// every layer can emit diagnostics without extra dependencies.

#include <span>
#include <string>
#include <vector>

namespace mosaic {

/// Write a binary 8-bit PGM. `values` is row-major, `rows*cols` long, and is
/// linearly mapped from [lo, hi] to [0, 255] (values outside are clamped).
void writePgm(const std::string& path, std::span<const double> values,
              int rows, int cols, double lo = 0.0, double hi = 1.0);

/// Write a binary 8-bit PPM from three row-major channels in [0,1].
void writePpm(const std::string& path, std::span<const double> red,
              std::span<const double> green, std::span<const double> blue,
              int rows, int cols);

/// Append-free CSV writer: one header row then data rows.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void writeHeader(const std::vector<std::string>& columns);
  void writeRow(const std::vector<double>& values);
  void writeRow(const std::vector<std::string>& values);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace mosaic
