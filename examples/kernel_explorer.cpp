/// \file kernel_explorer.cpp
/// Inspect the SOCS decomposition of the optical system (paper Sec. 2):
/// prints the kernel weight spectrum for the nominal and defocused systems
/// and dumps the dominant kernels' spatial intensity as PGM images.
///
/// Run:  ./kernel_explorer --pixel 4 --out /tmp

#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "litho/simulator.hpp"
#include "litho/tcc.hpp"
#include "math/fft.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int dumpKernels = 4;
  std::string outDir = "/tmp";
  std::string logLevel = "info";

  CliParser cli("kernel_explorer", "inspect the SOCS kernel decomposition");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("dump", &dumpKernels, "number of kernels to dump as images");
  cli.addString("out", &outDir, "output directory");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    for (double focus : {0.0, 25.0}) {
      const KernelSet& set = sim.kernels(focus);
      std::printf("focus %.0f nm: %d kernels, weights:\n", focus,
                  set.kernelCount());
      double total = set.weightSum();
      double running = 0.0;
      for (int k = 0; k < set.kernelCount(); ++k) {
        running += set.weights[static_cast<std::size_t>(k)];
        std::printf("  k=%2d  w=%.5f  cumulative %.1f%%\n", k,
                    set.weights[static_cast<std::size_t>(k)],
                    100.0 * running / total);
      }

      // Dump |h_k|^2 in the spatial domain (fftshifted for viewing).
      const int n = set.gridSize;
      const Fft2d& fft = fft2dFor(n, n);
      for (int k = 0; k < std::min(dumpKernels, set.kernelCount()); ++k) {
        ComplexGrid spatial = set.kernels[static_cast<std::size_t>(k)].dense();
        fft.inverse(spatial);
        RealGrid mag(n, n);
        double peak = 0.0;
        for (int r = 0; r < n; ++r) {
          for (int c = 0; c < n; ++c) {
            // fftshift so the kernel center lands mid-image.
            const int sr = (r + n / 2) % n;
            const int sc = (c + n / 2) % n;
            mag(sr, sc) = std::norm(spatial(r, c));
            peak = std::max(peak, mag(sr, sc));
          }
        }
        const std::string path = outDir + "/kernel_f" +
                                 std::to_string(static_cast<int>(focus)) +
                                 "_k" + std::to_string(k) + ".pgm";
        writePgm(path, {mag.data(), mag.size()}, n, n, 0.0, peak);
        std::printf("wrote %s\n", path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kernel_explorer failed: %s\n", e.what());
    return 1;
  }
}
