#include "litho/tcc.hpp"

#include <cmath>

#include "litho/pupil.hpp"
#include "math/eigen.hpp"
#include "support/log.hpp"

namespace mosaic {

std::vector<PupilSample> pupilLattice(const OpticsConfig& optics) {
  optics.validate();
  const int n = optics.gridSize();
  const double df = optics.freqStep();
  const double cutoff = optics.cutoffFreq();
  std::vector<PupilSample> lattice;
  // Signed index range covering the cutoff circle.
  const int maxIdx = static_cast<int>(std::floor(cutoff / df));
  for (int si = -maxIdx; si <= maxIdx; ++si) {
    for (int sj = -maxIdx; sj <= maxIdx; ++sj) {
      const double fy = si * df;
      const double fx = sj * df;
      if (fx * fx + fy * fy > cutoff * cutoff) continue;
      PupilSample sample;
      sample.row = (si % n + n) % n;
      sample.col = (sj % n + n) % n;
      sample.fx = fx;
      sample.fy = fy;
      lattice.push_back(sample);
    }
  }
  MOSAIC_CHECK(!lattice.empty(), "pupil lattice is empty -- clip too small?");
  return lattice;
}

std::vector<std::complex<double>> buildTcc(
    const OpticsConfig& optics, double focusNm,
    const std::vector<PupilSample>& lattice) {
  const Pupil pupil(optics, focusNm);
  const double df = optics.freqStep();
  const double cutoff = optics.cutoffFreq();
  const double srcStep = df / optics.sourceOversample;
  const double srcInner = optics.sigmaInner * cutoff;
  const double srcOuter = optics.sigmaOuter * cutoff;

  // Enumerate uniform annular source points on the refined lattice.
  std::vector<std::pair<double, double>> source;
  const int srcMax = static_cast<int>(std::ceil(srcOuter / srcStep));
  for (int si = -srcMax; si <= srcMax; ++si) {
    for (int sj = -srcMax; sj <= srcMax; ++sj) {
      const double sy = si * srcStep;
      const double sx = sj * srcStep;
      const double r2 = sx * sx + sy * sy;
      if (r2 < srcInner * srcInner || r2 > srcOuter * srcOuter) continue;
      source.emplace_back(sx, sy);
    }
  }
  MOSAIC_CHECK(!source.empty(), "source sampling produced no points");

  const int n = static_cast<int>(lattice.size());
  // Precompute P(s + f_p) for every (source, lattice) pair.
  std::vector<std::complex<double>> pupilAt(
      source.size() * static_cast<std::size_t>(n));
  for (std::size_t s = 0; s < source.size(); ++s) {
    for (int p = 0; p < n; ++p) {
      pupilAt[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(p)] =
          pupil.value(source[s].first + lattice[static_cast<std::size_t>(p)].fx,
                      source[s].second + lattice[static_cast<std::size_t>(p)].fy);
    }
  }

  std::vector<std::complex<double>> tcc(static_cast<std::size_t>(n) * n,
                                        {0.0, 0.0});
  const double norm = 1.0 / static_cast<double>(source.size());
  for (std::size_t s = 0; s < source.size(); ++s) {
    const std::complex<double>* row = &pupilAt[s * static_cast<std::size_t>(n)];
    for (int p = 0; p < n; ++p) {
      if (row[p] == std::complex<double>{0.0, 0.0}) continue;
      const std::complex<double> pp = row[p];
      for (int q = p; q < n; ++q) {
        tcc[static_cast<std::size_t>(p) * n + q] += pp * std::conj(row[q]);
      }
    }
  }
  // Fill the lower triangle by Hermitian symmetry and apply normalization.
  for (int p = 0; p < n; ++p) {
    for (int q = p; q < n; ++q) {
      auto& upper = tcc[static_cast<std::size_t>(p) * n + q];
      upper *= norm;
      tcc[static_cast<std::size_t>(q) * n + p] = std::conj(upper);
    }
  }
  return tcc;
}

KernelSet computeKernelSet(const OpticsConfig& optics, double focusNm) {
  const auto lattice = pupilLattice(optics);
  const int n = static_cast<int>(lattice.size());
  LOG_DEBUG("TCC lattice has " << n << " pupil samples (focus " << focusNm
                               << " nm)");
  const auto tcc = buildTcc(optics, focusNm, lattice);
  const int keep = std::min(optics.kernelCount, n);
  // Small lattices (every legacy 1024 nm clip) take the exact dense solve;
  // chip-scale tile windows double the frequency resolution and push the
  // lattice into the hundreds, where the full Jacobi sweep is O(n^3) and
  // takes minutes -- there the truncated subspace solve recovers just the
  // leading SOCS kernels in seconds.
  constexpr int kDirectEigenLimit = 256;
  const auto eig =
      (n <= kDirectEigenLimit)
          ? jacobiEigenHermitian(tcc, n)
          : topEigenpairsHermitian(tcc, n, std::min(n, keep + 8));

  KernelSet set;
  set.gridSize = optics.gridSize();
  set.focusNm = focusNm;
  for (int k = 0; k < keep; ++k) {
    const double w = eig.eigenvalues[static_cast<std::size_t>(k)];
    if (w <= 0.0) break;  // TCC is PSD; numerical negatives mark the tail
    SparseSpectrum spec;
    spec.gridSize = set.gridSize;
    spec.flatIndex.reserve(static_cast<std::size_t>(n));
    spec.value.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      spec.flatIndex.push_back(lattice[static_cast<std::size_t>(p)].row *
                                   set.gridSize +
                               lattice[static_cast<std::size_t>(p)].col);
      spec.value.push_back(
          eig.eigenvectors[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(p)]);
    }
    set.weights.push_back(w);
    set.kernels.push_back(std::move(spec));
  }
  MOSAIC_CHECK(!set.kernels.empty(), "TCC decomposition yielded no kernels");

  // Normalize weights so the open-frame intensity is 1: with M == 1 the
  // field of kernel k is its DC sample, so I_open = sum_k w_k |h_k(0)|^2.
  double openFrame = 0.0;
  for (std::size_t k = 0; k < set.kernels.size(); ++k) {
    openFrame += set.weights[k] * std::norm(set.kernels[k].dcValue());
  }
  MOSAIC_CHECK(openFrame > 1e-12,
               "open-frame intensity vanished -- degenerate kernel set");
  for (auto& w : set.weights) w /= openFrame;

  // Combined kernel (Eq. 21): sum_k w_k h_k, then rescale so its own
  // open-frame field has unit magnitude, keeping gradient magnitudes on
  // the same scale as the true intensity.
  SparseSpectrum combined;
  combined.gridSize = set.gridSize;
  combined.flatIndex = set.kernels.front().flatIndex;
  combined.value.assign(combined.flatIndex.size(), {0.0, 0.0});
  for (std::size_t k = 0; k < set.kernels.size(); ++k) {
    for (std::size_t i = 0; i < combined.value.size(); ++i) {
      combined.value[i] += set.weights[k] * set.kernels[k].value[i];
    }
  }
  const double dcMag = std::abs(combined.dcValue());
  MOSAIC_CHECK(dcMag > 1e-12, "combined kernel has no DC response");
  for (auto& v : combined.value) v /= dcMag;
  set.combined = std::move(combined);

  LOG_DEBUG("kernel set ready: " << set.kernels.size() << " kernels, top "
                                 << "weight " << set.weights.front());
  return set;
}

}  // namespace mosaic
