/// \file bm_kernel_combine.cpp
/// Benchmarks the Sec. 3.5 claim: combining the weighted kernels into one
/// (Eq. 21) cuts the gradient's convolution work by ~h times. Measures a
/// full objective+gradient evaluation in both gradient modes, plus the
/// forward SOCS cost versus kernel count.

#include <benchmark/benchmark.h>

#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/objective.hpp"
#include "suite/testcases.hpp"

namespace {

using namespace mosaic;

struct Env {
  LithoSimulator sim;
  BitGrid target;
  RealGrid mask;

  explicit Env(int pixel)
      : sim([&] {
          OpticsConfig o;
          o.pixelNm = pixel;
          return o;
        }()),
        target(rasterize(buildTestcase(4), pixel)),
        mask(toReal(target)) {
    sim.kernels(0.0);
    sim.kernels(25.0);
  }
};

Env& env() {
  static Env e(4);  // 256 x 256 grid
  return e;
}

void BM_GradientCombinedKernel(benchmark::State& state) {
  IltConfig cfg;
  cfg.gradientMode = GradientMode::kCombinedKernel;
  cfg.inLoopKernels = static_cast<int>(state.range(0));
  IltObjective obj(env().sim, env().target, cfg);
  for (auto _ : state) {
    auto eval = obj.evaluate(env().mask, true);
    benchmark::DoNotOptimize(eval.gradMask.data());
  }
}
BENCHMARK(BM_GradientCombinedKernel)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_GradientPerKernel(benchmark::State& state) {
  IltConfig cfg;
  cfg.gradientMode = GradientMode::kPerKernel;
  cfg.inLoopKernels = static_cast<int>(state.range(0));
  IltObjective obj(env().sim, env().target, cfg);
  for (auto _ : state) {
    auto eval = obj.evaluate(env().mask, true);
    benchmark::DoNotOptimize(eval.gradMask.data());
  }
}
BENCHMARK(BM_GradientPerKernel)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardSocs(benchmark::State& state) {
  const int kernels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto aerial = env().sim.aerial(env().mask, nominalCorner(), kernels);
    benchmark::DoNotOptimize(aerial.data());
  }
}
BENCHMARK(BM_ForwardSocs)
    ->Arg(1)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
