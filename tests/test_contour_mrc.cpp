/// Tests for contour tracing, raster -> rectangle decomposition and mask
/// rule checking (MRC).

#include <gtest/gtest.h>

#include "eval/mrc.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/contour.hpp"
#include "geometry/raster.hpp"
#include "suite/testcases.hpp"
#include "math/stats.hpp"
#include "support/rng.hpp"

namespace mosaic {
namespace {

BitGrid blockGrid(int n, int r0, int r1, int c0, int c1) {
  BitGrid g(n, n, 0);
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) g(r, c) = 1;
  }
  return g;
}

// -------------------------------------------------------------- contour

TEST(Contour, SingleRectangleTracesFourCorners) {
  const BitGrid g = blockGrid(16, 4, 10, 3, 12);
  const auto contours = traceContours(g);
  ASSERT_EQ(contours.size(), 1u);
  EXPECT_EQ(contours[0].vertexCount(), 4u);
  EXPECT_FALSE(contours[0].isHole());
  EXPECT_EQ(contours[0].perimeter(), 2 * (6 + 9));
}

TEST(Contour, DonutHasOuterAndHoleLoops) {
  BitGrid g = blockGrid(16, 2, 12, 2, 12);
  for (int r = 5; r < 9; ++r) {
    for (int c = 5; c < 9; ++c) g(r, c) = 0;
  }
  const auto contours = traceContours(g);
  ASSERT_EQ(contours.size(), 2u);
  int holes = 0;
  for (const auto& c : contours) holes += c.isHole();
  EXPECT_EQ(holes, 1);
}

TEST(Contour, LShapeHasSixVertices) {
  BitGrid g = blockGrid(16, 2, 10, 2, 6);
  for (int r = 2; r < 6; ++r) {
    for (int c = 6; c < 12; ++c) g(r, c) = 1;
  }
  const auto contours = traceContours(g);
  ASSERT_EQ(contours.size(), 1u);
  EXPECT_EQ(contours[0].vertexCount(), 6u);
}

TEST(Contour, TwoSeparateFeaturesTwoLoops) {
  BitGrid g = blockGrid(16, 2, 5, 2, 5);
  for (int r = 8; r < 11; ++r) {
    for (int c = 8; c < 11; ++c) g(r, c) = 1;
  }
  EXPECT_EQ(traceContours(g).size(), 2u);
}

TEST(Contour, DiagonalTouchStaysTwoLoops) {
  BitGrid g(4, 4, 0);
  g(1, 1) = 1;
  g(2, 2) = 1;
  const auto contours = traceContours(g);
  EXPECT_EQ(contours.size(), 2u);
  for (const auto& c : contours) EXPECT_EQ(c.vertexCount(), 4u);
}

TEST(Contour, NestedDonutThreeLoops) {
  // Ring with an island inside its hole: outer ring boundary, ring hole
  // boundary, island boundary = 3 loops, exactly 1 of them a hole.
  BitGrid g(20, 20, 0);
  for (int r = 2; r < 18; ++r) {
    for (int c = 2; c < 18; ++c) g(r, c) = 1;
  }
  for (int r = 5; r < 15; ++r) {
    for (int c = 5; c < 15; ++c) g(r, c) = 0;
  }
  for (int r = 8; r < 12; ++r) {
    for (int c = 8; c < 12; ++c) g(r, c) = 1;
  }
  const auto contours = traceContours(g);
  ASSERT_EQ(contours.size(), 3u);
  int holes = 0;
  for (const auto& c : contours) holes += c.isHole();
  EXPECT_EQ(holes, 1);
}

TEST(Contour, FullGridSingleLoop) {
  BitGrid g(6, 6, 1);
  const auto contours = traceContours(g);
  ASSERT_EQ(contours.size(), 1u);
  EXPECT_EQ(contours[0].vertexCount(), 4u);
  EXPECT_EQ(contours[0].perimeter(), 24);
  EXPECT_FALSE(contours[0].isHole());
}

TEST(RasterToRects, SuiteClipsRoundTripExactly) {
  // Property: decomposing any benchmark raster and re-rasterizing the
  // resulting layout reproduces the raster bit-for-bit.
  for (int idx : {2, 5, 6, 10}) {
    const BitGrid g = rasterize(buildTestcase(idx), 8);
    const Layout back = rasterToLayout(g, 8, "roundtrip");
    EXPECT_EQ(rasterize(back, 8), g) << "case B" << idx;
  }
}

TEST(Contour, EmptyGridHasNoContours) {
  BitGrid g(8, 8, 0);
  EXPECT_TRUE(traceContours(g).empty());
  EXPECT_EQ(totalPerimeter(g), 0);
  EXPECT_EQ(totalVertices(g), 0);
}

TEST(Contour, PerimeterMatchesEdgeCount) {
  // For any raster, the summed contour perimeter equals the number of
  // set/unset pixel adjacencies (counting the grid border).
  Rng rng(77);
  BitGrid g(12, 12, 0);
  for (auto& v : g) v = rng.uniform() < 0.4 ? 1u : 0u;
  long long adjacency = 0;
  auto at = [&](int r, int c) {
    return r >= 0 && r < 12 && c >= 0 && c < 12 && g(r, c) != 0;
  };
  for (int r = 0; r < 12; ++r) {
    for (int c = 0; c < 12; ++c) {
      if (!at(r, c)) continue;
      adjacency += !at(r - 1, c);
      adjacency += !at(r + 1, c);
      adjacency += !at(r, c - 1);
      adjacency += !at(r, c + 1);
    }
  }
  EXPECT_EQ(totalPerimeter(g), adjacency);
}

// ------------------------------------------------------- raster to rects

TEST(RasterToRects, SingleBlockOneRect) {
  const BitGrid g = blockGrid(16, 4, 10, 3, 12);
  const auto rects = rasterToRects(g, 4);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (RectNm{12, 16, 48, 40}));
}

TEST(RasterToRects, CoversExactly) {
  Rng rng(123);
  BitGrid g(20, 20, 0);
  for (auto& v : g) v = rng.uniform() < 0.35 ? 1u : 0u;
  const auto rects = rasterToRects(g, 1);
  // Reconstruct and compare.
  BitGrid back(20, 20, 0);
  long long area = 0;
  for (const auto& r : rects) {
    area += r.area();
    for (int y = r.y0; y < r.y1; ++y) {
      for (int x = r.x0; x < r.x1; ++x) {
        EXPECT_EQ(back(y, x), 0u) << "overlapping rects";
        back(y, x) = 1;
      }
    }
  }
  EXPECT_EQ(back, g);
  EXPECT_EQ(area, popcount(g));
}

TEST(RasterToRects, MergesVerticalRuns) {
  // A plus-shape: 3 maximal rects is optimal for this slab strategy.
  BitGrid g(9, 9, 0);
  for (int r = 3; r < 6; ++r) {
    for (int c = 0; c < 9; ++c) g(r, c) = 1;
  }
  for (int r = 0; r < 9; ++r) {
    for (int c = 3; c < 6; ++c) g(r, c) = 1;
  }
  const auto rects = rasterToRects(g, 1);
  EXPECT_EQ(rects.size(), 3u);
}

TEST(RasterToLayout, ProducesValidLayout) {
  const BitGrid g = blockGrid(16, 4, 10, 3, 12);
  const Layout layout = rasterToLayout(g, 4, "export");
  EXPECT_EQ(layout.sizeNm, 64);
  EXPECT_EQ(layout.name, "export");
  EXPECT_EQ(layout.patternArea(), popcount(g) * 16);
}

// ------------------------------------------------------------------ mrc

TEST(Mrc, CleanMaskPasses) {
  const BitGrid g = blockGrid(32, 8, 20, 8, 24);  // 12x16 px at 4 nm
  const MrcResult r = checkMask(g, 4);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.components, 1);
  EXPECT_EQ(r.rectangles, 1);
  EXPECT_EQ(r.contourVertices, 4);
  EXPECT_EQ(r.featurePx, 12 * 16);
}

TEST(Mrc, NarrowFeatureFlagged) {
  // 1-px (4 nm) sliver violates a 24 nm width rule.
  const BitGrid g = blockGrid(32, 10, 11, 4, 28);
  const MrcResult r = checkMask(g, 4);
  EXPECT_GT(r.widthViolationPx, 0);
  EXPECT_FALSE(r.clean());
}

TEST(Mrc, NarrowGapFlagged) {
  // Two blocks separated by a 1-px gap.
  BitGrid g = blockGrid(32, 4, 28, 4, 15);
  for (int r = 4; r < 28; ++r) {
    for (int c = 16; c < 28; ++c) g(r, c) = 1;
  }
  const MrcResult r = checkMask(g, 4);
  EXPECT_GT(r.spaceViolationPx, 0);
  EXPECT_EQ(r.widthViolationPx, 0);
}

TEST(Mrc, WideGapNotFlagged) {
  BitGrid g = blockGrid(64, 8, 56, 8, 24);
  for (int r = 8; r < 56; ++r) {
    for (int c = 40; c < 56; ++c) g(r, c) = 1;  // 16 px = 64 nm gap
  }
  const MrcResult r = checkMask(g, 4);
  EXPECT_EQ(r.spaceViolationPx, 0);
}

TEST(Mrc, TinyFeatureCounted) {
  BitGrid g = blockGrid(32, 4, 24, 4, 24);  // big block (clean)
  g(28, 28) = 1;                            // 16 nm^2 speck
  const MrcResult r = checkMask(g, 4);
  EXPECT_EQ(r.tinyFeatures, 1);
  EXPECT_EQ(r.components, 2);
}

TEST(Mrc, ComplexityGrowsWithFragmentation) {
  const BitGrid solid = blockGrid(32, 8, 24, 8, 24);
  BitGrid ragged = solid;
  for (int c = 8; c < 24; c += 2) ragged(24, c) = 1;  // comb fringe
  const MrcResult a = checkMask(solid, 4);
  const MrcResult b = checkMask(ragged, 4);
  EXPECT_GT(b.contourVertices, a.contourVertices);
  EXPECT_GT(b.rectangles, a.rectangles);
  EXPECT_GT(b.perimeterNm, a.perimeterNm);
}

TEST(Mrc, ValidationErrors) {
  BitGrid g(8, 8, 0);
  EXPECT_THROW(checkMask(g, 0), InvalidArgument);
  MrcConfig bad;
  bad.minWidthNm = 0;
  EXPECT_THROW(checkMask(g, 4, bad), InvalidArgument);
}

}  // namespace
}  // namespace mosaic
