/// \file process_window_analysis.cpp
/// Process-window exploration: sweep focus and dose around the nominal
/// condition and report how the printed CD of a line and the PV band react
/// -- before and after MOSAIC optimization. This mirrors the paper's
/// motivation for the F_pvb term (Sec. 3.4).
///
/// Run:  ./process_window_analysis --case 2 --pixel 4

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/pvband.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

/// Measure the printed width (nm) of the pattern along the horizontal
/// cut through the clip center.
double centerCdNm(const mosaic::BitGrid& print, int pixelNm) {
  const int r = print.rows() / 2;
  int best = 0;
  int run = 0;
  for (int c = 0; c < print.cols(); ++c) {
    if (print(r, c)) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return static_cast<double>(best) * pixelNm;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIndex = 2;
  int pixel = 4;
  int iterations = 20;
  std::string logLevel = "warn";

  CliParser cli("process_window_analysis",
                "focus/dose sweep before and after OPC");
  cli.addInt("case", &caseIndex, "testcase index (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    const Layout layout = buildTestcase(caseIndex);
    const BitGrid target = rasterize(layout, pixel);
    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicExact, pixel);
    cfg.maxIterations = iterations;
    const OpcResult opc = runOpc(sim, target, OpcMethod::kMosaicExact, &cfg);

    const RealGrid before = noOpcMask(target);
    const RealGrid after = toReal(opc.maskBinary);

    // Focus x dose sweep: printed CD at the clip center.
    const std::vector<double> focuses = {0.0, 10.0, 25.0, 40.0};
    const std::vector<double> doses = {0.96, 0.98, 1.00, 1.02, 1.04};
    TextTable table;
    table.setHeader({"focus (nm)", "dose", "CD no-OPC (nm)",
                     "CD MOSAIC (nm)", "target CD (nm)"});
    const double targetCd = centerCdNm(target, pixel);
    for (double f : focuses) {
      for (double d : doses) {
        const ProcessCorner corner{f, d};
        const double cd0 = centerCdNm(sim.print(before, corner), pixel);
        const double cd1 = centerCdNm(sim.print(after, corner), pixel);
        table.addRow({TextTable::num(f, 0), TextTable::num(d, 2),
                      TextTable::num(cd0, 0), TextTable::num(cd1, 0),
                      TextTable::num(targetCd, 0)});
      }
    }
    std::printf("%s\n", table.render().c_str());

    // PV band across the standard evaluation corners.
    const auto corners = evaluationCorners();
    const double pvb0 = computePvBand(sim, before, corners).bandAreaNm2;
    const double pvb1 = computePvBand(sim, after, corners).bandAreaNm2;
    std::printf("PV band: no-OPC %.0f nm^2  ->  MOSAIC_exact %.0f nm^2\n",
                pvb0, pvb1);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "process_window_analysis failed: %s\n", e.what());
    return 1;
  }
}
