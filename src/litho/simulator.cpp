#include "litho/simulator.hpp"

#include "litho/kernel_cache.hpp"
#include "litho/tcc.hpp"
#include "math/convolution.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/log.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {

LithoSimulator::LithoSimulator(OpticsConfig optics, ResistModel resist)
    : optics_(optics), resist_(resist) {
  optics_.validate();
  MOSAIC_CHECK(resist_.threshold > 0.0 && resist_.threshold < 1.0,
               "resist threshold must be inside (0, 1)");
}

LithoSimulator::KernelEntry& LithoSimulator::kernelEntry(
    double focusNm) const {
  std::lock_guard<std::mutex> lock(kernelMutex_);
  std::shared_ptr<KernelEntry>& slot = kernelCache_[focusNm];
  if (!slot) slot = std::make_shared<KernelEntry>();
  return *slot;
}

void LithoSimulator::computeInto(KernelEntry& entry, double focusNm) const {
  MOSAIC_FAILPOINT("litho.kernel_load");
  std::unique_ptr<KernelSet> set;
  const std::string cachePath =
      cacheDir_.empty()
          ? std::string()
          : cacheDir_ + "/" + kernelCacheName(optics_, focusNm);
  if (!cachePath.empty()) {
    try {
      set = std::make_unique<KernelSet>(loadKernelSet(cachePath));
      LOG_INFO("loaded kernel cache " << cachePath);
    } catch (const Error&) {
      set.reset();  // miss or stale file -- recompute below
    }
  }
  if (!set) {
    MOSAIC_SPAN("litho.kernels.compute");
    WallTimer timer;
    set = std::make_unique<KernelSet>(computeKernelSet(optics_, focusNm));
    LOG_INFO("computed " << set->kernels.size() << " SOCS kernels for focus "
                         << focusNm << " nm in " << timer.seconds() << " s");
    if (!cachePath.empty()) {
      try {
        saveKernelSet(cachePath, *set);
      } catch (const Error& e) {
        LOG_WARN("could not persist kernel cache: " << e.what());
      }
    }
  }
  entry.set = std::move(set);
}

const KernelSet& LithoSimulator::kernels(double focusNm) const {
  // Two-level scheme: the mutex only covers finding/creating the per-focus
  // entry; the expensive load/compute runs under that entry's call_once.
  // Distinct focus values therefore compute concurrently, while duplicate
  // requests for one focus still do the work exactly once. If the compute
  // throws, call_once lets the next caller retry.
  KernelEntry& entry = kernelEntry(focusNm);
  std::call_once(entry.once, [&] { computeInto(entry, focusNm); });
  return *entry.set;
}

void LithoSimulator::warmKernels(
    const std::vector<double>& focusValuesNm) const {
  for (const double focus : focusValuesNm) (void)kernels(focus);
}

ComplexGrid LithoSimulator::maskSpectrum(const RealGrid& mask) const {
  const int n = gridSize();
  MOSAIC_CHECK(mask.rows() == n && mask.cols() == n,
               "mask is " << mask.rows() << "x" << mask.cols()
                          << ", expected " << n << "x" << n);
  MOSAIC_SPAN("litho.mask_spectrum");
  // Counts forward mask FFTs so tests can pin "exactly one spectrum per
  // mask per evaluation" (the PV-band hoist fix in eval/evaluator).
  static telemetry::Counter& spectra =
      telemetry::metrics().counter("litho.mask_spectrum");
  spectra.add(1);
  return fft2dFor(n, n).forwardReal(mask);
}

RealGrid LithoSimulator::aerial(const RealGrid& mask,
                                const ProcessCorner& corner,
                                int maxKernels) const {
  return aerialFromSpectrum(maskSpectrum(mask), corner, maxKernels);
}

RealGrid LithoSimulator::aerialFromSpectrum(const ComplexGrid& spectrum,
                                            const ProcessCorner& corner,
                                            int maxKernels) const {
  const int n = gridSize();
  MOSAIC_CHECK(spectrum.rows() == n && spectrum.cols() == n,
               "spectrum grid mismatch");
  MOSAIC_SPAN("litho.aerial");
  const KernelSet& set = kernels(corner.focusNm);
  const int count = (maxKernels <= 0)
                        ? set.kernelCount()
                        : std::min(maxKernels, set.kernelCount());
  const Fft2d& fft = fft2dFor(n, n);
  RealGrid intensity(n, n, 0.0);
  // The SOCS sum runs on the selected execution backend. The dose factor
  // is applied exactly once, inside the backend (however it folds it);
  // the resist blur below stays outside so it also applies exactly once
  // regardless of backend (regression-tested in tests/test_backend.cpp
  // for dose != 1 combined with blur > 0).
  std::vector<exec::SpectrumView> views(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const SparseSpectrum& spec = set.kernels[static_cast<std::size_t>(k)];
    views[static_cast<std::size_t>(k)] = {spec.flatIndex.data(),
                                          spec.value.data(),
                                          spec.flatIndex.size()};
  }
  activeBackend().accumulateCoherentIntensity(fft, spectrum, views.data(),
                                              set.weights.data(), count,
                                              corner.dose, intensity);
  if (resist_.diffusionSigmaNm > 0.0) {
    intensity = gaussianBlur(
        intensity, resist_.diffusionSigmaNm / optics_.pixelNm);
  }
  return intensity;
}

RealGrid LithoSimulator::printContinuous(const RealGrid& aerialImage) const {
  RealGrid out(aerialImage.rows(), aerialImage.cols());
  for (std::size_t i = 0; i < aerialImage.size(); ++i) {
    out.data()[i] = resist_.sigmoid(aerialImage.data()[i]);
  }
  return out;
}

BitGrid LithoSimulator::printBinary(const RealGrid& aerialImage) const {
  BitGrid out(aerialImage.rows(), aerialImage.cols());
  for (std::size_t i = 0; i < aerialImage.size(); ++i) {
    out.data()[i] = resist_.prints(aerialImage.data()[i]) ? 1u : 0u;
  }
  return out;
}

BitGrid LithoSimulator::print(const RealGrid& mask,
                              const ProcessCorner& corner) const {
  return printBinary(aerial(mask, corner));
}

}  // namespace mosaic
