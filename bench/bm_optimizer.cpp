/// \file bm_optimizer.cpp
/// Benchmarks a full ILT iteration per method (the unit behind Table 3's
/// runtime comparison) and the contest evaluation pass.

#include <benchmark/benchmark.h>

#include "eval/evaluator.hpp"
#include "math/backend.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "opc/objective.hpp"
#include "suite/testcases.hpp"

namespace {

using namespace mosaic;

struct Env {
  LithoSimulator sim;
  BitGrid target;
  RealGrid mask;

  explicit Env(int pixel)
      : sim([&] {
          OpticsConfig o;
          o.pixelNm = pixel;
          return o;
        }()),
        target(rasterize(buildTestcase(6), pixel)),
        mask(toReal(target)) {
    sim.kernels(0.0);
    sim.kernels(25.0);
  }
};

Env& env() {
  static Env e(4);
  return e;
}

void BM_ObjectiveEvaluation(benchmark::State& state) {
  const auto method = static_cast<OpcMethod>(state.range(0));
  IltConfig cfg = defaultIltConfig(method, 4);
  IltObjective obj(env().sim, env().target, cfg);
  for (auto _ : state) {
    auto eval = obj.evaluate(env().mask, true);
    benchmark::DoNotOptimize(eval.value);
  }
  state.SetLabel(methodName(method));
}
BENCHMARK(BM_ObjectiveEvaluation)
    ->Arg(static_cast<int>(OpcMethod::kMosaicFast))
    ->Arg(static_cast<int>(OpcMethod::kMosaicExact))
    ->Arg(static_cast<int>(OpcMethod::kIltBaseline))
    ->Unit(benchmark::kMillisecond);

// Same objective evaluation routed through each execution backend
// (docs/performance.md, "Execution backends"). Backends lacking hardware
// support on this machine are skipped rather than silently falling back,
// so the reported series always measures what its label claims.
void BM_ObjectiveEvaluationBackend(benchmark::State& state) {
  const exec::Backend* backends[] = {&exec::scalarBackend(),
                                     &exec::simdBackend(),
                                     &exec::simdFloatBackend()};
  const exec::Backend& backend = *backends[state.range(0)];
  if (backend.accelerated() && !exec::cpuHasAvx2()) {
    state.SkipWithError("AVX2 not available on this machine");
    return;
  }
  env().sim.setBackend(&backend);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 4);
  IltObjective obj(env().sim, env().target, cfg);
  for (auto _ : state) {
    auto eval = obj.evaluate(env().mask, true);
    benchmark::DoNotOptimize(eval.value);
  }
  env().sim.setBackend(nullptr);
  state.SetLabel(backend.name());
}
BENCHMARK(BM_ObjectiveEvaluationBackend)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_FullOptimization(benchmark::State& state) {
  const int iters = static_cast<int>(state.range(0));
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 4);
  cfg.maxIterations = iters;
  for (auto _ : state) {
    auto res = runOpc(env().sim, env().target, OpcMethod::kMosaicFast, &cfg);
    benchmark::DoNotOptimize(res.maskBinary.data());
  }
}
BENCHMARK(BM_FullOptimization)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ContestEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    auto ev = evaluateMask(env().sim, env().mask, env().target, 0.0);
    benchmark::DoNotOptimize(ev.score);
  }
}
BENCHMARK(BM_ContestEvaluation)->Unit(benchmark::kMillisecond);

void BM_PvBandSixCorners(benchmark::State& state) {
  for (auto _ : state) {
    auto pvb = computePvBand(env().sim, env().mask, evaluationCorners());
    benchmark::DoNotOptimize(pvb.bandPixels);
  }
}
BENCHMARK(BM_PvBandSixCorners)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
