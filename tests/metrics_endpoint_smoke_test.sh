#!/usr/bin/env bash
# Tier-1 smoke test for the HTTP observability endpoint
# (docs/observability.md): a daemon started with --http-port 0 must write
# <work-dir>/serve.http.port and answer, over real HTTP:
#
#   GET /healthz          200 with "ok":true
#   GET /metrics          Prometheus 0.0.4 text with serve_*, cache_* and
#                         process_* series after one cached job ran
#   GET /jobs             JSON listing the finished job with its trace id
#   GET /debug/flightrec  JSONL whose admission event carries the same
#                         trace id as the job (trace propagation, end to
#                         end through a real process)
#
# Usage: metrics_endpoint_smoke_test.sh <mosaic_serve> <mosaic_cli> <scratch>

set -u

SERVE="$1"
CLI="$2"
SCRATCH="$3"

DAEMON_PID=""

fail() {
  echo "metrics_endpoint_smoke: FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
}
trap cleanup EXIT

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/work"

"$SERVE" --work-dir "$SCRATCH/work" --port 0 --http-port 0 --workers 1 \
  --pattern-cache "$SCRATCH/cache" >"$SCRATCH/serve.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 300); do
  [ -s "$SCRATCH/work/serve.port" ] && [ -s "$SCRATCH/work/serve.http.port" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died at startup: $(cat "$SCRATCH/serve.log")"
  sleep 0.1
done
[ -s "$SCRATCH/work/serve.http.port" ] \
  || fail "daemon never wrote serve.http.port: $(cat "$SCRATCH/serve.log")"
HTTP_PORT=$(cat "$SCRATCH/work/serve.http.port")

fetch() {
  curl -sS --max-time 10 "http://127.0.0.1:$HTTP_PORT$1" \
    || fail "curl $1 failed"
}

# Endpoint is alive before any job ran.
HEALTH=$(fetch /healthz)
grep -q '"ok":true' <<<"$HEALTH" || fail "unhealthy /healthz: $HEALTH"

# Run one job through the pattern cache so serve_* and cache_* series have
# samples.
OUT=$("$CLI" submit --port-file "$SCRATCH/work/serve.port" \
  --case B1 --method baseline --pixel 16 --iters 6 --wait) \
  || fail "submit --wait failed: $OUT"
grep -q '"state":"done"' <<<"$OUT" || fail "job not done: $OUT"
JOB=$(sed -n 's/.*"job":"\([^"]*\)".*/\1/p' <<<"$OUT" | head -1)
[ -n "$JOB" ] || fail "no job id in: $OUT"

METRICS=$(fetch /metrics)
grep -q '^# TYPE serve_submitted_total counter' <<<"$METRICS" \
  || fail "no serve_submitted_total TYPE line in /metrics"
grep -q '^serve_submitted_total 1$' <<<"$METRICS" \
  || fail "serve_submitted_total != 1: $(grep serve_submitted <<<"$METRICS")"
grep -q '^cache_miss_total ' <<<"$METRICS" \
  || fail "no cache_miss_total series in /metrics"
grep -q '^process_peak_rss_mb ' <<<"$METRICS" \
  || fail "no process_peak_rss_mb gauge in /metrics"
grep -q '^serve_job_wall_us_bucket{le="+Inf"} 1$' <<<"$METRICS" \
  || fail "serve_job_wall histogram +Inf bucket != 1"
grep -q '^serve_job_wall_us_count 1$' <<<"$METRICS" \
  || fail "serve_job_wall histogram count != 1"

JOBS=$(fetch /jobs)
grep -q "\"job\":\"$JOB\"" <<<"$JOBS" || fail "/jobs missing $JOB: $JOBS"
grep -q '"state":"done"' <<<"$JOBS" || fail "/jobs job not done: $JOBS"
TRACE=$(sed -n 's/.*"trace":"\(t-[0-9a-f]*\)".*/\1/p' <<<"$JOBS" | head -1)
[ -n "$TRACE" ] || fail "/jobs entry has no trace id: $JOBS"

# The flight recorder's admission event must carry the same trace id that
# /jobs reports — the trace is propagated, not re-generated per surface.
FLIGHTREC=$(fetch /debug/flightrec)
grep -q "\"trace\":\"$TRACE\".*\"kind\":\"admit\"" <<<"$FLIGHTREC" \
  || fail "no admit event with trace $TRACE in flight recorder: $FLIGHTREC"

NOTFOUND_CODE=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 \
  "http://127.0.0.1:$HTTP_PORT/definitely-missing")
[ "$NOTFOUND_CODE" = "404" ] || fail "unknown path returned $NOTFOUND_CODE, want 404"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "metrics_endpoint_smoke: OK (job $JOB traced as $TRACE across /jobs and /debug/flightrec)"
exit 0
