file(REMOVE_RECURSE
  "CMakeFiles/mosaic_math.dir/convolution.cpp.o"
  "CMakeFiles/mosaic_math.dir/convolution.cpp.o.d"
  "CMakeFiles/mosaic_math.dir/eigen.cpp.o"
  "CMakeFiles/mosaic_math.dir/eigen.cpp.o.d"
  "CMakeFiles/mosaic_math.dir/fft.cpp.o"
  "CMakeFiles/mosaic_math.dir/fft.cpp.o.d"
  "libmosaic_math.a"
  "libmosaic_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
