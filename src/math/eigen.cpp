#include "math/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mosaic {
namespace {

double offDiagonalNorm(const Matrix& a) {
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (r != c) acc += a(r, c) * a(r, c);
    }
  }
  return std::sqrt(acc);
}

}  // namespace

SymmetricEigenResult jacobiEigenSymmetric(const Matrix& input, int maxSweeps) {
  MOSAIC_CHECK(input.isSquare(), "eigendecomposition needs a square matrix");
  const int n = input.rows();

  double scale = 0.0;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      scale = std::max(scale, std::fabs(input(r, c)));
      MOSAIC_CHECK(std::fabs(input(r, c) - input(c, r)) <=
                       1e-9 * std::max(1.0, scale),
                   "matrix is not symmetric at (" << r << "," << c << ")");
    }
  }

  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double tol = 1e-14 * std::max(1.0, scale) * n;

  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    if (offDiagonalNorm(a) <= tol) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= tol / n) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Classic stable rotation: t = sign(theta) / (|theta| + sqrt(1+theta^2)).
        double t;
        if (std::fabs(theta) > 1e150) {
          t = 1.0 / (2.0 * theta);
        } else {
          t = ((theta >= 0) ? 1.0 : -1.0) /
              (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  MOSAIC_CHECK(offDiagonalNorm(a) <= std::sqrt(tol) * std::max(1.0, scale) + tol * 1e3,
               "Jacobi eigensolver did not converge in " << maxSweeps
                                                         << " sweeps");

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a(x, x) > a(y, y); });

  SymmetricEigenResult result;
  result.eigenvalues.reserve(static_cast<std::size_t>(n));
  result.eigenvectors.reserve(static_cast<std::size_t>(n));
  for (int idx : order) {
    result.eigenvalues.push_back(a(idx, idx));
    std::vector<double> vec(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) vec[static_cast<std::size_t>(k)] = v(k, idx);
    result.eigenvectors.push_back(std::move(vec));
  }
  return result;
}

HermitianEigenResult jacobiEigenHermitian(
    const std::vector<std::complex<double>>& h, int n, int maxSweeps) {
  MOSAIC_CHECK(n > 0, "matrix dimension must be positive");
  MOSAIC_CHECK(h.size() == static_cast<std::size_t>(n) * n,
               "matrix storage size mismatch");

  auto at = [&](int r, int c) -> const std::complex<double>& {
    return h[static_cast<std::size_t>(r) * n + c];
  };
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      MOSAIC_CHECK(std::abs(at(r, c) - std::conj(at(c, r))) <= 1e-9,
                   "matrix is not Hermitian at (" << r << "," << c << ")");
    }
  }

  // Real embedding E = [[Re, -Im], [Im, Re]]; E is symmetric when H is
  // Hermitian. Each eigenvalue of H appears twice in E; the real
  // eigenvector (x; y) maps to the complex eigenvector x + i y.
  Matrix e(2 * n, 2 * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const std::complex<double> val = at(r, c);
      e(r, c) = val.real();
      e(r, c + n) = -val.imag();
      e(r + n, c) = val.imag();
      e(r + n, c + n) = val.real();
    }
  }

  SymmetricEigenResult real = jacobiEigenSymmetric(e, maxSweeps);

  HermitianEigenResult result;
  result.eigenvalues.reserve(static_cast<std::size_t>(n));
  result.eigenvectors.reserve(static_cast<std::size_t>(n));

  // Walk the doubled spectrum; keep one complex vector per true eigenpair
  // by Gram-Schmidt projection against already accepted vectors of nearby
  // eigenvalues (v and i*v collapse to the same complex direction).
  const double span =
      std::max({1.0, std::fabs(real.eigenvalues.front()),
                std::fabs(real.eigenvalues.back())});
  for (std::size_t idx = 0;
       idx < real.eigenvalues.size() &&
       result.eigenvalues.size() < static_cast<std::size_t>(n);
       ++idx) {
    std::vector<std::complex<double>> vec(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vec[static_cast<std::size_t>(i)] = {
          real.eigenvectors[idx][static_cast<std::size_t>(i)],
          real.eigenvectors[idx][static_cast<std::size_t>(i + n)]};
    }
    // Project out previously accepted vectors within the eigenvalue cluster.
    for (std::size_t k = 0; k < result.eigenvalues.size(); ++k) {
      if (std::fabs(result.eigenvalues[k] - real.eigenvalues[idx]) >
          1e-7 * span) {
        continue;
      }
      std::complex<double> dot{0.0, 0.0};
      for (int i = 0; i < n; ++i) {
        dot += std::conj(result.eigenvectors[k][static_cast<std::size_t>(i)]) *
               vec[static_cast<std::size_t>(i)];
      }
      for (int i = 0; i < n; ++i) {
        vec[static_cast<std::size_t>(i)] -=
            dot * result.eigenvectors[k][static_cast<std::size_t>(i)];
      }
    }
    double norm = 0.0;
    for (const auto& z : vec) norm += std::norm(z);
    norm = std::sqrt(norm);
    if (norm < 1e-6) continue;  // duplicate direction (the i*v copy)
    for (auto& z : vec) z /= norm;
    result.eigenvalues.push_back(real.eigenvalues[idx]);
    result.eigenvectors.push_back(std::move(vec));
  }

  MOSAIC_CHECK(result.eigenvalues.size() == static_cast<std::size_t>(n),
               "Hermitian eigensolver recovered "
                   << result.eigenvalues.size() << " of " << n
                   << " eigenpairs");
  return result;
}

}  // namespace mosaic
