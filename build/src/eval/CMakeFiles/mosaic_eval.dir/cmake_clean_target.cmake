file(REMOVE_RECURSE
  "libmosaic_eval.a"
)
