#pragma once
/// \file table.hpp
/// ASCII table formatter used by the bench harnesses to print paper-style
/// result tables (Table 2 / Table 3 of the MOSAIC paper).

#include <string>
#include <vector>

namespace mosaic {

/// Column-aligned plain-text table.
class TextTable {
 public:
  /// Set the header row; defines the column count.
  void setHeader(std::vector<std::string> header);

  /// Append a data row; must match the header's column count.
  void addRow(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);
  static std::string integer(long long value);

  /// Render the table with a separator under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mosaic
