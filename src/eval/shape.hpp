#pragma once
/// \file shape.hpp
/// Shape violation detection (paper Eq. 22: "based on the existence of
/// holes in the final contour"). We additionally report broken and missing
/// features since a vanished line is at least as fatal as a pinhole.

#include "math/grid.hpp"

namespace mosaic {

struct ShapeResult {
  int holes = 0;            ///< background islands inside printed features
  int missingFeatures = 0;  ///< target components with no printed overlap
  int extraFeatures = 0;    ///< printed components touching no target shape

  [[nodiscard]] int violations() const { return holes + missingFeatures; }
};

/// Analyze the nominal printed image against the target raster.
ShapeResult analyzeShape(const BitGrid& printed, const BitGrid& target);

}  // namespace mosaic
