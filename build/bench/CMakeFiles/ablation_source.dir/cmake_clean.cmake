file(REMOVE_RECURSE
  "CMakeFiles/ablation_source.dir/ablation_source.cpp.o"
  "CMakeFiles/ablation_source.dir/ablation_source.cpp.o.d"
  "ablation_source"
  "ablation_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
