#pragma once
/// \file resample.hpp
/// Grid resampling helpers for the coarse-to-fine (multiresolution) ILT
/// flow: block-average / majority downsampling and nearest-neighbour
/// upsampling.

#include "math/grid.hpp"

namespace mosaic {

/// Block-average downsampling by an integer factor (dimensions must be
/// divisible by the factor).
inline RealGrid downsampleMean(const RealGrid& fine, int factor) {
  MOSAIC_CHECK(factor >= 1, "factor must be >= 1");
  MOSAIC_CHECK(fine.rows() % factor == 0 && fine.cols() % factor == 0,
               "grid dimensions must be divisible by the factor");
  const int rows = fine.rows() / factor;
  const int cols = fine.cols() / factor;
  RealGrid coarse(rows, cols, 0.0);
  const double norm = 1.0 / (factor * factor);
  for (int r = 0; r < fine.rows(); ++r) {
    for (int c = 0; c < fine.cols(); ++c) {
      coarse(r / factor, c / factor) += fine(r, c) * norm;
    }
  }
  return coarse;
}

/// Majority downsampling of a binary raster: a coarse pixel is set when
/// at least half of its fine pixels are set.
inline BitGrid downsampleMajority(const BitGrid& fine, int factor) {
  const RealGrid mean = downsampleMean(toReal(fine), factor);
  BitGrid coarse(mean.rows(), mean.cols());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    coarse.data()[i] = mean.data()[i] >= 0.5 ? 1u : 0u;
  }
  return coarse;
}

/// Nearest-neighbour (pixel replication) upsampling by an integer factor.
template <typename T>
Grid<T> upsampleNearest(const Grid<T>& coarse, int factor) {
  MOSAIC_CHECK(factor >= 1, "factor must be >= 1");
  Grid<T> fine(coarse.rows() * factor, coarse.cols() * factor);
  for (int r = 0; r < fine.rows(); ++r) {
    for (int c = 0; c < fine.cols(); ++c) {
      fine(r, c) = coarse(r / factor, c / factor);
    }
  }
  return fine;
}

}  // namespace mosaic
