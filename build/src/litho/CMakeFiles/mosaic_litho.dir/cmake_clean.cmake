file(REMOVE_RECURSE
  "CMakeFiles/mosaic_litho.dir/kernel_cache.cpp.o"
  "CMakeFiles/mosaic_litho.dir/kernel_cache.cpp.o.d"
  "CMakeFiles/mosaic_litho.dir/kernels.cpp.o"
  "CMakeFiles/mosaic_litho.dir/kernels.cpp.o.d"
  "CMakeFiles/mosaic_litho.dir/pupil.cpp.o"
  "CMakeFiles/mosaic_litho.dir/pupil.cpp.o.d"
  "CMakeFiles/mosaic_litho.dir/simulator.cpp.o"
  "CMakeFiles/mosaic_litho.dir/simulator.cpp.o.d"
  "CMakeFiles/mosaic_litho.dir/tcc.cpp.o"
  "CMakeFiles/mosaic_litho.dir/tcc.cpp.o.d"
  "libmosaic_litho.a"
  "libmosaic_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
