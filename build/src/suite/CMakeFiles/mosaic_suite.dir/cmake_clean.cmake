file(REMOVE_RECURSE
  "CMakeFiles/mosaic_suite.dir/testcases.cpp.o"
  "CMakeFiles/mosaic_suite.dir/testcases.cpp.o.d"
  "libmosaic_suite.a"
  "libmosaic_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
