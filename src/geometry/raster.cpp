#include "geometry/raster.hpp"

namespace mosaic {

int gridSizeFor(const Layout& layout, int pixelNm) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  MOSAIC_CHECK(layout.sizeNm > 0, "layout has no size");
  MOSAIC_CHECK(layout.sizeNm % pixelNm == 0,
               "pixel size " << pixelNm << " nm does not divide clip size "
                             << layout.sizeNm << " nm");
  return layout.sizeNm / pixelNm;
}

RealGrid rasterizeGray(const Layout& layout, int pixelNm) {
  const int n = gridSizeFor(layout, pixelNm);
  layout.validateDisjoint();
  RealGrid grid(n, n, 0.0);
  const double px = pixelNm;
  // Coverage is separable per axis for axis-aligned rects.
  auto axisCoverage = [&](int lo, int hi, int index) {
    const double a = std::max<double>(lo, index * px);
    const double b = std::min<double>(hi, (index + 1) * px);
    return std::max(0.0, b - a) / px;
  };
  for (const auto& rect : layout.rects) {
    const int c0 = std::max(0, rect.x0 / pixelNm);
    const int c1 = std::min(n - 1, (rect.x1 - 1) / pixelNm);
    const int r0 = std::max(0, rect.y0 / pixelNm);
    const int r1 = std::min(n - 1, (rect.y1 - 1) / pixelNm);
    for (int r = r0; r <= r1; ++r) {
      const double cy = axisCoverage(rect.y0, rect.y1, r);
      for (int c = c0; c <= c1; ++c) {
        grid(r, c) += cy * axisCoverage(rect.x0, rect.x1, c);
      }
    }
  }
  // Disjoint rects can still abut; numerical sums stay within [0, 1].
  for (auto& v : grid) v = std::min(v, 1.0);
  return grid;
}

BitGrid rasterize(const Layout& layout, int pixelNm) {
  const int n = gridSizeFor(layout, pixelNm);
  BitGrid grid(n, n, 0);
  // Fill per rectangle: convert nm bounds to pixel index ranges covering
  // the pixels whose centers fall inside the rect.
  for (const auto& rect : layout.rects) {
    // Pixel c center = (c + 0.5) * px; inside iff x0 <= center < x1.
    auto firstIndex = [&](int lo) {
      // smallest c with (c + 0.5) * px >= lo  ->  c >= lo/px - 0.5
      const int c = (2 * lo + pixelNm - 1) / (2 * pixelNm);
      return std::max(0, c);
    };
    auto lastIndex = [&](int hi) {
      // largest c with (c + 0.5) * px < hi  ->  c < hi/px - 0.5
      const int c = (2 * hi - pixelNm - 1) / (2 * pixelNm);
      return std::min(n - 1, c);
    };
    const int c0 = firstIndex(rect.x0);
    const int c1 = lastIndex(rect.x1);
    const int r0 = firstIndex(rect.y0);
    const int r1 = lastIndex(rect.y1);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) grid(r, c) = 1u;
    }
  }
  return grid;
}

}  // namespace mosaic
