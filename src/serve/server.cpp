#include "serve/server.hpp"

#include <fstream>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace serve {

ServeServer::ServeServer(JobService& service, const ServerOptions& opts)
    : service_(service), opts_(opts), listener_(opts.port) {
  // The port file is how clients and tests find an ephemeral-port daemon;
  // written before any connection is accepted so "file exists" implies
  // "listener is up".
  const std::string portFile = service_.workDir() + "/serve.port";
  std::ofstream out(portFile, std::ios::trunc);
  MOSAIC_CHECK(out.good(), "cannot write port file: " << portFile);
  out << listener_.port() << "\n";
}

ServeServer::~ServeServer() {
  stopping_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(threadsMutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ServeServer::stopRequested(const CancelToken* stop) const {
  return shutdownOp_.load(std::memory_order_relaxed) ||
         (stop != nullptr && stop->stopRequested());
}

DrainMode ServeServer::serveForever(const CancelToken* stop) {
  while (!stopRequested(stop)) {
    Socket conn = listener_.accept(opts_.pollMs);
    if (!conn.valid()) continue;  // timeout or EINTR: re-check the stop flag
    telemetry::metrics().counter("serve.connections").add();
    std::lock_guard<std::mutex> lock(threadsMutex_);
    threads_.emplace_back(
        [this, sock = std::move(conn)]() mutable {
          handleConnection(std::move(sock));
        });
  }
  stopping_.store(true, std::memory_order_relaxed);
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }
  // A client shutdown op names its drain mode; an external stop (signal)
  // preserves in-flight work by checkpointing.
  if (shutdownOp_.load(std::memory_order_relaxed)) {
    return checkpointMode_.load(std::memory_order_relaxed)
               ? DrainMode::kCheckpoint
               : DrainMode::kFinish;
  }
  return DrainMode::kCheckpoint;
}

void ServeServer::handleConnection(Socket socket) {
  LineChannel channel(std::move(socket));
  std::string line;
  try {
    while (!stopping_.load(std::memory_order_relaxed)) {
      if (!channel.readLine(&line, opts_.pollMs)) {
        if (channel.eofSeen()) break;  // client went away
        continue;                      // timeout: re-check the stop flag
      }
      const ProtocolResult result = handleRequestLine(service_, line);
      channel.writeLine(result.response);
      telemetry::metrics().counter("serve.requests").add();
      if (result.shutdown) {
        checkpointMode_.store(result.shutdownMode == DrainMode::kCheckpoint,
                              std::memory_order_relaxed);
        shutdownOp_.store(true, std::memory_order_relaxed);
        break;
      }
      if (result.watch) {
        // Streaming mode: push one line per progress event until the job's
        // stream ends (terminal event) or the daemon stops. The short poll
        // keeps the stop flag responsive; the worker never waits on this
        // socket — a slow reader only fills the subscription's bounded
        // queue (drop-oldest).
        ProgressEvent event;
        while (!stopping_.load(std::memory_order_relaxed)) {
          if (result.watch->next(&event, opts_.pollMs)) {
            channel.writeLine(progressEventToJson(event));
            telemetry::metrics().counter("serve.progress_pushed").add();
          } else if (result.watch->finished()) {
            break;
          }
        }
        const std::uint64_t dropped = result.watch->dropped();
        if (dropped > 0) {
          telemetry::metrics().counter("serve.progress_dropped").add(dropped);
        }
        // One watch per connection: the stream ends, the connection ends
        // (mirrors the HTTP endpoint's connection-per-request model).
        break;
      }
    }
  } catch (const std::exception& e) {
    // A broken pipe or oversized line kills this connection, never the
    // daemon.
    LOG_WARN("serve connection error: " << e.what());
  }
}

}  // namespace serve
}  // namespace mosaic
