#pragma once
/// \file pupil.hpp
/// Scalar pupil function of the projection lens, including the defocus
/// aberration used to model the paper's +-25 nm focus corners.

#include <complex>

#include "litho/optics.hpp"

namespace mosaic {

/// Evaluates the (possibly defocused) pupil at a spatial frequency.
class Pupil {
 public:
  Pupil(const OpticsConfig& optics, double focusNm);

  /// P(fx, fy) for spatial frequency in cycles/nm: circ(|f| <= NA/lambda)
  /// times the defocus phase exp(i 2 pi z (k_z(f) - k_z(0))) times the
  /// Zernike aberration phase (waves over the normalized pupil radius).
  [[nodiscard]] std::complex<double> value(double fx, double fy) const;

  [[nodiscard]] double focusNm() const { return focusNm_; }

 private:
  double cutoff_;          ///< NA / lambda
  double focusNm_;         ///< defocus z
  double kMax_;            ///< n / lambda (immersion medium wave number / 2pi)
  ZernikeAberrations aberrations_;
};

}  // namespace mosaic
