#include "tile/scheduler.hpp"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "cache/manifest.hpp"
#include "geometry/raster.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/runlog.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

std::string tileCheckpointPath(const std::string& dir, const TilePlan& tile) {
  // The core origin is part of the name (not just the grid index): a
  // resume after a tiling-parameter change must start fresh, not load a
  // checkpoint for a different window that happens to share (row, col).
  return dir + "/tile_r" + std::to_string(tile.row) + "_c" +
         std::to_string(tile.col) + "_x" + std::to_string(tile.coreNm.x0) +
         "_y" + std::to_string(tile.coreNm.y0) + ".ckpt";
}

std::string tileScope(const TilePlan& tile) {
  return "tile_r" + std::to_string(tile.row) + "_c" +
         std::to_string(tile.col);
}

/// One JSONL record per finished tile (schema: docs/observability.md).
void emitTileRecord(telemetry::RunLog* runLog, const TileOutcome& outcome,
                    bool cacheEnabled) {
  if (!runLog) return;
  telemetry::JsonObject obj;
  obj.set("type", "tile");
  obj.set("row", outcome.row);
  obj.set("col", outcome.col);
  obj.set("status", outcome.skippedEmpty ? "empty"
                    : outcome.ok         ? "ok"
                                         : "fallback");
  obj.set("attempts", outcome.attempts);
  obj.set("iterations", outcome.iterations);
  obj.set("recoveries", outcome.recoveries);
  obj.set("non_finite", outcome.nonFiniteEvents);
  obj.set("wall_ms", outcome.seconds * 1000.0);
  if (cacheEnabled && !outcome.skippedEmpty) {
    obj.set("cache", cacheHitKindName(outcome.cacheHit));
    if (outcome.representative) obj.set("representative", true);
  }
  if (!outcome.error.empty()) obj.set("error", outcome.error);
  runLog->write(obj);
}

/// Chip-level summary record carrying the seam statistics — seam quality
/// is a property of the stitched whole, so it cannot go on tile records.
void emitChipRecord(telemetry::RunLog* runLog, const ChipResult& result) {
  if (!runLog) return;
  const SeamReport& seam = result.stitched.report;
  telemetry::JsonObject obj;
  obj.set("type", "chip");
  obj.set("tiles", static_cast<long long>(result.outcomes.size()));
  obj.set("succeeded", result.succeeded);
  obj.set("failed", result.failed);
  obj.set("seam_overlap_px", seam.overlapPixels);
  obj.set("seam_disagree_px", seam.disagreeingPixels);
  obj.set("seam_disagree_frac", seam.disagreementFraction);
  obj.set("seam_core_mismatch_px", seam.coreMismatchPixels);
  obj.set("seam_non_finite_px", seam.nonFinitePixels);
  obj.set("wall_s", result.wallSeconds);
  if (result.cacheEnabled) {
    const PatternStoreStats& cs = result.cacheStats;
    obj.set("cache_exact", static_cast<unsigned long long>(cs.exactHits));
    obj.set("cache_translated",
            static_cast<unsigned long long>(cs.translatedHits));
    obj.set("cache_near_miss",
            static_cast<unsigned long long>(cs.nearMissHits));
    obj.set("cache_miss", static_cast<unsigned long long>(cs.misses));
    obj.set("cache_inserts", static_cast<unsigned long long>(cs.inserts));
    obj.set("cache_evictions", static_cast<unsigned long long>(cs.evictions));
    obj.set("cache_quarantined",
            static_cast<unsigned long long>(cs.quarantined));
    obj.set("cache_hit_rate", cs.hitRate());
    obj.set("cache_ordered", result.cacheOrdered);
    if (result.cacheOrdered) {
      obj.set("cache_representatives", result.representatives);
    }
  }
  if (result.eco.active) {
    obj.set("eco_base_valid", result.eco.baseValid);
    obj.set("eco_tiles_changed", result.eco.tilesChanged);
    obj.set("eco_tiles_unchanged", result.eco.tilesUnchanged);
  }
  runLog->write(obj);
}

/// Best (lowest) objective seen by a finished optimization, for the cache
/// entry's metadata.
double bestObjectiveOf(const OpcResult& res) {
  double best = 0.0;
  bool first = true;
  for (const IterationRecord& rec : res.history) {
    if (first || rec.objective < best) best = rec.objective;
    first = false;
  }
  return best;
}

}  // namespace

ChipResult optimizeChip(const Layout& chip, const ChipConfig& cfg) {
  MOSAIC_CHECK(cfg.retries >= 0, "chip retries must be >= 0");
  MOSAIC_CHECK(cfg.backoffMs >= 0, "chip backoff must be >= 0");
  WallTimer wallTimer;

  ChipResult result;
  result.partition = partitionChip(chip, cfg.tiling, cfg.optics);
  const ChipPartition& part = result.partition;
  result.chipTarget = rasterize(chip, part.pixelNm);

  // One simulator, sized to the shared tile window, for every worker.
  // Const use is thread-safe (see litho/simulator.hpp); kernels for the
  // corners the optimizer touches are pre-warmed here so the expensive
  // eigendecompositions run once, not once per worker.
  OpticsConfig windowOptics = cfg.optics;
  windowOptics.clipSizeNm = part.windowNm;
  windowOptics.pixelNm = part.pixelNm;
  LithoSimulator sim(windowOptics);
  if (!cfg.kernelCacheDir.empty()) {
    std::filesystem::create_directories(cfg.kernelCacheDir);
    sim.setKernelCacheDir(cfg.kernelCacheDir);
  }
  if (!cfg.checkpointDir.empty()) {
    std::filesystem::create_directories(cfg.checkpointDir);
  }
  IltConfig baseConfig = defaultIltConfig(cfg.method, part.pixelNm);
  if (cfg.iterations > 0) baseConfig.maxIterations = cfg.iterations;
  baseConfig.deadlineSeconds = cfg.tileDeadlineSeconds;
  {
    std::vector<double> focuses{nominalCorner().focusNm};
    for (const ProcessCorner& corner : baseConfig.pvbCorners) {
      focuses.push_back(corner.focusNm);
    }
    sim.warmKernels(focuses);
  }

  const std::size_t tileCount = part.tiles.size();
  std::vector<RealGrid> tileMasks(tileCount);
  result.outcomes.assign(tileCount, TileOutcome{});

  // Pattern-library cache (docs/caching.md). An ECO run points the cache
  // at the previous run's store so unchanged tiles exact-hit.
  const std::string cacheDir =
      !cfg.ecoBaseDir.empty() ? cfg.ecoBaseDir : cfg.patternCacheDir;
  std::unique_ptr<PatternStore> store;
  std::vector<TileFingerprint> fingerprints(tileCount);
  if (!cacheDir.empty()) {
    store = std::make_unique<PatternStore>(
        PatternStoreConfig{cacheDir, cfg.patternCacheMaxBytes});
    result.cacheEnabled = true;
    const std::uint64_t configHash =
        solverConfigDigest(windowOptics, baseConfig,
                           static_cast<int>(cfg.method), part.windowNm,
                           part.pixelNm);
    for (std::size_t i = 0; i < tileCount; ++i) {
      const TilePlan& tile = part.tiles[i];
      const RectNm coreLocal{tile.coreNm.x0 - tile.windowNm.x0,
                             tile.coreNm.y0 - tile.windowNm.y0,
                             tile.coreNm.x1 - tile.windowNm.x0,
                             tile.coreNm.y1 - tile.windowNm.y0};
      fingerprints[i] =
          fingerprintWindow(tile.window, coreLocal, part.pixelNm, configHash);
    }
  }

  // ECO diff: compare this layout's fingerprints against the base run's
  // manifest, keyed by core origin so re-indexing cannot confuse the diff.
  result.eco.active = !cfg.ecoBaseDir.empty();
  if (result.eco.active) {
    std::vector<ManifestEntry> base;
    result.eco.baseValid =
        readFingerprintManifest(manifestPath(cfg.ecoBaseDir), &base);
    if (!result.eco.baseValid) {
      LOG_WARN("eco: no usable fingerprint manifest in " << cfg.ecoBaseDir
               << "; treating every tile as changed");
    }
    std::map<std::pair<int, int>, TileFingerprint> byOrigin;
    for (const ManifestEntry& e : base) {
      byOrigin[{e.coreXNm, e.coreYNm}] = e.fp;
    }
    result.eco.tilesTotal = static_cast<int>(tileCount);
    for (std::size_t i = 0; i < tileCount; ++i) {
      const TilePlan& tile = part.tiles[i];
      const auto it = byOrigin.find({tile.coreNm.x0, tile.coreNm.y0});
      if (it != byOrigin.end() && it->second == fingerprints[i]) {
        ++result.eco.tilesUnchanged;
      } else {
        ++result.eco.tilesChanged;
        result.eco.changedTiles.push_back(static_cast<int>(i));
      }
    }
    LOG_INFO("eco: " << result.eco.tilesChanged << " of "
                     << result.eco.tilesTotal
                     << " tiles changed vs base run in " << cfg.ecoBaseDir);
  }

  const int warmIterationBudget =
      cfg.warmIterations > 0 ? cfg.warmIterations
                             : std::max(2, baseConfig.maxIterations / 4);
  const bool cacheOn = store != nullptr;

  const auto processTile = [&](std::size_t i) {
    const TilePlan& tile = part.tiles[i];
    // Each tile task re-enters the chip run's trace context on whatever
    // pool thread it lands on, so the Chrome trace export and run-log
    // records stay correlated end to end.
    telemetry::TraceScope traceScope(cfg.traceId);
    TileOutcome& outcome = result.outcomes[i];
    outcome.index = tile.index;
    outcome.row = tile.row;
    outcome.col = tile.col;
    WallTimer tileTimer;

    const BitGrid target = rasterize(tile.window, part.pixelNm);
    if (tile.empty) {
      // Nothing to print in this window: the optimal mask is background.
      tileMasks[i] = RealGrid(part.windowGrid(), part.windowGrid(),
                              baseConfig.maskLow);
      outcome.ok = true;
      outcome.skippedEmpty = true;
      outcome.seconds = tileTimer.seconds();
      emitTileRecord(cfg.runLog, outcome, cacheOn);
      return;
    }

    // Cooperative interruption: a tile that has not started when the
    // token fires falls back to the uncorrected pattern immediately so
    // the chip still stitches; a resumed run re-optimizes it.
    if (cfg.cancel != nullptr && cfg.cancel->stopRequested()) {
      outcome.error = "canceled before start";
      outcome.seconds = tileTimer.seconds();
      tileMasks[i] = toReal(target);
      emitTileRecord(cfg.runLog, outcome, cacheOn);
      return;
    }

    // Consult the pattern library. Exact hits paste the cached mask and
    // skip optimization entirely; translated and near-miss hits become a
    // warm start with a reduced iteration budget.
    RealGrid warmMask;
    if (store) {
      CacheLookup hit = store->lookup(fingerprints[i]);
      const int windowGrid = part.windowGrid();
      if (hit.kind != CacheHitKind::kMiss &&
          (hit.solution.mask.rows() != windowGrid ||
           hit.solution.mask.cols() != windowGrid)) {
        // Shape skew should be impossible (the raster geometry is in the
        // config hash) — treat it as a miss rather than trusting the file.
        LOG_WARN("tile (" << tile.row << "," << tile.col
                          << ") cached mask has the wrong shape; ignoring");
        hit.kind = CacheHitKind::kMiss;
      }
      outcome.cacheHit = hit.kind;
      if (hit.kind == CacheHitKind::kExact) {
        tileMasks[i] = std::move(hit.solution.mask);
        outcome.ok = true;
        outcome.fromCache = true;
        outcome.seconds = tileTimer.seconds();
        emitTileRecord(cfg.runLog, outcome, cacheOn);
        return;
      }
      if (hit.kind != CacheHitKind::kMiss) {
        warmMask = shiftMask(hit.solution.mask, hit.shiftPxRow,
                             hit.shiftPxCol, baseConfig.maskLow);
        outcome.warmStarted = true;
      }
    }
    IltConfig tileConfig = baseConfig;
    if (!warmMask.empty()) tileConfig.maxIterations = warmIterationBudget;

    MOSAIC_SPAN("tile.optimize");
    bool allowResume = cfg.resume;
    for (int attempt = 1; attempt <= cfg.retries + 1; ++attempt) {
      outcome.attempts = attempt;
      try {
        // Per-tile fault isolation (same contract as the batch runner):
        // anything thrown below lands here, and only this tile retries.
        MOSAIC_FAILPOINT("tile.optimize");
        OptimizeOptions options;
        options.runLog = cfg.runLog;
        options.runLogScope = tileScope(tile);
        options.cancel = cfg.cancel;
        if (cfg.progressSink) {
          options.progressSink = [&cfg, scope = options.runLogScope](
                                     const IterationRecord& record) {
            cfg.progressSink(scope, record);
          };
        }
        if (!cfg.checkpointDir.empty()) {
          const std::string path =
              tileCheckpointPath(cfg.checkpointDir, tile);
          options.checkpointPath = path;
          options.checkpointEvery = cfg.checkpointEvery;
          if (allowResume && std::ifstream(path).good()) {
            options.resumePath = path;
          }
        }
        options.warmStartMask = warmMask;
        const OpcResult res =
            runOpc(sim, target, cfg.method, &tileConfig, {}, {}, options);
        if (res.stopReason == StopReason::kCanceled) {
          // Interrupted mid-tile: the optimizer already checkpointed, so
          // ship best-so-far and let a resumed run finish the job.
          outcome.error = "canceled mid-optimization (checkpointed)";
          tileMasks[i] = res.maskTwoLevel;
          outcome.iterations = res.iterations;
          break;
        }
        tileMasks[i] = res.maskTwoLevel;
        outcome.iterations = res.iterations;
        outcome.nonFiniteEvents = res.nonFiniteEvents;
        outcome.recoveries = res.recoveries;
        outcome.ok = true;
        outcome.error.clear();
        // Publish the solved mask for future runs. Deadline-cut solves are
        // not representative of the key (the config hash deliberately
        // excludes the wall-clock budget), so they stay out of the store.
        if (store && res.stopReason != StopReason::kDeadline) {
          CachedSolution sol;
          sol.mask = res.maskTwoLevel;
          sol.iterations = res.iterations;
          sol.objective = bestObjectiveOf(res);
          store->insert(fingerprints[i], sol);
        }
        break;
      } catch (const CheckpointError& e) {
        // A torn/garbage tile checkpoint must not burn the retry budget:
        // drop the resume and restart this tile from scratch.
        outcome.error = e.what();
        allowResume = false;
        LOG_WARN("tile (" << tile.row << "," << tile.col
                          << ") checkpoint unusable, restarting fresh: "
                          << e.what());
        --attempt;  // corrupt-resume detection is not an optimization try
      } catch (const std::exception& e) {
        outcome.error = e.what();
        LOG_WARN("tile (" << tile.row << "," << tile.col << ") attempt "
                          << attempt << " failed: " << e.what());
        if (attempt <= cfg.retries) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(cfg.backoffMs * attempt));
        }
      }
    }
    if (!outcome.ok) {
      // Last resort: ship the uncorrected pattern for this window so the
      // chip still stitches. The seam report and the outcome row make the
      // degradation visible; the caller decides whether to re-run.
      tileMasks[i] = toReal(target);
      telemetry::metrics().counter("tile.fallbacks").add();
    }
    outcome.seconds = tileTimer.seconds();
    emitTileRecord(cfg.runLog, outcome, cacheOn);
  };

  // Cache-aware scheduling (ChipConfig::cacheAwareOrder): optimize one
  // representative of each fingerprint equivalence class first, then fan
  // out the remaining members — by then every one of them exact-hits the
  // store and pastes instead of optimizing. Without a store (or when the
  // ordering is disabled) the tiles run as one wave, seed order.
  result.cacheOrdered = cacheOn && cfg.cacheAwareOrder;
  if (result.cacheOrdered) {
    std::vector<std::size_t> representatives;
    std::vector<std::size_t> members;
    std::map<std::uint64_t, std::size_t> classSeen;
    for (std::size_t i = 0; i < tileCount; ++i) {
      if (part.tiles[i].empty) {
        members.push_back(i);  // trivial; no reason to hold up wave 1
        continue;
      }
      if (classSeen.emplace(fingerprints[i].combined(), i).second) {
        representatives.push_back(i);
        result.outcomes[i].representative = true;
      } else {
        members.push_back(i);
      }
    }
    result.representatives = static_cast<int>(representatives.size());
    telemetry::metrics().counter("cache.representatives")
        .add(representatives.size());
    LOG_INFO("chip: cache-aware order, "
             << representatives.size() << " representative(s) for "
             << tileCount << " tiles");
    parallelFor(0, representatives.size(),
                [&](std::size_t k) { processTile(representatives[k]); });
    parallelFor(0, members.size(),
                [&](std::size_t k) { processTile(members[k]); });
  } else {
    parallelFor(0, tileCount, processTile);
  }

  for (const TileOutcome& outcome : result.outcomes) {
    if (outcome.ok) {
      ++result.succeeded;
    } else {
      ++result.failed;
    }
  }
  result.interrupted = cfg.cancel != nullptr && cfg.cancel->stopRequested();

  if (store) {
    result.cacheStats = store->stats();
    // Record this run's fingerprints so a future ECO run can diff against
    // it. Best effort: a failed manifest write degrades ECO reporting, not
    // the chip result.
    std::vector<ManifestEntry> manifest;
    manifest.reserve(tileCount);
    for (std::size_t i = 0; i < tileCount; ++i) {
      const TilePlan& tile = part.tiles[i];
      manifest.push_back({tile.coreNm.x0, tile.coreNm.y0, fingerprints[i]});
    }
    try {
      writeFingerprintManifest(manifestPath(store->dir()), manifest);
    } catch (const std::exception& e) {
      LOG_WARN("could not write fingerprint manifest: " << e.what());
    }
  }

  const double threshold = 0.5 * (baseConfig.maskLow + baseConfig.maskHigh);
  result.stitched = stitchTiles(part, tileMasks, threshold);
  result.wallSeconds = wallTimer.seconds();
  emitChipRecord(cfg.runLog, result);
  return result;
}

}  // namespace mosaic
