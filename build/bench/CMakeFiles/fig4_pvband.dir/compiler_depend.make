# Empty compiler generated dependencies file for fig4_pvband.
# This may be replaced when dependencies are built.
