#include "serve/progress.hpp"

#include <chrono>

namespace mosaic {
namespace serve {

bool ProgressSubscription::next(ProgressEvent* out, int timeoutMs) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                    [this] { return !queue_.empty() || closed_; })) {
    return false;  // timeout
  }
  if (queue_.empty()) return false;  // closed and drained
  if (out) *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool ProgressSubscription::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && queue_.empty();
}

std::uint64_t ProgressSubscription::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void ProgressSubscription::push(const ProgressEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    if (queue_.size() >= kQueueCapacity) {
      // Drop-oldest: a stalled watcher loses history, never the worker's
      // time. The terminal event is always the newest, so it survives.
      queue_.pop_front();
      ++dropped_;
    }
    queue_.push_back(event);
  }
  cv_.notify_all();
}

void ProgressSubscription::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void ProgressBus::publish(const ProgressEvent& event) {
  std::vector<std::shared_ptr<ProgressSubscription>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Topic& topic = topics_[event.job];
    if (topic.closed) return;
    topic.replay.push_back(event);
    if (topic.replay.size() > kReplayCapacity) topic.replay.pop_front();
    // Collect live subscribers (and compact expired ones) under the bus
    // lock, but push outside it: a subscriber queue's mutex is only ever
    // taken after the bus mutex is released, so next() callers can't
    // deadlock against publishers.
    auto& subs = topic.subscribers;
    for (std::size_t i = 0; i < subs.size();) {
      if (auto sub = subs[i].lock()) {
        targets.push_back(std::move(sub));
        ++i;
      } else {
        subs[i] = subs.back();
        subs.pop_back();
      }
    }
    if (event.terminal) {
      topic.closed = true;
      // Keep the closed topic around so a watch opened after completion
      // still replays the tail and terminates (the header's contract) —
      // but bound the retention so a long-lived daemon doesn't accumulate
      // one topic per job forever. Evicted jobs fall back to the watch
      // handler's snapshot check, which synthesizes the end event.
      closedOrder_.push_back(event.job);
      while (closedOrder_.size() > kClosedRetain) {
        topics_.erase(closedOrder_.front());
        closedOrder_.pop_front();
      }
    }
  }
  for (const auto& sub : targets) {
    sub->push(event);
    if (event.terminal) sub->close();
  }
}

void ProgressBus::publishTerminal(const std::string& jobId,
                                  const std::string& state, int iteration,
                                  double objective, double wallMs) {
  ProgressEvent event;
  event.job = jobId;
  event.seq = nextSeq(jobId);
  event.iteration = iteration;
  event.objective = objective;
  event.wallMs = wallMs;
  event.terminal = true;
  event.state = state;
  publish(event);
}

std::shared_ptr<ProgressSubscription> ProgressBus::subscribe(
    const std::string& jobId) {
  auto sub = std::make_shared<ProgressSubscription>();
  std::deque<ProgressEvent> replay;
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Topic& topic = topics_[jobId];
    replay = topic.replay;
    closed = topic.closed;
    if (!closed) topic.subscribers.push_back(sub);
  }
  for (const ProgressEvent& event : replay) sub->push(event);
  if (closed) sub->close();
  return sub;
}

long long ProgressBus::nextSeq(const std::string& jobId) {
  std::lock_guard<std::mutex> lock(mutex_);
  return topics_[jobId].nextSeq++;
}

}  // namespace serve
}  // namespace mosaic
