#pragma once
/// \file stitch.hpp
/// Seam-consistent assembly of per-tile masks into one full-chip mask —
/// the back half of the full-chip tiling engine (docs/tiling.md).
///
/// Neighboring tile windows overlap by 2x the halo. In the overlap the
/// tiles generally disagree slightly (each optimized its own window), so
/// the stitcher blends them with distance weights — a separable ramp that
/// is 1 inside a tile's core and decays linearly to 0 one blend margin
/// (ChipPartition::blendNm, about one optical interaction radius) outside
/// it. Cross-tile mixing is thus confined to a narrow band straddling each
/// core boundary, symmetric between the two tiles; everywhere else the
/// stitched mask is exactly the owning tile's solution. The blended mask
/// is then re-binarized, and a seam-consistency report quantifies how much
/// the tiles disagreed so callers can detect under-sized halos.

#include "math/grid.hpp"
#include "tile/tiling.hpp"

namespace mosaic {

/// How consistent the per-tile solutions were where the stitch blends
/// them. All counts are restricted to the blend band (pixels within the
/// blend margin of a core boundary) — window overlap beyond it is
/// context-only and legitimately diverges between tiles.
struct SeamReport {
  /// Chip pixels receiving positive stitch weight from >= 2 tiles.
  long long overlapPixels = 0;
  /// Overlap pixels where the contributing binarized masks disagree.
  long long disagreeingPixels = 0;
  /// disagreeingPixels / overlapPixels (0 when there is no overlap).
  double disagreementFraction = 0.0;
  /// Non-finite values in the stitched continuous mask (must be 0; a
  /// nonzero count means a tile solution leaked NaN/Inf past the
  /// scheduler's guardrails).
  long long nonFinitePixels = 0;
  /// Stitched-binary pixels that differ from the owning tile's own
  /// binarized solution inside that tile's core. Nonzero only where
  /// blending with a neighbor flipped a core pixel — the sharpest signal
  /// of an under-sized halo.
  long long coreMismatchPixels = 0;
  /// Highest number of tiles contributing blend weight to one chip pixel.
  int maxCoverage = 0;
};

/// A stitched full-chip mask plus its seam diagnostics.
struct StitchResult {
  RealGrid maskContinuous;  ///< distance-weighted blend, chip grid
  BitGrid maskBinary;       ///< re-binarized at the threshold
  SeamReport report;
};

/// Blend per-tile masks into one chip mask. `tileMasks[i]` is the
/// optimized (two-level) mask of `part.tiles[i]` on the window grid.
/// \param binarizeThreshold threshold for the re-binarization pass and for
///        the per-tile agreement checks (0.5 for binary masks; use the
///        midpoint of the transmission range for PSM).
StitchResult stitchTiles(const ChipPartition& part,
                         const std::vector<RealGrid>& tileMasks,
                         double binarizeThreshold = 0.5);

/// Chip-grid mask of the seam band: pixels where >= 2 tiles contribute
/// positive blend weight. Used to restrict EPE measurements to the
/// stitched seams.
BitGrid seamBand(const ChipPartition& part);

}  // namespace mosaic
