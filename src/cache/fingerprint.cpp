#include "cache/fingerprint.hpp"

#include <algorithm>
#include <vector>

#include "litho/kernel_cache.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace mosaic {
namespace {

/// Clip `r` to `region`; invalid result means no overlap.
RectNm clipRect(const RectNm& r, const RectNm& region) {
  return {std::max(r.x0, region.x0), std::max(r.y0, region.y0),
          std::min(r.x1, region.x1), std::min(r.y1, region.y1)};
}

/// Canonical order: lexicographic on (x0, y0, x1, y1). The rect sets here
/// are disjoint by construction, so this order is unique for a given
/// geometry regardless of input order.
void sortRects(std::vector<RectNm>* rects) {
  std::sort(rects->begin(), rects->end(),
            [](const RectNm& a, const RectNm& b) {
              if (a.x0 != b.x0) return a.x0 < b.x0;
              if (a.y0 != b.y0) return a.y0 < b.y0;
              if (a.x1 != b.x1) return a.x1 < b.x1;
              return a.y1 < b.y1;
            });
}

/// Hash a sorted rect set translated by (-ax, -ay). The sub-pixel phase of
/// the anchor is mixed in by the caller, so equal digests imply the
/// geometries are a whole-pixel translation apart.
std::uint64_t hashRects(const std::vector<RectNm>& rects, int ax, int ay,
                        std::uint64_t seedMix) {
  Fnv1a h;
  h.mix(seedMix);
  h.mix(static_cast<int>(rects.size()));
  for (const RectNm& r : rects) {
    h.mix(r.x0 - ax);
    h.mix(r.y0 - ay);
    h.mix(r.x1 - ax);
    h.mix(r.y1 - ay);
  }
  return h.digest();
}

}  // namespace

std::uint64_t TileFingerprint::combined() const {
  Fnv1a h;
  h.mix(coreHash);
  h.mix(windowHash);
  h.mix(configHash);
  return h.digest();
}

std::string TileFingerprint::keyHex() const {
  return Fnv1a::hashHex(combined());
}

std::uint64_t iltConfigDigest(const IltConfig& cfg) {
  Fnv1a h;
  h.mix(static_cast<int>(cfg.targetTerm));
  h.mix(static_cast<int>(cfg.gradientMode));
  h.mix(cfg.alpha);
  h.mix(cfg.beta);
  h.mix(cfg.gamma);
  h.mix(cfg.regWeight);
  h.mix(cfg.thetaM);
  h.mix(cfg.maskLow);
  h.mix(cfg.maskHigh);
  h.mix(cfg.thetaEpe);
  h.mix(cfg.epeThresholdNm);
  h.mix(cfg.sampleSpacingNm);
  h.mix(cfg.inLoopKernels);
  h.mix(static_cast<int>(cfg.pvbCorners.size()));
  for (const ProcessCorner& c : cfg.pvbCorners) {
    h.mix(c.focusNm);
    h.mix(c.dose);
  }
  h.mix(cfg.maxIterations);
  h.mix(cfg.stepSize);
  h.mix(cfg.stepGrowth);
  h.mix(cfg.stepShrink);
  h.mix(cfg.tolRmsGradient);
  h.mix(cfg.jumpPeriod);
  h.mix(cfg.jumpFactor);
  h.mix(static_cast<int>(cfg.descentVariant));
  h.mix(cfg.momentum);
  h.mix(cfg.adamBeta1);
  h.mix(cfg.adamBeta2);
  h.mix(cfg.adamEpsilon);
  h.mix(cfg.maxRecoveries);
  h.mix(cfg.recoveryBackoff);
  h.mix(cfg.minRecoveryStep);
  // deadlineSeconds is deliberately excluded: a wall-clock budget changes
  // when a run stops, not what the converged solution is, and tying cache
  // keys to it would make identical problems miss across deployments with
  // different budgets. Runs cut short by a deadline are not inserted.
  return h.digest();
}

std::uint64_t solverConfigDigest(const OpticsConfig& optics,
                                 const IltConfig& ilt, int methodId,
                                 int windowNm, int pixelNm) {
  Fnv1a h;
  h.mix(opticsParameterDigest(optics));
  h.mix(iltConfigDigest(ilt));
  h.mix(methodId);
  h.mix(windowNm);
  h.mix(pixelNm);
  return h.digest();
}

TileFingerprint fingerprintWindow(const Layout& window,
                                  const RectNm& coreLocalNm, int pixelNm,
                                  std::uint64_t configHash) {
  MOSAIC_CHECK(pixelNm > 0, "fingerprint needs a positive pixel size");
  MOSAIC_CHECK(coreLocalNm.valid(), "fingerprint needs a valid core region");

  TileFingerprint fp;
  fp.configHash = configHash;
  fp.empty = window.rects.empty();

  // Core rect set: window geometry clipped to the core region.
  std::vector<RectNm> core;
  core.reserve(window.rects.size());
  for (const RectNm& r : window.rects) {
    const RectNm c = clipRect(r, coreLocalNm);
    if (c.valid()) core.push_back(c);
  }
  sortRects(&core);

  // The canonical anchor comes from the *core* content only: halo edits
  // must not move it, or the coreHash of an untouched cell would change
  // and near-miss detection would break. An all-halo window anchors at
  // the core region's own corner.
  int ax = coreLocalNm.x0;
  int ay = coreLocalNm.y0;
  if (!core.empty()) {
    ax = core.front().x0;  // sorted: front has the minimal x0
    ay = core.front().y0;
    for (const RectNm& r : core) ay = std::min(ay, r.y0);
  }
  fp.anchorPxCol = ax >= 0 ? ax / pixelNm : -((-ax + pixelNm - 1) / pixelNm);
  fp.anchorPxRow = ay >= 0 ? ay / pixelNm : -((-ay + pixelNm - 1) / pixelNm);
  const int phaseX = ax - fp.anchorPxCol * pixelNm;
  const int phaseY = ay - fp.anchorPxRow * pixelNm;

  // The sub-pixel phase and the core region's own shape are part of the
  // identity: the same rects rasterize differently at a different phase,
  // and a clamped edge core is a different problem than an interior one.
  Fnv1a seed;
  seed.mix(phaseX);
  seed.mix(phaseY);
  seed.mix(coreLocalNm.width());
  seed.mix(coreLocalNm.height());
  const std::uint64_t seedMix = seed.digest();

  fp.coreHash = hashRects(core, ax, ay, seedMix);

  std::vector<RectNm> all = window.rects;
  sortRects(&all);
  Fnv1a windowSeed;
  windowSeed.mix(seedMix);
  windowSeed.mix(window.sizeNm);
  fp.windowHash = hashRects(all, ax, ay, windowSeed.digest());
  return fp;
}

}  // namespace mosaic
