# Empty dependencies file for ablation_aberrations.
# This may be replaced when dependencies are built.
