#pragma once
/// \file signal.hpp
/// SIGINT/SIGTERM handling shared by the CLI subcommands and the
/// mosaic_serve daemon (docs/serving.md).
///
/// installTerminationHandler(&token) routes the first SIGINT or SIGTERM to
/// CancelToken::cancel() — an async-signal-safe atomic store — so whatever
/// the token is threaded into (the optimizer loop, the tile scheduler, the
/// serve accept loop) unwinds at its next poll point, checkpoints, and
/// exits cleanly. A second signal while the first is still draining
/// hard-exits with the conventional 128+signo code, so a stuck drain can
/// always be interrupted by pressing Ctrl-C again.

#include "support/cancel.hpp"

namespace mosaic {

/// Exit code of CLI runs interrupted by SIGINT/SIGTERM after a graceful
/// checkpoint, distinct from success (0) and the batch/chip failure codes
/// (1 = total, 2 = partial).
constexpr int kExitInterrupted = 3;

/// Install SIGINT and SIGTERM handlers that cancel `token`. The token must
/// outlive every signal delivery (in practice: main()-scope). Calling
/// again replaces the routed token; pass nullptr to detach (handlers stay
/// installed but become no-ops besides recording the signal).
void installTerminationHandler(CancelToken* token);

/// Signal number that triggered the handler (0 = none delivered yet).
[[nodiscard]] int terminationSignal();

/// Human-readable name ("SIGINT"/"SIGTERM") for terminationSignal().
[[nodiscard]] const char* terminationSignalName();

/// Restore default dispositions and clear the recorded signal (tests).
void resetTerminationHandler();

}  // namespace mosaic
