#include "litho/kernel_cache.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace mosaic {
namespace {

constexpr std::uint32_t kMagic = 0x4d4f534bu;  // "MOSK"
constexpr std::uint32_t kVersion = 1;

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t readU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  MOSAIC_CHECK(in.good(), "kernel cache: truncated file");
  return v;
}

double readF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  MOSAIC_CHECK(in.good(), "kernel cache: truncated file");
  return v;
}

void writeSparse(std::ostream& out, const SparseSpectrum& s) {
  writeU32(out, static_cast<std::uint32_t>(s.sampleCount()));
  for (std::size_t i = 0; i < s.sampleCount(); ++i) {
    writeU32(out, static_cast<std::uint32_t>(s.flatIndex[i]));
    writeF64(out, s.value[i].real());
    writeF64(out, s.value[i].imag());
  }
}

SparseSpectrum readSparse(std::istream& in, int gridSize) {
  SparseSpectrum s;
  s.gridSize = gridSize;
  const std::uint32_t count = readU32(in);
  MOSAIC_CHECK(count <= static_cast<std::uint32_t>(gridSize) * gridSize,
               "kernel cache: sample count exceeds grid");
  s.flatIndex.reserve(count);
  s.value.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t flat = readU32(in);
    MOSAIC_CHECK(flat < static_cast<std::uint32_t>(gridSize) * gridSize,
                 "kernel cache: sample index out of range");
    s.flatIndex.push_back(static_cast<int>(flat));
    const double re = readF64(in);
    const double im = readF64(in);
    s.value.emplace_back(re, im);
  }
  return s;
}

}  // namespace

void saveKernelSet(const std::string& path, const KernelSet& set) {
  MOSAIC_CHECK(set.gridSize > 0 && !set.kernels.empty(),
               "cannot save an empty kernel set");
  std::ofstream out(path, std::ios::binary);
  MOSAIC_CHECK(out.good(), "cannot open for writing: " << path);
  writeU32(out, kMagic);
  writeU32(out, kVersion);
  writeU32(out, static_cast<std::uint32_t>(set.gridSize));
  writeF64(out, set.focusNm);
  writeU32(out, static_cast<std::uint32_t>(set.kernels.size()));
  for (std::size_t k = 0; k < set.kernels.size(); ++k) {
    writeF64(out, set.weights[k]);
    writeSparse(out, set.kernels[k]);
  }
  writeSparse(out, set.combined);
  MOSAIC_CHECK(out.good(), "write failed: " << path);
}

KernelSet loadKernelSet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MOSAIC_CHECK(in.good(), "cannot open kernel cache: " << path);
  MOSAIC_CHECK(readU32(in) == kMagic, "kernel cache: bad magic in " << path);
  MOSAIC_CHECK(readU32(in) == kVersion,
               "kernel cache: unsupported version in " << path);
  KernelSet set;
  set.gridSize = static_cast<int>(readU32(in));
  MOSAIC_CHECK(set.gridSize > 0 && set.gridSize <= 1 << 15,
               "kernel cache: implausible grid size");
  set.focusNm = readF64(in);
  const std::uint32_t count = readU32(in);
  MOSAIC_CHECK(count >= 1 && count <= 4096,
               "kernel cache: implausible kernel count");
  set.weights.reserve(count);
  set.kernels.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    set.weights.push_back(readF64(in));
    set.kernels.push_back(readSparse(in, set.gridSize));
  }
  set.combined = readSparse(in, set.gridSize);
  return set;
}

std::string kernelCacheName(int gridSize, double focusNm) {
  return "kernels_g" + std::to_string(gridSize) + "_f" +
         std::to_string(static_cast<long long>(std::llround(focusNm * 10))) +
         ".bin";
}

std::uint64_t opticsParameterDigest(const OpticsConfig& optics) {
  Fnv1a h;
  h.mix(optics.wavelengthNm);
  h.mix(optics.na);
  h.mix(optics.sigmaInner);
  h.mix(optics.sigmaOuter);
  h.mix(optics.immersionIndex);
  h.mix(optics.kernelCount);
  h.mix(optics.sourceOversample);
  h.mix(optics.aberrations.astigmatism0);
  h.mix(optics.aberrations.astigmatism45);
  h.mix(optics.aberrations.comaX);
  h.mix(optics.aberrations.comaY);
  h.mix(optics.aberrations.spherical);
  return h.digest();
}

std::string opticsParameterHash(const OpticsConfig& optics) {
  return Fnv1a::hashHex(opticsParameterDigest(optics));
}

std::string kernelCacheName(const OpticsConfig& optics, double focusNm) {
  return "kernels_g" + std::to_string(optics.gridSize()) + "_f" +
         std::to_string(static_cast<long long>(std::llround(focusNm * 10))) +
         "_o" + opticsParameterHash(optics) + ".bin";
}

}  // namespace mosaic
