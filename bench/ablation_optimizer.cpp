/// \file ablation_optimizer.cpp
/// Optimizer ablation: the paper's plain gradient descent + jump (Alg. 1)
/// versus heavy-ball momentum and Adam, at equal iteration budgets.
/// Modern ILT follow-ups (GAN-OPC, Neural-ILT) favour adaptive updates;
/// this bench quantifies how much of their benefit is just the optimizer.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "2,5,10";
  std::string logLevel = "warn";

  CliParser cli("ablation_optimizer",
                "plain GD + jump vs momentum vs Adam (MOSAIC_fast)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    struct Variant {
      const char* name;
      DescentVariant kind;
      double step;
    };
    const std::vector<Variant> variants = {
        {"plain+jump", DescentVariant::kPlain, 0.35},
        {"momentum", DescentVariant::kMomentum, 0.2},
        {"adam", DescentVariant::kAdam, 0.25},
    };

    TextTable table;
    table.setHeader({"case", "optimizer", "#EPE", "PVB(nm^2)", "score",
                     "best F"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      for (const auto& variant : variants) {
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = iterations;
        cfg.descentVariant = variant.kind;
        cfg.stepSize = variant.step;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev = evaluateMask(sim, res.maskTwoLevel, target,
                                               res.runtimeSec);
        double bestF = res.history.empty() ? 0.0
                                           : res.history.front().objective;
        for (const auto& rec : res.history) {
          bestF = std::min(bestF, rec.objective);
        }
        table.addRow({layout.name, variant.name,
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::num(ev.score, 0), TextTable::num(bestF, 0)});
      }
    }
    std::printf("=== Ablation: descent variant (MOSAIC_fast, %d iters) "
                "===\n%s\n",
                iterations, table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_optimizer failed: %s\n", e.what());
    return 1;
  }
}
