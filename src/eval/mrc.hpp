#pragma once
/// \file mrc.hpp
/// Mask rule checking and mask complexity metrics. ILT-generated masks are
/// notoriously hard to write (the paper's introduction cites e-beam write
/// time for ILT masks); this module quantifies that: minimum feature
/// width / spacing violations, tiny-feature count, and complexity proxies
/// (contour vertices, rectangle/shot count).

#include "math/grid.hpp"

namespace mosaic {

struct MrcConfig {
  int minWidthNm = 24;   ///< narrowest manufacturable mask feature
  int minSpaceNm = 24;   ///< narrowest manufacturable gap
  int minAreaNm2 = 864;  ///< smallest writable isolated feature
};

struct MrcResult {
  long long widthViolationPx = 0;  ///< pixels inside too-narrow features
  long long spaceViolationPx = 0;  ///< pixels inside too-narrow gaps
  int tinyFeatures = 0;            ///< components below the area floor
  long long featurePx = 0;         ///< total mask pixels

  // Complexity metrics.
  long long contourVertices = 0;   ///< total polygon corners
  long long perimeterNm = 0;       ///< total boundary length
  long long rectangles = 0;        ///< decomposed rect count (VSB shots)
  int components = 0;              ///< connected feature count

  [[nodiscard]] bool clean() const {
    return widthViolationPx == 0 && spaceViolationPx == 0 &&
           tinyFeatures == 0;
  }
};

/// Check a binary mask against mask manufacturing rules and compute its
/// complexity statistics.
MrcResult checkMask(const BitGrid& mask, int pixelNm,
                    const MrcConfig& config = {});

}  // namespace mosaic
