/// Unit and physics-sanity tests for the lithography simulator: optics
/// validation, pupil, TCC construction, SOCS kernels and forward imaging.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "geometry/raster.hpp"
#include "litho/pupil.hpp"
#include "litho/simulator.hpp"
#include "litho/tcc.hpp"
#include "math/stats.hpp"
#include "support/failpoint.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

OpticsConfig testOptics(int pixelNm = 8) {
  OpticsConfig optics;
  optics.pixelNm = pixelNm;
  return optics;
}

/// Shared simulator so the TCC eigendecomposition is paid once per suite.
LithoSimulator& sharedSim() {
  static LithoSimulator sim(testOptics(8));
  return sim;
}

Layout lineLayout(int widthNm) {
  Layout l;
  l.name = "line";
  l.sizeNm = 1024;
  const int y0 = 512 - widthNm / 2;
  l.addRect(256, y0, 768, y0 + widthNm);
  return l;
}

// --------------------------------------------------------------- optics

TEST(Optics, ValidatesDimensions) {
  OpticsConfig o = testOptics();
  EXPECT_NO_THROW(o.validate());
  EXPECT_EQ(o.gridSize(), 128);

  o.pixelNm = 3;  // does not divide 1024
  EXPECT_THROW(o.validate(), InvalidArgument);

  o = testOptics();
  o.clipSizeNm = 960;  // 960/8 = 120, not a power of two
  EXPECT_THROW(o.validate(), InvalidArgument);

  o = testOptics();
  o.sigmaInner = 0.9;
  o.sigmaOuter = 0.6;
  EXPECT_THROW(o.validate(), InvalidArgument);

  o = testOptics();
  o.na = 1.5;  // >= immersion index
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(Optics, DerivedQuantities) {
  const OpticsConfig o = testOptics();
  EXPECT_NEAR(o.cutoffFreq(), 1.35 / 193.0, 1e-12);
  EXPECT_NEAR(o.freqStep(), 1.0 / 1024.0, 1e-15);
}

TEST(Optics, ResistModelSigmoid) {
  const ResistModel resist;
  EXPECT_NEAR(resist.sigmoid(resist.threshold), 0.5, 1e-12);
  EXPECT_GT(resist.sigmoid(1.0), 0.99);
  EXPECT_LT(resist.sigmoid(0.0), 0.01);
  EXPECT_TRUE(resist.prints(0.3));
  EXPECT_FALSE(resist.prints(0.2));
}

class ResistDerivative : public ::testing::TestWithParam<double> {};

TEST_P(ResistDerivative, MatchesFiniteDifference) {
  const ResistModel resist;
  const double intensity = GetParam();
  const double h = 1e-6;
  const double fd =
      (resist.sigmoid(intensity + h) - resist.sigmoid(intensity - h)) /
      (2 * h);
  EXPECT_NEAR(resist.sigmoidDerivative(intensity), fd,
              1e-5 * std::max(1.0, std::fabs(fd)));
}

INSTANTIATE_TEST_SUITE_P(Intensities, ResistDerivative,
                         ::testing::Values(0.0, 0.1, 0.225, 0.3, 0.5, 1.0));

TEST(Optics, CornerSets) {
  const auto eval = evaluationCorners(25.0, 0.02);
  ASSERT_EQ(eval.size(), 6u);
  EXPECT_EQ(eval.front(), nominalCorner());
  // Optimization corners: inner extreme, nominal, outer extreme.
  const auto opt = optimizationCorners(25.0, 0.02);
  ASSERT_EQ(opt.size(), 3u);
  EXPECT_DOUBLE_EQ(opt[0].focusNm, 25.0);
  EXPECT_DOUBLE_EQ(opt[0].dose, 0.98);
  EXPECT_EQ(opt[1], nominalCorner());
  EXPECT_DOUBLE_EQ(opt[2].focusNm, 0.0);
  EXPECT_DOUBLE_EQ(opt[2].dose, 1.02);
}

// ---------------------------------------------------------------- pupil

TEST(Pupil, CircAtNominalFocus) {
  const OpticsConfig o = testOptics();
  const Pupil p(o, 0.0);
  EXPECT_EQ(p.value(0.0, 0.0), std::complex<double>(1.0, 0.0));
  const double inside = 0.9 * o.cutoffFreq();
  EXPECT_EQ(p.value(inside, 0.0), std::complex<double>(1.0, 0.0));
  const double outside = 1.01 * o.cutoffFreq();
  EXPECT_EQ(p.value(outside, 0.0), std::complex<double>(0.0, 0.0));
}

TEST(Pupil, DefocusIsPurePhase) {
  const OpticsConfig o = testOptics();
  const Pupil p(o, 25.0);
  // Unit magnitude inside the pupil, zero outside.
  const double f = 0.7 * o.cutoffFreq();
  EXPECT_NEAR(std::abs(p.value(f, 0.0)), 1.0, 1e-12);
  EXPECT_EQ(p.value(1.1 * o.cutoffFreq(), 0.0),
            std::complex<double>(0.0, 0.0));
  // Zero phase on axis (referenced to the chief ray).
  EXPECT_NEAR(std::arg(p.value(0.0, 0.0)), 0.0, 1e-12);
  // Nonzero phase at the pupil edge.
  EXPECT_GT(std::fabs(std::arg(p.value(f, f * 0.5))), 1e-3);
}

TEST(Pupil, DefocusPhaseIsRadiallySymmetric) {
  const OpticsConfig o = testOptics();
  const Pupil p(o, 25.0);
  const double f = 0.5 * o.cutoffFreq();
  const auto a = p.value(f, 0.0);
  const auto b = p.value(0.0, f);
  const auto c = p.value(f / std::sqrt(2.0), f / std::sqrt(2.0));
  EXPECT_NEAR(std::abs(a - b), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a - c), 0.0, 1e-9);
}

TEST(Pupil, ZernikePhasesBehaveByOrder) {
  OpticsConfig o = testOptics();
  const double f = 0.6 * o.cutoffFreq();

  // Coma: unit magnitude, antisymmetric phase (P(f) != P(-f)), no DC phase.
  o.aberrations = {};
  o.aberrations.comaX = 0.05;
  {
    const Pupil p(o, 0.0);
    EXPECT_NEAR(std::abs(p.value(f, 0.0)), 1.0, 1e-12);
    EXPECT_NEAR(std::arg(p.value(0.0, 0.0)), 0.0, 1e-12);
    EXPECT_GT(std::fabs(std::arg(p.value(f, 0.0)) -
                        std::arg(p.value(-f, 0.0))),
              1e-4);
    // comaX has no phase along the y axis (cos theta = 0).
    EXPECT_NEAR(std::arg(p.value(0.0, f)), 0.0, 1e-12);
  }

  // Astigmatism 0: opposite phase on the x and y axes.
  o.aberrations = {};
  o.aberrations.astigmatism0 = 0.05;
  {
    const Pupil p(o, 0.0);
    const double px = std::arg(p.value(f, 0.0));
    const double py = std::arg(p.value(0.0, f));
    EXPECT_NEAR(px, -py, 1e-10);
    EXPECT_GT(std::fabs(px), 1e-4);
  }

  // Spherical: radially symmetric, nonzero piston at the pupil center.
  o.aberrations = {};
  o.aberrations.spherical = 0.05;
  {
    const Pupil p(o, 0.0);
    EXPECT_NEAR(std::abs(std::arg(p.value(f, 0.0)) -
                         std::arg(p.value(0.0, f))),
                0.0, 1e-10);
    EXPECT_GT(std::fabs(std::arg(p.value(0.0, 0.0))), 1e-4);
  }
}

TEST(Pupil, ComaShiftsAPrintedLine) {
  // comaY displaces the image along y; the centroid of a printed line
  // must move relative to the ideal lens.
  OpticsConfig ideal;
  ideal.pixelNm = 16;
  OpticsConfig comatic = ideal;
  comatic.aberrations.comaY = 0.08;
  LithoSimulator simIdeal(ideal);
  LithoSimulator simComa(comatic);

  Layout l;
  l.name = "line";
  l.sizeNm = 1024;
  l.addRect(256, 480, 768, 544);
  const BitGrid target = rasterize(l, 16);
  // Intensity-weighted centroid of the aerial image: continuous, so it
  // resolves sub-pixel displacements.
  auto centroidRow = [](const RealGrid& aerial) {
    double num = 0.0;
    double den = 0.0;
    for (int r = 0; r < aerial.rows(); ++r) {
      for (int c = 0; c < aerial.cols(); ++c) {
        num += r * aerial(r, c);
        den += aerial(r, c);
      }
    }
    return num / den;
  };
  const double ideal_c =
      centroidRow(simIdeal.aerial(toReal(target), nominalCorner()));
  const double coma_c =
      centroidRow(simComa.aerial(toReal(target), nominalCorner()));
  EXPECT_GT(std::fabs(coma_c - ideal_c), 0.02);  // > 0.02 px = 0.3 nm
}

// ------------------------------------------------------------------ tcc

TEST(Tcc, LatticeCoversPupil) {
  const OpticsConfig o = testOptics();
  const auto lattice = pupilLattice(o);
  // cutoff/freqStep ~ 7.16 -> |indices| <= 7 disk: 149..163 points.
  EXPECT_GT(lattice.size(), 140u);
  EXPECT_LT(lattice.size(), 180u);
  bool hasDc = false;
  for (const auto& s : lattice) {
    EXPECT_LE(s.fx * s.fx + s.fy * s.fy,
              o.cutoffFreq() * o.cutoffFreq() + 1e-15);
    if (s.row == 0 && s.col == 0) hasDc = true;
  }
  EXPECT_TRUE(hasDc);
}

TEST(Tcc, MatrixIsHermitianPsdDiagonal) {
  OpticsConfig o = testOptics();
  o.sourceOversample = 2;  // keep the test fast
  const auto lattice = pupilLattice(o);
  const auto tcc = buildTcc(o, 25.0, lattice);
  const int n = static_cast<int>(lattice.size());
  for (int p = 0; p < n; p += 7) {
    EXPECT_GE(tcc[static_cast<std::size_t>(p) * n + p].real(), 0.0);
    EXPECT_NEAR(tcc[static_cast<std::size_t>(p) * n + p].imag(), 0.0, 1e-12);
    for (int q = 0; q < n; q += 5) {
      const auto upper = tcc[static_cast<std::size_t>(p) * n + q];
      const auto lower = tcc[static_cast<std::size_t>(q) * n + p];
      EXPECT_NEAR(std::abs(upper - std::conj(lower)), 0.0, 1e-12);
    }
  }
}

TEST(Tcc, KernelWeightsDescendAndPositive) {
  const KernelSet& set = sharedSim().kernels(0.0);
  ASSERT_GT(set.kernelCount(), 0);
  EXPECT_LE(set.kernelCount(), 24);
  for (std::size_t k = 1; k < set.weights.size(); ++k) {
    EXPECT_LE(set.weights[k], set.weights[k - 1] + 1e-12);
    EXPECT_GT(set.weights[k], 0.0);
  }
}

TEST(Tcc, OpenFrameIntensityIsUnity) {
  // The key normalization invariant: an all-clear mask images to 1.0.
  LithoSimulator& sim = sharedSim();
  const int n = sim.gridSize();
  RealGrid open(n, n, 1.0);
  const RealGrid intensity = sim.aerial(open, nominalCorner());
  for (int r = 0; r < n; r += 17) {
    for (int c = 0; c < n; c += 13) {
      EXPECT_NEAR(intensity(r, c), 1.0, 1e-9);
    }
  }
}

TEST(Tcc, CombinedKernelDcIsUnitMagnitude) {
  const KernelSet& set = sharedSim().kernels(0.0);
  EXPECT_NEAR(std::abs(set.combined.dcValue()), 1.0, 1e-9);
  EXPECT_EQ(set.combined.gridSize, set.gridSize);
}

TEST(Tcc, SparseSpectrumHelpers) {
  SparseSpectrum s;
  s.gridSize = 4;
  s.flatIndex = {0, 1, 7};  // (0,0), (0,1), (1,3)
  s.value = {{1, 0}, {0, 1}, {2, -1}};
  EXPECT_EQ(s.dcValue(), std::complex<double>(1, 0));

  const SparseSpectrum f = s.flipped();
  // (0,1) -> (0,3) = 3 ; (1,3) -> (3,1) = 13 ; DC stays.
  EXPECT_EQ(f.flatIndex[0], 0);
  EXPECT_EQ(f.flatIndex[1], 3);
  EXPECT_EQ(f.flatIndex[2], 13);

  const SparseSpectrum c = s.conjugated();
  EXPECT_EQ(c.value[1], std::complex<double>(0, -1));

  const ComplexGrid dense = s.dense();
  EXPECT_EQ(dense(1, 3), std::complex<double>(2, -1));
  EXPECT_EQ(dense(2, 2), std::complex<double>(0, 0));
}

// ------------------------------------------------------------ simulator

TEST(Simulator, EmptyMaskImagesToDark) {
  LithoSimulator& sim = sharedSim();
  const int n = sim.gridSize();
  const RealGrid dark = sim.aerial(RealGrid(n, n, 0.0), nominalCorner());
  EXPECT_NEAR(maxAbs(dark), 0.0, 1e-12);
  EXPECT_EQ(popcount(sim.printBinary(dark)), 0);
}

TEST(Simulator, DoseScalesIntensityLinearly) {
  LithoSimulator& sim = sharedSim();
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid mask = toReal(target);
  const RealGrid nominal = sim.aerial(mask, {0.0, 1.0});
  const RealGrid overdosed = sim.aerial(mask, {0.0, 1.25});
  for (std::size_t i = 0; i < nominal.size(); i += 53) {
    EXPECT_NEAR(overdosed.data()[i], 1.25 * nominal.data()[i], 1e-9);
  }
}

TEST(Simulator, DefocusBlursPeak) {
  LithoSimulator& sim = sharedSim();
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid mask = toReal(target);
  const RealGrid focused = sim.aerial(mask, {0.0, 1.0});
  const RealGrid defocused = sim.aerial(mask, {25.0, 1.0});
  // Peak intensity of a narrow line drops through focus.
  EXPECT_LT(maxAbs(defocused), maxAbs(focused));
}

TEST(Simulator, SymmetricMaskGivesSymmetricImage) {
  LithoSimulator& sim = sharedSim();
  const int n = sim.gridSize();
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid image = sim.aerial(toReal(target), nominalCorner());
  // The rasterized line occupies rows 60..67, i.e. it is symmetric under
  // the reflection r -> (n - 1) - r about row 63.5.
  for (int r = 1; r < n / 2; r += 3) {
    for (int c = 0; c < n; c += 7) {
      EXPECT_NEAR(image(n / 2 + r, c), image(n / 2 - 1 - r, c), 1e-6);
    }
  }
}

TEST(Simulator, LargePadPrintsInteriorOnly) {
  LithoSimulator& sim = sharedSim();
  Layout l;
  l.name = "pad";
  l.sizeNm = 1024;
  l.addRect(256, 256, 768, 768);
  const BitGrid target = rasterize(l, 8);
  const BitGrid print = sim.print(toReal(target), nominalCorner());
  // Interior prints.
  EXPECT_EQ(print(64, 64), 1u);
  // Far outside stays dark.
  EXPECT_EQ(print(8, 8), 0u);
  EXPECT_EQ(print(120, 8), 0u);
}

TEST(Simulator, KernelTruncationApproachesFullSum) {
  LithoSimulator& sim = sharedSim();
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid mask = toReal(target);
  const RealGrid full = sim.aerial(mask, nominalCorner(), 0);
  const RealGrid k6 = sim.aerial(mask, nominalCorner(), 6);
  const RealGrid k12 = sim.aerial(mask, nominalCorner(), 12);
  double err6 = 0.0;
  double err12 = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    err6 += std::fabs(full.data()[i] - k6.data()[i]);
    err12 += std::fabs(full.data()[i] - k12.data()[i]);
  }
  EXPECT_LT(err12, err6);
  EXPECT_LT(err12 / static_cast<double>(full.size()), 1e-3);
}

TEST(Simulator, KernelCacheReturnsSameObject) {
  LithoSimulator& sim = sharedSim();
  const KernelSet& a = sim.kernels(0.0);
  const KernelSet& b = sim.kernels(0.0);
  EXPECT_EQ(&a, &b);
  const KernelSet& c = sim.kernels(25.0);
  EXPECT_NE(&a, &c);
  EXPECT_DOUBLE_EQ(c.focusNm, 25.0);
}

/// Tiny, fast optics for the threaded kernel-cache tests: the 512 nm clip
/// shrinks the pupil lattice (and with it the TCC eigendecomposition) so
/// far that the injected delays dominate the timing even on one core.
OpticsConfig cheapOptics() {
  OpticsConfig o = testOptics(16);
  o.clipSizeNm = 512;
  o.sourceOversample = 2;
  return o;
}

TEST(Simulator, DistinctFocusKernelsComputeConcurrently) {
  // Regression for the kernel cache holding its mutex across
  // computeKernelSet: with the per-focus call_once scheme, two corners
  // with different focus values must overlap their first-use computation.
  // The injected 1.2 s delay fires once per compute; if the computations
  // serialized, wall time would be >= 2.4 s even with zero compute cost.
  // Sleeps overlap even on one core, so this is robust on small machines.
  LithoSimulator sim(cheapOptics());
  failpoint::ScopedFailpoints sfp("litho.kernel_load:delay=1200");
  WallTimer timer;
  std::thread a([&] { (void)sim.kernels(0.0); });
  std::thread b([&] { (void)sim.kernels(25.0); });
  a.join();
  b.join();
  EXPECT_EQ(failpoint::hitCount("litho.kernel_load"), 2);
  EXPECT_LT(timer.seconds(), 2.0);
}

TEST(Simulator, SameFocusComputesExactlyOnceUnderContention) {
  LithoSimulator sim(cheapOptics());
  // The delay widens the race window so the second thread reliably arrives
  // while the first is still inside the call_once.
  failpoint::ScopedFailpoints sfp("litho.kernel_load:delay=100");
  const KernelSet* pa = nullptr;
  const KernelSet* pb = nullptr;
  std::thread a([&] { pa = &sim.kernels(12.5); });
  std::thread b([&] { pb = &sim.kernels(12.5); });
  a.join();
  b.join();
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(failpoint::hitCount("litho.kernel_load"), 1);
}

TEST(Simulator, NewFftEngineMatchesLegacyPath) {
  // The acceptance bar for the rebuilt FFT engine: the imaging pipeline
  // (real-input mask spectrum + fast inverse per kernel) must reproduce
  // the frozen legacy transforms to 1e-10 on the continuous images and
  // bit-exactly on the binary print.
  LithoSimulator& sim = sharedSim();
  const int n = sim.gridSize();
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid mask = toReal(target);

  const ComplexGrid spectrum = sim.maskSpectrum(mask);
  const RealGrid aerial = sim.aerialFromSpectrum(spectrum, nominalCorner());

  const Fft2d& fft = fft2dFor(n, n);
  ComplexGrid legacySpectrum(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) legacySpectrum(r, c) = {mask(r, c), 0.0};
  }
  fft.forwardLegacy(legacySpectrum);
  double specDiff = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    specDiff = std::max(
        specDiff, std::abs(spectrum.data()[i] - legacySpectrum.data()[i]));
  }
  EXPECT_LT(specDiff, 1e-10);

  // Legacy SOCS sum: per-kernel multiply + legacy inverse transform.
  const KernelSet& set = sim.kernels(0.0);
  RealGrid legacyAerial(n, n, 0.0);
  ComplexGrid field(n, n);
  for (int k = 0; k < set.kernelCount(); ++k) {
    set.kernels[static_cast<std::size_t>(k)].multiplyInto(legacySpectrum,
                                                          field);
    fft.inverseLegacy(field);
    const double w = set.weights[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < legacyAerial.size(); ++i) {
      legacyAerial.data()[i] += w * std::norm(field.data()[i]);
    }
  }

  double aerialDiff = 0.0;
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    aerialDiff = std::max(
        aerialDiff, std::fabs(aerial.data()[i] - legacyAerial.data()[i]));
  }
  EXPECT_LT(aerialDiff, 1e-10);

  const RealGrid zNew = sim.printContinuous(aerial);
  const RealGrid zLegacy = sim.printContinuous(legacyAerial);
  for (std::size_t i = 0; i < zNew.size(); ++i) {
    ASSERT_NEAR(zNew.data()[i], zLegacy.data()[i], 1e-10);
  }
  const BitGrid printNew = sim.printBinary(aerial);
  const BitGrid printLegacy = sim.printBinary(legacyAerial);
  for (std::size_t i = 0; i < printNew.size(); ++i) {
    ASSERT_EQ(printNew.data()[i], printLegacy.data()[i]);
  }
}

TEST(Simulator, MaskShapeValidation) {
  LithoSimulator& sim = sharedSim();
  EXPECT_THROW(sim.aerial(RealGrid(16, 16, 0.0), nominalCorner()),
               InvalidArgument);
}

TEST(Simulator, ResistDiffusionSoftensTheImage) {
  // With acid diffusion the aerial image of a line is blurred: the peak
  // drops and the tails rise; total intensity is conserved.
  OpticsConfig optics;
  optics.pixelNm = 8;
  ResistModel diffusing;
  diffusing.diffusionSigmaNm = 16.0;
  LithoSimulator crisp(optics);
  LithoSimulator soft(optics, diffusing);
  const BitGrid target = rasterize(lineLayout(64), 8);
  const RealGrid a = crisp.aerial(toReal(target), nominalCorner());
  const RealGrid b = soft.aerial(toReal(target), nominalCorner());
  EXPECT_LT(maxAbs(b), maxAbs(a));
  EXPECT_NEAR(sum(b), sum(a), 1e-6 * sum(a));
}

TEST(Simulator, PrintContinuousMatchesSigmoid) {
  LithoSimulator& sim = sharedSim();
  RealGrid aerialImage(sim.gridSize(), sim.gridSize(), 0.3);
  const RealGrid z = sim.printContinuous(aerialImage);
  EXPECT_NEAR(z(0, 0), sim.resist().sigmoid(0.3), 1e-12);
}

}  // namespace
}  // namespace mosaic
