/// \file ablation_init_jump.cpp
/// Ablation for Alg. 1's two search heuristics: the rule-based SRAF
/// initialization (line 2) and the jump technique of [12] integrated in
/// the step-size control. Runs MOSAIC_fast with each switch on/off.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "3,5,9";
  std::string logLevel = "warn";

  CliParser cli("ablation_init_jump",
                "SRAF initialization and jump technique on/off (Alg. 1)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    TextTable table;
    table.setHeader({"case", "SRAF", "jump", "#EPE", "PVB(nm^2)", "score"});

    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      for (bool sraf : {true, false}) {
        for (bool jump : {true, false}) {
          IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
          cfg.maxIterations = iterations;
          if (!jump) cfg.jumpPeriod = iterations + 1;  // never fires
          SrafConfig srafCfg;
          srafCfg.enabled = sraf;
          const OpcResult res =
              runOpc(sim, target, OpcMethod::kMosaicFast, &cfg, srafCfg);
          const CaseEvaluation ev = evaluateMask(sim, toReal(res.maskBinary),
                                                 target, res.runtimeSec);
          table.addRow({layout.name, sraf ? "on" : "off",
                        jump ? "on" : "off",
                        TextTable::integer(ev.epeViolations),
                        TextTable::num(ev.pvbandAreaNm2, 0),
                        TextTable::num(ev.score, 0)});
        }
      }
    }
    std::printf(
        "=== Ablation: SRAF initialization x jump technique ===\n%s\n",
        table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_init_jump failed: %s\n", e.what());
    return 1;
  }
}
