#pragma once
/// \file evaluator.hpp
/// One-call mask quality evaluation: nominal print -> EPE, all corners ->
/// PV band, shape check, contest score. This is the metric column set of
/// the paper's Table 2.

#include <vector>

#include "eval/epe.hpp"
#include "eval/pvband.hpp"
#include "eval/score.hpp"
#include "eval/shape.hpp"
#include "litho/simulator.hpp"

namespace mosaic {

struct EvalConfig {
  double epeThresholdNm = 15.0;             ///< th_epe (paper Sec. 4)
  int sampleSpacingNm = 40;                 ///< EPE sample pitch
  std::vector<ProcessCorner> corners = evaluationCorners();
  ScoreWeights weights = {};
};

/// Full quality report for one mask on one testcase.
struct CaseEvaluation {
  int epeViolations = 0;
  double meanAbsEpeNm = 0.0;
  double maxAbsEpeNm = 0.0;
  double pvbandAreaNm2 = 0.0;
  int shapeViolations = 0;
  int holes = 0;
  int missingFeatures = 0;
  double runtimeSec = 0.0;
  double score = 0.0;
};

/// Evaluate a (continuous or binary) mask against a target raster.
/// The mask is used as-is: pass the binarized mask for contest-style
/// numbers. `runtimeSec` is folded into the score (Eq. 22).
CaseEvaluation evaluateMask(const LithoSimulator& sim, const RealGrid& mask,
                            const BitGrid& target, double runtimeSec,
                            const EvalConfig& config = {});

}  // namespace mosaic
