/// Tests for the synthetic ICCAD'13-style benchmark suite.

#include <gtest/gtest.h>

#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "math/stats.hpp"
#include "suite/testcases.hpp"

namespace mosaic {
namespace {

class AllCases : public ::testing::TestWithParam<int> {};

TEST_P(AllCases, BuildsValidDisjointLayout) {
  const Layout l = buildTestcase(GetParam());
  EXPECT_EQ(l.sizeNm, 1024);
  EXPECT_EQ(l.name, "B" + std::to_string(GetParam()));
  EXPECT_FALSE(l.rects.empty());
  EXPECT_NO_THROW(l.validateDisjoint());
  EXPECT_GT(l.patternArea(), 0);
}

TEST_P(AllCases, FeaturesKeepClipMargin) {
  // The optical model wraps cyclically; the suite must keep features away
  // from the clip border.
  const Layout l = buildTestcase(GetParam());
  for (const auto& r : l.rects) {
    EXPECT_GE(r.x0, 128);
    EXPECT_GE(r.y0, 128);
    EXPECT_LE(r.x1, 1024 - 128);
    EXPECT_LE(r.y1, 1024 - 128);
  }
}

TEST_P(AllCases, CoordinatesAlignToRasterGrid) {
  // All coordinates are multiples of 8 nm so pixel sizes 1/2/4/8 rasterize
  // exactly.
  const Layout l = buildTestcase(GetParam());
  for (const auto& r : l.rects) {
    EXPECT_EQ(r.x0 % 8, 0);
    EXPECT_EQ(r.y0 % 8, 0);
    EXPECT_EQ(r.x1 % 8, 0);
    EXPECT_EQ(r.y1 % 8, 0);
  }
}

TEST_P(AllCases, MinimumFeatureWidthAtLeast48nm) {
  const Layout l = buildTestcase(GetParam());
  for (const auto& r : l.rects) {
    EXPECT_GE(std::min(r.width(), r.height()), 48)
        << "rect in " << l.name << " thinner than 48 nm";
  }
}

TEST_P(AllCases, RasterAreaMatchesGeometry) {
  const Layout l = buildTestcase(GetParam());
  const BitGrid g = rasterize(l, 4);
  EXPECT_EQ(popcount(g) * 16, l.patternArea());
}

TEST_P(AllCases, RasterConsistentAcrossPixelSizes) {
  const Layout l = buildTestcase(GetParam());
  const long long area = l.patternArea();
  for (int px : {2, 4, 8}) {
    const BitGrid g = rasterize(l, px);
    EXPECT_EQ(popcount(g) * px * px, area) << "pixel " << px;
  }
}

INSTANTIATE_TEST_SUITE_P(B, AllCases, ::testing::Range(1, 11));

TEST(Suite, BuildAllReturnsTen) {
  const auto all = buildAllTestcases();
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].name,
              "B" + std::to_string(i + 1));
  }
}

TEST(Suite, ByNameLookup) {
  EXPECT_EQ(buildTestcaseByName("B3").name, "B3");
  EXPECT_EQ(buildTestcaseByName("b10").name, "B10");
  EXPECT_THROW(buildTestcaseByName("C1"), InvalidArgument);
  EXPECT_THROW(buildTestcaseByName("Bx"), InvalidArgument);
  EXPECT_THROW(buildTestcaseByName("B0"), InvalidArgument);
  EXPECT_THROW(buildTestcase(11), InvalidArgument);
}

TEST(Suite, ExpectedTopology) {
  // Shape-family expectations: component counts at 4 nm raster.
  struct Expect {
    int index;
    int components;
  };
  const Expect expects[] = {
      {1, 1},   // single line
      {2, 5},   // five dense lines
      {3, 9},   // 3x3 contact array
      {5, 1},   // comb is connected
      {8, 2},   // U plus island
  };
  for (const auto& e : expects) {
    const BitGrid g = rasterize(buildTestcase(e.index), 4);
    EXPECT_EQ(countComponents(g), e.components) << "B" << e.index;
  }
}

// ------------------------------------------------------------ random clips

class RandomClips : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomClips, ValidDisjointAndInClip) {
  const Layout l = buildRandomClip(GetParam());
  EXPECT_EQ(l.sizeNm, 1024);
  EXPECT_NO_THROW(l.validateDisjoint());
  EXPECT_GT(l.patternArea(), 0);
  const RandomClipConfig cfg;
  for (const auto& r : l.rects) {
    EXPECT_GE(r.x0, cfg.marginNm);
    EXPECT_GE(r.y0, cfg.marginNm);
    EXPECT_LE(r.x1, 1024 - cfg.marginNm);
    EXPECT_LE(r.y1, 1024 - cfg.marginNm);
    EXPECT_GE(std::min(r.width(), r.height()), cfg.minCdNm);
    EXPECT_EQ(r.x0 % cfg.gridNm, 0);
    EXPECT_EQ(r.y1 % cfg.gridNm, 0);
  }
}

TEST_P(RandomClips, DeterministicPerSeed) {
  const Layout a = buildRandomClip(GetParam());
  const Layout b = buildRandomClip(GetParam());
  ASSERT_EQ(a.rects.size(), b.rects.size());
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    EXPECT_EQ(a.rects[i], b.rects[i]);
  }
}

TEST_P(RandomClips, RasterizesCleanly) {
  const Layout l = buildRandomClip(GetParam());
  const BitGrid g = rasterize(l, 8);
  EXPECT_EQ(popcount(g) * 64, l.patternArea());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomClips,
                         ::testing::Values(1, 7, 42, 1000, 31337));

TEST(RandomClips, DifferentSeedsDiffer) {
  const Layout a = buildRandomClip(5);
  const Layout b = buildRandomClip(6);
  EXPECT_TRUE(a.rects.size() != b.rects.size() || !(a.rects == b.rects));
}

TEST(RandomClips, ConfigValidation) {
  RandomClipConfig cfg;
  cfg.featureCount = 0;
  EXPECT_THROW(buildRandomClip(1, cfg), InvalidArgument);
  cfg = RandomClipConfig{};
  cfg.maxCdNm = cfg.minCdNm - 8;
  EXPECT_THROW(buildRandomClip(1, cfg), InvalidArgument);
}

TEST(Suite, DifficultyRoughlyIncreasesWithIndex) {
  // Not a strict ordering, but the busiest clips must carry more edge
  // length than the simplest one.
  auto edgeLength = [](int index) {
    const BitGrid g = rasterize(buildTestcase(index), 4);
    long long edges = 0;
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c + 1 < g.cols(); ++c) {
        edges += (g(r, c) != g(r, c + 1));
      }
    }
    for (int c = 0; c < g.cols(); ++c) {
      for (int r = 0; r + 1 < g.rows(); ++r) {
        edges += (g(r, c) != g(r + 1, c));
      }
    }
    return edges;
  };
  EXPECT_GT(edgeLength(10), edgeLength(1));
  EXPECT_GT(edgeLength(2), edgeLength(1));
}

}  // namespace
}  // namespace mosaic
