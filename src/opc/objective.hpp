#pragma once
/// \file objective.hpp
/// The ILT objective F = alpha * F_target + beta * F_pvb (paper Eq. 7,
/// 19-20) with closed-form gradients w.r.t. the mask pixels:
///
///  * F_epe (Eq. 9-15): per-sample sigmoid of the summed image difference
///    Dsum inside the EPE window -- the differentiable EPE-violation count
///    (MOSAIC_exact). The per-sample window weights are aggregated into a
///    single field before the convolution chain, which is algebraically
///    identical to the paper's per-sample sum but needs only one
///    convolution pair per focus condition.
///  * F_id (Eq. 16-17): gamma-power image difference (MOSAIC_fast).
///  * F_pvb (Eq. 18): quadratic difference of every process-corner print
///    against the target.
///
/// Gradient convolutions use either the combined kernel sum_k w_k h_k
/// (Eq. 21 speedup) or the exact per-kernel SOCS sum.

#include <vector>

#include "geometry/edges.hpp"
#include "litho/simulator.hpp"
#include "opc/ilt_config.hpp"

namespace mosaic {

/// Differentiable ILT objective bound to one simulator + target.
class IltObjective {
 public:
  IltObjective(const LithoSimulator& sim, BitGrid target, IltConfig config);

  struct Evaluation {
    double value = 0.0;        ///< alpha*target + beta*pvb + reg*smooth
    double targetValue = 0.0;  ///< unweighted F_epe or F_id
    double pvbValue = 0.0;     ///< unweighted F_pvb
    double regValue = 0.0;     ///< unweighted F_reg (mask smoothness)
    RealGrid gradMask;         ///< dF/dM, empty when gradient not requested
    RealGrid zNominal;         ///< continuous nominal print (telemetry)
  };

  /// Evaluate F (and optionally its mask gradient) at a mask.
  [[nodiscard]] Evaluation evaluate(const RealGrid& mask,
                                    bool needGradient) const;

  [[nodiscard]] const BitGrid& target() const { return target_; }
  [[nodiscard]] const RealGrid& targetReal() const { return targetReal_; }
  [[nodiscard]] const std::vector<SamplePoint>& samples() const {
    return samples_;
  }
  [[nodiscard]] const IltConfig& config() const { return config_; }
  [[nodiscard]] const LithoSimulator& simulator() const { return sim_; }

 private:
  /// dF/dI field for the F_id term at the nominal corner.
  RealGrid imageDiffGradientField(const RealGrid& zNominal,
                                  const RealGrid& aerialNominal,
                                  double* valueOut) const;
  /// dF/dI field for the F_epe term at the nominal corner.
  RealGrid epeGradientField(const RealGrid& zNominal,
                            const RealGrid& aerialNominal,
                            double* valueOut) const;

  /// Accumulate the convolution chain 2 Re[(G . conj(A)) (*) H_flip] into
  /// grad, for the kernel set of one focus condition (paper Eq. 15/17).
  void accumulateGradient(const ComplexGrid& maskSpectrum,
                          const KernelSet& kernels, const RealGrid& gField,
                          RealGrid& grad) const;

  const LithoSimulator& sim_;
  BitGrid target_;
  RealGrid targetReal_;
  IltConfig config_;
  std::vector<SamplePoint> samples_;
  int epeHalfWidthPx_ = 0;
};

}  // namespace mosaic
