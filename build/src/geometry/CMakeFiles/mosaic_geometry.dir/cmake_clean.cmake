file(REMOVE_RECURSE
  "CMakeFiles/mosaic_geometry.dir/bitmap_ops.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/bitmap_ops.cpp.o.d"
  "CMakeFiles/mosaic_geometry.dir/contour.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/contour.cpp.o.d"
  "CMakeFiles/mosaic_geometry.dir/edges.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/edges.cpp.o.d"
  "CMakeFiles/mosaic_geometry.dir/layout.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/layout.cpp.o.d"
  "CMakeFiles/mosaic_geometry.dir/polygon.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/mosaic_geometry.dir/raster.cpp.o"
  "CMakeFiles/mosaic_geometry.dir/raster.cpp.o.d"
  "libmosaic_geometry.a"
  "libmosaic_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
