/// \file robustness_sweep.cpp
/// Generalization check: the ten handcrafted clips could in principle be
/// over-fit by tuning; this bench runs the full method stack on seeded
/// *random* clips and reports the score distribution. The method ordering
/// of Table 2 should survive on layouts nobody tuned against.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 15;
  int clips = 6;
  int firstSeed = 1000;
  std::string logLevel = "warn";

  CliParser cli("robustness_sweep",
                "method comparison on seeded random clips");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addInt("clips", &clips, "number of random clips");
  cli.addInt("seed", &firstSeed, "first seed (clips use seed..seed+n-1)");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    struct Agg {
      std::string name;
      double scoreSum = 0.0;
      long long epeSum = 0;
      int wins = 0;
    };
    std::vector<Agg> aggs = {{"no_opc"}, {"ILT_baseline"}, {"MOSAIC_fast"},
                             {"MOSAIC_exact"}};

    TextTable table;
    table.setHeader({"clip", "rects", "no_opc", "ILT", "fast", "exact",
                     "winner"});
    for (int i = 0; i < clips; ++i) {
      const Layout layout =
          buildRandomClip(static_cast<std::uint64_t>(firstSeed + i));
      const BitGrid target = rasterize(layout, pixel);

      std::vector<double> scores;
      {
        const CaseEvaluation ev =
            evaluateMask(sim, noOpcMask(target), target, 0.0);
        scores.push_back(ev.score);
        aggs[0].scoreSum += ev.score;
        aggs[0].epeSum += ev.epeViolations;
      }
      std::size_t m = 1;
      for (OpcMethod method : {OpcMethod::kIltBaseline,
                               OpcMethod::kMosaicFast,
                               OpcMethod::kMosaicExact}) {
        IltConfig cfg = defaultIltConfig(method, pixel);
        cfg.maxIterations = (method == OpcMethod::kMosaicExact)
                                ? iterations + 10
                                : iterations;
        const OpcResult res = runOpc(sim, target, method, &cfg);
        const CaseEvaluation ev =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
        scores.push_back(ev.score);
        aggs[m].scoreSum += ev.score;
        aggs[m].epeSum += ev.epeViolations;
        ++m;
      }
      const std::size_t winner = static_cast<std::size_t>(
          std::min_element(scores.begin() + 1, scores.end()) -
          scores.begin());
      ++aggs[winner].wins;
      table.addRow({layout.name,
                    TextTable::integer(static_cast<long long>(
                        layout.rects.size())),
                    TextTable::num(scores[0], 0), TextTable::num(scores[1], 0),
                    TextTable::num(scores[2], 0), TextTable::num(scores[3], 0),
                    aggs[winner].name});
    }

    std::vector<std::string> totals = {"TOTAL", "-"};
    for (const auto& agg : aggs) totals.push_back(TextTable::num(agg.scoreSum, 0));
    totals.push_back("-");
    table.addRow(totals);

    std::printf("=== Robustness: random clips (seeds %d..%d) ===\n%s\n",
                firstSeed, firstSeed + clips - 1, table.render().c_str());
    std::printf("EPE totals: no_opc %lld, ILT %lld, fast %lld, exact %lld; "
                "wins: ILT %d, fast %d, exact %d\n",
                aggs[0].epeSum, aggs[1].epeSum, aggs[2].epeSum,
                aggs[3].epeSum, aggs[1].wins, aggs[2].wins, aggs[3].wins);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "robustness_sweep failed: %s\n", e.what());
    return 1;
  }
}
