#!/usr/bin/env bash
# Tier-1 smoke test for the incremental re-OPC (ECO) flow through the real
# CLI (docs/caching.md).
#
# The contract, end to end through GLP files on disk:
#   1. Base run: `chip --input base.glp --pattern-cache` fills a pattern
#      store and writes the fingerprint manifest.
#   2. Edit: one rect in one corner of the chip is moved by two pixels and
#      the revision saved as a new GLP file.
#   3. ECO run: `chip --input rev.glp --eco-base` must report that only
#      the tiles whose windows overlap the edit changed, re-optimize
#      exactly those (visible as cache misses / warm starts), and serve
#      every untouched tile verbatim from the base store.
#
# This specifically guards the chip GLP ingestion path: the reader's
# default bounding-box recentering would silently re-normalize the revised
# layout and report "0 tiles changed" for a real edit, so `chip --input`
# must read absolute coordinates.
#
# Usage: eco_smoke_test.sh <mosaic_cli> <scratch dir>

set -u

CLI="$1"
SCRATCH="$2"

fail() {
  echo "eco_smoke: FAIL: $*" >&2
  exit 1
}

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH" || fail "cannot create scratch dir $SCRATCH"

# A 2048 nm chip (4x4 tiles of 512 nm) with cell clusters in the four
# corners, far enough apart that an edit in one corner is invisible to the
# windows of the opposite corners.
cat > "$SCRATCH/base.glp" <<'EOF'
BEGIN
EQUIV  1  1000  MICRON  +X,+Y
CNAME ecochip
LEVEL M1
   RECT N M1 96 96 288 160
   RECT N M1 96 224 288 288
   RECT N M1 1632 96 1824 160
   RECT N M1 1632 224 1824 288
   RECT N M1 96 1632 288 1696
   RECT N M1 96 1760 288 1824
   RECT N M1 1632 1632 1824 1696
   RECT N M1 1632 1760 1824 1824
ENDMSG
EOF

# The ECO edit: move one bottom-left rect +32 nm (two 16 nm pixels) in x.
sed 's/RECT N M1 96 96 288 160/RECT N M1 128 96 320 160/' \
  "$SCRATCH/base.glp" > "$SCRATCH/rev.glp"
cmp -s "$SCRATCH/base.glp" "$SCRATCH/rev.glp" && fail "edit did not apply"

CHIP=(--chip-size 2048 --tile-size 512 --halo 128 --pixel 16 --iters 5
      --kernel-cache "$SCRATCH/kernels" --log warn)

echo "eco_smoke: base run (fills the store + manifest)"
"$CLI" chip --input "$SCRATCH/base.glp" "${CHIP[@]}" \
    --pattern-cache "$SCRATCH/store" > "$SCRATCH/base.out" 2>&1 ||
  fail "base run exited $? (see $SCRATCH/base.out)"
[ -s "$SCRATCH/store/fingerprints.jsonl" ] ||
  fail "base run wrote no fingerprint manifest"

echo "eco_smoke: eco run (revised layout vs base store)"
"$CLI" chip --input "$SCRATCH/rev.glp" "${CHIP[@]}" \
    --eco-base "$SCRATCH/store" --metrics-out "$SCRATCH/eco_metrics.json" \
    > "$SCRATCH/eco.out" 2>&1 ||
  fail "eco run exited $? (see $SCRATCH/eco.out)"

ECO_LINE=$(grep -E '^eco: [0-9]+/[0-9]+ tiles changed' "$SCRATCH/eco.out") ||
  fail "eco run printed no eco diff line"
CHANGED=$(echo "$ECO_LINE" | sed -E 's|^eco: ([0-9]+)/[0-9]+.*|\1|')
TOTAL=$(echo "$ECO_LINE" | sed -E 's|^eco: [0-9]+/([0-9]+).*|\1|')

# The edit must be seen (a recentering regression reports 0 changed) and
# must stay local (far tiles must not re-optimize).
[ "$CHANGED" -gt 0 ] || fail "edit reported as 0 changed tiles: $ECO_LINE"
[ "$CHANGED" -lt "$TOTAL" ] || fail "every tile re-optimized: $ECO_LINE"

# The changed tiles re-optimize (cache.miss and/or warm starts)...
grep -Eq '"cache\.miss": *[1-9]' "$SCRATCH/eco_metrics.json" ||
  fail "eco run recorded no cache.miss for the edited tile"
# ...and the untouched ones are served verbatim from the base store.
grep -q ' cached ' "$SCRATCH/eco.out" ||
  fail "no tile was served from the base store"

echo "eco_smoke: PASS ($ECO_LINE)"
exit 0
