/// \file ablation_regularization.cpp
/// Mask-complexity study: sweep the smoothness regularizer weight and
/// measure both contest quality and mask manufacturability (MRC metrics:
/// rectangle/shot count, contour vertices, rule violations). The paper's
/// introduction cites e-beam write time as the price of ILT masks; this
/// bench shows how much complexity a small score sacrifice buys back.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "eval/mrc.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "4,10";
  std::string logLevel = "warn";

  CliParser cli("ablation_regularization",
                "mask smoothness regularizer: quality vs complexity");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    const std::vector<double> weights = {0.0, 10.0, 40.0, 160.0};
    TextTable table;
    table.setHeader({"case", "reg weight", "#EPE", "score", "rects",
                     "vertices", "MRC width px", "tiny"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      for (double w : weights) {
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = iterations;
        cfg.regWeight = w;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
        const MrcResult mrc = checkMask(res.maskBinary, pixel);
        table.addRow({layout.name, TextTable::num(w, 0),
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.score, 0),
                      TextTable::integer(mrc.rectangles),
                      TextTable::integer(mrc.contourVertices),
                      TextTable::integer(mrc.widthViolationPx),
                      TextTable::integer(mrc.tinyFeatures)});
      }
    }
    std::printf("=== Ablation: mask smoothness regularizer (MOSAIC_fast) "
                "===\n%s\n",
                table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_regularization failed: %s\n", e.what());
    return 1;
  }
}
