#pragma once
/// \file glp.hpp
/// Reader/writer for the GLP layout format used by the ICCAD 2013 CAD
/// contest (problem C) to distribute the M1 clips. With this module a
/// user who has the original contest files can feed them directly to the
/// library; the suite's synthetic clips can likewise be exported.
///
/// Supported records (tolerant, keyword-driven token stream):
///   BEGIN / ENDMSG                 -- ignored framing
///   EQUIV / CNAME / LEVEL / CELL   -- ignored header metadata
///   RECT <dir> <layer> x0 y0 x1 y1
///   PGON <dir> <layer> x1 y1 x2 y2 ... (rectilinear, until next keyword)
///
/// Polygons are decomposed into disjoint rectangles on import.

#include <iosfwd>
#include <string>

#include "geometry/layout.hpp"

namespace mosaic {

struct GlpReadOptions {
  int clipSizeNm = 1024;  ///< size of the square clip window
  /// Translate the pattern's bounding box to the clip center (the contest
  /// clips use absolute die coordinates).
  bool recenter = true;
};

/// Parse a GLP stream into a Layout. Throws InvalidArgument on malformed
/// records or if the (re-centered) pattern does not fit the clip.
Layout readGlp(std::istream& in, const std::string& name,
               const GlpReadOptions& options = {});

/// Parse a GLP file (name defaults to the file stem).
Layout readGlpFile(const std::string& path,
                   const GlpReadOptions& options = {});

/// Serialize a layout as GLP RECT records.
void writeGlp(std::ostream& out, const Layout& layout);
void writeGlpFile(const std::string& path, const Layout& layout);

}  // namespace mosaic
