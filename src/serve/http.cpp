#include "serve/http.hpp"

#include <memory>

#include "serve/service.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/socket.hpp"
#include "support/telemetry/flightrec.hpp"
#include "support/telemetry/json.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/prometheus.hpp"

namespace mosaic {
namespace serve {
namespace {

constexpr int kPollMs = 100;     ///< accept/read poll so stop() is prompt
constexpr int kHeaderMs = 2000;  ///< budget for a peer to finish its request

const char* statusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default:  return "Error";
  }
}

std::string jobsJson(JobService& service) {
  const ServiceStats stats = service.stats();
  std::string out = "{\"queue_depth\":" + std::to_string(stats.queued);
  out += ",\"states\":{\"queued\":" + std::to_string(stats.queued);
  out += ",\"running\":" + std::to_string(stats.running);
  out += ",\"done\":" + std::to_string(stats.done);
  out += ",\"failed\":" + std::to_string(stats.failed);
  out += ",\"canceled\":" + std::to_string(stats.canceled);
  out += ",\"expired\":" + std::to_string(stats.expired) + "}";
  out += ",\"jobs\":[";
  bool first = true;
  for (const JobSnapshot& snap : service.snapshots()) {
    telemetry::JsonObject o;
    o.set("job", snap.spec.id);
    o.set("case", snap.spec.caseName);
    o.set("state", jobStateName(snap.state));
    o.set("phase", snap.phase);
    o.set("trace", snap.traceId);
    o.set("attempts", snap.attempts);
    o.set("iteration", snap.iterationsDone);
    o.set("F", snap.objective);
    o.set("wall_s", snap.wallSeconds);
    if (!snap.error.empty()) o.set("error", snap.error);
    out += first ? "" : ",";
    out += o.str();
    first = false;
  }
  out += "]}\n";
  return out;
}

}  // namespace

HttpResponse routeHttpRequest(JobService& service, const std::string& path) {
  HttpResponse res;
  if (path == "/metrics") {
    // Sample the process gauges at scrape time so RSS/CPU are current.
    telemetry::updateProcessGauges();
    res.body = telemetry::toPrometheusText(telemetry::metrics().snapshot());
    res.contentType = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    const bool draining = service.draining();
    res.status = draining ? 503 : 200;
    res.contentType = "application/json";
    res.body = std::string("{\"ok\":") + (draining ? "false" : "true") +
               ",\"draining\":" + (draining ? "true" : "false") + "}\n";
  } else if (path == "/jobs") {
    res.contentType = "application/json";
    res.body = jobsJson(service);
  } else if (path == "/debug/flightrec") {
    res.contentType = "application/x-ndjson";
    res.body = telemetry::flightrec::dumpJsonl();
  } else {
    res.status = 404;
    res.body = "not found: " + path + "\n";
  }
  return res;
}

HttpServer::HttpServer(JobService& service, int port) : service_(service) {
  auto listener = std::make_unique<ServerSocket>(port, /*backlog=*/16);
  port_ = listener->port();
  listener_ = listener.release();
  thread_ = std::thread([this] { acceptLoop(); });
  LOG_INFO("http endpoint listening on 127.0.0.1:" << port_);
}

HttpServer::~HttpServer() {
  stop();
  delete static_cast<ServerSocket*>(listener_);
}

void HttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void HttpServer::acceptLoop() {
  auto* listener = static_cast<ServerSocket*>(listener_);
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket conn = listener->accept(kPollMs);
    if (!conn.valid()) continue;
    try {
      LineChannel channel(std::move(conn));
      // Request line: "GET /path HTTP/1.1". Lines end \r\n; LineChannel
      // splits on \n, so trim the \r.
      std::string line;
      if (!channel.readLine(&line, kHeaderMs)) continue;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const auto sp1 = line.find(' ');
      const auto sp2 = line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) continue;
      const std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const auto query = path.find('?');
      if (query != std::string::npos) path.erase(query);

      // Drain the headers up to the blank line; none influence routing.
      std::string header;
      while (channel.readLine(&header, kHeaderMs)) {
        if (!header.empty() && header.back() == '\r') header.pop_back();
        if (header.empty()) break;
      }

      HttpResponse res;
      if (method != "GET") {
        res.status = 405;
        res.body = "only GET is supported\n";
      } else {
        res = routeHttpRequest(service_, path);
      }

      std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                        statusText(res.status) + "\r\n";
      out += "Content-Type: " + res.contentType + "\r\n";
      out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
      out += "Connection: close\r\n\r\n";
      out += res.body;
      channel.writeAll(out);
    } catch (const std::exception& e) {
      // A misbehaving scraper must not take the endpoint down.
      LOG_WARN("http connection error: " << e.what());
    }
  }
}

}  // namespace serve
}  // namespace mosaic
