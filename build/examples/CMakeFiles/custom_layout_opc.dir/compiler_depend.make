# Empty compiler generated dependencies file for custom_layout_opc.
# This may be replaced when dependencies are built.
