/// Property tests for the rebuilt FFT engine: invariants (Parseval,
/// round-trip, Hermitian symmetry of real-input spectra), equivalence
/// against the frozen legacy transforms, the spectral-vs-spatial blur
/// regression, scratch-pool reuse, and a thread hammer on the lock-free
/// plan cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <thread>
#include <vector>

#include "math/convolution.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"
#include "math/scratch.hpp"
#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace {

/// Deterministic xorshift so failures reproduce across platforms.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}
  double uniform() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000000u) / 1000000.0;
  }
};

ComplexGrid randomComplexGrid(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  ComplexGrid g(rows, cols);
  for (auto& v : g) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  return g;
}

RealGrid randomRealGrid(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  RealGrid g(rows, cols);
  for (auto& v : g) v = rng.uniform();
  return g;
}

double maxDiff(const ComplexGrid& a, const ComplexGrid& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

// ----------------------------------------------------------- invariants

TEST(FftEngine, RoundTripIsIdentity) {
  for (const int n : {2, 4, 16, 64, 128}) {
    const ComplexGrid original = randomComplexGrid(n, n, 11u + n);
    ComplexGrid g = original;
    const Fft2d& fft = fft2dFor(n, n);
    fft.forward(g);
    fft.inverse(g);
    EXPECT_LT(maxDiff(g, original), 1e-12) << "size " << n;
  }
}

TEST(FftEngine, RoundTripNonSquare) {
  const ComplexGrid original = randomComplexGrid(32, 128, 7u);
  ComplexGrid g = original;
  const Fft2d& fft = fft2dFor(32, 128);
  fft.forward(g);
  fft.inverse(g);
  EXPECT_LT(maxDiff(g, original), 1e-12);
}

TEST(FftEngine, ParsevalHolds) {
  // sum |x|^2 = (1/N) sum |X|^2 for the unnormalized forward transform.
  const int n = 64;
  const ComplexGrid x = randomComplexGrid(n, n, 23u);
  ComplexGrid spectrum = x;
  fft2dFor(n, n).forward(spectrum);
  double spatial = 0.0;
  double spectral = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    spatial += std::norm(x.data()[i]);
    spectral += std::norm(spectrum.data()[i]);
  }
  spectral /= static_cast<double>(n) * n;
  EXPECT_NEAR(spectral, spatial, 1e-9 * spatial);
}

TEST(FftEngine, RealSpectrumIsHermitian) {
  // X(r, c) = conj(X((R-r)%R, (C-c)%C)) for real input -- this is the
  // symmetry the half-spectrum fast path reconstructs from, so it must
  // hold exactly over the full grid it returns.
  const int rows = 32;
  const int cols = 64;
  const RealGrid x = randomRealGrid(rows, cols, 31u);
  const ComplexGrid spectrum = fft2dFor(rows, cols).forwardReal(x);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::complex<double> mirrored =
          std::conj(spectrum((rows - r) % rows, (cols - c) % cols));
      EXPECT_LT(std::abs(spectrum(r, c) - mirrored), 1e-12)
          << "at (" << r << "," << c << ")";
    }
  }
}

// -------------------------------------------- equivalence against legacy

TEST(FftEngine, ForwardMatchesLegacy) {
  for (const int n : {4, 32, 128}) {
    const ComplexGrid x = randomComplexGrid(n, n, 41u + n);
    ComplexGrid fast = x;
    ComplexGrid legacy = x;
    const Fft2d& fft = fft2dFor(n, n);
    fft.forward(fast);
    fft.forwardLegacy(legacy);
    EXPECT_LT(maxDiff(fast, legacy), 1e-10) << "size " << n;

    fft.inverse(fast);
    fft.inverseLegacy(legacy);
    EXPECT_LT(maxDiff(fast, legacy), 1e-12) << "size " << n;
  }
}

TEST(FftEngine, ForwardRealMatchesLegacy) {
  for (const auto [rows, cols] :
       {std::pair{16, 16}, std::pair{8, 64}, std::pair{128, 32}}) {
    const RealGrid x = randomRealGrid(rows, cols, 53u + rows + cols);
    const Fft2d& fft = fft2dFor(rows, cols);
    const ComplexGrid fast = fft.forwardReal(x);
    ComplexGrid legacy = toComplex(x);
    fft.forwardLegacy(legacy);
    EXPECT_LT(maxDiff(fast, legacy), 1e-10)
        << rows << "x" << cols;
  }
}

TEST(FftEngine, InverseRealMatchesLegacy) {
  for (const auto [rows, cols] :
       {std::pair{16, 16}, std::pair{64, 8}, std::pair{32, 128}}) {
    const RealGrid x = randomRealGrid(rows, cols, 67u + rows + cols);
    const Fft2d& fft = fft2dFor(rows, cols);

    // Forward once, inverse through both paths: inverseRealInto only sees
    // the non-redundant half of the spectrum, the legacy path the full
    // grid; both must reproduce the original real signal.
    ComplexGrid spectrum = fft.forwardReal(x);
    ComplexGrid legacy = spectrum;
    fft.inverseLegacy(legacy);

    RealGrid fast(rows, cols);
    fft.inverseRealInto(spectrum, fast);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        EXPECT_NEAR(fast(r, c), legacy(r, c).real(), 1e-10);
        EXPECT_NEAR(fast(r, c), x(r, c), 1e-10);
      }
    }
  }
}

TEST(FftEngine, Reference1dMatchesFastPlan) {
  const FftPlan plan(256);
  Rng rng(97u);
  std::vector<std::complex<double>> fast(256);
  for (auto& v : fast) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  std::vector<std::complex<double>> ref = fast;
  plan.forward(fast.data());
  plan.transformReference(ref.data(), /*invert=*/false);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_LT(std::abs(fast[i] - ref[i]), 1e-11);
  }
  plan.inverse(fast.data());
  plan.transformReference(ref.data(), /*invert=*/true);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_LT(std::abs(fast[i] - ref[i]), 1e-12);
  }
}

// ------------------------------------------------------ blur regression

TEST(FftEngine, GaussianBlurMatchesDirectSpatialConvolution) {
  // Pin the spectral blur (and with it the signed frequency convention at
  // the Nyquist bin) against a direct O(N^4) cyclic convolution with the
  // kernel obtained by inverse-transforming the blur multiplier. A wrong
  // Nyquist mapping or a modulo-precedence slip in the direct reference
  // shows up as a mismatch far above this tolerance.
  const int n = 16;
  const double sigma = 1.7;
  const RealGrid signal = randomRealGrid(n, n, 71u);
  const RealGrid blurred = gaussianBlur(signal, sigma);

  constexpr double kPi = 3.14159265358979323846;
  const double k = 2.0 * kPi * kPi * sigma * sigma;
  ComplexGrid multiplier(n, n);
  for (int r = 0; r < n; ++r) {
    const double fr =
        (r < (n + 1) / 2 ? r : r - n) / static_cast<double>(n);
    for (int c = 0; c < n; ++c) {
      const double fc =
          (c < (n + 1) / 2 ? c : c - n) / static_cast<double>(n);
      multiplier(r, c) = std::exp(-k * (fr * fr + fc * fc));
    }
  }
  ComplexGrid kernel = multiplier;
  fft2dFor(n, n).inverse(kernel);

  const ComplexGrid direct = directCyclicConvolve(toComplex(signal), kernel);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_NEAR(blurred(r, c), direct(r, c).real(), 1e-10)
          << "at (" << r << "," << c << ")";
      EXPECT_NEAR(direct(r, c).imag(), 0.0, 1e-10);
    }
  }
}

TEST(FftEngine, GaussianBlurPreservesMassAndSmooths) {
  const int n = 64;
  RealGrid impulse(n, n, 0.0);
  impulse(n / 2, n / 2) = 1.0;
  const RealGrid blurred = gaussianBlur(impulse, 2.0);
  double total = 0.0;
  double peak = 0.0;
  for (const double v : blurred) {
    total += v;
    peak = std::max(peak, v);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(peak, 0.25);
  // Cyclic symmetry of the impulse response.
  EXPECT_NEAR(blurred(n / 2 + 3, n / 2), blurred(n / 2 - 3, n / 2), 1e-12);
  EXPECT_NEAR(blurred(n / 2, n / 2 + 3), blurred(n / 2, n / 2 - 3), 1e-12);
}

// -------------------------------------------------------- scratch pool

TEST(FftEngine, ScratchLeaseReusesBuffers) {
  auto& hits = telemetry::metrics().counter("scratch.hit");
  auto& misses = telemetry::metrics().counter("scratch.miss");
  const std::uint64_t missesBefore = misses.value();
  {
    scratch::ComplexLease a(40, 40);  // uncommon shape: first use misses
    (*a)(0, 0) = {1.0, 2.0};
  }
  const std::uint64_t hitsBefore = hits.value();
  {
    scratch::ComplexLease b(40, 40);  // same shape on same thread: hit
    EXPECT_EQ(b->rows(), 40);
    EXPECT_EQ(b->cols(), 40);
  }
  EXPECT_GE(hits.value(), hitsBefore + 1);
  EXPECT_GE(misses.value(), missesBefore + 1);
}

TEST(FftEngine, ScratchLeaseMoveTransfersOwnership) {
  scratch::RealLease a(8, 8);
  RealGrid* raw = &*a;
  scratch::RealLease b = std::move(a);
  EXPECT_EQ(&*b, raw);
  b->fill(3.0);
  EXPECT_DOUBLE_EQ((*b)(7, 7), 3.0);
}

// ---------------------------------------------------------- plan cache

TEST(FftEngine, PlanCacheHammer) {
  // Many threads resolving a mix of new and existing shapes concurrently:
  // every thread must observe the same plan instance per shape (the cache
  // is append-only and lookups are lock-free).
  const std::vector<std::pair<int, int>> shapes = {
      {8, 8}, {16, 16}, {16, 32}, {32, 16}, {64, 64}, {8, 128}};
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::vector<const Fft2d*>> seen(
      kThreads, std::vector<const Fft2d*>(shapes.size(), nullptr));
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t s = 0; s < shapes.size(); ++s) {
          // Stagger first-touch order across threads.
          const std::size_t idx = (s + static_cast<std::size_t>(t)) %
                                  shapes.size();
          const Fft2d& plan =
              fft2dFor(shapes[idx].first, shapes[idx].second);
          if (plan.rows() != shapes[idx].first ||
              plan.cols() != shapes[idx].second) {
            mismatch.store(true);
          }
          if (seen[static_cast<std::size_t>(t)][idx] == nullptr) {
            seen[static_cast<std::size_t>(t)][idx] = &plan;
          } else if (seen[static_cast<std::size_t>(t)][idx] != &plan) {
            mismatch.store(true);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  // All threads resolved each shape to one shared instance.
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][s], seen[0][s]);
    }
  }
}

TEST(FftEngine, PlanCacheTransformsAgreeAcrossThreads) {
  // Concurrent transforms through one cached plan must not interfere:
  // each thread round-trips its own grid and checks the result.
  constexpr int kThreads = 6;
  const int n = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ComplexGrid original =
          randomComplexGrid(n, n, 101u + static_cast<std::uint64_t>(t));
      ComplexGrid g = original;
      const Fft2d& fft = fft2dFor(n, n);
      for (int round = 0; round < 20; ++round) {
        fft.forward(g);
        fft.inverse(g);
      }
      if (maxDiff(g, original) > 1e-9) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mosaic
