#include "serve/service.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cache/fingerprint.hpp"
#include "geometry/raster.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/flightrec.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace serve {
namespace {

OpcMethod methodFromName(const std::string& name) {
  if (name == "fast") return OpcMethod::kMosaicFast;
  if (name == "exact") return OpcMethod::kMosaicExact;
  if (name == "baseline") return OpcMethod::kIltBaseline;
  throw InvalidArgument("unknown job method: " + name);
}

Layout buildJobLayout(const std::string& caseName) {
  if (caseName.rfind("random:", 0) == 0) {
    return buildRandomClip(std::strtoull(caseName.c_str() + 7, nullptr, 10));
  }
  return buildTestcaseByName(caseName);
}

std::string formatJobId(long long n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "job-%06lld", n);
  return buf;
}

/// Numeric suffix of "job-NNNNNN" ids (0 for foreign ids), so recovery can
/// continue the id sequence without colliding with replayed jobs.
long long jobIdNumber(const std::string& id) {
  if (id.rfind("job-", 0) != 0) return 0;
  return std::strtoll(id.c_str() + 4, nullptr, 10);
}

}  // namespace

JobService::JobService(const ServeConfig& cfg)
    : cfg_(cfg), queue_(static_cast<std::size_t>(cfg.queueCapacity)) {
  MOSAIC_CHECK(!cfg_.workDir.empty(), "serve work directory is required");
  MOSAIC_CHECK(cfg_.workers >= 1, "serve workers must be >= 1");
  MOSAIC_CHECK(cfg_.queueCapacity >= 1, "serve queue capacity must be >= 1");
  MOSAIC_CHECK(cfg_.backoffMs >= 0, "serve backoff must be >= 0");
  std::filesystem::create_directories(cfg_.workDir);
  std::filesystem::create_directories(cfg_.workDir + "/ckpt");

  // Replay before opening for append: the journal of the previous
  // incarnation is the complete recovery record.
  recoverFromJournal();
  journal_ = std::make_unique<JobJournal>(cfg_.workDir + "/journal.jsonl");

  if (!cfg_.patternCacheDir.empty()) {
    patternStore_ = std::make_unique<PatternStore>(
        PatternStoreConfig{cfg_.patternCacheDir, cfg_.patternCacheMaxBytes});
    LOG_INFO("pattern cache enabled at " << cfg_.patternCacheDir << " ("
             << patternStore_->stats().entries << " entries)");
  }

  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

JobService::~JobService() { drain(DrainMode::kCheckpoint); }

void JobService::recoverFromJournal() {
  const ReplayResult replay =
      JobJournal::replay(cfg_.workDir + "/journal.jsonl");
  if (replay.corruptLines > 0) {
    LOG_WARN("journal replay skipped " << replay.corruptLines
                                       << " corrupt line(s) (torn tail?)");
  }
  long long maxId = 0;
  for (const ReplayedJob& rj : replay.jobs) {
    maxId = std::max(maxId, jobIdNumber(rj.spec.id));
    auto job = std::make_unique<Job>();
    job->spec = rj.spec;
    job->traceId = rj.traceId != 0 ? rj.traceId : telemetry::newTraceId();
    job->attempts = rj.attempts;
    job->iterationsDone = rj.iterationsDone;
    job->objective = rj.objective;
    job->wallSeconds = rj.wallSeconds;
    job->maskHash = rj.maskHash;
    job->error = rj.error;
    const bool unfinished =
        rj.state == JobState::kQueued || rj.state == JobState::kRunning;
    if (unfinished) {
      // Submitted (and possibly started) but never terminated: the daemon
      // died or drained in checkpoint mode. Re-enqueue; the worker resumes
      // from the job's optimizer checkpoint when one exists, which is what
      // makes the recovered result bit-identical to an uninterrupted run.
      job->state = JobState::kQueued;
      job->resumable = true;
      job->recovered = true;
      ++recoveredJobs_;
      {
        telemetry::TraceScope traceScope(job->traceId);
        telemetry::flightrec::record("admit", rj.spec.id + " recovered");
      }
      queue_.forcePush(rj.spec.id);
    } else {
      // Terminal: keep the record so status/result survive restarts.
      job->state = rj.state;
    }
    jobs_.emplace(rj.spec.id, std::move(job));
  }
  nextId_.store(maxId + 1, std::memory_order_relaxed);
  if (recoveredJobs_ > 0) {
    LOG_INFO("recovered " << recoveredJobs_
                          << " unfinished job(s) from the journal");
    telemetry::metrics().counter("serve.recovered").add(
        static_cast<std::uint64_t>(recoveredJobs_));
  }
}

SubmitResult JobService::submit(JobSpec spec) {
  WallTimer admitTimer;
  MOSAIC_FAILPOINT("serve.submit");
  try {
    validateSpec(spec);
  } catch (const Error& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    telemetry::metrics().counter("serve.rejected").add();
    return {SubmitStatus::kBadRequest, "", e.what()};
  }
  if (draining()) {
    return {SubmitStatus::kShuttingDown, "", "service is draining"};
  }

  spec.id = formatJobId(nextId_.fetch_add(1, std::memory_order_relaxed));
  const std::uint64_t traceId = telemetry::newTraceId();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->traceId = traceId;
    jobs_.emplace(spec.id, std::move(job));
  }
  // WAL ordering: the submit record hits the journal before the job can
  // run, so a crash at any later point still replays it. The trace id is
  // journaled so a recovered job keeps the one assigned here.
  telemetry::JsonObject record;
  record.set("ev", "submit");
  record.set("job", spec.id);
  record.set("trace", telemetry::traceIdString(traceId));
  specToJson(spec, &record);
  journal_->append(record);
  {
    // Record the admission under the job's trace scope so the flight
    // recorder's admit event carries the same id /jobs reports.
    telemetry::TraceScope traceScope(traceId);
    telemetry::flightrec::record("admit", spec.id + " case=" + spec.caseName);
  }

  if (!queue_.tryPush(spec.id)) {
    // Roll the admission back, in the journal too, so replay forgets it.
    telemetry::JsonObject reject;
    reject.set("ev", "rejected");
    reject.set("job", spec.id);
    journal_->append(reject);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.erase(spec.id);
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    telemetry::metrics().counter("serve.rejected").add();
    telemetry::metrics().histogram("serve.admission").record(
        admitTimer.seconds() * 1e6);
    if (queue_.closed()) {
      return {SubmitStatus::kShuttingDown, "", "service is draining"};
    }
    return {SubmitStatus::kQueueFull, "",
            "queue at capacity (" + std::to_string(queue_.capacity()) + ")"};
  }

  submitted_.fetch_add(1, std::memory_order_relaxed);
  telemetry::metrics().counter("serve.submitted").add();
  telemetry::metrics().gauge("serve.queue_depth").set(
      static_cast<double>(queue_.size()));
  telemetry::metrics().histogram("serve.admission").record(
      admitTimer.seconds() * 1e6);
  return {SubmitStatus::kAccepted, spec.id, ""};
}

bool JobService::cancel(const std::string& id, std::string* message) {
  Job* job = nullptr;
  bool canceledWhileQueued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      if (message) *message = "unknown job id: " + id;
      return false;
    }
    job = it->second.get();
    if (job->state != JobState::kQueued && job->state != JobState::kRunning) {
      if (message) {
        *message = "job already terminal: " +
                   std::string(jobStateName(job->state));
      }
      return false;
    }
    job->userCanceled = true;
    job->token.cancel();
    if (job->state == JobState::kQueued && queue_.remove(id)) {
      // Still in the queue: terminate here; no worker will see it.
      job->state = JobState::kCanceled;
      job->error = "canceled while queued";
      canceledWhileQueued = true;
    }
    // Else a worker owns it (or is about to pop it) and will observe the
    // token/userCanceled flag and journal the terminal record itself.
  }
  if (canceledWhileQueued) {
    journalTerminal(*job);
    telemetry::metrics().counter("serve.canceled").add();
  }
  if (message) message->clear();
  return true;
}

bool JobService::snapshot(const std::string& id, JobSnapshot* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  if (out) *out = snapshotLocked(*it->second);
  return true;
}

std::vector<JobSnapshot> JobService::snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobSnapshot> result;
  result.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) result.push_back(snapshotLocked(*job));
  return result;
}

JobSnapshot JobService::snapshotLocked(const Job& job) const {
  JobSnapshot snap;
  snap.spec = job.spec;
  snap.state = job.state;
  snap.attempts = job.attempts;
  snap.iterationsDone = job.iterationsDone;
  snap.objective = job.objective;
  snap.wallSeconds = job.wallSeconds;
  snap.maskHash = job.maskHash;
  snap.error = job.error;
  snap.recovered = job.recovered;
  // Terminal jobs report their state as the phase, so a watcher of /jobs
  // never sees a stale "optimize" on a job that already finished.
  const bool terminal =
      job.state != JobState::kQueued && job.state != JobState::kRunning;
  snap.phase = terminal ? jobStateName(job.state) : job.phase;
  snap.traceId = telemetry::traceIdString(job.traceId);
  return snap;
}

ServiceStats JobService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      switch (job->state) {
        case JobState::kQueued:
          ++s.queued;
          break;
        case JobState::kRunning:
          ++s.running;
          break;
        case JobState::kDone:
          ++s.done;
          break;
        case JobState::kFailed:
          ++s.failed;
          break;
        case JobState::kCanceled:
          ++s.canceled;
          break;
        case JobState::kExpired:
          ++s.expired;
          break;
      }
    }
  }
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.recoveredJobs = recoveredJobs_;
  s.workers = cfg_.workers;
  s.queueCapacity = queue_.capacity();
  if (patternStore_) {
    s.cacheEnabled = true;
    s.cache = patternStore_->stats();
  }
  return s;
}

void JobService::drain(DrainMode mode) {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  if (mode == DrainMode::kCheckpoint) {
    drainCheckpoint_.store(true, std::memory_order_relaxed);
    // Queued jobs: drop them from the queue. Their journal entries have no
    // terminal record, so a restarted service re-enqueues every one.
    queue_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        // Running jobs stop at their next optimizer iteration; the
        // optimizer writes a final checkpoint before unwinding.
        job->token.cancel();
      }
      if (job->state == JobState::kQueued) job->resumable = true;
    }
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::string JobService::checkpointPath(const std::string& id) const {
  return cfg_.workDir + "/ckpt/" + id + ".ckpt";
}

void JobService::journalTerminal(const Job& job) {
  telemetry::JsonObject record;
  std::string state;
  int iterations = 0;
  double objective = 0.0;
  double wallMs = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state = jobStateName(job.state);
    iterations = job.iterationsDone;
    objective = job.objective;
    wallMs = job.wallSeconds * 1e3;
    record.set("ev", state);
    record.set("job", job.spec.id);
    record.set("attempts", job.attempts);
    record.set("iterations", job.iterationsDone);
    record.set("objective", job.objective);
    record.set("wall_s", job.wallSeconds);
    if (!job.maskHash.empty()) record.set("mask_hash", job.maskHash);
    if (!job.error.empty()) record.set("error", job.error);
  }
  journal_->append(record);
  // Every terminal transition funnels through here, so this is the single
  // point that closes the job's progress stream and annotates the flight
  // recorder with the final state.
  telemetry::flightrec::record("state", job.spec.id + " -> " + state);
  progress_.publishTerminal(job.spec.id, state, iterations, objective, wallMs);
}

const LithoSimulator& JobService::simulatorFor(
    int pixelNm, std::unique_ptr<LithoSimulator>* cold) {
  OpticsConfig optics;
  optics.pixelNm = pixelNm;
  if (!cfg_.reuseSimulators) {
    // Cold path (bm_serve's baseline): every job pays the kernel
    // eigendecomposition again.
    *cold = std::make_unique<LithoSimulator>(optics);
    return **cold;
  }
  std::lock_guard<std::mutex> lock(simMutex_);
  auto it = warmSims_.find(pixelNm);
  if (it == warmSims_.end()) {
    auto sim = std::make_unique<LithoSimulator>(optics);
    // Pre-warm the kernel sets for every focus the optimizer will touch,
    // so later jobs at this pixel size reuse them lock-free through the
    // simulator's const (thread-safe) interface.
    const IltConfig cfg =
        defaultIltConfig(OpcMethod::kMosaicFast, pixelNm);
    std::vector<double> focuses{nominalCorner().focusNm};
    for (const ProcessCorner& corner : cfg.pvbCorners) {
      focuses.push_back(corner.focusNm);
    }
    sim->warmKernels(focuses);
    it = warmSims_.emplace(pixelNm, std::move(sim)).first;
  }
  return *it->second;
}

void JobService::workerLoop() {
  std::string id;
  while (queue_.pop(&id)) {
    Job* job = nullptr;
    bool skipCanceled = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;  // rejected + erased in a race
      job = it->second.get();
      if (job->userCanceled) {
        job->state = JobState::kCanceled;
        if (job->error.empty()) job->error = "canceled while queued";
        skipCanceled = true;
      }
    }
    if (skipCanceled) {
      journalTerminal(*job);
      telemetry::metrics().counter("serve.canceled").add();
      continue;
    }
    if (drainCheckpoint_.load(std::memory_order_relaxed)) {
      // Popped during a checkpoint drain: leave it queued-and-unterminated
      // for the next incarnation.
      std::lock_guard<std::mutex> lock(mutex_);
      job->state = JobState::kQueued;
      job->resumable = true;
      continue;
    }
    telemetry::metrics().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.size()));
    runJob(*job);
  }
  // Worker is exiting (shutdown/drain): run the registered worker
  // teardown hooks — dropping its thread-local scratch grids, which would
  // otherwise pin up to 6 full-size grids per dead worker thread (visible
  // on the scratch.resident_bytes gauge).
  runWorkerTeardowns();
}

void JobService::runJob(Job& job) {
  WallTimer jobTimer;
  // Install the job's trace context on this worker for the whole run:
  // spans, run-log records and flight-recorder events emitted below all
  // pick it up implicitly (trace.hpp).
  telemetry::TraceScope traceScope(job.traceId);
  bool resumeAllowed = false;
  int startAttempt = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = JobState::kRunning;
    job.phase = "starting";
    resumeAllowed = job.resumable;
    startAttempt = job.attempts + 1;
  }
  telemetry::flightrec::record("state", job.spec.id + " -> running");
  // The deadline clock starts when the job first runs (not at submission:
  // queue wait is the service's fault, not the client's budget).
  if (job.spec.deadlineSeconds > 0.0 && !job.token.expired()) {
    job.token.setDeadlineIn(job.spec.deadlineSeconds);
  }
  const std::string ckpt = checkpointPath(job.spec.id);

  // Maps a token-initiated stop to its terminal state (or to "leave
  // unterminated" during a checkpoint drain). Returns true when the job is
  // fully handled and the worker should move on.
  const auto finishStopped = [&](int iterationsDone) {
    bool drainLeave = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.iterationsDone = iterationsDone;
      job.wallSeconds = jobTimer.seconds();
      if (drainCheckpoint_.load(std::memory_order_relaxed) &&
          !job.userCanceled) {
        job.state = JobState::kQueued;  // resumes on restart
        job.resumable = true;
        drainLeave = true;
      } else if (job.userCanceled || job.token.canceled()) {
        job.state = JobState::kCanceled;
        job.error = "canceled by client";
      } else {
        job.state = JobState::kExpired;
        job.error = "deadline_exceeded after " +
                    std::to_string(job.spec.deadlineSeconds) + " s";
      }
    }
    if (drainLeave) return;
    journalTerminal(job);
    telemetry::metrics()
        .counter(job.state == JobState::kCanceled ? "serve.canceled"
                                                  : "serve.expired")
        .add();
  };

  const int allowedAttempts = std::max(job.spec.maxAttempts, startAttempt);
  for (int attempt = startAttempt; attempt <= allowedAttempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.attempts = attempt;
    }
    telemetry::JsonObject start;
    start.set("ev", "start");
    start.set("job", job.spec.id);
    start.set("attempt", attempt);
    journal_->append(start);

    try {
      // Retryable-fault site: tests arm serve.worker:throw to exercise the
      // retry/backoff path deterministically.
      MOSAIC_FAILPOINT("serve.worker");
      const Layout layout = buildJobLayout(job.spec.caseName);
      std::unique_ptr<LithoSimulator> coldSim;
      const LithoSimulator& sim = simulatorFor(job.spec.pixelNm, &coldSim);
      const BitGrid target = rasterize(layout, job.spec.pixelNm);
      const OpcMethod method = methodFromName(job.spec.method);
      IltConfig cfg = defaultIltConfig(method, job.spec.pixelNm);
      if (job.spec.iterations > 0) cfg.maxIterations = job.spec.iterations;

      // Pattern-library consult: the whole clip is the "core" (jobs have
      // no halo). An exact hit finishes the job without optimizing; a
      // translated/near hit becomes a warm start on a quarter budget.
      TileFingerprint fp;
      RealGrid warmMask;
      bool haveFingerprint = false;
      if (patternStore_) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          job.phase = "cache_lookup";
        }
        const RectNm clipCore{0, 0, layout.sizeNm, layout.sizeNm};
        fp = fingerprintWindow(
            layout, clipCore, job.spec.pixelNm,
            solverConfigDigest(sim.optics(), cfg, static_cast<int>(method),
                               layout.sizeNm, job.spec.pixelNm));
        haveFingerprint = true;
        CacheLookup hit = patternStore_->lookup(fp);
        if (hit.kind != CacheHitKind::kMiss &&
            (hit.solution.mask.rows() != target.rows() ||
             hit.solution.mask.cols() != target.cols())) {
          hit.kind = CacheHitKind::kMiss;  // foreign-shape entry; distrust
        }
        if (hit.kind == CacheHitKind::kExact) {
          const std::string hash = maskHashHex(hit.solution.mask);
          {
            std::lock_guard<std::mutex> lock(mutex_);
            job.state = JobState::kDone;
            job.maskHash = hash;
            job.iterationsDone = 0;
            job.objective = hit.solution.objective;
            job.wallSeconds = jobTimer.seconds();
            job.error.clear();
          }
          std::remove(ckpt.c_str());
          journalTerminal(job);
          telemetry::metrics().counter("serve.completed").add();
          telemetry::metrics().histogram("serve.job_wall").record(
              jobTimer.seconds() * 1e6);
          return;
        }
        if (hit.kind != CacheHitKind::kMiss) {
          warmMask = shiftMask(hit.solution.mask, hit.shiftPxRow,
                               hit.shiftPxCol, cfg.maskLow);
          cfg.maxIterations = std::max(2, cfg.maxIterations / 4);
        }
      }

      OptimizeOptions opt;
      opt.checkpointPath = ckpt;
      opt.checkpointEvery = job.spec.checkpointEvery;
      if (resumeAllowed && std::ifstream(ckpt).good()) opt.resumePath = ckpt;
      opt.cancel = &job.token;
      opt.runLog = cfg_.runLog;
      opt.runLogScope = job.spec.id;
      opt.warmStartMask = std::move(warmMask);
      // Per-iteration streaming: refresh the job's live fields (status op,
      // GET /jobs) and publish to any watch subscribers. Bounded-buffer
      // publish only — a stalled watcher can never slow this worker.
      opt.progressSink = [this, &job](const IterationRecord& r) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          job.iterationsDone = r.iteration;
          job.objective = r.objective;
        }
        ProgressEvent event;
        event.job = job.spec.id;
        event.seq = progress_.nextSeq(job.spec.id);
        event.iteration = r.iteration;
        event.objective = r.objective;
        event.fTarget = r.targetTerm;
        event.fPvb = r.pvbTerm;
        event.gradRms = r.rmsGradient;
        event.wallMs = r.wallMs;
        progress_.publish(event);
      };

      {
        std::lock_guard<std::mutex> lock(mutex_);
        job.phase = "optimize";
      }
      const OpcResult res =
          runOpc(sim, target, method, &cfg, {}, {}, opt);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job.phase = "finalize";
      }
      // Simulated-kill site: fires after the work (and its checkpoints)
      // but before the terminal journal record — exactly the window a real
      // SIGKILL would hit. The catch below recognizes it and makes the
      // worker vanish without journaling, so the journal looks like a
      // crashed daemon's.
      MOSAIC_FAILPOINT("serve.crash");

      if (res.stopReason == StopReason::kCanceled) {
        finishStopped(res.iterations);
        return;
      }

      if (patternStore_ && haveFingerprint &&
          res.stopReason != StopReason::kDeadline) {
        CachedSolution sol;
        sol.mask = res.maskTwoLevel;
        sol.iterations = res.iterations;
        sol.objective =
            res.history.empty() ? 0.0 : res.history.back().objective;
        patternStore_->insert(fp, sol);
      }

      const std::string hash = maskHashHex(res.maskTwoLevel);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job.state = JobState::kDone;
        job.maskHash = hash;
        job.iterationsDone = res.iterations;
        job.objective =
            res.history.empty() ? 0.0 : res.history.back().objective;
        job.wallSeconds = jobTimer.seconds();
        job.error.clear();
      }
      // A finished job must not leave resume state behind: a stale
      // checkpoint would poison a future job that reuses the id space.
      std::remove(ckpt.c_str());
      journalTerminal(job);
      telemetry::metrics().counter("serve.completed").add();
      telemetry::metrics().histogram("serve.job_wall").record(
          jobTimer.seconds() * 1e6);
      return;
    } catch (const CheckpointError& e) {
      // The resume checkpoint is unusable (torn write, version skew):
      // restart the job from scratch instead of failing it, and do not
      // burn an attempt — corrupt-resume detection is not an optimization
      // failure.
      LOG_WARN("job " << job.spec.id << " checkpoint unusable: " << e.what()
                      << "; restarting clean");
      resumeAllowed = false;
      std::remove(ckpt.c_str());
      --attempt;
    } catch (const std::exception& e) {
      const std::string what = e.what();
      if (what.find("serve.crash") != std::string::npos) {
        // Simulated process death (see above): leave no trace, as SIGKILL
        // would. The restarted service's replay re-runs the job.
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job.error = what;
      }
      if (job.token.stopRequested()) {
        // A cancel/deadline arrived while the attempt was failing: the
        // stop wins over the retry.
        finishStopped(0);
        return;
      }
      if (attempt < allowedAttempts) {
        LOG_WARN("job " << job.spec.id << " attempt " << attempt
                        << " failed: " << what << "; retrying");
        retries_.fetch_add(1, std::memory_order_relaxed);
        telemetry::metrics().counter("serve.retries").add();
        telemetry::flightrec::record(
            "retry", job.spec.id + " attempt=" + std::to_string(attempt));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.backoffMs * attempt));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = JobState::kFailed;
    job.wallSeconds = jobTimer.seconds();
    if (job.error.empty()) job.error = "all attempts failed";
  }
  journalTerminal(job);
  telemetry::metrics().counter("serve.failed").add();
}

}  // namespace serve
}  // namespace mosaic
