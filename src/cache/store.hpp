#pragma once
/// \file store.hpp
/// Persistent pattern-library store: solved tile masks keyed by
/// TileFingerprint (docs/caching.md).
///
/// On disk, one entry is one versioned binary file `pat_<key>.bin` in the
/// store directory: a header carrying the full fingerprint and solution
/// metadata, a CRC-32 of the mask payload, then the mask doubles. Files
/// are published atomically (written to a sibling temp file, then
/// renamed), so concurrent readers — including other processes sharing
/// the directory — never observe a torn entry. Anything that fails
/// validation on read (bad magic, version skew, CRC mismatch, truncation,
/// trailing bytes) is moved into a `quarantine/` subdirectory and the
/// lookup reports a miss, so the caller recomputes and the poisoned file
/// never resurfaces: the same hardened-checkpoint discipline as
/// opc/checkpoint.cpp.
///
/// In memory, the store keeps only an index (fingerprints, paths, sizes,
/// LRU stamps) sharded over independently locked maps; masks live on disk
/// and are read per hit, so memory stays bounded no matter how large the
/// library grows. A byte-size cap evicts least-recently-used entries.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/fingerprint.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// One solved mask plus the provenance the scheduler wants back.
struct CachedSolution {
  RealGrid mask;  ///< two-level mask on the window grid
  int iterations = 0;     ///< iterations the original solve spent
  double objective = 0.0;  ///< best objective the original solve reached
};

/// What a lookup found.
enum class CacheHitKind {
  kMiss,        ///< nothing usable; optimize from scratch and insert
  kExact,       ///< same problem, same placement: paste the mask verbatim
  kTranslated,  ///< same problem shifted by whole pixels: warm-start from
                ///< the shifted mask
  kNearMiss,    ///< same core, different halo: warm-start from the mask
};

[[nodiscard]] const char* cacheHitKindName(CacheHitKind kind);

struct CacheLookup {
  CacheHitKind kind = CacheHitKind::kMiss;
  CachedSolution solution;  ///< valid unless kind == kMiss
  /// Pixel shift that maps the cached mask into the query's frame (apply
  /// with shiftMask). Zero for kExact by definition.
  int shiftPxRow = 0;
  int shiftPxCol = 0;
};

struct PatternStoreConfig {
  std::string dir;  ///< store directory (created if absent). Required.
  /// Byte cap on the sum of entry files; exceeding it evicts LRU entries.
  /// 0 = unlimited.
  long long maxBytes = 512ll << 20;
};

/// Point-in-time store counters (process-lifetime; the same numbers feed
/// the cache.* metrics).
struct PatternStoreStats {
  long long entries = 0;
  long long bytes = 0;
  std::uint64_t exactHits = 0;
  std::uint64_t translatedHits = 0;
  std::uint64_t nearMissHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t quarantined = 0;

  [[nodiscard]] std::uint64_t hits() const {
    return exactHits + translatedHits + nearMissHits;
  }
  [[nodiscard]] double hitRate() const {
    const std::uint64_t total = hits() + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
  }
};

/// Concurrent, persistent fingerprint -> solved-mask store.
class PatternStore {
 public:
  /// Opens (and if needed creates) the store directory and indexes every
  /// valid entry already present; corrupt files found during the scan are
  /// quarantined immediately.
  explicit PatternStore(const PatternStoreConfig& cfg);

  PatternStore(const PatternStore&) = delete;
  PatternStore& operator=(const PatternStore&) = delete;

  /// Find the best available solution for a fingerprint: exact key match
  /// first (same placement, then translated), near-miss (same core +
  /// config, different halo) second. Reads the mask from disk; a file
  /// that fails validation is quarantined and the next-best candidate (or
  /// a miss) is returned. Thread-safe.
  [[nodiscard]] CacheLookup lookup(const TileFingerprint& fp);

  /// Publish a solved mask under a fingerprint. Returns false when an
  /// entry with the same key already exists (first solve wins — the entry
  /// is deterministic, so overwriting buys nothing). Thread-safe.
  bool insert(const TileFingerprint& fp, const CachedSolution& solution);

  [[nodiscard]] PatternStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return cfg_.dir; }

  /// Serialization format version (bumped on any layout change; old files
  /// quarantine on sight rather than being migrated).
  static constexpr std::uint32_t kFormatVersion = 1;

 private:
  struct Entry {
    TileFingerprint fp;
    std::string path;
    long long bytes = 0;
    std::uint64_t lastTouch = 0;
  };
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, Entry> entries;  ///< by TileFingerprint::combined
    /// (coreHash ^ configHash) -> combined keys, for near-miss lookup.
    std::multimap<std::uint64_t, std::uint64_t> byCore;
  };

  [[nodiscard]] Shard& shardFor(std::uint64_t combinedKey) {
    return shards_[combinedKey % kShards];
  }
  [[nodiscard]] static std::uint64_t coreIndexKey(const TileFingerprint& fp);
  void indexEntry(const Entry& entry);
  /// Drop an entry from the index and move its file to quarantine/.
  void quarantineEntry(std::uint64_t combinedKey, const std::string& path);
  void removeFromIndexLocked(Shard& shard, std::uint64_t combinedKey);
  void evictToCap();
  void scanDirectory();

  PatternStoreConfig cfg_;
  std::array<Shard, kShards> shards_;
  std::mutex evictMutex_;  ///< serializes LRU victim selection
  std::atomic<long long> totalBytes_{0};
  std::atomic<std::uint64_t> clock_{1};
  std::atomic<std::uint64_t> tmpCounter_{0};

  std::atomic<std::uint64_t> exactHits_{0};
  std::atomic<std::uint64_t> translatedHits_{0};
  std::atomic<std::uint64_t> nearMissHits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> quarantined_{0};
};

/// Translate a mask by whole pixels, filling vacated cells with `fill`
/// (the mask background level). Positive shifts move content toward
/// higher rows/columns.
[[nodiscard]] RealGrid shiftMask(const RealGrid& mask, int dRow, int dCol,
                                 double fill);

}  // namespace mosaic
