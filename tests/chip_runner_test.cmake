# Integration test for `mosaic_cli chip` (full-chip tiling engine).
#
# Run 1: a clean 2x2 replicated chip with 512 nm tiles must exit 0 and
# print a per-tile table plus the seam-consistency summary.
#
# Run 2: fail-point hits on `tile.optimize` are counted globally across
# tiles and attempts. With --threads 1 the schedule is serial, so arming
# hits 1 and 2 with --retries 1 makes the first non-empty tile fail both
# attempts and fall back to its uncorrected pattern: the run must exit
# with the degraded code (2) and report a FALLBACK row, but still stitch.
#
# Invoke with:
#   cmake -DMOSAIC_CLI=<path> -DWORK_DIR=<scratch dir> -P chip_runner_test.cmake

if(NOT DEFINED MOSAIC_CLI)
  message(FATAL_ERROR "pass -DMOSAIC_CLI=<path to mosaic_cli>")
endif()
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch dir>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${MOSAIC_CLI} chip --case 1 --replicate 2 --tile-size 512
          --halo 128 --pixel 16 --iters 2 --threads 2
          --kernel-cache ${WORK_DIR}/kernels
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "expected clean chip run to exit 0, got '${code}'\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
foreach(needle "tiles ok" "seam consistency" "0 non-finite")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in chip report:\n${out}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "MOSAIC_FAILPOINTS=tile.optimize:throw@iter=1,tile.optimize:throw@iter=2"
          ${MOSAIC_CLI} chip --case 1 --replicate 2 --tile-size 512
          --halo 128 --pixel 16 --iters 2 --threads 1 --retries 1
          --backoff-ms 1 --kernel-cache ${WORK_DIR}/kernels
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 2)
  message(FATAL_ERROR
    "expected degraded chip run to exit 2, got '${code}'\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
string(FIND "${out}" "FALLBACK" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected a FALLBACK row in the chip report:\n${out}")
endif()
string(FIND "${out}" "seam consistency" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "degraded run must still stitch and report:\n${out}")
endif()
