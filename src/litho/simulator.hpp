#pragma once
/// \file simulator.hpp
/// Forward lithography engine (paper Sec. 2, Fig. 1): mask -> aerial image
/// (SOCS) -> printed image (resist model), for any process corner. Kernel
/// sets are computed lazily per focus value and cached.

#include <map>
#include <memory>

#include "litho/kernels.hpp"
#include "litho/optics.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// Forward lithography simulator.
///
/// The expensive part of a simulation is the per-kernel inverse FFT; when
/// evaluating several corners of the same mask, compute the mask spectrum
/// once via maskSpectrum() and reuse it.
class LithoSimulator {
 public:
  explicit LithoSimulator(OpticsConfig optics, ResistModel resist = {});

  [[nodiscard]] const OpticsConfig& optics() const { return optics_; }
  [[nodiscard]] const ResistModel& resist() const { return resist_; }
  [[nodiscard]] int gridSize() const { return optics_.gridSize(); }

  /// Directory for on-disk kernel caching (io/kernel_cache format). When
  /// set, kernels(focus) first tries to load the cached decomposition and
  /// persists freshly computed ones. Empty (default) disables it. Note:
  /// the cache key covers grid size and focus only -- wipe the directory
  /// when changing source/NA/aberrations.
  void setKernelCacheDir(std::string dir) { cacheDir_ = std::move(dir); }

  /// Kernel set for a focus offset (computed on first use, then cached).
  const KernelSet& kernels(double focusNm) const;

  /// Forward FFT of a real mask.
  [[nodiscard]] ComplexGrid maskSpectrum(const RealGrid& mask) const;

  /// Aerial image I = dose * sum_k w_k |M (x) h_k|^2 (Eq. 2).
  /// \param maxKernels 0 = use all kernels; otherwise truncate the SOCS sum
  ///        (used by the optimizer's cheaper in-loop model).
  [[nodiscard]] RealGrid aerial(const RealGrid& mask,
                                const ProcessCorner& corner,
                                int maxKernels = 0) const;

  /// Same, starting from a precomputed mask spectrum.
  [[nodiscard]] RealGrid aerialFromSpectrum(const ComplexGrid& spectrum,
                                            const ProcessCorner& corner,
                                            int maxKernels = 0) const;

  /// Continuous printed image Z = sig(I) (Eq. 4).
  [[nodiscard]] RealGrid printContinuous(const RealGrid& aerialImage) const;

  /// Binary printed image via the hard threshold (Eq. 3).
  [[nodiscard]] BitGrid printBinary(const RealGrid& aerialImage) const;

  /// Convenience: mask -> binary print at a corner with the full kernel set.
  [[nodiscard]] BitGrid print(const RealGrid& mask,
                              const ProcessCorner& corner) const;

 private:
  OpticsConfig optics_;
  ResistModel resist_;
  std::string cacheDir_;
  mutable std::map<double, std::unique_ptr<KernelSet>> kernelCache_;
};

}  // namespace mosaic
