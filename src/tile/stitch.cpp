#include "tile/stitch.hpp"

#include <algorithm>
#include <cmath>

#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

/// Iterate over the chip-grid pixels covered by a tile window, invoking
/// visit(chipRow, chipCol, windowRow, windowCol). Window pixels hanging
/// off the chip are skipped.
template <typename Visitor>
void forEachWindowPixel(const ChipPartition& part, const TilePlan& tile,
                        Visitor&& visit) {
  const int px = part.pixelNm;
  const int chipGrid = part.chipGrid();
  const int windowGrid = part.windowGrid();
  const int c0 = tile.windowNm.x0 / px;  // window origin in chip pixels
  const int r0 = tile.windowNm.y0 / px;
  const int rLo = std::max(0, -r0);
  const int rHi = std::min(windowGrid, chipGrid - r0);
  const int cLo = std::max(0, -c0);
  const int cHi = std::min(windowGrid, chipGrid - c0);
  for (int wr = rLo; wr < rHi; ++wr) {
    for (int wc = cLo; wc < cHi; ++wc) {
      visit(r0 + wr, c0 + wc, wr, wc);
    }
  }
}

/// Per-axis blend ramp: full weight inside the core span [lo, hi), linear
/// decay to zero at blendNm outside it. Keeping the ramp no wider than the
/// optical interaction radius confines cross-tile mixing to a narrow band
/// around each core boundary — outside it the stitched mask is exactly the
/// owning tile's solution, which is where that tile optimized with full
/// context.
double rampAxis(double centerNm, int lo, int hi, double blendNm) {
  if (centerNm < lo) return std::max(0.0, 1.0 - (lo - centerNm) / blendNm);
  if (centerNm >= hi) return std::max(0.0, 1.0 - (centerNm - hi) / blendNm);
  return 1.0;
}

/// Separable core-distance weight of a tile at a chip pixel center.
double blendWeight(const TilePlan& tile, double xNm, double yNm,
                   double blendNm) {
  return rampAxis(xNm, tile.coreNm.x0, tile.coreNm.x1, blendNm) *
         rampAxis(yNm, tile.coreNm.y0, tile.coreNm.y1, blendNm);
}

}  // namespace

BitGrid seamBand(const ChipPartition& part) {
  const int n = part.chipGrid();
  Grid<int> blended(n, n, 0);
  for (const TilePlan& tile : part.tiles) {
    forEachWindowPixel(part, tile, [&](int r, int c, int, int) {
      if (blendWeight(tile, (c + 0.5) * part.pixelNm,
                      (r + 0.5) * part.pixelNm, part.blendNm) > 0.0) {
        blended(r, c) += 1;
      }
    });
  }
  BitGrid band(n, n, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      band(r, c) = blended(r, c) >= 2 ? 1u : 0u;
    }
  }
  return band;
}

StitchResult stitchTiles(const ChipPartition& part,
                         const std::vector<RealGrid>& tileMasks,
                         double binarizeThreshold) {
  MOSAIC_SPAN("tile.stitch");
  MOSAIC_CHECK(tileMasks.size() == part.tiles.size(),
               "stitch: " << tileMasks.size() << " masks for "
                          << part.tiles.size() << " tiles");
  const int windowGrid = part.windowGrid();
  for (std::size_t i = 0; i < tileMasks.size(); ++i) {
    MOSAIC_CHECK(tileMasks[i].rows() == windowGrid &&
                     tileMasks[i].cols() == windowGrid,
                 "stitch: tile " << i << " mask is " << tileMasks[i].rows()
                                 << "x" << tileMasks[i].cols()
                                 << ", expected " << windowGrid << "x"
                                 << windowGrid);
  }

  const int n = part.chipGrid();
  RealGrid weighted(n, n, 0.0);
  RealGrid weightSum(n, n, 0.0);
  Grid<int> coverage(n, n, 0);
  // Track binary agreement across tiles that actually contribute to the
  // blend (positive stitch weight): the first contributor to a pixel
  // records its vote; later contributors mark the pixel on mismatch.
  // Zero-weight window coverage is deliberately excluded -- deep-halo mask
  // detail exists only as optimizer context and legitimately diverges.
  Grid<signed char> firstVote(n, n, -1);
  BitGrid disagrees(n, n, 0);

  for (std::size_t i = 0; i < part.tiles.size(); ++i) {
    const TilePlan& tile = part.tiles[i];
    const RealGrid& mask = tileMasks[i];
    forEachWindowPixel(part, tile, [&](int r, int c, int wr, int wc) {
      const double value = mask(wr, wc);
      const double w = blendWeight(tile, (c + 0.5) * part.pixelNm,
                                   (r + 0.5) * part.pixelNm, part.blendNm);
      if (w <= 0.0) return;  // context-only halo pixel for this tile
      weighted(r, c) += w * value;
      weightSum(r, c) += w;
      coverage(r, c) += 1;
      const signed char vote = value > binarizeThreshold ? 1 : 0;
      if (firstVote(r, c) < 0) {
        firstVote(r, c) = vote;
      } else if (firstVote(r, c) != vote) {
        disagrees(r, c) = 1;
      }
    });
  }

  StitchResult result;
  result.maskContinuous = RealGrid(n, n, 0.0);
  result.maskBinary = BitGrid(n, n, 0);
  SeamReport& report = result.report;

  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const int cov = coverage(r, c);
      report.maxCoverage = std::max(report.maxCoverage, cov);
      if (cov >= 2) {
        report.overlapPixels += 1;
        if (disagrees(r, c)) report.disagreeingPixels += 1;
      }
      // Every chip pixel lies in at least its owning tile's core, so
      // coverage >= 1 and the weight sum is positive.
      MOSAIC_CHECK(cov >= 1 && weightSum(r, c) > 0.0,
                   "stitch: chip pixel (" << r << "," << c
                                          << ") not covered by any tile");
      const double value = weighted(r, c) / weightSum(r, c);
      result.maskContinuous(r, c) = value;
      if (!std::isfinite(value)) {
        report.nonFinitePixels += 1;
        continue;  // leave the binary pixel clear
      }
      result.maskBinary(r, c) = value > binarizeThreshold ? 1u : 0u;
    }
  }
  report.disagreementFraction =
      report.overlapPixels == 0
          ? 0.0
          : static_cast<double>(report.disagreeingPixels) /
                static_cast<double>(report.overlapPixels);

  // Core-consistency pass: inside each tile's core, the stitched binary
  // should match the tile's own solution unless a neighbor's blended
  // contribution flipped the pixel.
  for (std::size_t i = 0; i < part.tiles.size(); ++i) {
    const TilePlan& tile = part.tiles[i];
    const RealGrid& mask = tileMasks[i];
    const int px = part.pixelNm;
    const RectNm& core = tile.coreNm;
    forEachWindowPixel(part, tile, [&](int r, int c, int wr, int wc) {
      const int chipX = c * px;
      const int chipY = r * px;
      if (chipX < core.x0 || chipX >= core.x1 || chipY < core.y0 ||
          chipY >= core.y1) {
        return;  // halo pixel, owned by a neighbor
      }
      const unsigned char own = mask(wr, wc) > binarizeThreshold ? 1u : 0u;
      if (own != result.maskBinary(r, c)) report.coreMismatchPixels += 1;
    });
  }
  return result;
}

}  // namespace mosaic
