#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace mosaic {
namespace {

std::atomic<int> g_workers{0};  // 0 == hardware default

/// Set while a thread executes a parallelFor body; nested calls see it and
/// degrade to serial execution instead of spawning a second tree of
/// threads (see parallel.hpp).
thread_local bool t_inParallelRegion = false;

struct RegionGuard {
  bool previous;
  RegionGuard() : previous(t_inParallelRegion) { t_inParallelRegion = true; }
  ~RegionGuard() { t_inParallelRegion = previous; }
};

std::mutex& teardownMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<void (*)()>& teardownHooks() {
  static std::vector<void (*)()> hooks;
  return hooks;
}

int resolveWorkers() {
  const int requested = g_workers.load();
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int hardwareParallelism() { return resolveWorkers(); }

void setParallelism(int workers) {
  MOSAIC_CHECK(workers >= 0, "worker count must be >= 0");
  g_workers.store(workers);
}

bool inParallelRegion() { return t_inParallelRegion; }

void registerWorkerTeardown(void (*hook)()) {
  std::lock_guard<std::mutex> lock(teardownMutex());
  teardownHooks().push_back(hook);
}

void runWorkerTeardowns() {
  std::vector<void (*)()> hooks;
  {
    std::lock_guard<std::mutex> lock(teardownMutex());
    hooks = teardownHooks();
  }
  for (void (*hook)() : hooks) hook();
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const int workers = t_inParallelRegion
                          ? 1  // nested call: run serially on this worker
                          : std::min<std::size_t>(resolveWorkers(), n);
  if (workers <= 1) {
    RegionGuard region;
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const std::size_t chunk = std::max<std::size_t>(1, n / (4 * workers));

  auto worker = [&] {
    RegionGuard region;
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) {
    // Spawned workers tear down their thread-locals before exiting (the
    // scratch pool otherwise pins cached grids per dead thread). The
    // calling thread keeps its state — it outlives the loop.
    threads.emplace_back([&worker] {
      worker();
      runWorkerTeardowns();
    });
  }
  worker();
  for (auto& thread : threads) thread.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace mosaic
