#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace mosaic {

void TextTable::setHeader(std::vector<std::string> header) {
  MOSAIC_CHECK(!header.empty(), "header must have at least one column");
  header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
  MOSAIC_CHECK(row.size() == header_.size(),
               "row has " << row.size() << " cells, expected "
                          << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::integer(long long value) {
  return std::to_string(value);
}

std::string TextTable::render() const {
  MOSAIC_CHECK(!header_.empty(), "table has no header");
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << std::right << row[c];
    }
    os << "\n";
  };
  emitRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

}  // namespace mosaic
