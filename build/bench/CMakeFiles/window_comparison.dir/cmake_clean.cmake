file(REMOVE_RECURSE
  "CMakeFiles/window_comparison.dir/window_comparison.cpp.o"
  "CMakeFiles/window_comparison.dir/window_comparison.cpp.o.d"
  "window_comparison"
  "window_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
