#include "math/convolution.hpp"

#include <vector>

#include "math/scratch.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {

ComplexGrid multiplySpectra(const ComplexGrid& a, const ComplexGrid& b) {
  ComplexGrid out = a;
  multiplySpectraInPlace(out, b);
  return out;
}

void multiplySpectraInPlace(ComplexGrid& a, const ComplexGrid& b) {
  MOSAIC_CHECK(a.sameShape(b), "spectrum shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] *= b.data()[i];
}

ComplexGrid flippedSpectrum(const ComplexGrid& s) {
  const int rows = s.rows();
  const int cols = s.cols();
  ComplexGrid out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const int fr = (rows - r) % rows;
    for (int c = 0; c < cols; ++c) {
      const int fc = (cols - c) % cols;
      out(r, c) = s(fr, fc);
    }
  }
  return out;
}

ComplexGrid conjugateSpectrum(const ComplexGrid& s) {
  ComplexGrid out(s.rows(), s.cols());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out.data()[i] = std::conj(s.data()[i]);
  }
  return out;
}

ComplexGrid cyclicConvolve(const ComplexGrid& a, const ComplexGrid& b) {
  MOSAIC_CHECK(a.sameShape(b), "convolution operand shape mismatch");
  const Fft2d& fft = fft2dFor(a.rows(), a.cols());
  ComplexGrid fa = a;
  scratch::ComplexLease fb(a.rows(), a.cols());
  *fb = b;
  fft.forward(fa);
  fft.forward(*fb);
  multiplySpectraInPlace(fa, *fb);
  fft.inverse(fa);
  return fa;
}

ComplexGrid directCyclicConvolve(const ComplexGrid& a, const ComplexGrid& b) {
  MOSAIC_CHECK(a.sameShape(b), "convolution operand shape mismatch");
  const int rows = a.rows();
  const int cols = a.cols();
  ComplexGrid out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      std::complex<double> acc{0.0, 0.0};
      // tr/tc are already in [0, rows/cols), so r - tr + rows stays
      // positive and the remainder is the cyclic index.
      for (int tr = 0; tr < rows; ++tr) {
        const int br = (r - tr + rows) % rows;
        for (int tc = 0; tc < cols; ++tc) {
          const int bc = (c - tc + cols) % cols;
          acc += a(tr, tc) * b(br, bc);
        }
      }
      out(r, c) = acc;
    }
  }
  return out;
}

ComplexGrid convolveWithSpectrum(const ComplexGrid& signal,
                                 const ComplexGrid& kernelSpectrum) {
  MOSAIC_CHECK(signal.sameShape(kernelSpectrum),
               "signal/kernel spectrum shape mismatch");
  MOSAIC_SPAN("conv.spectrum");
  const Fft2d& fft = fft2dFor(signal.rows(), signal.cols());
  ComplexGrid out = signal;
  fft.forward(out);
  multiplySpectraInPlace(out, kernelSpectrum);
  fft.inverse(out);
  return out;
}

ComplexGrid convolveSpectrumWithSpectrum(const ComplexGrid& signalSpectrum,
                                         const ComplexGrid& kernelSpectrum) {
  const Fft2d& fft = fft2dFor(signalSpectrum.rows(), signalSpectrum.cols());
  ComplexGrid out = multiplySpectra(signalSpectrum, kernelSpectrum);
  fft.inverse(out);
  return out;
}

RealGrid gaussianBlur(const RealGrid& grid, double sigmaPx) {
  if (sigmaPx <= 0.0) return grid;
  MOSAIC_SPAN("conv.gaussian_blur");
  const int rows = grid.rows();
  const int cols = grid.cols();
  const Fft2d& fft = fft2dFor(rows, cols);
  scratch::ComplexLease lease(rows, cols);
  ComplexGrid& spectrum = *lease;
  fft.forwardRealInto(grid, spectrum);

  // exp(-2 pi^2 sigma^2 |f|^2) separates into per-axis factors. Signed
  // frequency convention: index k maps to k/n for k < ceil(n/2) and to
  // (k - n)/n above, so the Nyquist bin of an even size is -1/2 (for this
  // even multiplier +1/2 would give the same value, but the convention is
  // pinned here and tested so asymmetric multipliers can't regress it).
  constexpr double kTwoPiSq = 2.0 * 3.14159265358979323846 *
                              3.14159265358979323846;
  const double k = kTwoPiSq * sigmaPx * sigmaPx;
  auto axisFactors = [k](int n) {
    std::vector<double> f(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double fi = (i < (n + 1) / 2 ? i : i - n) / static_cast<double>(n);
      f[static_cast<std::size_t>(i)] = std::exp(-k * fi * fi);
    }
    return f;
  };
  const std::vector<double> rowFactor = axisFactors(rows);
  const std::vector<double> colFactor = axisFactors(cols);
  for (int r = 0; r < rows; ++r) {
    const double fr = rowFactor[static_cast<std::size_t>(r)];
    std::complex<double>* row = spectrum.rowPtr(r);
    for (int c = 0; c < cols; ++c) {
      row[c] *= fr * colFactor[static_cast<std::size_t>(c)];
    }
  }

  RealGrid out(rows, cols);
  fft.inverseRealInto(spectrum, out);
  return out;
}

}  // namespace mosaic
