file(REMOVE_RECURSE
  "CMakeFiles/mosaic_support.dir/cli.cpp.o"
  "CMakeFiles/mosaic_support.dir/cli.cpp.o.d"
  "CMakeFiles/mosaic_support.dir/image_io.cpp.o"
  "CMakeFiles/mosaic_support.dir/image_io.cpp.o.d"
  "CMakeFiles/mosaic_support.dir/log.cpp.o"
  "CMakeFiles/mosaic_support.dir/log.cpp.o.d"
  "CMakeFiles/mosaic_support.dir/parallel.cpp.o"
  "CMakeFiles/mosaic_support.dir/parallel.cpp.o.d"
  "CMakeFiles/mosaic_support.dir/table.cpp.o"
  "CMakeFiles/mosaic_support.dir/table.cpp.o.d"
  "libmosaic_support.a"
  "libmosaic_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
