# Empty dependencies file for mosaic_litho.
# This may be replaced when dependencies are built.
