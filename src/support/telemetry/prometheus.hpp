#pragma once
/// \file prometheus.hpp
/// Prometheus text exposition (version 0.0.4) rendering of a metrics
/// snapshot, served by the mosaic_serve HTTP endpoint at GET /metrics
/// (docs/observability.md).
///
/// Mapping rules:
///   - metric names are sanitized to the Prometheus grammar
///     [a-zA-Z_:][a-zA-Z0-9_:]*  ('.' and every other illegal byte -> '_');
///   - counters are suffixed `_total`;
///   - the 46-bucket pow2 latency histograms render as cumulative
///     `<name>_us_bucket{le="..."}` series (upper bounds in microseconds,
///     matching the recording unit) plus `<name>_us_sum` and
///     `<name>_us_count`. The last bucket is open-ended -> le="+Inf".
///
/// The renderer is a pure snapshot -> string function so it is testable
/// without a socket and benchmarkable without a daemon (bm_telemetry
/// measures its encode cost).

#include <string>

#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace telemetry {

/// Sanitize one metric name to the Prometheus grammar.
[[nodiscard]] std::string prometheusName(std::string_view name);

/// Render a full snapshot as a text exposition document. Keys render in
/// the snapshot's (sorted) order; every series is preceded by a # TYPE
/// line so scrapers ingest the document without per-target configuration.
[[nodiscard]] std::string toPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace mosaic
