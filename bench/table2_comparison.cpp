/// \file table2_comparison.cpp
/// Reproduces paper Table 2 (EPE violations / PV band / contest score per
/// testcase and method) and Table 3 (runtimes) in one sweep:
///
///   methods: no-OPC and rule-OPC floors, conventional ILT (the contest
///   winner's formulation class), MOSAIC_fast, MOSAIC_exact.
///
/// The paper's absolute numbers came from the proprietary IBM clips and
/// contest kernels; the reproduction target is the *shape*: both MOSAIC
/// modes beat every conventional method (rule OPC, model-based edge OPC,
/// level-set ILT, pixel ILT without the process-window term), MOSAIC_exact
/// scores best, and all methods crush the uncorrected mask.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/edge_opc.hpp"
#include "opc/levelset.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

struct MethodStats {
  double scoreSum = 0.0;
  double pvbSum = 0.0;
  long long epeSum = 0;
  double runtimeSum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  int exactIterations = 30;
  int firstCase = 1;
  int lastCase = 10;
  std::string logLevel = "warn";

  CliParser cli("table2_comparison",
                "Reproduce paper Table 2 (quality) and Table 3 (runtime)");
  cli.addInt("pixel", &pixel, "pixel size in nm (paper: 1)");
  cli.addInt("iters", &iterations, "optimizer iterations (paper: 20)");
  cli.addInt("exact-iters", &exactIterations,
             "iterations for MOSAIC_exact (banks its larger paper-time "
             "budget as extra descent steps)");
  cli.addInt("first", &firstCase, "first testcase index");
  cli.addInt("last", &lastCase, "last testcase index");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);
    sim.kernels(0.0);  // pay kernel generation before timing the methods
    sim.kernels(25.0);

    const std::vector<std::string> methods = {
        "no_opc",       "rule_opc",    "edge_opc",   "levelset_ilt",
        "ILT_baseline", "MOSAIC_fast", "MOSAIC_exact"};
    std::vector<MethodStats> stats(methods.size());

    TextTable quality;
    quality.setHeader({"case", "area(nm^2)",
                       "noOPC:EPE", "PVB", "score",
                       "rule:EPE", "PVB", "score",
                       "edge:EPE", "PVB", "score",
                       "lvset:EPE", "PVB", "score",
                       "ILT:EPE", "PVB", "score",
                       "fast:EPE", "PVB", "score",
                       "exact:EPE", "PVB", "score"});
    TextTable runtime;
    runtime.setHeader({"case", "no_opc", "rule_opc", "edge_opc",
                       "levelset_ilt", "ILT_baseline", "MOSAIC_fast",
                       "MOSAIC_exact"});

    for (int caseIdx = firstCase; caseIdx <= lastCase; ++caseIdx) {
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      std::vector<CaseEvaluation> evals;
      std::vector<double> runtimes;
      auto record = [&](const RealGrid& mask, double rt) {
        evals.push_back(evaluateMask(sim, mask, target, rt));
        runtimes.push_back(rt);
      };

      {  // no OPC
        WallTimer t;
        const RealGrid mask = noOpcMask(target);
        record(mask, t.seconds());
      }
      {  // rule OPC
        WallTimer t;
        const RealGrid mask = ruleOpcMask(target, pixel);
        record(mask, t.seconds());
      }
      {  // model-based edge-fragmentation OPC
        WallTimer t;
        const EdgeOpcResult res = runEdgeOpc(sim, target);
        record(toReal(res.mask), t.seconds());
      }
      {  // level-set ILT
        WallTimer t;
        LevelSetConfig lsCfg;
        lsCfg.maxIterations = iterations;
        const LevelSetResult res = runLevelSetIlt(sim, target, lsCfg);
        record(toReal(res.mask), t.seconds());
      }
      for (OpcMethod m : {OpcMethod::kIltBaseline, OpcMethod::kMosaicFast,
                          OpcMethod::kMosaicExact}) {
        IltConfig cfg = defaultIltConfig(m, pixel);
        cfg.maxIterations =
            (m == OpcMethod::kMosaicExact) ? exactIterations : iterations;
        const OpcResult res = runOpc(sim, target, m, &cfg);
        record(toReal(res.maskBinary), res.runtimeSec);
      }

      std::vector<std::string> qrow = {layout.name,
                                       TextTable::integer(layout.patternArea())};
      std::vector<std::string> rrow = {layout.name};
      for (std::size_t m = 0; m < evals.size(); ++m) {
        qrow.push_back(TextTable::integer(evals[m].epeViolations));
        qrow.push_back(TextTable::num(evals[m].pvbandAreaNm2, 0));
        qrow.push_back(TextTable::num(evals[m].score, 0));
        rrow.push_back(TextTable::num(runtimes[m], 2));
        stats[m].scoreSum += evals[m].score;
        stats[m].pvbSum += evals[m].pvbandAreaNm2;
        stats[m].epeSum += evals[m].epeViolations;
        stats[m].runtimeSum += runtimes[m];
      }
      quality.addRow(qrow);
      runtime.addRow(rrow);
      std::fprintf(stderr, "finished %s\n", layout.name.c_str());
    }

    // Summary rows (the paper's "Ratio" line, normalized to MOSAIC_exact).
    std::vector<std::string> totalRow = {"total", "-"};
    std::vector<std::string> ratioRow = {"ratio", "-"};
    const double exactScore = stats.back().scoreSum;
    for (const auto& s : stats) {
      totalRow.push_back(TextTable::integer(s.epeSum));
      totalRow.push_back(TextTable::num(s.pvbSum, 0));
      totalRow.push_back(TextTable::num(s.scoreSum, 0));
      ratioRow.push_back("-");
      ratioRow.push_back("-");
      ratioRow.push_back(TextTable::num(s.scoreSum / exactScore, 3));
    }
    quality.addRow(totalRow);
    quality.addRow(ratioRow);

    std::vector<std::string> avgRow = {"average"};
    for (const auto& s : stats) {
      avgRow.push_back(
          TextTable::num(s.runtimeSum / (lastCase - firstCase + 1), 2));
    }
    runtime.addRow(avgRow);

    std::printf("=== Table 2: quality comparison (pixel %d nm, %d iters) ===\n",
                pixel, iterations);
    std::printf("%s\n", quality.render().c_str());
    std::printf("=== Table 3: runtime comparison (seconds) ===\n");
    std::printf("%s\n", runtime.render().c_str());
    std::printf("score = runtime + 4*PVB(nm^2) + 5000*#EPE + 10000*shape "
                "(paper Eq. 22)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table2_comparison failed: %s\n", e.what());
    return 1;
  }
}
