#pragma once
/// \file log.hpp
/// Minimal leveled logger. Single global sink (stderr) with a runtime level
/// threshold; formatting is plain ostream based so the library carries no
/// formatting dependency.

#include <sstream>
#include <string>

namespace mosaic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parseLogLevel(const std::string& name);

namespace detail {
void logEmit(LogLevel level, const std::string& message);
}

}  // namespace mosaic

#define MOSAIC_LOG(level, msg)                                      \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::mosaic::logLevel())) {                   \
      ::mosaic::detail::logEmit(                                    \
          level, (std::ostringstream{} << msg).str());              \
    }                                                               \
  } while (false)

#define LOG_DEBUG(msg) MOSAIC_LOG(::mosaic::LogLevel::kDebug, msg)
#define LOG_INFO(msg) MOSAIC_LOG(::mosaic::LogLevel::kInfo, msg)
#define LOG_WARN(msg) MOSAIC_LOG(::mosaic::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) MOSAIC_LOG(::mosaic::LogLevel::kError, msg)
