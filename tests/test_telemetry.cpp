/// Tests for the telemetry layer (docs/observability.md): metrics registry
/// (counters, gauges, latency histograms), scoped trace spans + Chrome
/// trace export, the JSONL run log, the structured log sink, and the
/// telemetry-off determinism guarantee.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "opc/objective.hpp"
#include "opc/optimizer.hpp"
#include "suite/testcases.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/flightrec.hpp"
#include "support/telemetry/json.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/prometheus.hpp"
#include "support/telemetry/runlog.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

#include <csignal>
#include <cstdlib>

namespace mosaic {
namespace {

using telemetry::Histogram;
using telemetry::HistogramStats;
using telemetry::JsonObject;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;

// ------------------------------------------------- tiny JSON validator
//
// The telemetry library only emits JSON, so the tests carry a minimal
// recursive-descent parser to prove the emitted documents are well-formed
// (no third-party JSON dependency in the repo).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skipWs();
    if (!parseValue()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parseValue() {
    skipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return parseString();
      case 't':
        return parseLiteral("true");
      case 'f':
        return parseLiteral("false");
      case 'n':
        return parseLiteral("null");
      default:
        return parseNumber();
    }
  }
  bool parseObject() {
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      if (!parseString()) return false;
      skipWs();
      if (!consume(':')) return false;
      if (!parseValue()) return false;
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool parseArray() {
    if (!consume('[')) return false;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      if (!parseValue()) return false;
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool parseString() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool parseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool isValidJson(std::string_view text) { return JsonChecker(text).valid(); }

/// Extract a numeric field value from one flat JSON record.
double jsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  if (at == std::string::npos) return std::nan("");
  return std::stod(line.substr(at + needle.size()));
}

bool jsonHasField(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

std::string tempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / stem).string();
}

// ------------------------------------------------------------ JSON emit

TEST(TelemetryJson, EscapesAndRendersValidObjects) {
  JsonObject obj;
  obj.set("plain", "value");
  obj.set("quote", "say \"hi\"");
  obj.set("control", std::string_view("a\nb\tc\x01" "d", 7));
  obj.set("backslash", "C:\\tmp");
  obj.set("int", 42);
  obj.set("neg", -7);
  obj.set("float", 2.5);
  obj.set("flag", true);
  const std::string text = obj.str();
  EXPECT_TRUE(isValidJson(text)) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\\""), std::string::npos);
}

TEST(TelemetryJson, NonFiniteNumbersBecomeNull) {
  JsonObject obj;
  obj.set("nan", std::nan(""));
  obj.set("inf", std::numeric_limits<double>::infinity());
  const std::string text = obj.str();
  EXPECT_TRUE(isValidJson(text)) << text;
  EXPECT_EQ(text, "{\"nan\":null,\"inf\":null}");
}

TEST(TelemetryJson, InvalidUtf8BytesBecomeReplacement) {
  // Golden escapes: the emitter must never let a malformed byte through —
  // a scraper parsing the run log as UTF-8 would reject the whole line.
  JsonObject obj;
  obj.set("lone", std::string_view("\xFF" "A", 2));
  const std::string text = obj.str();
  EXPECT_TRUE(isValidJson(text)) << text;
  EXPECT_EQ(text, "{\"lone\":\"\xEF\xBF\xBD" "A\"}");

  JsonObject truncated;  // 3-byte lead with only one continuation byte
  truncated.set("t", std::string_view("\xE2\x82", 2));
  EXPECT_EQ(truncated.str(), "{\"t\":\"\xEF\xBF\xBD\xEF\xBF\xBD\"}");

  JsonObject overlong;  // 0xC0 0xAF is the classic overlong '/'
  overlong.set("o", std::string_view("\xC0\xAF", 2));
  EXPECT_EQ(overlong.str(), "{\"o\":\"\xEF\xBF\xBD\xEF\xBF\xBD\"}");

  JsonObject surrogate;  // UTF-8-encoded UTF-16 surrogate U+D800
  surrogate.set("s", std::string_view("\xED\xA0\x80", 3));
  EXPECT_EQ(surrogate.str(),
            "{\"s\":\"\xEF\xBF\xBD\xEF\xBF\xBD\xEF\xBF\xBD\"}");

  JsonObject valid;  // well-formed multi-byte sequences pass through intact
  valid.set("euro", "\xE2\x82\xAC");
  EXPECT_EQ(valid.str(), "{\"euro\":\"\xE2\x82\xAC\"}");
}

TEST(TelemetryJson, SanitizeUtf8PreservesValidReplacesInvalid) {
  EXPECT_EQ(telemetry::sanitizeUtf8("plain ascii"), "plain ascii");
  EXPECT_EQ(telemetry::sanitizeUtf8("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(telemetry::sanitizeUtf8(std::string_view("\x80", 1)),
            "\xEF\xBF\xBD");
  EXPECT_EQ(telemetry::sanitizeUtf8(std::string_view("a\xF5z", 3)),
            "a\xEF\xBF\xBDz");
}

// ------------------------------------------------------------ histogram

TEST(TelemetryHistogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(0.99), 0);
  EXPECT_EQ(Histogram::bucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::bucketIndex(1.99), 1);
  EXPECT_EQ(Histogram::bucketIndex(2.0), 2);
  EXPECT_EQ(Histogram::bucketIndex(3.99), 2);
  EXPECT_EQ(Histogram::bucketIndex(4.0), 3);
  EXPECT_EQ(Histogram::bucketIndex(1024.0), 11);
  // Far beyond the last boundary: clamped to the open-ended bucket.
  EXPECT_EQ(Histogram::bucketIndex(1e18), Histogram::kBuckets - 1);
  // Upper bounds are the powers of two.
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperUs(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperUs(11), 2048.0);
}

TEST(TelemetryHistogram, SingleValueReportsExactPercentiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(300.0);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.minUs, 300.0);
  EXPECT_DOUBLE_EQ(s.maxUs, 300.0);
  EXPECT_DOUBLE_EQ(s.meanUs, 300.0);
  // Clamping to [min, max] makes a single-valued distribution exact.
  EXPECT_DOUBLE_EQ(s.p50Us, 300.0);
  EXPECT_DOUBLE_EQ(s.p95Us, 300.0);
  EXPECT_DOUBLE_EQ(s.p99Us, 300.0);
}

TEST(TelemetryHistogram, PercentilesOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.minUs, 1.0);
  EXPECT_DOUBLE_EQ(s.maxUs, 1000.0);
  EXPECT_NEAR(s.meanUs, 500.5, 1e-9);
  EXPECT_LE(s.minUs, s.p50Us);
  EXPECT_LE(s.p50Us, s.p95Us);
  EXPECT_LE(s.p95Us, s.p99Us);
  EXPECT_LE(s.p99Us, s.maxUs);
  // Power-of-two buckets: p50 can be off by at most one bucket width.
  EXPECT_GE(s.p50Us, 256.0);
  EXPECT_LE(s.p50Us, 1000.0);
}

TEST(TelemetryHistogram, ResetClears) {
  Histogram h;
  h.record(5.0);
  h.reset();
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sumUs, 0.0);
}

// ------------------------------------------------------------- registry

TEST(TelemetryRegistry, SameNameSameObject) {
  MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("a.b"), &reg.counter("a.b"));
  EXPECT_EQ(&reg.histogram("a.b"), &reg.histogram("a.b"));
  EXPECT_NE(static_cast<void*>(&reg.counter("x")),
            static_cast<void*>(&reg.counter("y")));
}

TEST(TelemetryRegistry, ConcurrentRecordingIsLossless) {
  MetricsRegistry reg;
  constexpr int kTasks = 64;
  constexpr int kPerTask = 500;
  parallelFor(0, kTasks, [&](std::size_t task) {
    // Half the tasks resolve by name each time, half reuse a reference --
    // both paths must be safe under concurrency.
    if (task % 2 == 0) {
      auto& counter = reg.counter("hot.counter");
      auto& histogram = reg.histogram("hot.histogram");
      for (int i = 0; i < kPerTask; ++i) {
        counter.add();
        histogram.record(static_cast<double>(i % 64));
      }
    } else {
      for (int i = 0; i < kPerTask; ++i) {
        reg.counter("hot.counter").add();
        reg.histogram("hot.histogram").record(static_cast<double>(i % 64));
      }
    }
  });
  EXPECT_EQ(reg.counter("hot.counter").value(),
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(reg.histogram("hot.histogram").count(),
            static_cast<std::uint64_t>(kTasks) * kPerTask);
}

TEST(TelemetryRegistry, SnapshotJsonAndTable) {
  MetricsRegistry reg;
  reg.counter("events.total").add(3);
  reg.gauge("queue.depth").set(2.5);
  reg.histogram("latency").record(100.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events.total"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("queue.depth"), 2.5);
  EXPECT_EQ(snap.histograms.at("latency").count, 1u);

  const std::string json = snap.toJson();
  EXPECT_TRUE(isValidJson(json)) << json;
  EXPECT_NE(json.find("\"events.total\""), std::string::npos);

  const std::string table = snap.summaryTable();
  EXPECT_NE(table.find("latency"), std::string::npos);
  EXPECT_NE(table.find("queue.depth"), std::string::npos);
}

// ----------------------------------------------------------- prometheus

TEST(PrometheusText, EmptySnapshotRendersEmptyDocument) {
  MetricsRegistry reg;
  EXPECT_EQ(telemetry::toPrometheusText(reg.snapshot()), "");
}

TEST(PrometheusText, NameSanitization) {
  EXPECT_EQ(telemetry::prometheusName("serve.job_wall"), "serve_job_wall");
  EXPECT_EQ(telemetry::prometheusName("cache.hit-rate"), "cache_hit_rate");
  EXPECT_EQ(telemetry::prometheusName("a:b"), "a:b");
  // A leading digit is illegal in the Prometheus grammar.
  EXPECT_EQ(telemetry::prometheusName("9lives"), "_9lives");
  EXPECT_EQ(telemetry::prometheusName(""), "_");
}

TEST(PrometheusText, CountersGetTotalSuffixExactlyOnce) {
  MetricsRegistry reg;
  reg.counter("serve.jobs").add(3);
  reg.counter("events_total").add(7);
  reg.gauge("queue.depth").set(2.5);
  const std::string text = telemetry::toPrometheusText(reg.snapshot());
  EXPECT_NE(text.find("# TYPE serve_jobs_total counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_jobs_total 3\n"), std::string::npos) << text;
  // Already-suffixed counters are not doubled.
  EXPECT_EQ(text.find("events_total_total"), std::string::npos) << text;
  EXPECT_NE(text.find("events_total 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 2.5\n"), std::string::npos) << text;
}

TEST(PrometheusText, SingleSampleHistogramCumulativeBuckets) {
  MetricsRegistry reg;
  reg.histogram("lat").record(300.0);  // 256 < 300 <= 512 -> bucket le=512
  const std::string text = telemetry::toPrometheusText(reg.snapshot());
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"256\"} 0\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_bucket{le=\"512\"} 1\n"), std::string::npos)
      << text;
  // Cumulative convention: every later bucket, +Inf included, holds it too.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1024\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 300\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_count 1\n"), std::string::npos) << text;
}

TEST(PrometheusText, FarOutlierClampsToOpenEndedBucket) {
  MetricsRegistry reg;
  reg.histogram("clamp").record(1e18);  // beyond every finite boundary
  const std::string text = telemetry::toPrometheusText(reg.snapshot());
  // Only the open-ended bucket holds the sample; the largest finite
  // boundary still reads 0.
  char largest[64];
  std::snprintf(largest, sizeof largest,
                "clamp_us_bucket{le=\"%.0f\"} 0\n",
                Histogram::bucketUpperUs(Histogram::kBuckets - 2));
  EXPECT_NE(text.find(largest), std::string::npos) << text;
  EXPECT_NE(text.find("clamp_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("clamp_us_count 1\n"), std::string::npos);
}

TEST(PrometheusText, BucketCountsMonotoneAndEndAtCount) {
  MetricsRegistry reg;
  auto& h = reg.histogram("mono");
  for (int i = 1; i <= 500; ++i) h.record(static_cast<double>(i * 7 % 900));
  const std::string text = telemetry::toPrometheusText(reg.snapshot());
  // Walk every mono_us_bucket line in order; cumulative counts must be
  // non-decreasing and the +Inf bucket must equal the total count.
  std::uint64_t previous = 0;
  std::uint64_t last = 0;
  int buckets = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("mono_us_bucket{", 0) != 0) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t value = std::stoull(line.substr(space + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    last = value;
    ++buckets;
  }
  EXPECT_EQ(buckets, Histogram::kBuckets);
  EXPECT_EQ(last, 500u);
  EXPECT_NE(text.find("mono_us_count 500\n"), std::string::npos);
}

// ------------------------------------------------------------- trace ids

TEST(TelemetryTraceId, ScopeSetsAndRestores) {
  EXPECT_EQ(telemetry::currentTraceId(), 0u);
  {
    telemetry::TraceScope outer(42);
    EXPECT_EQ(telemetry::currentTraceId(), 42u);
    {
      telemetry::TraceScope inner(7);
      EXPECT_EQ(telemetry::currentTraceId(), 7u);
    }
    EXPECT_EQ(telemetry::currentTraceId(), 42u);
  }
  EXPECT_EQ(telemetry::currentTraceId(), 0u);
}

TEST(TelemetryTraceId, NewIdsNonZeroAndDistinct) {
  const std::uint64_t a = telemetry::newTraceId();
  const std::uint64_t b = telemetry::newTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(telemetry::traceIdString(0x2a), "t-000000000000002a");
}

TEST(TelemetryTraceId, ScopeIsPerThread) {
  telemetry::TraceScope scope(99);
  std::uint64_t seenInThread = 1;  // sentinel: must become 0
  std::thread t([&] { seenInThread = telemetry::currentTraceId(); });
  t.join();
  EXPECT_EQ(seenInThread, 0u);
  EXPECT_EQ(telemetry::currentTraceId(), 99u);
}

TEST(TelemetryRunLog, StampsActiveTraceId) {
  const std::string path = tempPath("mosaic_runlog_trace.jsonl");
  {
    telemetry::RunLog log(path);
    {
      telemetry::TraceScope scope(0xbeef);
      JsonObject obj;
      obj.set("type", "stamped");
      log.write(obj);
      JsonObject explicitTrace;
      explicitTrace.set("type", "explicit");
      explicitTrace.set("trace", "t-custom");
      log.write(explicitTrace);
    }
    JsonObject bare;
    bare.set("type", "bare");
    log.write(bare);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"trace\":\"t-000000000000beef\""),
            std::string::npos)
      << lines[0];
  // An explicit trace field wins over the ambient scope.
  EXPECT_NE(lines[1].find("\"trace\":\"t-custom\""), std::string::npos);
  EXPECT_EQ(lines[1].find("beef"), std::string::npos) << lines[1];
  // No active scope, no stamped field.
  EXPECT_EQ(lines[2].find("\"trace\""), std::string::npos) << lines[2];
  std::filesystem::remove(path);
}

TEST(TelemetrySpansTrace, ChromeExportCarriesTraceArg) {
  telemetry::clearTrace();
  telemetry::setTraceEnabled(true);
  {
    telemetry::TraceScope scope(0x1234);
    MOSAIC_SPAN("test.traced_span");
  }
  telemetry::setTraceEnabled(false);
  const std::string json = telemetry::chromeTraceJson();
  EXPECT_TRUE(isValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"trace\":\"t-0000000000001234\""), std::string::npos)
      << json.substr(0, 400);
  telemetry::clearTrace();
}

// -------------------------------------------------------- flight recorder

TEST(FlightRec, RecordsAndDumpsValidJsonl) {
  telemetry::flightrec::clearForTest();
  {
    telemetry::TraceScope scope(0xabc);
    telemetry::flightrec::record("admit", "job-1 case=B1");
  }
  telemetry::flightrec::record("state", "job-1 -> done");
  EXPECT_EQ(telemetry::flightrec::eventCount(), 2u);
  const std::string dump = telemetry::flightrec::dumpJsonl();
  std::istringstream in(dump);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& record : lines) {
    EXPECT_TRUE(isValidJson(record)) << record;
  }
  EXPECT_NE(lines[0].find("\"kind\":\"admit\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace\":\"t-0000000000000abc\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("job-1 -> done"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"trace\""), std::string::npos)
      << "no scope was active: " << lines[1];
  telemetry::flightrec::clearForTest();
}

TEST(FlightRec, SanitizesPayloadAtRecordTime) {
  telemetry::flightrec::clearForTest();
  telemetry::flightrec::record("state", "quote\" slash\\ ctrl\n high\xFF end");
  const std::string dump = telemetry::flightrec::dumpJsonl();
  ASSERT_FALSE(dump.empty());
  const std::string line = dump.substr(0, dump.find('\n'));
  EXPECT_TRUE(isValidJson(line)) << line;
  EXPECT_NE(line.find("quote  slash  ctrl  high  end"), std::string::npos)
      << line;
  telemetry::flightrec::clearForTest();
}

TEST(FlightRec, RingKeepsMostRecentWindow) {
  telemetry::flightrec::clearForTest();
  const std::size_t total = telemetry::flightrec::kCapacity + 10;
  for (std::size_t i = 0; i < total; ++i) {
    telemetry::flightrec::record("tick", "n=" + std::to_string(i));
  }
  EXPECT_EQ(telemetry::flightrec::eventCount(), total);
  const std::string dump = telemetry::flightrec::dumpJsonl();
  // Oldest surviving record is seq 10; seq 9 was overwritten.
  EXPECT_NE(dump.find("\"detail\":\"n=10\""), std::string::npos);
  EXPECT_EQ(dump.find("\"detail\":\"n=9\""), std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"n=" + std::to_string(total - 1) + "\""),
            std::string::npos);
  telemetry::flightrec::clearForTest();
}

TEST(FlightRec, DumpToFileRoundTrips) {
  telemetry::flightrec::clearForTest();
  telemetry::flightrec::record("checkpoint", "tile_r0_c0 iter=5");
  const std::string path = tempPath("mosaic_flightrec_dump.jsonl");
  ASSERT_TRUE(telemetry::flightrec::dumpToFile(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), telemetry::flightrec::dumpJsonl());
  std::filesystem::remove(path);
  telemetry::flightrec::clearForTest();
}

using FlightRecDeathTest = ::testing::Test;

TEST(FlightRecDeathTest, CrashDumpCarriesTraceIdAndSignal) {
  // The acceptance check for the crash path: a process dying on SIGABRT
  // must leave a flight-recorder file whose records carry the crashing
  // job's trace id, with the signal itself as the final event. EXPECT_EXIT
  // forks, so the install/record/abort all happen in the child while the
  // parent inspects the file it left behind.
  const std::string path = tempPath("mosaic_flightrec_crash.jsonl");
  std::filesystem::remove(path);
  EXPECT_EXIT(
      {
        telemetry::flightrec::installCrashHandlers(path);
        telemetry::TraceScope scope(0xdead);
        telemetry::flightrec::record("state", "job-7 -> running");
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"trace\":\"t-000000000000dead\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("job-7 -> running"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"kind\":\"signal\",\"detail\":\"SIGABRT\""),
            std::string::npos)
      << dump;
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- spans

TEST(TelemetrySpans, NestedSpansRecordAndExport) {
  telemetry::clearTrace();
  telemetry::setTraceEnabled(true);
  constexpr int kOuter = 5;
  for (int i = 0; i < kOuter; ++i) {
    MOSAIC_SPAN("test.outer");
    {
      MOSAIC_SPAN("test.inner");
      volatile double sink = 0;
      for (int j = 0; j < 100; ++j) sink = sink + j;
    }
  }
  telemetry::setTraceEnabled(false);
  EXPECT_GE(telemetry::traceEventCount(), 2u * kOuter);

  const std::string json = telemetry::chromeTraceJson();
  EXPECT_TRUE(isValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  telemetry::clearTrace();
}

TEST(TelemetrySpans, DisabledTracingStillFeedsHistograms) {
  telemetry::clearTrace();
  ASSERT_FALSE(telemetry::traceEnabled());
  const std::uint64_t before =
      telemetry::metrics().histogram("test.hist_only").count();
  {
    MOSAIC_SPAN("test.hist_only");
  }
  EXPECT_EQ(telemetry::metrics().histogram("test.hist_only").count(),
            before + 1);
  EXPECT_EQ(telemetry::traceEventCount(), 0u);
}

TEST(TelemetrySpans, WriteChromeTraceFile) {
  telemetry::clearTrace();
  telemetry::setTraceEnabled(true);
  {
    MOSAIC_SPAN("test.file_span");
  }
  telemetry::setTraceEnabled(false);
  const std::string path = tempPath("mosaic_trace_test.json");
  telemetry::writeChromeTrace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(isValidJson(buffer.str()));
  EXPECT_NE(buffer.str().find("test.file_span"), std::string::npos);
  std::filesystem::remove(path);
  telemetry::clearTrace();
}

// -------------------------------------------------------------- run log

TEST(TelemetryRunLog, ParallelWritersNeverInterleaveLines) {
  const std::string path = tempPath("mosaic_runlog_parallel.jsonl");
  constexpr int kTasks = 16;
  constexpr int kPerTask = 50;
  {
    telemetry::RunLog log(path);
    parallelFor(0, kTasks, [&](std::size_t task) {
      for (int i = 0; i < kPerTask; ++i) {
        JsonObject obj;
        obj.set("task", static_cast<int>(task));
        obj.set("i", i);
        obj.set("padding", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
        log.write(obj);
      }
    });
    EXPECT_EQ(log.recordsWritten(), kTasks * kPerTask);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_TRUE(isValidJson(line)) << "corrupt line " << lines << ": " << line;
    ++lines;
  }
  EXPECT_EQ(lines, kTasks * kPerTask);
  std::filesystem::remove(path);
}

TEST(TelemetryRunLog, ThrowsOnUnwritablePath) {
  EXPECT_THROW(telemetry::RunLog("/nonexistent-dir-xyz/log.jsonl"), Error);
}

// ---------------------------------------------- optimizer run-log schema

/// Small, fast objective shared by the optimizer-level tests: 64 x 64 grid
/// (16 nm pixels), same idiom as test_robustness.
const LithoSimulator& testSim() {
  static LithoSimulator* sim = [] {
    OpticsConfig optics;
    optics.pixelNm = 16;
    return new LithoSimulator(optics);
  }();
  return *sim;
}

const BitGrid& testTarget() {
  static BitGrid* target = new BitGrid(rasterize(buildTestcase(1), 16));
  return *target;
}

TEST(TelemetryRunLog, OptimizerEmitsOneValidRecordPerIteration) {
  IltConfig cfg = defaultIltConfig(OpcMethod::kIltBaseline, 16);
  cfg.maxIterations = 6;
  const IltObjective objective(testSim(), testTarget(), cfg);
  const RealGrid initial = toReal(testTarget());

  const std::string path = tempPath("mosaic_runlog_opt.jsonl");
  OptimizeOptions options;
  telemetry::RunLog log(path);
  options.runLog = &log;
  options.runLogScope = "unit";
  const OptimizeResult result = optimizeMask(objective, initial, {}, options);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), result.history.size());

  int previousIter = 0;
  for (const std::string& record : lines) {
    ASSERT_TRUE(isValidJson(record)) << record;
    EXPECT_NE(record.find("\"type\":\"iteration\""), std::string::npos);
    EXPECT_NE(record.find("\"scope\":\"unit\""), std::string::npos);
    const double f = jsonField(record, "F");
    EXPECT_TRUE(std::isfinite(f)) << record;
    EXPECT_GT(f, 0.0);
    EXPECT_TRUE(std::isfinite(jsonField(record, "grad_rms")));
    EXPECT_GE(jsonField(record, "wall_ms"), 0.0);
    const int iter = static_cast<int>(jsonField(record, "iter"));
    EXPECT_GT(iter, previousIter) << "iteration ids must be monotone";
    previousIter = iter;
    for (const char* key : {"F_target", "F_pvb", "step", "improved",
                            "jumped", "recovered"}) {
      EXPECT_TRUE(jsonHasField(record, key)) << key << " missing: " << record;
    }
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------- determinism guarantee

TEST(TelemetryDeterminism, InstrumentedRunIsBitIdenticalToQuietRun) {
  IltConfig cfg = defaultIltConfig(OpcMethod::kIltBaseline, 16);
  cfg.maxIterations = 5;
  const IltObjective objective(testSim(), testTarget(), cfg);
  const RealGrid initial = toReal(testTarget());

  // Quiet run: no tracing, no run log.
  telemetry::clearTrace();
  const OptimizeResult quiet = optimizeMask(objective, initial);

  // Fully instrumented run.
  const std::string path = tempPath("mosaic_runlog_det.jsonl");
  telemetry::setTraceEnabled(true);
  OptimizeOptions options;
  telemetry::RunLog log(path);
  options.runLog = &log;
  const OptimizeResult traced = optimizeMask(objective, initial, {}, options);
  telemetry::setTraceEnabled(false);
  telemetry::clearTrace();

  // Telemetry observes; it must never perturb the optimization.
  ASSERT_EQ(quiet.bestMask.size(), traced.bestMask.size());
  for (std::size_t i = 0; i < quiet.bestMask.size(); ++i) {
    ASSERT_EQ(quiet.bestMask.data()[i], traced.bestMask.data()[i])
        << "mask diverged at pixel " << i;
  }
  EXPECT_EQ(quiet.bestObjective, traced.bestObjective);
  EXPECT_EQ(quiet.history.size(), traced.history.size());
  std::filesystem::remove(path);
}

// ------------------------------------------------------- checkpoint v2

TEST(TelemetryCheckpoint, WallMsSurvivesRoundTrip) {
  OptimizerCheckpoint ckpt;
  ckpt.iteration = 3;
  ckpt.step = 0.5;  // the hardened loader rejects non-positive steps
  ckpt.params = RealGrid(4, 4, 0.5);
  ckpt.bestMask = RealGrid(4, 4, 1.0);
  IterationRecord rec;
  rec.iteration = 3;
  rec.objective = 12.5;
  rec.wallMs = 41.75;
  ckpt.history.push_back(rec);

  const std::string path = tempPath("mosaic_ckpt_wallms.ckpt");
  saveOptimizerCheckpoint(path, ckpt);
  const OptimizerCheckpoint loaded = loadOptimizerCheckpoint(path);
  ASSERT_EQ(loaded.history.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.history[0].wallMs, 41.75);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- structured log

TEST(TelemetryLog, JsonSinkEmitsValidRecords) {
  const LogLevel levelBefore = logLevel();
  setLogLevel(LogLevel::kInfo);
  setLogFormat(LogFormat::kJson);
  testing::internal::CaptureStderr();
  LOG_INFO("structured " << 42);
  const std::string err = testing::internal::GetCapturedStderr();
  setLogFormat(LogFormat::kText);
  setLogLevel(levelBefore);

  ASSERT_FALSE(err.empty());
  const std::string line = err.substr(0, err.find('\n'));
  EXPECT_TRUE(isValidJson(line)) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"structured 42\""), std::string::npos);
  EXPECT_TRUE(jsonHasField(line, "ts"));
  EXPECT_TRUE(jsonHasField(line, "tid"));
}

TEST(TelemetryLog, ParseFormat) {
  EXPECT_EQ(parseLogFormat("text"), LogFormat::kText);
  EXPECT_EQ(parseLogFormat("JSON"), LogFormat::kJson);
  EXPECT_THROW(parseLogFormat("xml"), InvalidArgument);
}

// -------------------------------------------------------- resource probe

TEST(TelemetryResourceProbe, SamplesPlausibleValues) {
  // Touch some memory so the peak is clearly nonzero.
  std::vector<double> ballast(1 << 20, 1.0);
  const ResourceProbe probe = ResourceProbe::sample();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(probe.peakRssMb, 0.0);
  EXPECT_GE(probe.userCpuSec + probe.sysCpuSec, 0.0);
#endif
  const std::string line = probe.oneLine();
  EXPECT_NE(line.find("RSS"), std::string::npos);
  EXPECT_NE(line.find("CPU"), std::string::npos);
  EXPECT_GT(ballast[123], 0.0);
}

// --------------------------------------------------------- thread ids

TEST(TelemetryTrace, ThreadIdsAreSmallAndStable) {
  const int self = telemetry::threadId();
  EXPECT_GE(self, 0);
  EXPECT_EQ(telemetry::threadId(), self);
  int other = -1;
  std::thread t([&] { other = telemetry::threadId(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, self);
}

TEST(TelemetryTrace, NowNsIsMonotone) {
  const std::uint64_t a = telemetry::nowNs();
  const std::uint64_t b = telemetry::nowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace mosaic
