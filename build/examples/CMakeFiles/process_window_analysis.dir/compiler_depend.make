# Empty compiler generated dependencies file for process_window_analysis.
# This may be replaced when dependencies are built.
