/// \file ablation_source.cpp
/// Parametric source study (toward the source-optimization direction of
/// the paper's ref. [4]): rebuild the SOCS kernel set for several annular
/// illumination settings and re-run MOSAIC_fast. Shows how strongly the
/// optics choice conditions the achievable EPE/PV-band tradeoff -- and
/// that the shipped default (0.6/0.9 annular) is a sensible pick.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 15;
  std::string cases = "2,4";
  std::string logLevel = "warn";

  CliParser cli("ablation_source",
                "annular illumination sweep (kernel regeneration)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    struct Source {
      double inner;
      double outer;
    };
    const std::vector<Source> sources = {
        {0.0, 0.5},   // conventional partially coherent
        {0.4, 0.7},   // mild annular
        {0.6, 0.9},   // library default
        {0.7, 0.97},  // aggressive annular
    };

    TextTable table;
    table.setHeader({"case", "sigma in/out", "noOPC EPE", "fast EPE",
                     "fast PVB", "fast score"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);

      for (const auto& source : sources) {
        OpticsConfig optics;
        optics.pixelNm = pixel;
        optics.sigmaInner = source.inner;
        optics.sigmaOuter = source.outer;
        LithoSimulator sim(optics);
        const BitGrid target = rasterize(layout, pixel);

        const CaseEvaluation before =
            evaluateMask(sim, toReal(target), target, 0.0);
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = iterations;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation after =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);

        char label[32];
        std::snprintf(label, sizeof label, "%.1f/%.2f", source.inner,
                      source.outer);
        table.addRow({layout.name, label,
                      TextTable::integer(before.epeViolations),
                      TextTable::integer(after.epeViolations),
                      TextTable::num(after.pvbandAreaNm2, 0),
                      TextTable::num(after.score, 0)});
      }
    }
    std::printf("=== Ablation: annular source settings (MOSAIC_fast) "
                "===\n%s\n",
                table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_source failed: %s\n", e.what());
    return 1;
  }
}
