#pragma once
/// \file ilt_config.hpp
/// Configuration of the inverse lithography optimization (paper Sec. 3).

#include <vector>

#include "litho/optics.hpp"

namespace mosaic {

/// Which design-target objective drives the optimization (paper Eq. 19-20).
enum class TargetTerm {
  kEpe,        ///< F_epe: sigmoid EPE-violation count (MOSAIC_exact, Sec. 3.2)
  kImageDiff,  ///< F_id: gamma-power image difference (MOSAIC_fast, Sec. 3.3)
};

/// How gradient convolutions are evaluated (paper Sec. 3.5).
enum class GradientMode {
  kCombinedKernel,  ///< one convolution with sum_k w_k h_k (Eq. 21 speedup)
  kPerKernel,       ///< exact SOCS gradient, one pair per kernel
};

/// Descent update rule. The paper uses plain gradient descent with the
/// jump technique; momentum and Adam are provided for the optimizer
/// ablation (bench/ablation_optimizer).
enum class DescentVariant {
  kPlain,     ///< Alg. 1: P -= step * g / rms(g)
  kMomentum,  ///< heavy-ball: v = mu v + g / rms(g); P -= step * v
  kAdam,      ///< element-wise adaptive moments
};

/// Knobs of the ILT engine. Defaults follow the paper where it states a
/// value; see DESIGN.md section 6 for the mapping.
struct IltConfig {
  TargetTerm targetTerm = TargetTerm::kImageDiff;
  GradientMode gradientMode = GradientMode::kCombinedKernel;

  double alpha = 1.0;  ///< weight of the design-target term (Eq. 7)
  double beta = 1.0;   ///< weight of the process-window term (Eq. 7)
  double gamma = 4.0;  ///< image-difference exponent (Sec. 3.3: gamma = 4)
  /// Weight of the quadratic mask-smoothness regularizer
  /// F_reg = sum |grad M|^2 (0 = off, the paper's setting). Penalizing
  /// mask gradients suppresses isolated pixels and ragged edges, trading
  /// a little score for much simpler (writable) masks -- see
  /// bench/ablation_regularization.
  double regWeight = 0.0;

  double thetaM = 4.0;      ///< mask sigmoid steepness (Eq. 8)
  /// Mask transmission range. [0, 1] = binary mask (the paper's setting);
  /// [-0.245, 1] approximates a 6 % attenuated PSM, [-1, 1] a strong PSM
  /// (the generalized-ILT extension of ref. [10]).
  double maskLow = 0.0;
  double maskHigh = 1.0;
  double thetaEpe = 3.0;    ///< EPE-violation sigmoid steepness (Eq. 11)
  double epeThresholdNm = 15.0;  ///< th_epe
  int sampleSpacingNm = 40;      ///< EPE sample pitch along edges

  /// SOCS truncation inside the optimization loop (evaluation always uses
  /// the full kernel set). 0 = all kernels.
  int inLoopKernels = 9;

  /// Process corners driving F_pvb (Eq. 18).
  std::vector<ProcessCorner> pvbCorners = optimizationCorners();

  // ---- optimizer (paper Alg. 1 + the jump technique of [12]) ----
  int maxIterations = 20;        ///< th_iter
  double stepSize = 0.35;        ///< step in P-space (gradient RMS-normalized)
  double stepGrowth = 1.1;       ///< step multiplier after an improving step
  double stepShrink = 0.5;       ///< step multiplier after a worsening step
  double tolRmsGradient = 1e-5;  ///< th_g stop rule on RMS of the P-gradient
  int jumpPeriod = 6;            ///< iterations without improvement -> jump
  double jumpFactor = 8.0;       ///< step blow-up applied at a jump

  DescentVariant descentVariant = DescentVariant::kPlain;
  double momentum = 0.8;         ///< heavy-ball coefficient
  double adamBeta1 = 0.9;        ///< Adam first-moment decay
  double adamBeta2 = 0.999;      ///< Adam second-moment decay
  double adamEpsilon = 1e-8;

  // ---- numerical guardrails (docs/robustness.md) ----
  /// Non-finite rollbacks allowed before the run aborts with best-so-far.
  int maxRecoveries = 3;
  /// Step multiplier applied when rolling back from a non-finite iterate.
  double recoveryBackoff = 0.5;
  /// Floor for the rolled-back step (keeps backoff from underflowing).
  double minRecoveryStep = 1e-8;
  /// Wall-clock budget in seconds; the optimizer returns the best iterate
  /// instead of starting an iteration past the deadline. 0 = unlimited.
  double deadlineSeconds = 0.0;

  void validate() const {
    MOSAIC_CHECK(alpha >= 0 && beta >= 0 && regWeight >= 0,
                 "objective weights must be >= 0");
    MOSAIC_CHECK(gamma >= 1.0, "gamma must be >= 1");
    MOSAIC_CHECK(thetaM > 0 && thetaEpe > 0, "sigmoid steepness must be > 0");
    MOSAIC_CHECK(epeThresholdNm > 0, "EPE threshold must be positive");
    MOSAIC_CHECK(sampleSpacingNm > 0, "sample spacing must be positive");
    MOSAIC_CHECK(maxIterations >= 1, "need at least one iteration");
    MOSAIC_CHECK(stepSize > 0, "step size must be positive");
    MOSAIC_CHECK(inLoopKernels >= 0, "in-loop kernel count must be >= 0");
    MOSAIC_CHECK(maskHigh > maskLow && maskHigh > 0,
                 "mask transmission range is invalid");
    MOSAIC_CHECK(maxRecoveries >= 0, "max recoveries must be >= 0");
    MOSAIC_CHECK(recoveryBackoff > 0 && recoveryBackoff <= 1,
                 "recovery backoff must be in (0, 1]");
    MOSAIC_CHECK(minRecoveryStep > 0, "recovery step floor must be positive");
    MOSAIC_CHECK(deadlineSeconds >= 0, "deadline must be >= 0");
  }
};

}  // namespace mosaic
