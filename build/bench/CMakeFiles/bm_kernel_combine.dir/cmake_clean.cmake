file(REMOVE_RECURSE
  "CMakeFiles/bm_kernel_combine.dir/bm_kernel_combine.cpp.o"
  "CMakeFiles/bm_kernel_combine.dir/bm_kernel_combine.cpp.o.d"
  "bm_kernel_combine"
  "bm_kernel_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_kernel_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
