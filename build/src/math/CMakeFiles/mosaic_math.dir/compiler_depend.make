# Empty compiler generated dependencies file for mosaic_math.
# This may be replaced when dependencies are built.
