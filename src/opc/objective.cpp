#include "opc/objective.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "math/backend.hpp"
#include "math/convolution.hpp"
#include "math/scratch.hpp"
#include "math/stats.hpp"
#include "support/failpoint.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

/// Z (and optionally dZ/dI = theta_Z Z (1-Z)) for an aerial image at a
/// given dose. Pass dZdI = nullptr when only Z is needed -- the nominal
/// path's term fields fold the derivative in themselves.
void resistForward(const ResistModel& resist, const RealGrid& aerialRaw,
                   double dose, RealGrid& z, RealGrid* dZdI = nullptr) {
  const int rows = aerialRaw.rows();
  const int cols = aerialRaw.cols();
  z = RealGrid(rows, cols);
  if (dZdI != nullptr) *dZdI = RealGrid(rows, cols);
  for (std::size_t i = 0; i < aerialRaw.size(); ++i) {
    const double intensity = dose * aerialRaw.data()[i];
    const double zv = resist.sigmoid(intensity);
    z.data()[i] = zv;
    if (dZdI != nullptr) {
      dZdI->data()[i] = resist.thetaZ * zv * (1.0 - zv);
    }
  }
}

}  // namespace

IltObjective::IltObjective(const LithoSimulator& sim, BitGrid target,
                           IltConfig config)
    : sim_(sim),
      target_(std::move(target)),
      config_(std::move(config)) {
  config_.validate();
  const int n = sim_.gridSize();
  MOSAIC_CHECK(target_.rows() == n && target_.cols() == n,
               "target raster is " << target_.rows() << "x" << target_.cols()
                                   << ", simulator grid is " << n);
  targetReal_ = toReal(target_);
  const int pixelNm = sim_.optics().pixelNm;
  samples_ = extractSamples(target_, config_.sampleSpacingNm / pixelNm);
  epeHalfWidthPx_ = std::max(
      1, static_cast<int>(std::lround(config_.epeThresholdNm / pixelNm)));
}

RealGrid IltObjective::imageDiffGradientField(const RealGrid& zNominal,
                                              const RealGrid& aerialNominal,
                                              double* valueOut) const {
  // F_id = sum |Z - Zt|^gamma  (Eq. 16; |.| so odd gamma stays a metric).
  // dF/dI = gamma |Z - Zt|^(gamma-1) sign(Z - Zt) * thetaZ Z (1 - Z).
  const double gamma = config_.gamma;
  const ResistModel& resist = sim_.resist();
  RealGrid g(zNominal.rows(), zNominal.cols());
  double value = 0.0;
  for (std::size_t i = 0; i < zNominal.size(); ++i) {
    const double d = zNominal.data()[i] - targetReal_.data()[i];
    const double ad = std::fabs(d);
    value += std::pow(ad, gamma);
    const double z = zNominal.data()[i];
    const double dZdI = resist.thetaZ * z * (1.0 - z);
    const double sign = (d >= 0.0) ? 1.0 : -1.0;
    g.data()[i] = gamma * std::pow(ad, gamma - 1.0) * sign * dZdI;
    (void)aerialNominal;
  }
  *valueOut = value;
  return g;
}

RealGrid IltObjective::epeGradientField(const RealGrid& zNominal,
                                        const RealGrid& aerialNominal,
                                        double* valueOut) const {
  // Eq. 9-14. For each sample point, Dsum is the squared image difference
  // summed over the EPE window perpendicular to the edge; the sigmoid of
  // (Dsum - tau) is the soft violation. The per-sample outer derivatives
  // theta_epe * s * (1 - s) are accumulated into a per-pixel weight field
  // W, after which dF/dZ = W * 2 (Z - Zt) -- identical algebra to the
  // paper's per-sample Eq. 14 sum, evaluated with one convolution pair.
  const int rows = zNominal.rows();
  const int cols = zNominal.cols();
  // Violation when Dsum >= th_epe (Eq. 11): with pixel-counting D, the
  // threshold is the half-window width w (a fully missing edge mismatches
  // exactly the inner half of the window).
  const int w = epeHalfWidthPx_;
  const double tau = static_cast<double>(w);
  const ResistModel& resist = sim_.resist();

  // Squared image difference D (Eq. 10).
  RealGrid d2(rows, cols);
  for (std::size_t i = 0; i < d2.size(); ++i) {
    const double d = zNominal.data()[i] - targetReal_.data()[i];
    d2.data()[i] = d * d;
  }

  RealGrid weight(rows, cols, 0.0);
  double value = 0.0;
  for (const auto& s : samples_) {
    double dsum = 0.0;
    // Window spans w pixels on each side of the boundary, along the
    // direction perpendicular to the edge.
    const int lo = s.boundary - w;
    const int hi = s.boundary + w - 1;
    for (int t = lo; t <= hi; ++t) {
      if (s.horizontal) {
        if (t >= 0 && t < rows) dsum += d2(t, s.along);
      } else {
        if (t >= 0 && t < cols) dsum += d2(s.along, t);
      }
    }
    const double sig =
        1.0 / (1.0 + std::exp(-config_.thetaEpe * (dsum - tau)));
    value += sig;
    const double outer = config_.thetaEpe * sig * (1.0 - sig);
    for (int t = lo; t <= hi; ++t) {
      if (s.horizontal) {
        if (t >= 0 && t < rows) weight(t, s.along) += outer;
      } else {
        if (t >= 0 && t < cols) weight(s.along, t) += outer;
      }
    }
  }

  RealGrid g(rows, cols);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double z = zNominal.data()[i];
    const double dZdI = resist.thetaZ * z * (1.0 - z);
    g.data()[i] = weight.data()[i] * 2.0 *
                  (z - targetReal_.data()[i]) * dZdI;
    (void)aerialNominal;
  }
  *valueOut = value;
  return g;
}

void IltObjective::accumulateGradient(const ComplexGrid& maskSpectrum,
                                      const KernelSet& kernels,
                                      const RealGrid& gField,
                                      RealGrid& grad) const {
  MOSAIC_SPAN("objective.gradient");
  const int n = kernels.gridSize;
  const Fft2d& fft = fft2dFor(n, n);

  // The per-kernel convolution chains of Eq. 17 run on the simulator's
  // execution backend (same selection as the aerial path). The backend
  // accumulates into the spectral accumulator, including the flip —
  // equivalent to the old spec.flipped().accumulateProduct() without
  // materializing a flipped copy per kernel per iteration.
  std::vector<exec::SpectrumView> views;
  std::vector<double> weights;
  if (config_.gradientMode == GradientMode::kCombinedKernel) {
    const SparseSpectrum& spec = kernels.combined;
    views.push_back({spec.flatIndex.data(), spec.value.data(),
                     spec.flatIndex.size()});
    weights.push_back(1.0);
  } else {
    const int count = (config_.inLoopKernels <= 0)
                          ? kernels.kernelCount()
                          : std::min(config_.inLoopKernels,
                                     kernels.kernelCount());
    for (int k = 0; k < count; ++k) {
      const SparseSpectrum& spec = kernels.kernels[static_cast<std::size_t>(k)];
      views.push_back({spec.flatIndex.data(), spec.value.data(),
                       spec.flatIndex.size()});
      weights.push_back(kernels.weights[static_cast<std::size_t>(k)]);
    }
  }

  scratch::ComplexLease accumLease(n, n);
  ComplexGrid& accum = *accumLease;
  accum.fill({0.0, 0.0});
  sim_.activeBackend().accumulateGradientChains(
      fft, maskSpectrum, views.data(), weights.data(),
      static_cast<int>(views.size()), gField, accum);
  fft.inverse(accum);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] += 2.0 * accum.data()[i].real();
  }
}

IltObjective::Evaluation IltObjective::evaluate(const RealGrid& mask,
                                                bool needGradient) const {
  const int n = sim_.gridSize();
  MOSAIC_CHECK(mask.rows() == n && mask.cols() == n, "mask grid mismatch");
  MOSAIC_SPAN("objective.evaluate");

  Evaluation eval;
  const ComplexGrid maskSpectrum = sim_.maskSpectrum(mask);

  // ---- nominal corner: design-target term ----
  const RealGrid aerialNominal = sim_.aerialFromSpectrum(
      maskSpectrum, nominalCorner(), config_.inLoopKernels);
  RealGrid zNominal;
  resistForward(sim_.resist(), aerialNominal, 1.0, zNominal);

  double targetValue = 0.0;
  RealGrid gTarget =
      (config_.targetTerm == TargetTerm::kEpe)
          ? epeGradientField(zNominal, aerialNominal, &targetValue)
          : imageDiffGradientField(zNominal, aerialNominal, &targetValue);
  eval.targetValue = targetValue;
  // zNominal is no longer read below; hand the buffer to the evaluation
  // instead of deep-copying it.
  eval.zNominal = std::move(zNominal);

  // ---- process corners: F_pvb (Eq. 18) ----
  // Group the dF/dI fields by focus so each kernel set pays exactly one
  // convolution chain.
  std::map<double, RealGrid> gByFocus;
  auto addField = [&](double focus, const RealGrid& g, double scale) {
    auto it = gByFocus.find(focus);
    if (it == gByFocus.end()) {
      it = gByFocus.emplace(focus, RealGrid(n, n, 0.0)).first;
    }
    RealGrid& acc = it->second;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc.data()[i] += scale * g.data()[i];
    }
  };

  if (config_.alpha > 0.0) addField(0.0, gTarget, config_.alpha);

  double pvbValue = 0.0;
  if (config_.beta > 0.0) {
    // Process corners are independent until the merge, so they fan out
    // over the work-stealing pool — inside a tile task this is nested
    // parallelism that idle workers steal; in a single-clip run it is the
    // top-level fan-out. Each corner accumulates into its own partial sum
    // and field, and the merge below runs serially in corner order, so
    // the result is identical at every worker count.
    const std::size_t cornerCount = config_.pvbCorners.size();
    std::vector<double> cornerValue(cornerCount, 0.0);
    std::vector<RealGrid> cornerField(cornerCount);
    parallelFor(0, cornerCount, [&](std::size_t ci) {
      const auto& corner = config_.pvbCorners[ci];
      const RealGrid aerialRaw = sim_.aerialFromSpectrum(
          maskSpectrum, ProcessCorner{corner.focusNm, 1.0},
          config_.inLoopKernels);
      // Fused corner epilogue: dose scaling, resist sigmoid, dZ/dI, the
      // PVB residual and the dF/dI field all come out of one sweep over
      // the aerial image instead of the former resistForward + residual
      // passes (and the Z/dZdI corner grids are never materialized).
      const ResistModel& resist = sim_.resist();
      RealGrid g;
      if (needGradient) g = RealGrid(n, n);
      double value = 0.0;
      for (std::size_t i = 0; i < aerialRaw.size(); ++i) {
        const double intensity = corner.dose * aerialRaw.data()[i];
        const double zv = resist.sigmoid(intensity);
        const double diff = zv - targetReal_.data()[i];
        value += diff * diff;
        if (needGradient) {
          // dF/dI_raw = 2 (Z - Zt) * dZ/dI * dose (intensity scales by
          // dose), with dZ/dI = theta_Z Z (1 - Z).
          const double dZdI = resist.thetaZ * zv * (1.0 - zv);
          g.data()[i] = 2.0 * diff * dZdI * corner.dose;
        }
      }
      cornerValue[ci] = value;
      if (needGradient) cornerField[ci] = std::move(g);
    });
    for (std::size_t ci = 0; ci < cornerCount; ++ci) {
      pvbValue += cornerValue[ci];
      if (needGradient) {
        addField(config_.pvbCorners[ci].focusNm, cornerField[ci],
                 config_.beta);
      }
    }
  }
  eval.pvbValue = pvbValue;

  if (needGradient) {
    eval.gradMask = RealGrid(n, n, 0.0);
    // With resist diffusion the observed intensity is Blur(I_raw); the
    // blur is self-adjoint, so dF/dI_raw = Blur(dF/dI_observed).
    const double diffusionPx =
        sim_.resist().diffusionSigmaNm / sim_.optics().pixelNm;
    for (const auto& [focus, g] : gByFocus) {
      if (diffusionPx > 0.0) {
        accumulateGradient(maskSpectrum, sim_.kernels(focus),
                           gaussianBlur(g, diffusionPx), eval.gradMask);
      } else {
        accumulateGradient(maskSpectrum, sim_.kernels(focus), g,
                           eval.gradMask);
      }
    }
  }

  // Mask smoothness regularizer: F_reg = sum of squared forward
  // differences; dF_reg/dM is (minus) the discrete 5-point Laplacian with
  // mirrored (zero-flux) boundaries.
  if (config_.regWeight > 0.0) {
    double regValue = 0.0;
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        const double m = mask(r, c);
        if (r + 1 < n) {
          const double d = mask(r + 1, c) - m;
          regValue += d * d;
        }
        if (c + 1 < n) {
          const double d = mask(r, c + 1) - m;
          regValue += d * d;
        }
      }
    }
    eval.regValue = regValue;
    if (needGradient) {
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
          double g = 0.0;
          const double m = mask(r, c);
          if (r + 1 < n) g -= 2.0 * (mask(r + 1, c) - m);
          if (r > 0) g += 2.0 * (m - mask(r - 1, c));
          if (c + 1 < n) g -= 2.0 * (mask(r, c + 1) - m);
          if (c > 0) g += 2.0 * (m - mask(r, c - 1));
          eval.gradMask(r, c) += config_.regWeight * g;
        }
      }
    }
  }

  eval.value = config_.alpha * targetValue + config_.beta * pvbValue +
               config_.regWeight * eval.regValue;
  MOSAIC_FAILPOINT_DATA("objective.evaluate", &eval.value, 1);
  if (needGradient) {
    MOSAIC_FAILPOINT_DATA("objective.gradient", eval.gradMask.data(),
                          eval.gradMask.size());
  }
  return eval;
}

}  // namespace mosaic
