/// Tests for the core ILT machinery: mask transform, SRAF rules, objective
/// values, closed-form gradients (checked against finite differences --
/// this validates the paper's Eq. 13-17 implementation), optimizer
/// behaviour and the MOSAIC facade.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "math/stats.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "opc/objective.hpp"
#include "opc/optimizer.hpp"
#include "suite/testcases.hpp"
#include "support/rng.hpp"

namespace mosaic {
namespace {

/// Coarse simulator (64 x 64 grid) for gradient checks: cheap objective
/// evaluations make central differences affordable.
LithoSimulator& coarseSim() {
  static LithoSimulator sim([] {
    OpticsConfig o;
    o.pixelNm = 16;
    return o;
  }());
  return sim;
}

/// Medium simulator (128 x 128) for end-to-end optimizer tests.
LithoSimulator& mediumSim() {
  static LithoSimulator sim([] {
    OpticsConfig o;
    o.pixelNm = 8;
    return o;
  }());
  return sim;
}

BitGrid coarseTarget() {
  Layout l;
  l.name = "grad_target";
  l.sizeNm = 1024;
  l.addRect(256, 448, 768, 576);   // fat bar
  l.addRect(384, 640, 448, 832);   // vertical stub
  return rasterize(l, 16);
}

/// A smooth, non-binary mask so sigmoid saturation does not kill the
/// gradients under test.
RealGrid smoothMask(const BitGrid& target, double lo = 0.2, double hi = 0.8) {
  RealGrid m = toReal(target);
  for (auto& v : m) v = lo + (hi - lo) * v;
  return m;
}

// --------------------------------------------------------- MaskTransform

TEST(MaskTransform, RoundTripWithinClamp) {
  MaskTransform t(4.0);
  RealGrid mask(4, 4);
  Rng rng(1);
  for (auto& v : mask) v = rng.uniform(0.1, 0.9);
  const RealGrid params = t.toParams(mask, 0.05);
  const RealGrid back = t.toMask(params);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_NEAR(back.data()[i], mask.data()[i], 1e-10);
  }
}

TEST(MaskTransform, BinaryInputClampsSymmetrically) {
  MaskTransform t(4.0);
  RealGrid mask(1, 2);
  mask(0, 0) = 0.0;
  mask(0, 1) = 1.0;
  const RealGrid params = t.toParams(mask, 0.05);
  EXPECT_NEAR(params(0, 0), -params(0, 1), 1e-12);
  EXPECT_LT(params(0, 0), 0.0);
}

TEST(MaskTransform, ChainRuleMatchesFiniteDifference) {
  MaskTransform t(4.0);
  RealGrid params(1, 1);
  params(0, 0) = 0.37;
  const RealGrid mask = t.toMask(params);
  // d/dP of M: FD.
  RealGrid p2 = params;
  const double h = 1e-6;
  p2(0, 0) += h;
  const double fd = (t.toMask(p2)(0, 0) - mask(0, 0)) / h;
  RealGrid grad(1, 1, 1.0);  // dF/dM = 1
  t.chainRule(mask, grad);
  EXPECT_NEAR(grad(0, 0), fd, 1e-5);
}

TEST(MaskTransform, BinarizeAtHalf) {
  RealGrid m(1, 3);
  m(0, 0) = 0.49;
  m(0, 1) = 0.51;
  m(0, 2) = 0.5;
  const BitGrid b = MaskTransform::binarize(m);
  EXPECT_EQ(b(0, 0), 0u);
  EXPECT_EQ(b(0, 1), 1u);
  EXPECT_EQ(b(0, 2), 0u);
}

TEST(MaskTransform, InvalidParamsThrow) {
  EXPECT_THROW(MaskTransform(0.0), InvalidArgument);
  EXPECT_THROW(MaskTransform(4.0, 1.0, 0.5), InvalidArgument);   // lo >= hi
  EXPECT_THROW(MaskTransform(4.0, -2.0, 0.0), InvalidArgument);  // hi <= 0
  MaskTransform t(4.0);
  EXPECT_THROW(t.toParams(RealGrid(1, 1), 0.7), InvalidArgument);
}

TEST(MaskTransform, PsmRangeRoundTrip) {
  const double low = -0.2449489743;  // 6 % attenuated PSM
  MaskTransform t(4.0, low, 1.0);
  RealGrid mask(2, 2);
  mask(0, 0) = -0.2;
  mask(0, 1) = 0.0;
  mask(1, 0) = 0.5;
  mask(1, 1) = 0.95;
  const RealGrid back = t.toMask(t.toParams(mask, 0.01));
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_NEAR(back.data()[i], mask.data()[i], 1e-9);
  }
  // Range limits are respected even for extreme P.
  RealGrid extreme(1, 2);
  extreme(0, 0) = -100.0;
  extreme(0, 1) = 100.0;
  const RealGrid m = t.toMask(extreme);
  EXPECT_NEAR(m(0, 0), low, 1e-9);
  EXPECT_NEAR(m(0, 1), 1.0, 1e-9);
}

TEST(MaskTransform, PsmChainRuleMatchesFiniteDifference) {
  MaskTransform t(4.0, -1.0, 1.0);
  RealGrid params(1, 1);
  params(0, 0) = -0.23;
  const RealGrid mask = t.toMask(params);
  RealGrid p2 = params;
  const double h = 1e-6;
  p2(0, 0) += h;
  const double fd = (t.toMask(p2)(0, 0) - mask(0, 0)) / h;
  RealGrid grad(1, 1, 1.0);
  t.chainRule(mask, grad);
  EXPECT_NEAR(grad(0, 0), fd, 1e-5);
}

TEST(MaskTransform, QuantizeAndMaterialize) {
  const double low = -0.5;
  MaskTransform t(4.0, low, 1.0);
  RealGrid mask(1, 3);
  mask(0, 0) = -0.4;  // below mid (0.25)
  mask(0, 1) = 0.3;   // above mid
  mask(0, 2) = 0.9;
  const BitGrid features = t.quantizeFeatures(mask);
  EXPECT_EQ(features(0, 0), 0u);
  EXPECT_EQ(features(0, 1), 1u);
  EXPECT_EQ(features(0, 2), 1u);
  const RealGrid material = t.materialize(features);
  EXPECT_DOUBLE_EQ(material(0, 0), low);
  EXPECT_DOUBLE_EQ(material(0, 1), 1.0);
}

// ------------------------------------------------------------------ sraf

TEST(Sraf, BandRespectsDistances) {
  BitGrid target(64, 64, 0);
  for (int r = 28; r < 36; ++r) {
    for (int c = 20; c < 44; ++c) target(r, c) = 1;
  }
  SrafConfig cfg;
  cfg.minDistanceNm = 40;  // 5 px at 8 nm
  cfg.maxDistanceNm = 64;  // 8 px
  cfg.clipMarginNm = 0;
  const BitGrid band = srafBand(target, 8, cfg);
  EXPECT_GT(countSet(band), 0);
  // No band pixel within the keep-away ring or inside the feature.
  const BitGrid tooClose = dilateSquare(target, 5);
  EXPECT_EQ(countSet(bitAnd(band, tooClose)), 0);
  // All band pixels within the outer ring.
  const BitGrid outer = dilateSquare(target, 8);
  EXPECT_EQ(countSet(bitSub(band, outer)), 0);
}

TEST(Sraf, DisabledReturnsTarget) {
  BitGrid target(16, 16, 0);
  target(8, 8) = 1;
  SrafConfig cfg;
  cfg.enabled = false;
  EXPECT_EQ(insertSraf(target, 8, cfg), target);
}

TEST(Sraf, InsertIsSupersetOfTarget) {
  BitGrid target(64, 64, 0);
  target(32, 32) = 1;
  const BitGrid withSraf = insertSraf(target, 8);
  EXPECT_EQ(countSet(bitSub(target, withSraf)), 0);
  EXPECT_GT(countSet(withSraf), countSet(target));
}

TEST(Sraf, ClipMarginKeepOut) {
  BitGrid target(32, 32, 0);
  target(16, 2) = 1;  // feature near the border
  SrafConfig cfg;
  cfg.minDistanceNm = 16;
  cfg.maxDistanceNm = 40;
  cfg.clipMarginNm = 32;  // 4 px at 8 nm
  const BitGrid band = srafBand(target, 8, cfg);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(band(r, c), 0u);
  }
}

TEST(Sraf, NoBandBetweenCloseFeatures) {
  // Two features closer than twice the minimum distance: the dilations
  // overlap, so no assist feature may appear in the gap.
  BitGrid target(64, 64, 0);
  for (int r = 28; r < 36; ++r) {
    for (int c = 8; c < 24; ++c) target(r, c) = 1;   // left feature
    for (int c = 32; c < 48; ++c) target(r, c) = 1;  // right, 8 px gap
  }
  SrafConfig cfg;
  cfg.minDistanceNm = 40;  // 5 px at 8 nm; gap of 8 px < 2*5
  cfg.maxDistanceNm = 64;
  cfg.clipMarginNm = 0;
  const BitGrid band = srafBand(target, 8, cfg);
  for (int r = 28; r < 36; ++r) {
    for (int c = 24; c < 32; ++c) {
      EXPECT_EQ(band(r, c), 0u) << "SRAF in the forbidden gap at (" << r
                                << "," << c << ")";
    }
  }
}

TEST(Sraf, InvalidConfigThrows) {
  BitGrid target(8, 8, 0);
  SrafConfig cfg;
  cfg.minDistanceNm = 50;
  cfg.maxDistanceNm = 40;
  EXPECT_THROW(srafBand(target, 8, cfg), InvalidArgument);
  cfg.minDistanceNm = 4;  // below one pixel
  cfg.maxDistanceNm = 40;
  EXPECT_THROW(srafBand(target, 8, cfg), InvalidArgument);
}

// ------------------------------------------------------------- baselines

TEST(Baselines, NoOpcEqualsTarget) {
  BitGrid target(8, 8, 0);
  target(3, 3) = 1;
  const RealGrid mask = noOpcMask(target);
  EXPECT_DOUBLE_EQ(mask(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(mask(0, 0), 0.0);
}

TEST(Baselines, RuleOpcPositiveBiasDilates) {
  BitGrid target(32, 32, 0);
  for (int r = 12; r < 20; ++r) {
    for (int c = 12; c < 20; ++c) target(r, c) = 1;
  }
  SrafConfig noSraf;
  noSraf.enabled = false;
  const RealGrid biased = ruleOpcMask(target, 8, 8, noSraf);
  EXPECT_EQ(countSet(thresholdGrid(biased, 0.5)), 10 * 10);
}

TEST(Baselines, RuleOpcNegativeBiasErodes) {
  BitGrid target(32, 32, 0);
  for (int r = 12; r < 20; ++r) {
    for (int c = 12; c < 20; ++c) target(r, c) = 1;
  }
  SrafConfig noSraf;
  noSraf.enabled = false;
  const RealGrid biased = ruleOpcMask(target, 8, -8, noSraf);
  EXPECT_EQ(countSet(thresholdGrid(biased, 0.5)), 6 * 6);
}

// ----------------------------------------------------- objective values

TEST(Objective, PerfectTargetGivesSmallImageDiff) {
  // A mask that prints exactly the target would zero F_id; the physical
  // print cannot be exact, but the residual must be far below the value
  // at a blank mask.
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.beta = 0.0;
  IltObjective obj(sim, target, cfg);
  const auto atTarget = obj.evaluate(toReal(target), false);
  const auto atBlank =
      obj.evaluate(RealGrid(sim.gridSize(), sim.gridSize(), 0.0), false);
  EXPECT_LT(atTarget.targetValue, 0.3 * atBlank.targetValue);
  EXPECT_TRUE(atTarget.gradMask.empty());
}

TEST(Objective, ValueComposition) {
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.alpha = 2.0;
  cfg.beta = 3.0;
  IltObjective obj(sim, target, cfg);
  const auto eval = obj.evaluate(smoothMask(target), false);
  EXPECT_NEAR(eval.value, 2.0 * eval.targetValue + 3.0 * eval.pvbValue,
              1e-9 * std::fabs(eval.value));
  EXPECT_GT(eval.pvbValue, 0.0);
}

TEST(Objective, BetaZeroSkipsPvb) {
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.beta = 0.0;
  IltObjective obj(sim, target, cfg);
  const auto eval = obj.evaluate(smoothMask(target), true);
  EXPECT_DOUBLE_EQ(eval.pvbValue, 0.0);
  EXPECT_FALSE(eval.gradMask.empty());
}

TEST(Objective, TargetShapeMismatchThrows) {
  LithoSimulator& sim = coarseSim();
  BitGrid wrong(16, 16, 0);
  EXPECT_THROW(IltObjective(sim, wrong, IltConfig{}), InvalidArgument);
}

TEST(Objective, EpeValueCountsObviousViolations) {
  // A blank mask prints nothing; every EPE sample sees a missing edge and
  // the soft violation count approaches the sample count.
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.targetTerm = TargetTerm::kEpe;
  cfg.beta = 0.0;
  IltObjective obj(sim, target, cfg);
  const auto eval =
      obj.evaluate(RealGrid(sim.gridSize(), sim.gridSize(), 0.0), false);
  // A fully missing pattern mismatches exactly the inner half of each EPE
  // window, which sits right at the violation threshold: the soft count is
  // ~0.5 per sample (the hard EPE evaluator reports a full violation).
  const double sampleCount = static_cast<double>(obj.samples().size());
  EXPECT_GT(sampleCount, 10.0);
  EXPECT_GT(eval.targetValue, 0.4 * sampleCount);
  EXPECT_LE(eval.targetValue, sampleCount + 1e-9);
}

// --------------------------------------------------- gradient vs FD

struct GradCase {
  const char* name;
  TargetTerm term;
  double gamma;
  double beta;
  double reg = 0.0;
};

class GradientCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradientCheck, PerKernelGradientMatchesFiniteDifference) {
  const GradCase& gc = GetParam();
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();

  IltConfig cfg;
  cfg.targetTerm = gc.term;
  cfg.gamma = gc.gamma;
  cfg.alpha = 1.0;
  cfg.beta = gc.beta;
  cfg.regWeight = gc.reg;
  cfg.gradientMode = GradientMode::kPerKernel;
  cfg.inLoopKernels = 6;
  IltObjective obj(sim, target, cfg);

  RealGrid mask = smoothMask(target, 0.25, 0.75);
  // Perturb a few pixels deterministically off the binary plateau.
  Rng rng(99);
  for (auto& v : mask) v += rng.uniform(-0.05, 0.05);

  const auto eval = obj.evaluate(mask, true);
  ASSERT_FALSE(eval.gradMask.empty());

  // Check the top-gradient pixels plus a few random ones.
  struct Pick {
    int r, c;
  };
  std::vector<Pick> picks;
  {
    double best = 0.0;
    int br = 0;
    int bc = 0;
    for (int r = 0; r < mask.rows(); ++r) {
      for (int c = 0; c < mask.cols(); ++c) {
        if (std::fabs(eval.gradMask(r, c)) > best) {
          best = std::fabs(eval.gradMask(r, c));
          br = r;
          bc = c;
        }
      }
    }
    ASSERT_GT(best, 0.0);
    picks.push_back({br, bc});
    picks.push_back({br, std::min(mask.cols() - 1, bc + 2)});
    picks.push_back({std::max(0, br - 3), bc});
    for (int i = 0; i < 4; ++i) {
      picks.push_back({static_cast<int>(rng.below(mask.rows())),
                       static_cast<int>(rng.below(mask.cols()))});
    }
  }

  const double h = 2e-5;
  for (const auto& p : picks) {
    RealGrid plus = mask;
    RealGrid minus = mask;
    plus(p.r, p.c) += h;
    minus(p.r, p.c) -= h;
    const double fPlus = obj.evaluate(plus, false).value;
    const double fMinus = obj.evaluate(minus, false).value;
    const double fd = (fPlus - fMinus) / (2 * h);
    const double analytic = eval.gradMask(p.r, p.c);
    const double scale = std::max({std::fabs(fd), std::fabs(analytic), 1e-6});
    EXPECT_NEAR(analytic, fd, 2e-3 * scale)
        << gc.name << " pixel (" << p.r << "," << p.c << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Terms, GradientCheck,
    ::testing::Values(
        GradCase{"id_gamma2", TargetTerm::kImageDiff, 2.0, 0.0},
        GradCase{"id_gamma4", TargetTerm::kImageDiff, 4.0, 0.0},
        GradCase{"id_gamma4_pvb", TargetTerm::kImageDiff, 4.0, 1.0},
        GradCase{"epe", TargetTerm::kEpe, 4.0, 0.0},
        GradCase{"epe_pvb", TargetTerm::kEpe, 4.0, 0.5},
        GradCase{"id_gamma4_reg", TargetTerm::kImageDiff, 4.0, 0.0, 0.3}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(GradientCheckDiffusion, BlurAdjointChainMatchesFiniteDifference) {
  // With resist diffusion enabled the gradient picks up a Gaussian-blur
  // adjoint; validate the full chain against central differences.
  OpticsConfig optics;
  optics.pixelNm = 16;
  ResistModel resist;
  resist.diffusionSigmaNm = 24.0;
  LithoSimulator sim(optics, resist);
  const BitGrid target = coarseTarget();

  IltConfig cfg;
  cfg.targetTerm = TargetTerm::kImageDiff;
  cfg.gamma = 2.0;
  cfg.beta = 0.5;
  cfg.gradientMode = GradientMode::kPerKernel;
  cfg.inLoopKernels = 6;
  IltObjective obj(sim, target, cfg);

  RealGrid mask = smoothMask(target, 0.25, 0.75);
  const auto eval = obj.evaluate(mask, true);

  // Probe the strongest-gradient pixel and two offsets.
  double best = 0.0;
  int br = 0;
  int bc = 0;
  for (int r = 0; r < mask.rows(); ++r) {
    for (int c = 0; c < mask.cols(); ++c) {
      if (std::fabs(eval.gradMask(r, c)) > best) {
        best = std::fabs(eval.gradMask(r, c));
        br = r;
        bc = c;
      }
    }
  }
  ASSERT_GT(best, 0.0);
  const double h = 2e-5;
  for (const auto& [r, c] : {std::pair{br, bc}, std::pair{br, bc + 3},
                             std::pair{std::max(0, br - 4), bc}}) {
    RealGrid plus = mask;
    RealGrid minus = mask;
    plus(r, c) += h;
    minus(r, c) -= h;
    const double fd = (obj.evaluate(plus, false).value -
                       obj.evaluate(minus, false).value) /
                      (2 * h);
    const double analytic = eval.gradMask(r, c);
    const double scale = std::max({std::fabs(fd), std::fabs(analytic), 1e-6});
    EXPECT_NEAR(analytic, fd, 2e-3 * scale) << "pixel (" << r << "," << c
                                            << ")";
  }
}

TEST(GradientModes, CombinedKernelPointsTheSameWay) {
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.inLoopKernels = 6;
  cfg.gradientMode = GradientMode::kPerKernel;
  IltObjective exact(sim, target, cfg);
  cfg.gradientMode = GradientMode::kCombinedKernel;
  IltObjective combined(sim, target, cfg);

  const RealGrid mask = smoothMask(target);
  const RealGrid gExact = exact.evaluate(mask, true).gradMask;
  const RealGrid gComb = combined.evaluate(mask, true).gradMask;

  double dot = 0.0;
  double nExact = 0.0;
  double nComb = 0.0;
  for (std::size_t i = 0; i < gExact.size(); ++i) {
    dot += gExact.data()[i] * gComb.data()[i];
    nExact += gExact.data()[i] * gExact.data()[i];
    nComb += gComb.data()[i] * gComb.data()[i];
  }
  const double cosine = dot / std::sqrt(nExact * nComb);
  EXPECT_GT(cosine, 0.7);  // same descent direction family
}

TEST(Objective, PsmMaskEvaluatesWithNegativeBackground) {
  // The objective itself is mask-technology agnostic: feed a PSM-style
  // mask (negative background) and confirm value and gradient exist and
  // the FD check holds at one pixel.
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.gradientMode = GradientMode::kPerKernel;
  cfg.inLoopKernels = 6;
  cfg.beta = 0.0;
  IltObjective obj(sim, target, cfg);

  RealGrid mask(sim.gridSize(), sim.gridSize(), -0.2);
  for (int r = 20; r < 40; ++r) {
    for (int c = 20; c < 44; ++c) mask(r, c) = 0.9;
  }
  const auto eval = obj.evaluate(mask, true);
  EXPECT_GT(eval.value, 0.0);
  ASSERT_FALSE(eval.gradMask.empty());

  const double h = 2e-5;
  const int r = 20;
  const int c = 30;  // feature edge pixel
  RealGrid plus = mask;
  RealGrid minus = mask;
  plus(r, c) += h;
  minus(r, c) -= h;
  const double fd = (obj.evaluate(plus, false).value -
                     obj.evaluate(minus, false).value) /
                    (2 * h);
  const double scale =
      std::max({std::fabs(fd), std::fabs(eval.gradMask(r, c)), 1e-6});
  EXPECT_NEAR(eval.gradMask(r, c), fd, 2e-3 * scale);
}

TEST(Objective, RegularizerPenalizesRoughMasks) {
  LithoSimulator& sim = coarseSim();
  const BitGrid target = coarseTarget();
  IltConfig cfg;
  cfg.regWeight = 1.0;
  cfg.alpha = 0.0;
  cfg.beta = 0.0;
  IltObjective obj(sim, target, cfg);

  const int n = sim.gridSize();
  RealGrid smooth(n, n, 0.5);
  RealGrid rough(n, n, 0.5);
  Rng rng(5);
  for (auto& v : rough) v = rng.uniform(0.0, 1.0);
  const double fSmooth = obj.evaluate(smooth, false).regValue;
  const double fRough = obj.evaluate(rough, false).regValue;
  EXPECT_DOUBLE_EQ(fSmooth, 0.0);
  EXPECT_GT(fRough, 1.0);
}

// ------------------------------------------------------------ optimizer

TEST(Optimizer, ObjectiveImprovesAndBestIsTracked) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 8;
  IltObjective obj(sim, target, cfg);
  const RealGrid init = toReal(insertSraf(target, 8));

  const auto initialValue = obj.evaluate(init, false).value;
  const OptimizeResult res = optimizeMask(obj, init);
  EXPECT_LT(res.bestObjective, initialValue);
  EXPECT_LE(static_cast<int>(res.history.size()), cfg.maxIterations);
  EXPECT_GE(res.bestIteration, 0);
  // Best objective is the minimum of the recorded ones (or the initial).
  for (const auto& rec : res.history) {
    EXPECT_GE(rec.objective, res.bestObjective - 1e-9);
  }
}

TEST(Optimizer, StepAdaptsWithProgress) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 6;
  cfg.jumpPeriod = 100;  // no jumps in this test
  IltObjective obj(sim, target, cfg);
  const OptimizeResult res = optimizeMask(obj, toReal(insertSraf(target, 8)));
  ASSERT_GE(res.history.size(), 2u);
  // The recorded step already includes the post-update adaptation: it
  // must grow after improving iterations and shrink after regressions.
  double prevStep = cfg.stepSize;
  for (const auto& rec : res.history) {
    if (rec.improved) {
      EXPECT_GT(rec.stepSize, prevStep * 0.999);
    } else {
      EXPECT_LT(rec.stepSize, prevStep * 1.001);
    }
    prevStep = rec.stepSize;
  }
}

TEST(Optimizer, DeterministicAcrossRuns) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 4;
  IltObjective obj(sim, target, cfg);
  const RealGrid init = toReal(insertSraf(target, 8));
  const OptimizeResult a = optimizeMask(obj, init);
  const OptimizeResult b = optimizeMask(obj, init);
  EXPECT_EQ(a.bestMask, b.bestMask);
  EXPECT_EQ(a.history.size(), b.history.size());
}

TEST(Optimizer, CallbackSeesEveryIteration) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 5;
  IltObjective obj(sim, target, cfg);
  int calls = 0;
  int lastIter = 0;
  optimizeMask(obj, toReal(target),
               [&](const IterationRecord& rec, const RealGrid& mask) {
                 ++calls;
                 lastIter = rec.iteration;
                 EXPECT_EQ(mask.rows(), sim.gridSize());
               });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(lastIter, 5);
}

TEST(Optimizer, JumpFiresAfterStall) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 12;
  cfg.jumpPeriod = 1;    // any single non-improving step triggers a jump
  cfg.stepSize = 80.0;   // absurd step guarantees non-improving steps
  cfg.stepGrowth = 1.0;
  cfg.stepShrink = 1.0;
  IltObjective obj(sim, target, cfg);
  const OptimizeResult res = optimizeMask(obj, toReal(target));
  bool sawJump = false;
  for (const auto& rec : res.history) sawJump = sawJump || rec.jumped;
  EXPECT_TRUE(sawJump);
}

class DescentVariants : public ::testing::TestWithParam<DescentVariant> {};

TEST_P(DescentVariants, RunsAndImproves) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 8;
  cfg.descentVariant = GetParam();
  if (GetParam() != DescentVariant::kPlain) cfg.stepSize = 0.2;
  IltObjective obj(sim, target, cfg);
  const RealGrid init = toReal(insertSraf(target, 8));
  const double initial = obj.evaluate(init, false).value;
  const OptimizeResult res = optimizeMask(obj, init);
  EXPECT_LT(res.bestObjective, initial) << "variant did not improve";
  // Determinism per variant.
  const OptimizeResult res2 = optimizeMask(obj, init);
  EXPECT_EQ(res.bestMask, res2.bestMask);
}

INSTANTIATE_TEST_SUITE_P(Variants, DescentVariants,
                         ::testing::Values(DescentVariant::kPlain,
                                           DescentVariant::kMomentum,
                                           DescentVariant::kAdam),
                         [](const auto& info) {
                           switch (info.param) {
                             case DescentVariant::kPlain:
                               return "plain";
                             case DescentVariant::kMomentum:
                               return "momentum";
                             default:
                               return "adam";
                           }
                         });

// --------------------------------------------------------------- facade

TEST(Facade, MethodNames) {
  EXPECT_EQ(methodName(OpcMethod::kMosaicFast), "MOSAIC_fast");
  EXPECT_EQ(methodName(OpcMethod::kMosaicExact), "MOSAIC_exact");
  EXPECT_EQ(methodName(OpcMethod::kIltBaseline), "ILT_baseline");
}

TEST(Facade, DefaultConfigsMatchPaper) {
  const IltConfig fast = defaultIltConfig(OpcMethod::kMosaicFast, 2);
  EXPECT_EQ(fast.targetTerm, TargetTerm::kImageDiff);
  EXPECT_DOUBLE_EQ(fast.gamma, 4.0);
  EXPECT_GT(fast.beta, 0.0);

  const IltConfig exact = defaultIltConfig(OpcMethod::kMosaicExact, 2);
  EXPECT_EQ(exact.targetTerm, TargetTerm::kEpe);
  EXPECT_GT(exact.beta, 0.0);

  const IltConfig base = defaultIltConfig(OpcMethod::kIltBaseline, 2);
  EXPECT_EQ(base.targetTerm, TargetTerm::kImageDiff);
  EXPECT_DOUBLE_EQ(base.gamma, 2.0);
  EXPECT_DOUBLE_EQ(base.beta, 0.0);
}

TEST(Facade, RunOpcProducesBinaryMaskAndHistory) {
  LithoSimulator& sim = mediumSim();
  const BitGrid target = rasterize(buildTestcase(1), 8);
  IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, 8);
  cfg.maxIterations = 6;
  const OpcResult res = runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
  EXPECT_EQ(res.method, "MOSAIC_fast");
  EXPECT_EQ(res.maskBinary.rows(), sim.gridSize());
  EXPECT_EQ(res.iterations, static_cast<int>(res.history.size()));
  EXPECT_GT(res.runtimeSec, 0.0);
  // Binary mask matches binarized continuous mask.
  EXPECT_EQ(res.maskBinary, MaskTransform::binarize(res.maskContinuous));
}

}  // namespace
}  // namespace mosaic
