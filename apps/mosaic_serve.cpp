/// \file mosaic_serve.cpp
/// The `mosaic_serve` daemon: a long-lived, fault-tolerant OPC job service
/// (docs/serving.md). Clients speak line-delimited JSON over a loopback
/// TCP socket: submit a job, get an id, poll status, fetch the result.
///
///   mosaic_serve --work-dir /tmp/serve --port 0 --workers 2
///
/// The bound port is printed and written to <work-dir>/serve.port. Jobs
/// are journaled before they run and checkpointed while they run, so a
/// crashed or killed daemon restarted on the same work directory resumes
/// every unfinished job bit-identically. SIGINT/SIGTERM drain gracefully:
/// running jobs checkpoint at their next iteration and the process exits
/// with code 3 (interrupted), leaving the journal ready for the next
/// incarnation.

#include <cstdio>
#include <fstream>
#include <memory>

#include "math/backend.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/signal.hpp"
#include "support/telemetry/flightrec.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/runlog.hpp"

namespace {

using namespace mosaic;

int serveMain(int argc, char** argv) {
  std::string workDir;
  int port = 0;
  int httpPort = -1;
  int workers = 2;
  int poolThreads = 0;
  bool pinWorkers = false;
  int queueCapacity = 8;
  int backoffMs = 25;
  bool cold = false;
  std::string patternCache;
  int cacheMaxMb = 512;
  std::string logLevel = "info";
  std::string failpoints;
  std::string metricsOut;
  std::string runLogPath;
  std::string backend = "auto";

  CliParser cli("mosaic_serve",
                "fault-tolerant ILT job service over line-delimited JSON");
  cli.addString("work-dir", &workDir,
                "journal/checkpoint/port-file directory (required)");
  cli.addInt("port", &port, "listen port on 127.0.0.1 (0 = ephemeral)");
  cli.addInt("http-port", &httpPort,
             "HTTP observability port for /metrics, /healthz, /jobs "
             "(0 = ephemeral, written to <work-dir>/serve.http.port; "
             "-1 = disabled)");
  cli.addInt("workers", &workers, "worker threads sharing warm simulators");
  cli.addInt("pool-threads", &poolThreads,
             "work-stealing executor size shared by every job's nested "
             "loops (0 = hardware default)");
  cli.addFlag("pin-workers", &pinWorkers,
              "pin executor workers round-robin onto CPUs");
  cli.addInt("queue", &queueCapacity,
             "bounded queue capacity (admission control)");
  cli.addInt("backoff-ms", &backoffMs, "retry backoff per failed attempt");
  cli.addFlag("cold", &cold,
              "disable the warm simulator pool (each job recomputes kernels)");
  cli.addString("pattern-cache", &patternCache,
                "pattern-library cache directory: repeated jobs return the "
                "cached mask (docs/caching.md)");
  cli.addInt("cache-max-mb", &cacheMaxMb,
             "pattern-cache size cap in MB (LRU-evicted; 0 = unlimited)");
  cli.addString("log", &logLevel, "log level");
  cli.addString("failpoints", &failpoints,
                "arm fail points, e.g. serve.worker:throw@iter=1");
  cli.addString("metrics-out", &metricsOut,
                "write the metrics snapshot (JSON) here at exit");
  cli.addString("run-log", &runLogPath,
                "append per-iteration/job JSONL telemetry here");
  cli.addString("backend", &backend,
                "execution backend: auto | cpu_scalar | cpu_simd | "
                "cpu_simd_f32");
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  MOSAIC_CHECK(!workDir.empty(), "--work-dir is required");
  {
    const exec::Backend* chosen = exec::findBackend(backend);
    MOSAIC_CHECK(chosen != nullptr, "unknown --backend '"
                                        << backend << "' (expected one of: "
                                        << exec::backendNames() << ")");
    exec::setCurrentBackend(*chosen);
  }
  if (!failpoints.empty()) failpoint::configure(failpoints);
  setWorkerPinning(pinWorkers);
  if (poolThreads > 0) setParallelism(poolThreads);

  // Flight recorder: always on. A fatal signal (SIGSEGV/SIGABRT/SIGBUS)
  // dumps the event ring to <work-dir>/flightrec.jsonl from the handler;
  // GET /debug/flightrec serves the same ring live.
  telemetry::flightrec::installCrashHandlers(workDir + "/flightrec.jsonl");

  std::unique_ptr<telemetry::RunLog> runLog;
  if (!runLogPath.empty()) {
    runLog = std::make_unique<telemetry::RunLog>(runLogPath);
  }

  // Signal → token → accept loop + every running optimizer. First signal
  // drains with checkpoints; a second one hard-exits (support/signal.hpp).
  CancelToken stopToken;
  installTerminationHandler(&stopToken);

  serve::ServeConfig cfg;
  cfg.workDir = workDir;
  cfg.workers = workers;
  cfg.queueCapacity = queueCapacity;
  cfg.backoffMs = backoffMs;
  cfg.reuseSimulators = !cold;
  cfg.patternCacheDir = patternCache;
  cfg.patternCacheMaxBytes = static_cast<long long>(cacheMaxMb) << 20;
  cfg.runLog = runLog.get();
  serve::JobService service(cfg);

  serve::ServerOptions opts;
  opts.port = port;
  serve::ServeServer server(service, opts);

  // Optional HTTP observability plane: /metrics (Prometheus), /healthz,
  // /jobs, /debug/flightrec. Port file mirrors serve.port so scripts can
  // discover an ephemeral bind.
  std::unique_ptr<serve::HttpServer> http;
  if (httpPort >= 0) {
    http = std::make_unique<serve::HttpServer>(service, httpPort);
    std::ofstream portFile(workDir + "/serve.http.port", std::ios::trunc);
    MOSAIC_CHECK(portFile.good(),
                 "cannot write port file in work dir: " << workDir);
    portFile << http->port() << "\n";
  }

  std::printf("mosaic_serve listening on 127.0.0.1:%d (work dir %s, "
              "%d workers, queue %d%s)\n",
              server.port(), workDir.c_str(), workers, queueCapacity,
              service.recoveredJobs() > 0
                  ? (", recovered " + std::to_string(service.recoveredJobs()) +
                     " job(s)")
                        .c_str()
                  : "");
  if (http) {
    std::printf("http observability on 127.0.0.1:%d "
                "(/metrics /healthz /jobs /debug/flightrec)\n",
                http->port());
  }
  std::fflush(stdout);

  const serve::DrainMode mode = server.serveForever(&stopToken);
  http.reset();  // stop answering /healthz before the drain begins
  const bool interrupted = terminationSignal() != 0;
  if (interrupted) {
    std::printf("caught %s: draining with checkpoints...\n",
                terminationSignalName());
    std::fflush(stdout);
  }
  service.drain(mode);

  const serve::ServiceStats stats = service.stats();
  std::printf("serve exiting: %d done, %d failed, %d canceled, %d expired, "
              "%d queued for the next incarnation\n",
              stats.done, stats.failed, stats.canceled, stats.expired,
              stats.queued);

  if (!metricsOut.empty()) {
    const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
    std::ofstream out(metricsOut, std::ios::trunc);
    MOSAIC_CHECK(out.good(), "cannot open for writing: " << metricsOut);
    out << snap.toJson() << "\n";
  }
  // Join the executor workers before returning so the exit is clean under
  // TSan/ASan (the pool would otherwise join in a static destructor).
  shutdownParallelPool();
  return interrupted ? kExitInterrupted : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    failpoint::configureFromEnv();
    return serveMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mosaic_serve failed: %s\n", e.what());
    // Fatal errors dump the flight recorder too (crash handlers only fire
    // on signals); the path was armed by installCrashHandlers.
    mosaic::telemetry::flightrec::record("fatal", e.what());
    mosaic::telemetry::flightrec::dumpArmedPath();
    return 1;
  }
}
