/// Tests for the robustness layer: fail-point framework, optimizer
/// numerical guardrails (NaN rollback, recovery budget, deadline), and
/// checkpoint/restore (docs/robustness.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "opc/objective.hpp"
#include "opc/optimizer.hpp"
#include "suite/testcases.hpp"
#include "support/failpoint.hpp"

namespace mosaic {
namespace {

// ----------------------------------------------------------- fail points

TEST(Failpoint, InactiveByDefault) {
  failpoint::reset();
  EXPECT_FALSE(failpoint::active());
  EXPECT_FALSE(failpoint::isArmed("some.site"));
  EXPECT_EQ(failpoint::onHit("some.site"), failpoint::Action::kNone);
  EXPECT_EQ(failpoint::hitCount("some.site"), 0);
}

TEST(Failpoint, ParsesMultiSiteSpec) {
  failpoint::ScopedFailpoints sfp(
      "objective.gradient:nan@iter=7,io.glp.parse:throw,fft.forward:inf");
  EXPECT_TRUE(failpoint::active());
  EXPECT_TRUE(failpoint::isArmed("objective.gradient"));
  EXPECT_TRUE(failpoint::isArmed("io.glp.parse"));
  EXPECT_TRUE(failpoint::isArmed("fft.forward"));
  EXPECT_FALSE(failpoint::isArmed("optimizer.step"));
}

TEST(Failpoint, RejectsMalformedSpecs) {
  failpoint::reset();
  EXPECT_THROW(failpoint::configure("noaction"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("site:frobnicate"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("site:nan@iter=0"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("site:nan@iter=abc"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("site:nan@turn=3"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("site:delay=oops"), InvalidArgument);
  EXPECT_THROW(failpoint::configure(":nan"), InvalidArgument);
  // A malformed list arms nothing, even when a prefix clause is valid.
  EXPECT_THROW(failpoint::configure("good.site:nan,bad:spec:extra@"),
               InvalidArgument);
  EXPECT_FALSE(failpoint::active());
  failpoint::reset();
}

TEST(Failpoint, ThrowFiresOnConfiguredHitOnly) {
  failpoint::ScopedFailpoints sfp("unit.site:throw@iter=2");
  EXPECT_EQ(failpoint::onHit("unit.site"), failpoint::Action::kNone);
  EXPECT_THROW(failpoint::onHit("unit.site"), Error);
  EXPECT_EQ(failpoint::onHit("unit.site"), failpoint::Action::kNone);
  EXPECT_EQ(failpoint::hitCount("unit.site"), 3);
}

TEST(Failpoint, NanAndInfPoisonData) {
  {
    failpoint::ScopedFailpoints sfp("unit.data:nan");
    double values[5] = {1, 2, 3, 4, 5};
    failpoint::maybePoison("unit.data", values, 5);
    EXPECT_TRUE(std::isnan(values[2]));  // middle element
  }
  {
    failpoint::ScopedFailpoints sfp("unit.data:inf");
    double values[4] = {1, 2, 3, 4};
    failpoint::maybePoison("unit.data", values, 4);
    EXPECT_TRUE(std::isinf(values[2]));
  }
}

TEST(Failpoint, DelayActionDoesNotThrowOrPoison) {
  failpoint::ScopedFailpoints sfp("unit.delay:delay=1");
  double value = 7.0;
  EXPECT_NO_THROW(failpoint::maybePoison("unit.delay", &value, 1));
  EXPECT_EQ(value, 7.0);
}

TEST(Failpoint, ResetDisarmsEverything) {
  failpoint::configure("unit.reset:throw");
  EXPECT_TRUE(failpoint::active());
  failpoint::reset();
  EXPECT_FALSE(failpoint::active());
  EXPECT_NO_THROW(failpoint::onHit("unit.reset"));
}

TEST(Failpoint, ConfiguresFromEnvironment) {
  failpoint::reset();
  ASSERT_EQ(setenv("MOSAIC_FAILPOINTS", "unit.env:nan@iter=3", 1), 0);
  failpoint::configureFromEnv();
  EXPECT_TRUE(failpoint::isArmed("unit.env"));
  unsetenv("MOSAIC_FAILPOINTS");
  failpoint::reset();
}

// ------------------------------------------------- optimizer guardrails

/// Small, fast single-focus objective shared by the optimizer tests:
/// 64 x 64 grid (16 nm pixels), image-difference target term only.
const LithoSimulator& testSim() {
  static LithoSimulator* sim = [] {
    OpticsConfig optics;
    optics.pixelNm = 16;
    return new LithoSimulator(optics);
  }();
  return *sim;
}

IltConfig testConfig(int iterations) {
  IltConfig cfg = defaultIltConfig(OpcMethod::kIltBaseline, 16);
  cfg.maxIterations = iterations;
  return cfg;
}

const BitGrid& testTarget() {
  static BitGrid* target =
      new BitGrid(rasterize(buildTestcase(1), 16));
  return *target;
}

TEST(OptimizerGuardrails, RecoversFromInjectedGradientNan) {
  const IltObjective objective(testSim(), testTarget(), testConfig(6));
  const RealGrid initial = toReal(testTarget());

  // Hit 3 of objective.gradient = the evaluation inside iteration 2 (one
  // evaluation happens before the loop).
  failpoint::ScopedFailpoints sfp("objective.gradient:nan@iter=3");
  const OptimizeResult result = optimizeMask(objective, initial);

  EXPECT_GE(result.nonFiniteEvents, 1);
  EXPECT_GE(result.recoveries, 1);
  EXPECT_TRUE(std::isfinite(result.bestObjective));
  for (double v : result.bestMask) EXPECT_TRUE(std::isfinite(v));
  ASSERT_FALSE(result.history.empty());
  bool sawRecovery = false;
  for (const IterationRecord& r : result.history) {
    sawRecovery = sawRecovery || r.recovered;
  }
  EXPECT_TRUE(sawRecovery);
  // The run continues after the rollback instead of aborting.
  EXPECT_NE(result.stopReason, StopReason::kAbortedNonFinite);
  EXPECT_EQ(result.history.size(), 6u);
}

TEST(OptimizerGuardrails, RecoveredRunMatchesCleanRunQuality) {
  const IltObjective objective(testSim(), testTarget(), testConfig(20));
  const RealGrid initial = toReal(testTarget());

  const OptimizeResult clean = optimizeMask(objective, initial);
  failpoint::ScopedFailpoints sfp("objective.gradient:nan@iter=4");
  const OptimizeResult recovered = optimizeMask(objective, initial);

  ASSERT_GE(recovered.recoveries, 1);
  EXPECT_TRUE(std::isfinite(recovered.bestObjective));
  // Rollback + step backoff keeps the recovered run in the same quality
  // regime as the clean run (acceptance: within 5 %).
  EXPECT_LE(recovered.bestObjective, clean.bestObjective * 1.05);
}

TEST(OptimizerGuardrails, AbortsWhenRecoveryBudgetExhausted) {
  IltConfig cfg = testConfig(6);
  cfg.maxRecoveries = 0;
  const IltObjective objective(testSim(), testTarget(), cfg);
  const RealGrid initial = toReal(testTarget());

  failpoint::ScopedFailpoints sfp("objective.gradient:nan@iter=2");
  const OptimizeResult result = optimizeMask(objective, initial);

  EXPECT_EQ(result.stopReason, StopReason::kAbortedNonFinite);
  EXPECT_GE(result.nonFiniteEvents, 1);
  EXPECT_EQ(result.recoveries, 0);
  // Best-so-far survives the abort.
  EXPECT_TRUE(std::isfinite(result.bestObjective));
  for (double v : result.bestMask) EXPECT_TRUE(std::isfinite(v));
}

TEST(OptimizerGuardrails, AbortsOnNonFiniteInitialEvaluation) {
  const IltObjective objective(testSim(), testTarget(), testConfig(4));
  const RealGrid initial = toReal(testTarget());

  failpoint::ScopedFailpoints sfp("objective.gradient:nan@iter=1");
  const OptimizeResult result = optimizeMask(objective, initial);

  EXPECT_EQ(result.stopReason, StopReason::kAbortedNonFinite);
  EXPECT_EQ(result.nonFiniteEvents, 1);
  EXPECT_TRUE(result.history.empty());
}

TEST(OptimizerGuardrails, ThrowInjectionPropagates) {
  const IltObjective objective(testSim(), testTarget(), testConfig(4));
  const RealGrid initial = toReal(testTarget());

  failpoint::ScopedFailpoints sfp("optimizer.step:throw@iter=2");
  EXPECT_THROW(optimizeMask(objective, initial), Error);
}

TEST(OptimizerGuardrails, DeadlineReturnsBestSoFar) {
  IltConfig cfg = testConfig(50);
  cfg.deadlineSeconds = 1e-9;  // expires before the first iteration
  const IltObjective objective(testSim(), testTarget(), cfg);
  const RealGrid initial = toReal(testTarget());

  const OptimizeResult result = optimizeMask(objective, initial);
  EXPECT_EQ(result.stopReason, StopReason::kDeadline);
  EXPECT_TRUE(result.history.empty());
  EXPECT_EQ(result.bestIteration, 0);
  EXPECT_TRUE(std::isfinite(result.bestObjective));
}

TEST(OptimizerGuardrails, HistoryDeterministicWithFailpointsDisabled) {
  failpoint::reset();
  const IltObjective objective(testSim(), testTarget(), testConfig(5));
  const RealGrid initial = toReal(testTarget());

  const OptimizeResult a = optimizeMask(objective, initial);
  const OptimizeResult b = optimizeMask(objective, initial);

  EXPECT_EQ(a.stopReason, b.stopReason);
  EXPECT_EQ(a.nonFiniteEvents, 0);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].objective, b.history[i].objective);
    EXPECT_EQ(a.history[i].rmsGradient, b.history[i].rmsGradient);
    EXPECT_EQ(a.history[i].stepSize, b.history[i].stepSize);
  }
  EXPECT_EQ(a.bestMask, b.bestMask);
}

// -------------------------------------------------- checkpoint/restore

TEST(Checkpoint, BinaryRoundTripIsExact) {
  OptimizerCheckpoint ckpt;
  ckpt.iteration = 7;
  ckpt.step = 0.123456789012345;
  ckpt.previousValue = 42.5;
  ckpt.sinceImprovement = 2;
  ckpt.bestObjective = 41.875;
  ckpt.bestIteration = 5;
  ckpt.nonFiniteEvents = 3;
  ckpt.recoveries = 1;
  ckpt.params = RealGrid(4, 6, 0.0);
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    ckpt.params.data()[i] = 0.1 * static_cast<double>(i) - 1.0;
  }
  ckpt.bestMask = RealGrid(4, 6, 0.25);
  ckpt.velocity = RealGrid(4, 6, -0.5);
  IterationRecord rec;
  rec.iteration = 7;
  rec.objective = 43.0;
  rec.stepSize = 0.2;
  rec.improved = true;
  rec.recovered = true;
  ckpt.history.push_back(rec);

  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_ckpt_roundtrip.bin";
  saveOptimizerCheckpoint(path.string(), ckpt);
  const OptimizerCheckpoint loaded = loadOptimizerCheckpoint(path.string());

  EXPECT_EQ(loaded.iteration, ckpt.iteration);
  EXPECT_EQ(loaded.step, ckpt.step);
  EXPECT_EQ(loaded.previousValue, ckpt.previousValue);
  EXPECT_EQ(loaded.sinceImprovement, ckpt.sinceImprovement);
  EXPECT_EQ(loaded.bestObjective, ckpt.bestObjective);
  EXPECT_EQ(loaded.bestIteration, ckpt.bestIteration);
  EXPECT_EQ(loaded.nonFiniteEvents, ckpt.nonFiniteEvents);
  EXPECT_EQ(loaded.recoveries, ckpt.recoveries);
  EXPECT_EQ(loaded.params, ckpt.params);
  EXPECT_EQ(loaded.bestMask, ckpt.bestMask);
  EXPECT_EQ(loaded.velocity, ckpt.velocity);
  EXPECT_TRUE(loaded.adamM.empty());
  ASSERT_EQ(loaded.history.size(), 1u);
  EXPECT_EQ(loaded.history[0].iteration, rec.iteration);
  EXPECT_EQ(loaded.history[0].objective, rec.objective);
  EXPECT_TRUE(loaded.history[0].improved);
  EXPECT_FALSE(loaded.history[0].jumped);
  EXPECT_TRUE(loaded.history[0].recovered);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMissingAndGarbageFiles) {
  EXPECT_THROW(loadOptimizerCheckpoint("/nonexistent/dir/x.ckpt"),
               InvalidArgument);
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(loadOptimizerCheckpoint(path.string()), InvalidArgument);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeReproducesUninterruptedRunExactly) {
  failpoint::reset();
  const RealGrid initial = toReal(testTarget());
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_ckpt_resume.bin";

  // Uninterrupted reference: 6 iterations straight through.
  const IltObjective full(testSim(), testTarget(), testConfig(6));
  const OptimizeResult reference = optimizeMask(full, initial);

  // Interrupted run: stop after 3 iterations, checkpointing at 3 ...
  {
    const IltObjective half(testSim(), testTarget(), testConfig(3));
    OptimizeOptions opts;
    opts.checkpointPath = path.string();
    opts.checkpointEvery = 3;
    optimizeMask(half, initial, {}, opts);
  }
  // ... then resume to the full budget ("--resume <ckpt>").
  OptimizeOptions resumeOpts;
  resumeOpts.resumePath = path.string();
  const OptimizeResult resumed = optimizeMask(full, initial, {}, resumeOpts);

  ASSERT_EQ(resumed.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].iteration, reference.history[i].iteration);
    EXPECT_EQ(resumed.history[i].objective, reference.history[i].objective)
        << "iteration " << i;
    EXPECT_EQ(resumed.history[i].rmsGradient,
              reference.history[i].rmsGradient);
    EXPECT_EQ(resumed.history[i].stepSize, reference.history[i].stepSize);
    EXPECT_EQ(resumed.history[i].improved, reference.history[i].improved);
    EXPECT_EQ(resumed.history[i].jumped, reference.history[i].jumped);
  }
  EXPECT_EQ(resumed.bestObjective, reference.bestObjective);
  EXPECT_EQ(resumed.bestIteration, reference.bestIteration);
  EXPECT_EQ(resumed.bestMask, reference.bestMask);
  EXPECT_EQ(resumed.stopReason, reference.stopReason);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeRejectsShapeMismatch) {
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_ckpt_shape.bin";
  OptimizerCheckpoint ckpt;
  ckpt.iteration = 1;
  ckpt.params = RealGrid(8, 8, 0.0);
  ckpt.bestMask = RealGrid(8, 8, 0.0);
  saveOptimizerCheckpoint(path.string(), ckpt);

  const IltObjective objective(testSim(), testTarget(), testConfig(2));
  OptimizeOptions opts;
  opts.resumePath = path.string();
  EXPECT_THROW(optimizeMask(objective, toReal(testTarget()), {}, opts),
               InvalidArgument);
  std::filesystem::remove(path);
}

TEST(StopReason, NamesAreStable) {
  EXPECT_EQ(stopReasonName(StopReason::kConverged), "converged");
  EXPECT_EQ(stopReasonName(StopReason::kMaxIterations), "max-iterations");
  EXPECT_EQ(stopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_EQ(stopReasonName(StopReason::kAbortedNonFinite),
            "aborted-non-finite");
}

}  // namespace
}  // namespace mosaic
