#include "io/glp.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "geometry/polygon.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

bool isNumberToken(const std::string& token) {
  if (token.empty()) return false;
  std::size_t i = (token[0] == '-' || token[0] == '+') ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

/// Coordinates beyond +-1e9 nm (a meter of silicon) are rejected as
/// overflow: they cannot be real geometry, and letting them through would
/// overflow extent/area arithmetic downstream.
constexpr int kMaxAbsCoordNm = 1000000000;

int parseNumber(const std::string& token) {
  int value = 0;
  try {
    value = std::stoi(token);
  } catch (const std::out_of_range&) {
    throw InvalidArgument("GLP: coordinate overflow: " + token);
  } catch (const std::exception&) {
    throw InvalidArgument("GLP: bad coordinate token: " + token);
  }
  if (value > kMaxAbsCoordNm || value < -kMaxAbsCoordNm) {
    throw InvalidArgument("GLP: coordinate overflow: " + token);
  }
  return value;
}

struct RawShapes {
  std::vector<RectNm> rects;  ///< in file coordinates (possibly negative)
};

RawShapes parseTokens(std::istream& in) {
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);

  RawShapes shapes;
  std::size_t i = 0;
  auto skipShapeHeader = [&](const char* record) {
    // <direction> <layer>, e.g. "N M1".
    MOSAIC_CHECK(i + 2 <= tokens.size(),
                 "GLP: truncated " << record << " record");
    i += 2;
  };
  while (i < tokens.size()) {
    std::string keyword = tokens[i];
    std::transform(keyword.begin(), keyword.end(), keyword.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (keyword == "RECT") {
      ++i;
      skipShapeHeader("RECT");
      MOSAIC_CHECK(i + 4 <= tokens.size(), "GLP: truncated RECT coordinates");
      const int x0 = parseNumber(tokens[i]);
      const int y0 = parseNumber(tokens[i + 1]);
      const int x1 = parseNumber(tokens[i + 2]);
      const int y1 = parseNumber(tokens[i + 3]);
      i += 4;
      // Inverted corners encode negative area; treat them as corruption
      // rather than silently normalizing.
      MOSAIC_CHECK(x1 > x0 && y1 > y0,
                   "GLP: zero/negative-area RECT record ("
                       << x0 << " " << y0 << " " << x1 << " " << y1 << ")");
      RectNm rect{x0, y0, x1, y1};
      MOSAIC_CHECK(rect.valid(), "GLP: degenerate RECT record");
      shapes.rects.push_back(rect);
    } else if (keyword == "PGON") {
      ++i;
      skipShapeHeader("PGON");
      PolygonNm polygon;
      while (i + 1 < tokens.size() && isNumberToken(tokens[i]) &&
             isNumberToken(tokens[i + 1])) {
        polygon.vertices.push_back(
            {parseNumber(tokens[i]), parseNumber(tokens[i + 1])});
        i += 2;
      }
      MOSAIC_CHECK(!(i < tokens.size() && isNumberToken(tokens[i])),
                   "GLP: odd coordinate count in PGON record");
      MOSAIC_CHECK(polygon.vertices.size() >= 4,
                   "GLP: unterminated PGON record ("
                       << polygon.vertices.size()
                       << " vertices, need at least 4)");
      for (const auto& rect : decomposeRectilinear(polygon)) {
        shapes.rects.push_back(rect);
      }
    } else if (keyword == "EQUIV") {
      // EQUIV <num> <denom> <unit> <axes> -- ignored (coordinates are
      // consumed verbatim; the contest clips are 1 unit = 1 nm).
      MOSAIC_CHECK(i + 5 <= tokens.size(), "GLP: truncated EQUIV record");
      i += 5;
    } else if (keyword == "CNAME" || keyword == "LEVEL" ||
               keyword == "CELL") {
      MOSAIC_CHECK(i + 2 <= tokens.size(),
                   "GLP: truncated " << keyword << " record");
      i += 2;
    } else if (keyword == "BEGIN" || keyword == "ENDMSG" ||
               keyword == "END") {
      ++i;
    } else {
      throw InvalidArgument("GLP: unknown record keyword: " + tokens[i]);
    }
  }
  return shapes;
}

}  // namespace

Layout readGlp(std::istream& in, const std::string& name,
               const GlpReadOptions& options) {
  MOSAIC_CHECK(options.clipSizeNm > 0, "clip size must be positive");
  MOSAIC_SPAN("io.glp.read");
  MOSAIC_FAILPOINT("io.glp.parse");
  RawShapes shapes = parseTokens(in);
  MOSAIC_CHECK(!shapes.rects.empty(), "GLP: no shapes in " << name);

  int dx = 0;
  int dy = 0;
  if (options.recenter) {
    int minX = std::numeric_limits<int>::max();
    int minY = std::numeric_limits<int>::max();
    int maxX = std::numeric_limits<int>::min();
    int maxY = std::numeric_limits<int>::min();
    for (const auto& r : shapes.rects) {
      minX = std::min(minX, r.x0);
      minY = std::min(minY, r.y0);
      maxX = std::max(maxX, r.x1);
      maxY = std::max(maxY, r.y1);
    }
    MOSAIC_CHECK(maxX - minX <= options.clipSizeNm &&
                     maxY - minY <= options.clipSizeNm,
                 "GLP: pattern extent " << (maxX - minX) << "x"
                                        << (maxY - minY)
                                        << " nm exceeds the clip window");
    dx = (options.clipSizeNm - (maxX - minX)) / 2 - minX;
    dy = (options.clipSizeNm - (maxY - minY)) / 2 - minY;
  }

  Layout layout;
  layout.name = name;
  layout.sizeNm = options.clipSizeNm;
  for (const auto& r : shapes.rects) {
    layout.addRect(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy);
  }
  return layout;
}

Layout readGlpFile(const std::string& path, const GlpReadOptions& options) {
  std::ifstream in(path);
  MOSAIC_CHECK(in.good(), "cannot open GLP file: " << path);
  // File stem as the layout name.
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return readGlp(in, name, options);
}

void writeGlp(std::ostream& out, const Layout& layout) {
  MOSAIC_SPAN("io.glp.write");
  out << "BEGIN\n";
  out << "EQUIV  1  1000  MICRON  +X,+Y\n";
  out << "CNAME " << layout.name << "\n";
  out << "LEVEL M1\n\n";
  for (const auto& r : layout.rects) {
    out << "   RECT N M1 " << r.x0 << " " << r.y0 << " " << r.x1 << " "
        << r.y1 << "\n";
  }
  out << "\nENDMSG\n";
}

void writeGlpFile(const std::string& path, const Layout& layout) {
  std::ofstream out(path);
  MOSAIC_CHECK(out.good(), "cannot open for writing: " << path);
  writeGlp(out, layout);
  MOSAIC_CHECK(out.good(), "write failed: " << path);
}

}  // namespace mosaic
