
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/kernel_cache.cpp" "src/litho/CMakeFiles/mosaic_litho.dir/kernel_cache.cpp.o" "gcc" "src/litho/CMakeFiles/mosaic_litho.dir/kernel_cache.cpp.o.d"
  "/root/repo/src/litho/kernels.cpp" "src/litho/CMakeFiles/mosaic_litho.dir/kernels.cpp.o" "gcc" "src/litho/CMakeFiles/mosaic_litho.dir/kernels.cpp.o.d"
  "/root/repo/src/litho/pupil.cpp" "src/litho/CMakeFiles/mosaic_litho.dir/pupil.cpp.o" "gcc" "src/litho/CMakeFiles/mosaic_litho.dir/pupil.cpp.o.d"
  "/root/repo/src/litho/simulator.cpp" "src/litho/CMakeFiles/mosaic_litho.dir/simulator.cpp.o" "gcc" "src/litho/CMakeFiles/mosaic_litho.dir/simulator.cpp.o.d"
  "/root/repo/src/litho/tcc.cpp" "src/litho/CMakeFiles/mosaic_litho.dir/tcc.cpp.o" "gcc" "src/litho/CMakeFiles/mosaic_litho.dir/tcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mosaic_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mosaic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
