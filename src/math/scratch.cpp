#include "math/scratch.hpp"

#include <vector>

#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace scratch {
namespace {

/// Free lists are intentionally tiny: the deepest nesting in the library
/// is two or three live temporaries per thread, and every cached 1024 grid
/// is 16 MB. Overflow is simply freed.
constexpr std::size_t kMaxCachedPerThread = 6;

template <typename GridT>
struct ThreadPool {
  std::vector<std::unique_ptr<GridT>> freeList;
};

template <typename GridT>
ThreadPool<GridT>& threadPool() {
  thread_local ThreadPool<GridT> pool;
  return pool;
}

template <typename GridT>
std::unique_ptr<GridT> acquire(int rows, int cols) {
  auto& list = threadPool<GridT>().freeList;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i]->rows() == rows && list[i]->cols() == cols) {
      std::unique_ptr<GridT> grid = std::move(list[i]);
      list[i] = std::move(list.back());
      list.pop_back();
      static telemetry::Counter& hits =
          telemetry::metrics().counter("scratch.hit");
      hits.add();
      return grid;
    }
  }
  static telemetry::Counter& misses =
      telemetry::metrics().counter("scratch.miss");
  misses.add();
  return std::make_unique<GridT>(rows, cols);
}

template <typename GridT>
void release(std::unique_ptr<GridT> grid) {
  if (!grid) return;
  auto& list = threadPool<GridT>().freeList;
  if (list.size() < kMaxCachedPerThread) list.push_back(std::move(grid));
}

}  // namespace

namespace detail {

std::unique_ptr<RealGrid> acquireReal(int rows, int cols) {
  return acquire<RealGrid>(rows, cols);
}
void releaseReal(std::unique_ptr<RealGrid> grid) {
  release<RealGrid>(std::move(grid));
}
std::unique_ptr<ComplexGrid> acquireComplex(int rows, int cols) {
  return acquire<ComplexGrid>(rows, cols);
}
void releaseComplex(std::unique_ptr<ComplexGrid> grid) {
  release<ComplexGrid>(std::move(grid));
}

}  // namespace detail

void clearThreadPool() {
  threadPool<RealGrid>().freeList.clear();
  threadPool<ComplexGrid>().freeList.clear();
}

}  // namespace scratch
}  // namespace mosaic
