file(REMOVE_RECURSE
  "CMakeFiles/fig5_examples.dir/fig5_examples.cpp.o"
  "CMakeFiles/fig5_examples.dir/fig5_examples.cpp.o.d"
  "fig5_examples"
  "fig5_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
