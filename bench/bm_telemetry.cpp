/// \file bm_telemetry.cpp
/// Telemetry overhead measurement (docs/observability.md): times a fixed
/// FFT workload four ways -- uninstrumented, spans with tracing disabled
/// (histograms only; the always-on production state), spans with tracing
/// enabled, and spans plus a per-op progress publish to a watcher-less
/// ProgressBus (the serve streaming path when nobody is watching) -- plus
/// the raw cost of an empty span and the Prometheus /metrics encode cost.
/// Reports the relative overheads, emits BENCH_telemetry.json, and with
/// --max-overhead-pct N exits nonzero when either the disabled-mode or the
/// idle-sink overhead exceeds N percent (the guarantee the docs advertise;
/// enforced by the telemetry_overhead ctest at 3 %).
///
/// The workload uses the 1-D FftPlan directly: unlike Fft2d::forward it
/// carries no MOSAIC_SPAN itself, so the uninstrumented variant is a true
/// zero-telemetry baseline within one binary.

#include <complex>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "math/fft.hpp"
#include "serve/progress.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/prometheus.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int fftSize = 4096;
  int iters = 300;
  int reps = 7;
  double maxOverheadPct = -1.0;
  std::string jsonPath = "BENCH_telemetry.json";

  CliParser cli("bm_telemetry",
                "overhead of MOSAIC_SPAN instrumentation on an FFT workload");
  cli.addInt("fft-size", &fftSize, "1-D FFT length per instrumented call");
  cli.addInt("iters", &iters, "FFT round-trips per timed repetition");
  cli.addInt("reps", &reps, "repetitions (minimum is reported)");
  cli.addDouble("max-overhead-pct", &maxOverheadPct,
                "fail when disabled-mode overhead exceeds this (<0 = off)");
  cli.addString("json", &jsonPath, "output JSON path");
  try {
    if (!cli.parse(argc, argv)) return 0;
    MOSAIC_CHECK(iters > 0 && reps > 0, "iters and reps must be positive");

    const FftPlan plan(static_cast<std::size_t>(fftSize));
    std::vector<std::complex<double>> data(
        static_cast<std::size_t>(fftSize));
    for (int i = 0; i < fftSize; ++i) {
      data[static_cast<std::size_t>(i)] = {1.0 + (i % 7), 0.5 * (i % 3)};
    }
    // forward + inverse leaves the data unchanged up to rounding, so every
    // iteration transforms the same magnitudes (no drift to inf).
    auto op = [&] {
      plan.forward(data.data());
      plan.inverse(data.data());
    };

    // Minimum over repetitions rejects scheduler noise; each repetition is
    // tens of milliseconds so the span cost is amortized over real work,
    // matching how the production spans wrap multi-microsecond calls.
    auto timeVariant = [&](auto&& body) {
      double best = 0.0;
      for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        for (int i = 0; i < iters; ++i) body();
        const double s = timer.seconds();
        if (r == 0 || s < best) best = s;
      }
      return best;
    };

    op();  // touch everything once before timing

    const double tBase = timeVariant(op);

    telemetry::setTraceEnabled(false);
    const double tDisabled = timeVariant([&] {
      MOSAIC_SPAN("bm.fft_roundtrip");
      op();
    });

    telemetry::setTraceEnabled(true);
    telemetry::clearTrace();
    const double tEnabled = timeVariant([&] {
      MOSAIC_SPAN("bm.fft_roundtrip");
      op();
    });
    telemetry::setTraceEnabled(false);
    telemetry::clearTrace();

    // Streaming progress with no watcher attached: every op also builds
    // and publishes one event to a subscriber-less ProgressBus topic, the
    // state a serving daemon is in whenever a job runs unwatched. This is
    // the per-iteration cost OptimizeOptions::progressSink adds.
    serve::ProgressBus bus;
    int sinkIteration = 0;
    const double tSink = timeVariant([&] {
      MOSAIC_SPAN("bm.fft_roundtrip");
      op();
      serve::ProgressEvent event;
      event.job = "bm-job";
      event.seq = bus.nextSeq(event.job);
      event.iteration = ++sinkIteration;
      event.objective = 1.0;
      event.fTarget = 0.5;
      event.fPvb = 0.5;
      event.gradRms = 0.1;
      event.wallMs = 1.0;
      bus.publish(event);
    });

    // Raw per-span cost, histogram-only mode (the hot production path).
    constexpr int kEmptySpans = 1000000;
    WallTimer emptyTimer;
    for (int i = 0; i < kEmptySpans; ++i) {
      MOSAIC_SPAN("bm.empty");
    }
    const double nsPerSpan = emptyTimer.seconds() * 1e9 / kEmptySpans;

    // Prometheus /metrics encode cost: render a snapshot shaped like a
    // busy daemon's registry (every scrape pays this on the endpoint
    // thread, never on a worker).
    {
      auto& reg = telemetry::metrics();
      for (int i = 0; i < 16; ++i) {
        reg.counter("bm.counter_" + std::to_string(i)).add(1000 + i);
        reg.gauge("bm.gauge_" + std::to_string(i)).set(i * 1.5);
      }
      for (int i = 0; i < 8; ++i) {
        auto& h = reg.histogram("bm.hist_" + std::to_string(i));
        for (int j = 0; j < 4096; ++j) h.record((j * 37) % 100000);
      }
    }
    const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
    constexpr int kEncodes = 2000;
    std::size_t promBytes = 0;
    WallTimer encodeTimer;
    for (int i = 0; i < kEncodes; ++i) {
      promBytes = telemetry::toPrometheusText(snap).size();
    }
    const double usPerEncode = encodeTimer.seconds() * 1e6 / kEncodes;

    const double usPerOp = tBase * 1e6 / iters;
    auto overheadPct = [&](double t) {
      return std::max(0.0, (t - tBase) / tBase * 100.0);
    };
    const double disabledPct = overheadPct(tDisabled);
    const double enabledPct = overheadPct(tEnabled);
    const double sinkPct = overheadPct(tSink);

    std::printf("== bm_telemetry: %d-pt FFT round-trip (%.1f us/op), "
                "%d iters x %d reps ==\n",
                fftSize, usPerOp, iters, reps);
    TextTable table;
    table.setHeader({"variant", "time (s)", "overhead"});
    table.addRow({"uninstrumented", TextTable::num(tBase, 4), "-"});
    table.addRow({"spans, tracing off", TextTable::num(tDisabled, 4),
                  TextTable::num(disabledPct, 2) + " %"});
    table.addRow({"spans, tracing on", TextTable::num(tEnabled, 4),
                  TextTable::num(enabledPct, 2) + " %"});
    table.addRow({"spans + idle progress sink", TextTable::num(tSink, 4),
                  TextTable::num(sinkPct, 2) + " %"});
    std::printf("%s", table.render().c_str());
    std::printf("empty span: %.0f ns (histogram record, tracing off)\n",
                nsPerSpan);
    std::printf("prometheus encode: %.1f us for %zu bytes "
                "(%zu counters, %zu gauges, %zu histograms)\n",
                usPerEncode, promBytes, snap.counters.size(),
                snap.gauges.size(), snap.histograms.size());

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json,
                 "{\n  \"bench\": \"bm_telemetry\",\n"
                 "  \"fft_size\": %d,\n  \"iters\": %d,\n  \"reps\": %d,\n"
                 "  \"us_per_op\": %.3f,\n"
                 "  \"baseline_s\": %.6f,\n"
                 "  \"disabled_s\": %.6f,\n"
                 "  \"enabled_s\": %.6f,\n"
                 "  \"idle_sink_s\": %.6f,\n"
                 "  \"disabled_overhead_pct\": %.4f,\n"
                 "  \"enabled_overhead_pct\": %.4f,\n"
                 "  \"idle_sink_overhead_pct\": %.4f,\n"
                 "  \"empty_span_ns\": %.1f,\n"
                 "  \"prometheus_encode_us\": %.2f,\n"
                 "  \"prometheus_bytes\": %zu\n}\n",
                 fftSize, iters, reps, usPerOp, tBase, tDisabled, tEnabled,
                 tSink, disabledPct, enabledPct, sinkPct, nsPerSpan,
                 usPerEncode, promBytes);
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (maxOverheadPct >= 0.0 && disabledPct > maxOverheadPct) {
      std::fprintf(stderr,
                   "bm_telemetry: disabled-mode overhead %.2f %% exceeds "
                   "the %.2f %% budget\n",
                   disabledPct, maxOverheadPct);
      return 1;
    }
    if (maxOverheadPct >= 0.0 && sinkPct > maxOverheadPct) {
      std::fprintf(stderr,
                   "bm_telemetry: idle-progress-sink overhead %.2f %% "
                   "exceeds the %.2f %% budget\n",
                   sinkPct, maxOverheadPct);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_telemetry: %s\n", e.what());
    return 1;
  }
  return 0;
}
