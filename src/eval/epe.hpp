#pragma once
/// \file epe.hpp
/// Edge placement error measurement (paper Fig. 3). For every sample point
/// on the target boundary, the printed edge is located along the direction
/// perpendicular to the edge and the displacement is compared against the
/// EPE constraint th_epe.

#include <vector>

#include "geometry/edges.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// EPE at a single sample point.
struct EpeSampleResult {
  SamplePoint sample;
  /// Signed displacement in nm; positive means the printed edge lies
  /// outside the target (over-print). Set to +-(searchRange + pixel) when
  /// no printed edge was found within the search range.
  double epeNm = 0.0;
  bool edgeFound = false;
  bool violation = false;
};

struct EpeResult {
  std::vector<EpeSampleResult> perSample;
  int violations = 0;
  double maxAbsEpeNm = 0.0;
  double meanAbsEpeNm = 0.0;
};

/// Measure EPE of a printed binary image against the target.
/// \param samples sample points from extractSamples(target, ...)
/// \param pixelNm raster pitch
/// \param thresholdNm th_epe (paper: 15 nm)
/// \param searchRangeNm how far to look for the printed edge before
///        declaring it lost (counts as a violation); default 4x threshold.
EpeResult measureEpe(const BitGrid& printed, const BitGrid& target,
                     const std::vector<SamplePoint>& samples, int pixelNm,
                     double thresholdNm, double searchRangeNm = 0.0);

/// Sub-pixel EPE from the aerial image: the printed edge position is the
/// linear interpolation of the threshold crossing between pixel centers
/// along the perpendicular, which removes the raster quantization of
/// measureEpe (useful at coarse pitches). Semantics otherwise match
/// measureEpe.
EpeResult measureEpeAerial(const RealGrid& aerial, double threshold,
                           const BitGrid& target,
                           const std::vector<SamplePoint>& samples,
                           int pixelNm, double thresholdNm,
                           double searchRangeNm = 0.0);

}  // namespace mosaic
