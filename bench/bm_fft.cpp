/// \file bm_fft.cpp
/// Legacy-vs-new FFT engine benchmark (docs/performance.md). Times the
/// 2-D forward+inverse pair on the frozen legacy transforms (the seed
/// implementation: per-stage radix-2 butterflies, per-column
/// gather/scatter) against the rebuilt engine (fused stage pairs,
/// row-vector column butterflies) and its real-input/real-output fast
/// path, across grid sizes and thread counts. Each thread transforms its
/// own grid through the shared plan, which is the tile scheduler's access
/// pattern. Emits BENCH_fft.json; with --min-speedup S it exits nonzero
/// when the new engine is not at least S times faster than legacy at the
/// gate size (enforced at 1.0 -- "never slower" -- by the fft_perf_smoke
/// ctest; the recorded full-run numbers are the >= 2x evidence).

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "math/backend.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace mosaic;

ComplexGrid randomGrid(int n, std::uint64_t seed) {
  Rng rng(seed);
  ComplexGrid g(n, n);
  for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return g;
}

RealGrid randomRealGrid(int n, std::uint64_t seed) {
  Rng rng(seed);
  RealGrid g(n, n);
  for (auto& v : g) v = rng.uniform(0, 1);
  return g;
}

/// Runs `pair` (one forward+inverse round trip on a per-thread grid)
/// `iters` times on each of `threads` concurrent workers and returns the
/// best-of-`reps` wall time of one whole batch, in seconds.
template <typename PairFn>
double timeBatch(int threads, int iters, int reps, const PairFn& pair) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    if (threads <= 1) {
      for (int i = 0; i < iters; ++i) pair(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (int i = 0; i < iters; ++i) pair(t);
        });
      }
      for (auto& th : pool) th.join();
    }
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct Row {
  int size = 0;
  int threads = 0;
  double legacyMs = 0.0;
  double newMs = 0.0;
  double realMs = 0.0;
};

// ---------------------------------------------------------------------------
// Execution-backend series: the batched SOCS aerial + gradient hot path
// (docs/performance.md "Execution backends"). Synthetic pupil-disc
// kernels reproduce the sparsity structure the cpu_simd pruning exploits
// (support ~ a disc around DC, a few percent of rows at production size).
// ---------------------------------------------------------------------------

struct SyntheticKernels {
  std::vector<std::vector<int>> flat;
  std::vector<std::vector<std::complex<double>>> values;
  std::vector<exec::SpectrumView> views;
  std::vector<double> weights;

  SyntheticKernels(int n, int count) {
    // Radius chosen so the live-row fraction matches real SOCS kernel
    // sets (~5-6% of rows at 1024^2; see litho/kernels).
    const int radius = std::max(3, n / 36);
    Rng rng(42);
    for (int k = 0; k < count; ++k) {
      std::vector<int> f;
      std::vector<std::complex<double>> v;
      for (int r = 0; r < n; ++r) {
        const int fr = (r <= n / 2) ? r : r - n;
        for (int c = 0; c < n; ++c) {
          const int fc = (c <= n / 2) ? c : c - n;
          if (fr * fr + fc * fc > radius * radius) continue;
          f.push_back(r * n + c);
          v.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
        }
      }
      flat.push_back(std::move(f));
      values.push_back(std::move(v));
      weights.push_back(1.0 / (1.0 + k));
    }
    for (int k = 0; k < count; ++k) {
      views.push_back({flat[static_cast<std::size_t>(k)].data(),
                       values[static_cast<std::size_t>(k)].data(),
                       flat[static_cast<std::size_t>(k)].size()});
    }
  }
};

struct BackendRow {
  const char* backend = nullptr;
  int size = 0;
  double aerialMs = 0.0;
  double gradMs = 0.0;
  double speedup = 0.0;  ///< scalar total / this total
};

double maxAbsDiff(const RealGrid& a, const RealGrid& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

double maxAbsDiff(const ComplexGrid& a, const ComplexGrid& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  int gateSize = 1024;
  double minSpeedup = -1.0;
  bool smoke = false;
  bool simdSmoke = false;
  double simdGate = -1.0;
  std::string jsonPath = "BENCH_fft.json";

  CliParser cli("bm_fft",
                "legacy vs rebuilt FFT engine: 2-D forward+inverse pair");
  cli.addInt("reps", &reps, "repetitions per config (minimum is reported)");
  cli.addInt("gate-size", &gateSize, "grid size the --min-speedup gate uses");
  cli.addDouble("min-speedup", &minSpeedup,
                "fail when new is not this many times faster than legacy "
                "at the gate size, single thread (<0 = off)");
  cli.addFlag("smoke", &smoke,
              "gate size only, single thread (the tier-1 perf smoke)");
  cli.addFlag("simd-smoke", &simdSmoke,
              "backend series only, at the gate size (the fft_simd_smoke "
              "tier-1 test); skips cleanly without AVX2");
  cli.addDouble("simd-gate", &simdGate,
                "fail when cpu_simd is not this many times faster than "
                "cpu_scalar on the batched aerial+gradient path at the "
                "gate size, and verify scalar/SIMD equivalence (<0 = off)");
  cli.addString("json", &jsonPath, "output JSON path");
  try {
    if (!cli.parse(argc, argv)) return 0;
    MOSAIC_CHECK(reps > 0, "reps must be positive");
    MOSAIC_CHECK(Fft2d(gateSize, gateSize).rows() == gateSize,
                 "gate size must be a power of two");

    const std::vector<int> sizes =
        simdSmoke ? std::vector<int>{}
        : smoke   ? std::vector<int>{gateSize}
                  : std::vector<int>{256, 512, 1024, 2048};
    const std::vector<int> threadCounts =
        smoke ? std::vector<int>{1} : std::vector<int>{1, 2, 4};

    std::vector<Row> rows;
    double gateLegacyMs = 0.0;
    double gateNewMs = 0.0;

    for (const int n : sizes) {
      const Fft2d& fft = fft2dFor(n, n);
      // Keep each batch around the cost of a few 1024^2 pairs so small
      // sizes are timed over many iterations and large ones stay quick.
      const long long px = static_cast<long long>(n) * n;
      const int iters =
          std::max(1, static_cast<int>((1024LL * 1024 * 2) / px));

      const int maxThreads = threadCounts.back();
      std::vector<ComplexGrid> complexGrids;
      std::vector<RealGrid> realGrids;
      std::vector<ComplexGrid> spectra;
      std::vector<RealGrid> realOut;
      for (int t = 0; t < maxThreads; ++t) {
        complexGrids.push_back(randomGrid(n, 100u + static_cast<unsigned>(t)));
        realGrids.push_back(randomRealGrid(n, 200u + static_cast<unsigned>(t)));
        spectra.emplace_back(n, n);
        realOut.emplace_back(n, n);
      }

      for (const int threads : threadCounts) {
        Row row;
        row.size = n;
        row.threads = threads;
        const double scale = 1000.0 / iters;

        row.legacyMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          auto& g = complexGrids[static_cast<std::size_t>(t)];
          fft.forwardLegacy(g);
          fft.inverseLegacy(g);
        });
        row.newMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          auto& g = complexGrids[static_cast<std::size_t>(t)];
          fft.forward(g);
          fft.inverse(g);
        });
        row.realMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          const std::size_t i = static_cast<std::size_t>(t);
          fft.forwardRealInto(realGrids[i], spectra[i]);
          fft.inverseRealInto(spectra[i], realOut[i]);
        });
        rows.push_back(row);
        if (n == gateSize && threads == 1) {
          gateLegacyMs = row.legacyMs;
          gateNewMs = row.newMs;
        }
        std::printf("size %4d  threads %d  legacy %8.2f ms  new %8.2f ms "
                    "(%.2fx)  real %8.2f ms (%.2fx)\n",
                    n, threads, row.legacyMs, row.newMs,
                    row.legacyMs / row.newMs, row.realMs,
                    row.legacyMs / row.realMs);
        std::fflush(stdout);
      }
    }

    // ---- execution-backend series (batched SOCS aerial + gradient) ----
    std::vector<BackendRow> backendRows;
    bool simdSkipped = false;
    bool backendEquivOk = true;
    double gateSimdSpeedup = 0.0;
    if (!smoke) {
      if (simdSmoke && !exec::cpuHasAvx2()) {
        std::printf("fft_simd_smoke: CPU has no AVX2+FMA, skipping the "
                    "backend gate\n");
        simdSkipped = true;
      } else {
        const std::vector<int> backendSizes =
            simdSmoke ? std::vector<int>{gateSize}
                      : std::vector<int>{512, 1024};
        constexpr int kKernels = 24;  // one focus' SOCS kernel count
        for (const int n : backendSizes) {
          const Fft2d& fft = fft2dFor(n, n);
          const SyntheticKernels kern(n, kKernels);
          const ComplexGrid spectrum = randomGrid(n, 7);
          const RealGrid gField = randomRealGrid(n, 8);
          const exec::Backend* backends[] = {&exec::scalarBackend(),
                                             &exec::simdBackend(),
                                             &exec::simdFloatBackend()};
          RealGrid intensityRef(n, n, 0.0);
          ComplexGrid accumRef(n, n, {0.0, 0.0});
          double intensityScale = 1.0;
          double accumScale = 1.0;
          double scalarTotal = 0.0;
          for (const exec::Backend* backend : backends) {
            RealGrid intensity(n, n, 0.0);
            ComplexGrid accum(n, n, {0.0, 0.0});
            BackendRow row;
            row.backend = backend->name();
            row.size = n;
            row.aerialMs = 1000.0 * timeBatch(1, 1, reps, [&](int) {
              intensity.fill(0.0);
              backend->accumulateCoherentIntensity(
                  fft, spectrum, kern.views.data(), kern.weights.data(),
                  kKernels, 1.05, intensity);
            });
            row.gradMs = 1000.0 * timeBatch(1, 1, reps, [&](int) {
              accum.fill({0.0, 0.0});
              backend->accumulateGradientChains(
                  fft, spectrum, kern.views.data(), kern.weights.data(),
                  kKernels, gField, accum);
            });
            const double total = row.aerialMs + row.gradMs;
            if (backend == &exec::scalarBackend()) {
              scalarTotal = total;
              row.speedup = 1.0;
              intensityRef = intensity;
              accumRef = accum;
              for (const double v : intensityRef) {
                intensityScale = std::max(intensityScale, std::abs(v));
              }
              for (const auto& v : accumRef) {
                accumScale = std::max(accumScale, std::abs(v));
              }
            } else {
              row.speedup = scalarTotal / total;
              // Per-backend equivalence vs the scalar oracle, relative to
              // the result magnitude (f32 gets the documented loose
              // aerial tolerance; its gradient path is double).
              const bool isF32 = backend == &exec::simdFloatBackend();
              const double aerialRel =
                  maxAbsDiff(intensity, intensityRef) / intensityScale;
              const double gradRel =
                  maxAbsDiff(accum, accumRef) / accumScale;
              const double aerialTol = isF32 ? 1e-4 : 1e-9;
              if (aerialRel > aerialTol || gradRel > 1e-9) {
                backendEquivOk = false;
                std::fprintf(stderr,
                             "bm_fft: %s diverges from cpu_scalar at %d^2 "
                             "(aerial rel %.2e, grad rel %.2e)\n",
                             backend->name(), n, aerialRel, gradRel);
              }
              if (backend == &exec::simdBackend() && n == gateSize) {
                gateSimdSpeedup = row.speedup;
              }
            }
            backendRows.push_back(row);
            std::printf("backend %-12s size %4d  aerial %8.2f ms  grad "
                        "%8.2f ms  (%.2fx vs scalar)\n",
                        row.backend, n, row.aerialMs, row.gradMs,
                        row.speedup);
            std::fflush(stdout);
          }
        }
      }
    }

    TextTable table;
    table.setHeader({"size", "threads", "legacy ms", "new ms", "speedup",
                     "real ms", "real speedup"});
    for (const Row& row : rows) {
      table.addRow({std::to_string(row.size), std::to_string(row.threads),
                    TextTable::num(row.legacyMs, 2),
                    TextTable::num(row.newMs, 2),
                    TextTable::num(row.legacyMs / row.newMs, 2),
                    TextTable::num(row.realMs, 2),
                    TextTable::num(row.legacyMs / row.realMs, 2)});
    }
    if (!rows.empty()) {
      std::printf("\n== bm_fft: forward+inverse pair per thread, best of %d "
                  "reps ==\n%s",
                  reps, table.render().c_str());
    }

    if (!backendRows.empty()) {
      TextTable btable;
      btable.setHeader(
          {"backend", "size", "aerial ms", "grad ms", "vs scalar"});
      for (const BackendRow& row : backendRows) {
        btable.addRow({row.backend, std::to_string(row.size),
                       TextTable::num(row.aerialMs, 2),
                       TextTable::num(row.gradMs, 2),
                       TextTable::num(row.speedup, 2)});
      }
      std::printf("\n== bm_fft: batched SOCS aerial + gradient (24 kernels) "
                  "per backend ==\n%s",
                  btable.render().c_str());
    }

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json, "{\n  \"bench\": \"bm_fft\",\n  \"reps\": %d,\n"
                       "  \"pair\": \"forward+inverse per thread\",\n"
                       "  \"rows\": [\n", reps);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"size\": %d, \"threads\": %d, "
                   "\"legacy_ms\": %.3f, \"new_ms\": %.3f, "
                   "\"speedup\": %.3f, \"real_ms\": %.3f, "
                   "\"real_speedup\": %.3f}%s\n",
                   row.size, row.threads, row.legacyMs, row.newMs,
                   row.legacyMs / row.newMs, row.realMs,
                   row.legacyMs / row.realMs,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"backends\": [\n");
    for (std::size_t i = 0; i < backendRows.size(); ++i) {
      const BackendRow& row = backendRows[i];
      std::fprintf(json,
                   "    {\"backend\": \"%s\", \"size\": %d, "
                   "\"aerial_ms\": %.3f, \"grad_ms\": %.3f, "
                   "\"speedup_vs_scalar\": %.3f}%s\n",
                   row.backend, row.size, row.aerialMs, row.gradMs,
                   row.speedup, i + 1 < backendRows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (minSpeedup >= 0.0) {
      MOSAIC_CHECK(gateLegacyMs > 0.0,
                   "gate size " << gateSize << " was not measured");
      const double speedup = gateLegacyMs / gateNewMs;
      if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "bm_fft: new engine speedup %.2fx at %d^2 is below "
                     "the %.2fx gate\n",
                     speedup, gateSize, minSpeedup);
        return 1;
      }
      std::printf("gate: %.2fx >= %.2fx at %d^2, ok\n", speedup, minSpeedup,
                  gateSize);
    }

    if (simdGate >= 0.0 && !simdSkipped) {
      if (!backendEquivOk) {
        std::fprintf(stderr,
                     "bm_fft: backend equivalence check failed (above)\n");
        return 1;
      }
      MOSAIC_CHECK(gateSimdSpeedup > 0.0,
                   "cpu_simd at gate size " << gateSize
                                            << " was not measured");
      if (gateSimdSpeedup < simdGate) {
        std::fprintf(stderr,
                     "bm_fft: cpu_simd speedup %.2fx at %d^2 is below the "
                     "%.2fx gate\n",
                     gateSimdSpeedup, gateSize, simdGate);
        return 1;
      }
      std::printf("simd gate: %.2fx >= %.2fx at %d^2, equivalence ok\n",
                  gateSimdSpeedup, simdGate, gateSize);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_fft: %s\n", e.what());
    return 1;
  }
  return 0;
}
