#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

#include "support/error.hpp"
#include "support/telemetry/json.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::mutex g_sinkMutex;

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    default:
      return "unknown";
  }
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parseLogLevel(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

void setLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format));
}

LogFormat logFormat() { return static_cast<LogFormat>(g_format.load()); }

LogFormat parseLogFormat(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "text") return LogFormat::kText;
  if (lower == "json") return LogFormat::kJson;
  throw InvalidArgument("unknown log format: " + name);
}

namespace detail {

void logEmit(LogLevel level, const std::string& message) {
  // Monotonic timestamp on the telemetry clock so log lines line up with
  // trace spans from the same run.
  const double elapsed = static_cast<double>(telemetry::nowNs()) * 1e-9;
  const int tid = telemetry::threadId();

  std::string line;
  if (logFormat() == LogFormat::kJson) {
    telemetry::JsonObject o;
    o.set("ts", elapsed)
        .set("level", levelName(level))
        .set("tid", tid)
        .set("msg", message);
    line = o.str();
    line += '\n';
  } else {
    char prefix[64];
    std::snprintf(prefix, sizeof prefix, "[%9.3fs %s t%02d] ", elapsed,
                  levelTag(level), tid);
    line = prefix;
    line += message;
    line += '\n';
  }
  // One write per record: parallel emitters cannot interleave fragments.
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace mosaic
