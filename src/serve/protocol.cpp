#include "serve/protocol.hpp"

#include "support/error.hpp"
#include "support/telemetry/jsonin.hpp"
#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace serve {
namespace {

std::string errorResponse(const std::string& code,
                          const std::string& message) {
  telemetry::JsonObject obj;
  obj.set("ok", false);
  obj.set("error", code);
  obj.set("message", message);
  return obj.str();
}

void fillSnapshot(const JobSnapshot& snap, telemetry::JsonObject* obj) {
  obj->set("job", snap.spec.id);
  obj->set("state", jobStateName(snap.state));
  obj->set("case", snap.spec.caseName);
  obj->set("method", snap.spec.method);
  obj->set("attempts", snap.attempts);
  obj->set("iterations", snap.iterationsDone);
  if (snap.state == JobState::kDone) {
    obj->set("mask_hash", snap.maskHash);
    obj->set("objective", snap.objective);
  }
  obj->set("wall_s", snap.wallSeconds);
  if (!snap.error.empty()) obj->set("error_detail", snap.error);
  if (snap.recovered) obj->set("recovered", true);
  obj->set("phase", snap.phase);
  if (!snap.traceId.empty()) obj->set("trace", snap.traceId);
}

std::string handleSubmit(JobService& service,
                         const telemetry::JsonValue& req) {
  JobSpec spec;
  try {
    spec = specFromJson(req);
  } catch (const Error& e) {
    return errorResponse("bad_request", e.what());
  }
  const SubmitResult res = service.submit(spec);
  switch (res.status) {
    case SubmitStatus::kAccepted: {
      telemetry::JsonObject obj;
      obj.set("ok", true);
      obj.set("job", res.id);
      return obj.str();
    }
    case SubmitStatus::kQueueFull:
      return errorResponse("queue_full", res.message);
    case SubmitStatus::kShuttingDown:
      return errorResponse("shutting_down", res.message);
    case SubmitStatus::kBadRequest:
      return errorResponse("bad_request", res.message);
  }
  return errorResponse("internal", "unreachable submit status");
}

std::string handleStatus(JobService& service,
                         const telemetry::JsonValue& req) {
  const std::string id = req.stringOr("job", "");
  if (id.empty()) return errorResponse("bad_request", "missing job id");
  JobSnapshot snap;
  if (!service.snapshot(id, &snap)) {
    return errorResponse("not_found", "unknown job id: " + id);
  }
  telemetry::JsonObject obj;
  obj.set("ok", true);
  fillSnapshot(snap, &obj);
  return obj.str();
}

std::string handleResult(JobService& service,
                         const telemetry::JsonValue& req) {
  const std::string id = req.stringOr("job", "");
  if (id.empty()) return errorResponse("bad_request", "missing job id");
  JobSnapshot snap;
  if (!service.snapshot(id, &snap)) {
    return errorResponse("not_found", "unknown job id: " + id);
  }
  if (snap.state == JobState::kQueued || snap.state == JobState::kRunning) {
    return errorResponse("not_ready", "job is " +
                                          std::string(jobStateName(snap.state)));
  }
  telemetry::JsonObject obj;
  obj.set("ok", snap.state == JobState::kDone);
  if (snap.state != JobState::kDone) {
    obj.set("error", snap.state == JobState::kExpired ? "deadline_exceeded"
                     : snap.state == JobState::kCanceled ? "canceled"
                                                         : "internal");
    obj.set("message", snap.error);
  }
  fillSnapshot(snap, &obj);
  return obj.str();
}

std::string handleCancel(JobService& service,
                         const telemetry::JsonValue& req) {
  const std::string id = req.stringOr("job", "");
  if (id.empty()) return errorResponse("bad_request", "missing job id");
  std::string message;
  if (!service.cancel(id, &message)) {
    const bool unknown = message.rfind("unknown", 0) == 0;
    return errorResponse(unknown ? "not_found" : "bad_request", message);
  }
  telemetry::JsonObject obj;
  obj.set("ok", true);
  obj.set("job", id);
  return obj.str();
}

std::string handleStats(JobService& service) {
  const ServiceStats s = service.stats();
  telemetry::JsonObject obj;
  obj.set("ok", true);
  obj.set("queued", s.queued);
  obj.set("running", s.running);
  obj.set("done", s.done);
  obj.set("failed", s.failed);
  obj.set("canceled", s.canceled);
  obj.set("expired", s.expired);
  obj.set("submitted", s.submitted);
  obj.set("rejected", s.rejected);
  obj.set("retries", s.retries);
  obj.set("recovered", s.recoveredJobs);
  obj.set("workers", s.workers);
  obj.set("queue_capacity",
          static_cast<long long>(s.queueCapacity));
  // Selected serve metrics ride along so operators get latency numbers
  // without a separate metrics endpoint.
  const telemetry::HistogramStats wall =
      telemetry::metrics().histogram("serve.job_wall").stats();
  obj.set("job_wall_p50_ms", wall.p50Us / 1000.0);
  obj.set("job_wall_p95_ms", wall.p95Us / 1000.0);
  obj.set("job_wall_p99_ms", wall.p99Us / 1000.0);
  if (s.cacheEnabled) {
    obj.set("cache_entries", s.cache.entries);
    obj.set("cache_bytes", s.cache.bytes);
    obj.set("cache_exact",
            static_cast<unsigned long long>(s.cache.exactHits));
    obj.set("cache_warm", static_cast<unsigned long long>(
                              s.cache.translatedHits + s.cache.nearMissHits));
    obj.set("cache_miss", static_cast<unsigned long long>(s.cache.misses));
    obj.set("cache_inserts",
            static_cast<unsigned long long>(s.cache.inserts));
    obj.set("cache_evictions",
            static_cast<unsigned long long>(s.cache.evictions));
    obj.set("cache_hit_rate", s.cache.hitRate());
  }
  // Process resource gauges (getrusage), sampled at request time — the
  // same numbers GET /metrics exports as process.*.
  telemetry::updateProcessGauges();
  obj.set("process_peak_rss_mb",
          telemetry::metrics().gauge("process.peak_rss_mb").value());
  obj.set("process_user_cpu_sec",
          telemetry::metrics().gauge("process.user_cpu_sec").value());
  obj.set("process_sys_cpu_sec",
          telemetry::metrics().gauge("process.sys_cpu_sec").value());
  return obj.str();
}

/// watch op: validate the job, reply with its current snapshot, and hand
/// the server a subscription to stream from. Subscribing works for
/// terminal jobs too — the replay ring ends the stream immediately with
/// the terminal event.
ProtocolResult handleWatch(JobService& service,
                           const telemetry::JsonValue& req) {
  ProtocolResult result;
  const std::string id = req.stringOr("job", "");
  if (id.empty()) {
    result.response = errorResponse("bad_request", "missing job id");
    return result;
  }
  JobSnapshot snap;
  if (!service.snapshot(id, &snap)) {
    result.response = errorResponse("not_found", "unknown job id: " + id);
    return result;
  }
  telemetry::JsonObject obj;
  obj.set("ok", true);
  obj.set("watching", id);
  fillSnapshot(snap, &obj);
  result.response = obj.str();
  result.watch = service.progress().subscribe(id);
  // A job that reached its terminal state before this daemon published any
  // event for it (terminal in a previous incarnation, or a race between
  // the snapshot and the subscribe) has an open-but-silent topic; close it
  // with a synthesized end event so the watcher terminates. publish() on a
  // topic the worker already closed is a no-op, so a live stream never
  // sees two ends.
  JobSnapshot post;
  if (service.snapshot(id, &post) && post.state != JobState::kQueued &&
      post.state != JobState::kRunning) {
    service.progress().publishTerminal(id, jobStateName(post.state),
                                       post.iterationsDone, post.objective,
                                       post.wallSeconds * 1e3);
  }
  return result;
}

}  // namespace

std::string snapshotToJson(const JobSnapshot& snap) {
  telemetry::JsonObject obj;
  fillSnapshot(snap, &obj);
  return obj.str();
}

std::string progressEventToJson(const ProgressEvent& event) {
  telemetry::JsonObject obj;
  if (event.terminal) {
    obj.set("ev", "end");
    obj.set("job", event.job);
    obj.set("seq", event.seq);
    obj.set("state", event.state);
    obj.set("iteration", event.iteration);
    obj.set("F", event.objective);
    obj.set("wall_ms", event.wallMs);
    return obj.str();
  }
  obj.set("ev", "progress");
  obj.set("job", event.job);
  obj.set("seq", event.seq);
  obj.set("iteration", event.iteration);
  obj.set("F", event.objective);
  obj.set("F_target", event.fTarget);
  obj.set("F_pvb", event.fPvb);
  obj.set("grad_rms", event.gradRms);
  obj.set("wall_ms", event.wallMs);
  return obj.str();
}

ProtocolResult handleRequestLine(JobService& service,
                                 const std::string& line) {
  ProtocolResult result;
  telemetry::JsonValue req;
  try {
    req = telemetry::JsonValue::parse(line);
  } catch (const Error& e) {
    result.response = errorResponse("bad_request",
                                    std::string("malformed JSON: ") + e.what());
    return result;
  }
  const std::string op = req.stringOr("op", "");
  try {
    if (op == "ping") {
      telemetry::JsonObject obj;
      obj.set("ok", true);
      obj.set("pong", true);
      result.response = obj.str();
    } else if (op == "submit") {
      result.response = handleSubmit(service, req);
    } else if (op == "status") {
      result.response = handleStatus(service, req);
    } else if (op == "result") {
      result.response = handleResult(service, req);
    } else if (op == "cancel") {
      result.response = handleCancel(service, req);
    } else if (op == "stats") {
      result.response = handleStats(service);
    } else if (op == "watch") {
      result = handleWatch(service, req);
    } else if (op == "shutdown") {
      const std::string mode = req.stringOr("mode", "finish");
      if (mode != "finish" && mode != "checkpoint") {
        result.response = errorResponse(
            "bad_request", "shutdown mode must be finish|checkpoint");
        return result;
      }
      result.shutdown = true;
      result.shutdownMode =
          mode == "checkpoint" ? DrainMode::kCheckpoint : DrainMode::kFinish;
      telemetry::JsonObject obj;
      obj.set("ok", true);
      obj.set("shutting_down", mode);
      result.response = obj.str();
    } else {
      result.response =
          errorResponse("bad_request", "unknown op: " + op);
    }
  } catch (const std::exception& e) {
    // The protocol layer never lets an exception tear a connection down.
    result.response = errorResponse("internal", e.what());
  }
  return result;
}

}  // namespace serve
}  // namespace mosaic
