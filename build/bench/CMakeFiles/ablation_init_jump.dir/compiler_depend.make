# Empty compiler generated dependencies file for ablation_init_jump.
# This may be replaced when dependencies are built.
