file(REMOVE_RECURSE
  "CMakeFiles/fig4_pvband.dir/fig4_pvband.cpp.o"
  "CMakeFiles/fig4_pvband.dir/fig4_pvband.cpp.o.d"
  "fig4_pvband"
  "fig4_pvband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pvband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
