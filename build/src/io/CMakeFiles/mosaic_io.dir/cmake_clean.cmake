file(REMOVE_RECURSE
  "CMakeFiles/mosaic_io.dir/glp.cpp.o"
  "CMakeFiles/mosaic_io.dir/glp.cpp.o.d"
  "libmosaic_io.a"
  "libmosaic_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
