#include "eval/evaluator.hpp"

#include "geometry/edges.hpp"
#include "support/error.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {

CaseEvaluation evaluateMask(const LithoSimulator& sim, const RealGrid& mask,
                            const BitGrid& target, double runtimeSec,
                            const EvalConfig& config) {
  MOSAIC_SPAN("eval.case");
  const int pixelNm = sim.optics().pixelNm;
  MOSAIC_CHECK(config.sampleSpacingNm >= pixelNm,
               "sample spacing below pixel pitch");

  CaseEvaluation eval;
  eval.runtimeSec = runtimeSec;

  // One forward mask FFT for the whole evaluation: the nominal print and
  // every PV-band corner below share this spectrum. (Previously print()
  // and computePvBand() each recomputed it; the litho.mask_spectrum
  // counter pins the single-FFT contract in tests/test_backend.cpp.)
  const ComplexGrid spectrum = sim.maskSpectrum(mask);

  // Nominal print: EPE + shape.
  const BitGrid nominalPrint =
      sim.printBinary(sim.aerialFromSpectrum(spectrum, nominalCorner()));
  const auto samples = extractSamples(target, config.sampleSpacingNm / pixelNm);
  const EpeResult epe = measureEpe(nominalPrint, target, samples, pixelNm,
                                   config.epeThresholdNm);
  eval.epeViolations = epe.violations;
  eval.meanAbsEpeNm = epe.meanAbsEpeNm;
  eval.maxAbsEpeNm = epe.maxAbsEpeNm;

  const ShapeResult shape = analyzeShape(nominalPrint, target);
  eval.shapeViolations = shape.violations();
  eval.holes = shape.holes;
  eval.missingFeatures = shape.missingFeatures;

  // PV band across the full corner set, reusing the hoisted spectrum.
  const PvBandResult pvb = computePvBand(sim, spectrum, config.corners);
  eval.pvbandAreaNm2 = pvb.bandAreaNm2;

  eval.score = contestScore(runtimeSec, eval.pvbandAreaNm2,
                            eval.epeViolations, eval.shapeViolations,
                            config.weights);
  return eval;
}

}  // namespace mosaic
