# Empty compiler generated dependencies file for mask_export_and_mrc.
# This may be replaced when dependencies are built.
