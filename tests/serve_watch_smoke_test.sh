#!/usr/bin/env bash
# Tier-1 smoke test for streaming job progress (docs/serving.md,
# docs/observability.md): `mosaic_cli submit --watch <id> --wait` must
# receive pushed per-iteration events over the watch stream — not poll —
# and terminate on the stream's end event.
#
# The daemon is slowed with an optimizer.step delay fail point so the job
# is still running when the watch attaches; the client must then see
# "ev":"progress" lines with monotone iterations followed by exactly one
# "ev":"end" line, and still print the usual final result line.
#
# Usage: serve_watch_smoke_test.sh <mosaic_serve> <mosaic_cli> <scratch>

set -u

SERVE="$1"
CLI="$2"
SCRATCH="$3"

DAEMON_PID=""

fail() {
  echo "serve_watch_smoke: FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
}
trap cleanup EXIT

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/work"

# 100 ms per iteration stretches the 12-iteration job to >1 s, so the watch
# reliably attaches mid-run and sees live pushes (replayed events would
# pass too — the ring covers attach races — but this exercises the push
# path).
"$SERVE" --work-dir "$SCRATCH/work" --port 0 --workers 1 \
  --failpoints "optimizer.step:delay=100" >"$SCRATCH/serve.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 300); do
  [ -s "$SCRATCH/work/serve.port" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died at startup: $(cat "$SCRATCH/serve.log")"
  sleep 0.1
done
[ -s "$SCRATCH/work/serve.port" ] || fail "daemon never wrote serve.port"

OUT=$("$CLI" submit --port-file "$SCRATCH/work/serve.port" \
  --case B1 --method baseline --pixel 16 --iters 12) \
  || fail "submit failed: $OUT"
JOB=$(sed -n 's/.*"job":"\([^"]*\)".*/\1/p' <<<"$OUT" | head -1)
[ -n "$JOB" ] || fail "no job id in submit reply: $OUT"

WATCH_OUT=$("$CLI" submit --port-file "$SCRATCH/work/serve.port" \
  --watch "$JOB" --wait) || fail "watch failed: $WATCH_OUT"

PROGRESS_LINES=$(grep -c '"ev":"progress"' <<<"$WATCH_OUT")
END_LINES=$(grep -c '"ev":"end"' <<<"$WATCH_OUT")
[ "$PROGRESS_LINES" -ge 2 ] \
  || fail "want >=2 pushed progress events, got $PROGRESS_LINES: $WATCH_OUT"
[ "$END_LINES" -eq 1 ] || fail "want exactly 1 end event, got $END_LINES: $WATCH_OUT"

# Progress events carry the documented payload with monotone iterations.
grep -q '"ev":"progress".*"F":' <<<"$WATCH_OUT" || fail "progress event lacks F: $WATCH_OUT"
grep -q '"ev":"progress".*"grad_rms":' <<<"$WATCH_OUT" \
  || fail "progress event lacks grad_rms: $WATCH_OUT"
ITERS=$(sed -n 's/.*"ev":"progress".*"iteration":\([0-9]*\).*/\1/p' <<<"$WATCH_OUT")
LAST=0
for it in $ITERS; do
  [ "$it" -gt "$LAST" ] || fail "iterations not monotone: $ITERS"
  LAST=$it
done

# The end event closes the stream with the terminal state, and the final
# result line still reports the finished job the way --wait always has.
grep -q '"ev":"end".*"state":"done"' <<<"$WATCH_OUT" \
  || fail "end event does not say done: $WATCH_OUT"
LAST_LINE=$(tail -n 1 <<<"$WATCH_OUT")
grep -q '"state":"done"' <<<"$LAST_LINE" || fail "final line not done: $LAST_LINE"
grep -q '"mask_hash":"' <<<"$LAST_LINE" || fail "final line lacks mask_hash: $LAST_LINE"

# Watching a job that already finished must terminate immediately with the
# replayed/synthesized end event rather than hanging.
REWATCH=$(timeout 30 "$CLI" submit --port-file "$SCRATCH/work/serve.port" \
  --watch "$JOB" --wait) || fail "re-watch of finished job failed or hung"
grep -q '"ev":"end"' <<<"$REWATCH" || fail "re-watch saw no end event: $REWATCH"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "serve_watch_smoke: OK (job $JOB streamed $PROGRESS_LINES progress events)"
exit 0
