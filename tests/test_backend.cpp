/// Backend equivalence suite (ISSUE 9): cpu_scalar is the frozen oracle;
/// cpu_simd must agree to 1e-10 on aerial, gradient, and binary print
/// across non-square grids, non-power-of-two kernel counts, and
/// maxKernels-truncated sets; cpu_simd_f32 is accepted only within the
/// documented float32 tolerances (docs/performance.md).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <random>
#include <vector>

#include "eval/evaluator.hpp"
#include "eval/pvband.hpp"
#include "litho/simulator.hpp"
#include "math/backend.hpp"
#include "math/convolution.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"
#include "math/scratch.hpp"
#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace {

/// Deterministic pseudo-random complex grid.
ComplexGrid randomSpectrum(int rows, int cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  ComplexGrid grid(rows, cols);
  for (auto& v : grid) v = {dist(rng), dist(rng)};
  return grid;
}

RealGrid randomReal(int rows, int cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  RealGrid grid(rows, cols);
  for (auto& v : grid) v = dist(rng);
  return grid;
}

/// Synthetic band-limited kernel: support restricted to a disc of radius
/// `radius` around DC (in wrapped frequency coordinates), mimicking the
/// pupil-disc support of real SOCS kernels.
struct SyntheticKernel {
  std::vector<int> flatIndex;
  std::vector<std::complex<double>> values;

  SyntheticKernel(int rows, int cols, int radius, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int r = 0; r < rows; ++r) {
      const int fr = (r <= rows / 2) ? r : r - rows;
      for (int c = 0; c < cols; ++c) {
        const int fc = (c <= cols / 2) ? c : c - cols;
        if (fr * fr + fc * fc > radius * radius) continue;
        flatIndex.push_back(r * cols + c);
        values.push_back({dist(rng), dist(rng)});
      }
    }
  }

  [[nodiscard]] exec::SpectrumView view() const {
    return {flatIndex.data(), values.data(), flatIndex.size()};
  }
};

struct Fixture {
  int rows, cols;
  ComplexGrid spectrum;
  RealGrid gField;
  std::vector<SyntheticKernel> kernels;
  std::vector<exec::SpectrumView> views;
  std::vector<double> weights;

  Fixture(int r, int c, int kernelCount, unsigned seed = 7)
      : rows(r), cols(c),
        spectrum(randomSpectrum(r, c, seed)),
        gField(randomReal(r, c, seed + 1)) {
    for (int k = 0; k < kernelCount; ++k) {
      kernels.emplace_back(rows, cols, 3 + k % 4, seed + 10 + k);
      weights.push_back(1.0 / (1.0 + k));
    }
    for (const auto& kern : kernels) views.push_back(kern.view());
  }
};

double maxAbsDiff(const RealGrid& a, const RealGrid& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

double maxAbsDiff(const ComplexGrid& a, const ComplexGrid& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

void expectAerialEquivalence(const exec::Backend& test, int rows, int cols,
                             int kernelCount, double dose, double tol) {
  Fixture fx(rows, cols, kernelCount);
  const Fft2d& fft = fft2dFor(rows, cols);
  RealGrid ref(rows, cols, 0.0);
  RealGrid got(rows, cols, 0.0);
  exec::scalarBackend().accumulateCoherentIntensity(
      fft, fx.spectrum, fx.views.data(), fx.weights.data(), kernelCount,
      dose, ref);
  test.accumulateCoherentIntensity(fft, fx.spectrum, fx.views.data(),
                                   fx.weights.data(), kernelCount, dose,
                                   got);
  EXPECT_LT(maxAbsDiff(ref, got), tol)
      << test.name() << " aerial mismatch at " << rows << "x" << cols
      << " K=" << kernelCount << " dose=" << dose;
}

void expectGradientEquivalence(const exec::Backend& test, int rows, int cols,
                               int kernelCount, double tol) {
  Fixture fx(rows, cols, kernelCount);
  const Fft2d& fft = fft2dFor(rows, cols);
  ComplexGrid ref(rows, cols, {0.0, 0.0});
  ComplexGrid got(rows, cols, {0.0, 0.0});
  exec::scalarBackend().accumulateGradientChains(
      fft, fx.spectrum, fx.views.data(), fx.weights.data(), kernelCount,
      fx.gField, ref);
  test.accumulateGradientChains(fft, fx.spectrum, fx.views.data(),
                                fx.weights.data(), kernelCount, fx.gField,
                                got);
  EXPECT_LT(maxAbsDiff(ref, got), tol)
      << test.name() << " gradient mismatch at " << rows << "x" << cols
      << " K=" << kernelCount;
}

TEST(BackendRegistry, NamesResolveAndAutoIsSimd) {
  EXPECT_EQ(exec::findBackend("cpu_scalar"), &exec::scalarBackend());
  EXPECT_EQ(exec::findBackend("scalar"), &exec::scalarBackend());
  EXPECT_EQ(exec::findBackend("cpu_simd"), &exec::simdBackend());
  EXPECT_EQ(exec::findBackend("auto"), &exec::simdBackend());
  EXPECT_EQ(exec::findBackend("cpu_simd_f32"), &exec::simdFloatBackend());
  EXPECT_EQ(exec::findBackend("gpu_magic"), nullptr);
  EXPECT_STREQ(exec::scalarBackend().name(), "cpu_scalar");
  EXPECT_STREQ(exec::simdBackend().name(), "cpu_simd");
  EXPECT_STREQ(exec::simdFloatBackend().name(), "cpu_simd_f32");
  // Library default stays the frozen scalar oracle.
  EXPECT_FALSE(exec::scalarBackend().accelerated());
}

TEST(BackendEquivalence, AerialSquare) {
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 8, 1.0, 1e-10);
}

TEST(BackendEquivalence, AerialNonSquare) {
  expectAerialEquivalence(exec::simdBackend(), 32, 128, 6, 1.0, 1e-10);
  expectAerialEquivalence(exec::simdBackend(), 128, 32, 6, 1.0, 1e-10);
}

TEST(BackendEquivalence, AerialNonPow2KernelCount) {
  // 5 and 7 kernels exercise the partial final batch (batch width 4).
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 5, 1.0, 1e-10);
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 7, 1.0, 1e-10);
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 1, 1.0, 1e-10);
}

TEST(BackendEquivalence, AerialWithDose) {
  // Off-nominal dose exercises the backend-specific dose fold order.
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 8, 1.07, 1e-10);
  expectAerialEquivalence(exec::simdBackend(), 64, 64, 8, 0.93, 1e-10);
}

TEST(BackendEquivalence, AerialTinyGridFallsBackToScalar) {
  expectAerialEquivalence(exec::simdBackend(), 4, 4, 3, 1.1, 1e-14);
}

TEST(BackendEquivalence, GradientSquare) {
  expectGradientEquivalence(exec::simdBackend(), 64, 64, 8, 1e-10);
}

TEST(BackendEquivalence, GradientNonSquare) {
  expectGradientEquivalence(exec::simdBackend(), 32, 128, 6, 1e-10);
  expectGradientEquivalence(exec::simdBackend(), 128, 32, 6, 1e-10);
}

TEST(BackendEquivalence, GradientNonPow2KernelCount) {
  expectGradientEquivalence(exec::simdBackend(), 64, 64, 5, 1e-10);
  expectGradientEquivalence(exec::simdBackend(), 64, 64, 7, 1e-10);
}

TEST(BackendEquivalence, Float32AerialWithinTolerance) {
  // Documented float32 acceptance: relative aerial error vs the double
  // oracle stays below 1e-4 of the intensity range (docs/performance.md).
  Fixture fx(64, 64, 8);
  const Fft2d& fft = fft2dFor(64, 64);
  RealGrid ref(64, 64, 0.0);
  RealGrid got(64, 64, 0.0);
  exec::scalarBackend().accumulateCoherentIntensity(
      fft, fx.spectrum, fx.views.data(), fx.weights.data(), 8, 1.05, ref);
  exec::simdFloatBackend().accumulateCoherentIntensity(
      fft, fx.spectrum, fx.views.data(), fx.weights.data(), 8, 1.05, got);
  double range = 0.0;
  for (const auto& v : ref) range = std::max(range, std::abs(v));
  ASSERT_GT(range, 0.0);
  EXPECT_LT(maxAbsDiff(ref, got) / range, 1e-4);
}

TEST(BackendEquivalence, Float32GradientStaysDouble) {
  // The f32 backend delegates gradient chains to the double SIMD path.
  expectGradientEquivalence(exec::simdFloatBackend(), 64, 64, 6, 1e-10);
}

// ---------------------------------------------------------------------------
// Litho-level equivalence: the same checks through the real simulator with
// real SOCS kernels (coarse 8 nm pixel keeps the grid at 128^2).

OpticsConfig smallOptics() {
  OpticsConfig o;
  o.pixelNm = 8;
  return o;
}

ResistModel blurResist(double sigmaNm) {
  ResistModel r;
  r.diffusionSigmaNm = sigmaNm;
  return r;
}

/// Rectangle-plus-bar mask: asymmetric so flipped-index bugs can't cancel.
RealGrid testMask(int n) {
  RealGrid mask(n, n, 0.0);
  for (int r = n / 4; r < 3 * n / 4; ++r) {
    for (int c = n / 3; c < 2 * n / 3; ++c) mask(r, c) = 1.0;
  }
  for (int r = n / 8; r < n / 4; ++r) {
    for (int c = n / 8; c < 7 * n / 8; ++c) mask(r, c) = 1.0;
  }
  return mask;
}

TEST(LithoBackendEquivalence, AerialAndBinaryPrintMatchScalar) {
  LithoSimulator sim(smallOptics());
  const int n = sim.gridSize();
  const RealGrid mask = testMask(n);
  const ProcessCorner corner{25.0, 1.02};
  sim.setBackend(&exec::scalarBackend());
  const RealGrid refAerial = sim.aerial(mask, corner);
  const BitGrid refPrint = sim.printBinary(refAerial);
  sim.setBackend(&exec::simdBackend());
  const RealGrid gotAerial = sim.aerial(mask, corner);
  const BitGrid gotPrint = sim.printBinary(gotAerial);
  EXPECT_LT(maxAbsDiff(refAerial, gotAerial), 1e-10);
  EXPECT_EQ(refPrint, gotPrint);
}

TEST(LithoBackendEquivalence, MaxKernelsTruncation) {
  LithoSimulator sim(smallOptics());
  const RealGrid mask = testMask(sim.gridSize());
  const ComplexGrid spectrum = sim.maskSpectrum(mask);
  const ProcessCorner corner{0.0, 0.98};
  for (const int maxK : {1, 3, 24, 999}) {
    sim.setBackend(&exec::scalarBackend());
    const RealGrid ref = sim.aerialFromSpectrum(spectrum, corner, maxK);
    sim.setBackend(&exec::simdBackend());
    const RealGrid got = sim.aerialFromSpectrum(spectrum, corner, maxK);
    EXPECT_LT(maxAbsDiff(ref, got), 1e-10) << "maxKernels=" << maxK;
  }
  // A request beyond the set size clamps to the full sum (bit-identical
  // to maxKernels = 0 on the same backend).
  const RealGrid clamped = sim.aerialFromSpectrum(spectrum, corner, 999);
  const RealGrid full = sim.aerialFromSpectrum(spectrum, corner, 0);
  EXPECT_EQ(maxAbsDiff(clamped, full), 0.0);
}

// Satellite 3 regression: when an off-nominal dose combines with a resist
// blur, each must apply exactly once. Double-dose would make the aerial
// scale quadratically with dose; double-blur (or dose inside the blur)
// would break agreement with the manually assembled blur(dose * raw).
TEST(LithoBackendEquivalence, DoseAndBlurApplyExactlyOnce) {
  const double sigmaNm = 20.0;
  LithoSimulator plainSim(smallOptics());
  LithoSimulator blurSim(smallOptics(), blurResist(sigmaNm));
  const int n = plainSim.gridSize();
  const RealGrid mask = testMask(n);
  const ProcessCorner corner{25.0, 1.05};
  const exec::Backend* backends[] = {&exec::scalarBackend(),
                                     &exec::simdBackend()};
  for (const exec::Backend* backend : backends) {
    plainSim.setBackend(backend);
    blurSim.setBackend(backend);
    const ComplexGrid spectrum = plainSim.maskSpectrum(mask);

    // Dose linearity: I(dose) == dose * I(1) elementwise (blur is linear,
    // so this holds with the blur epilogue active too).
    const RealGrid unit =
        blurSim.aerialFromSpectrum(spectrum, {corner.focusNm, 1.0});
    const RealGrid dosed = blurSim.aerialFromSpectrum(spectrum, corner);
    RealGrid scaledUnit = unit;
    for (auto& v : scaledUnit) v *= corner.dose;
    EXPECT_LT(maxAbsDiff(dosed, scaledUnit), 1e-10)
        << backend->name() << ": dose applied more than once";

    // Blur applied exactly once, after the dose: the blurred-sim output
    // must match a single manual gaussianBlur of the unblurred aerial.
    const RealGrid raw = plainSim.aerialFromSpectrum(spectrum, corner);
    const RealGrid manual =
        gaussianBlur(raw, sigmaNm / plainSim.optics().pixelNm);
    EXPECT_LT(maxAbsDiff(dosed, manual), 1e-10)
        << backend->name() << ": blur/dose epilogue mismatch";
  }
}

// Satellite 1 regression: one full evaluation (nominal print + EPE + PV
// band over all corners) pays exactly one forward mask FFT.
TEST(LithoBackendEquivalence, OneMaskSpectrumPerEvaluation) {
  LithoSimulator sim(smallOptics());
  const RealGrid mask = testMask(sim.gridSize());
  const BitGrid target = thresholdGrid(mask, 0.5);
  telemetry::Counter& spectra =
      telemetry::metrics().counter("litho.mask_spectrum");
  const std::uint64_t before = spectra.value();
  (void)evaluateMask(sim, mask, target, 0.0);
  EXPECT_EQ(spectra.value() - before, 1u);
}

TEST(LithoBackendEquivalence, PvBandSpectrumOverloadIdentical) {
  LithoSimulator sim(smallOptics());
  const RealGrid mask = testMask(sim.gridSize());
  const std::vector<ProcessCorner> corners = evaluationCorners();
  const PvBandResult fromMask = computePvBand(sim, mask, corners);
  const PvBandResult fromSpectrum =
      computePvBand(sim, sim.maskSpectrum(mask), corners);
  EXPECT_EQ(fromMask.bandPixels, fromSpectrum.bandPixels);
  EXPECT_EQ(fromMask.band, fromSpectrum.band);
  EXPECT_EQ(fromMask.outer, fromSpectrum.outer);
  EXPECT_EQ(fromMask.inner, fromSpectrum.inner);
}

// Satellite 2: the resident-bytes accounting follows the pool through
// lease, release, and clearThreadPool, and the gauge mirrors it.
TEST(ScratchPool, ResidentBytesTracksPoolAndClear) {
  scratch::clearThreadPool();
  const long long base = scratch::residentBytes();
  {
    scratch::RealLease lease(32, 32);
    lease.grid().fill(1.0);
  }  // released back to this thread's free list
  const long long pooled = scratch::residentBytes();
  EXPECT_GE(pooled - base, static_cast<long long>(32 * 32 * sizeof(double)));
  EXPECT_DOUBLE_EQ(
      telemetry::metrics().gauge("scratch.resident_bytes").value(),
      static_cast<double>(pooled));
  scratch::clearThreadPool();
  EXPECT_EQ(scratch::residentBytes(), base);
  EXPECT_DOUBLE_EQ(
      telemetry::metrics().gauge("scratch.resident_bytes").value(),
      static_cast<double>(base));
}

}  // namespace
}  // namespace mosaic
