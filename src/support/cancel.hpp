#pragma once
/// \file cancel.hpp
/// Cooperative cancellation token shared between a controller (a signal
/// handler, the serve daemon's drain path, a client cancel request) and a
/// long-running computation (the ILT optimizer loop, the tile scheduler).
///
/// The token carries two independent stop conditions:
///   - an explicit cancel() flag, and
///   - an optional wall-clock deadline (steady clock).
/// Computations poll stopRequested() at safe points (typically once per
/// optimizer iteration) and unwind gracefully — checkpointing first if
/// checkpointing is armed — instead of being torn down mid-update.
///
/// cancel() is a single lock-free atomic store, so it is safe to call from
/// an async signal handler (see support/signal.hpp) and from any thread.

#include <atomic>
#include <chrono>

namespace mosaic {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Request cancellation. Idempotent, thread- and signal-safe.
  void cancel() { canceled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool canceled() const {
    return canceled_.load(std::memory_order_relaxed);
  }

  /// Arm a wall-clock deadline. Passing Clock::time_point{} clears it.
  void setDeadline(Clock::time_point deadline) {
    deadlineNs_.store(deadline.time_since_epoch().count(),
                      std::memory_order_relaxed);
  }

  /// Arm a deadline `seconds` from now (<= 0 clears it).
  void setDeadlineIn(double seconds) {
    if (seconds <= 0.0) {
      deadlineNs_.store(0, std::memory_order_relaxed);
      return;
    }
    setDeadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds)));
  }

  /// True iff a deadline is armed and has passed.
  [[nodiscard]] bool expired() const {
    const auto ns = deadlineNs_.load(std::memory_order_relaxed);
    return ns != 0 && Clock::now().time_since_epoch().count() >= ns;
  }

  /// The poll entry point for computations: canceled or past deadline.
  [[nodiscard]] bool stopRequested() const { return canceled() || expired(); }

  /// Clear both conditions (for token reuse in tests and the CLI).
  void reset() {
    canceled_.store(false, std::memory_order_relaxed);
    deadlineNs_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> canceled_{false};
  /// Deadline as steady-clock nanoseconds since epoch; 0 = no deadline.
  std::atomic<Clock::rep> deadlineNs_{0};
};

}  // namespace mosaic
