#include "support/telemetry/flightrec.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace telemetry {
namespace flightrec {
namespace {

struct Slot {
  std::atomic<std::uint64_t> seq{0};  // 1 + event seq; 0 = never written
  std::uint64_t tNs = 0;
  std::uint64_t trace = 0;
  int tid = 0;
  char kind[24] = {};
  char detail[160] = {};
};

Slot g_ring[kCapacity];
std::atomic<std::uint64_t> g_next{0};

char g_crashPath[512] = {};

/// Copy `src` into a fixed buffer, replacing bytes that would need JSON
/// escaping (quote, backslash, controls, DEL, non-ASCII) with spaces so
/// the dump path can emit slots verbatim inside string literals.
void copySanitized(char* dst, std::size_t cap, std::string_view src) {
  std::size_t n = 0;
  for (const char c : src) {
    if (n + 1 >= cap) break;
    const auto u = static_cast<unsigned char>(c);
    dst[n++] = (u < 0x20 || u >= 0x7f || c == '"' || c == '\\') ? ' ' : c;
  }
  dst[n] = '\0';
}

/// Format one slot as a JSONL line. Returns the line length (bounded by
/// `cap`). Pure snprintf so the crash handler can use it.
int formatSlot(char* buf, std::size_t cap, std::uint64_t seq, const Slot& s) {
  if (s.trace != 0) {
    return std::snprintf(
        buf, cap,
        "{\"seq\":%llu,\"t_ns\":%llu,\"tid\":%d,\"trace\":\"t-%016llx\","
        "\"kind\":\"%s\",\"detail\":\"%s\"}\n",
        static_cast<unsigned long long>(seq),
        static_cast<unsigned long long>(s.tNs), s.tid,
        static_cast<unsigned long long>(s.trace), s.kind, s.detail);
  }
  return std::snprintf(
      buf, cap,
      "{\"seq\":%llu,\"t_ns\":%llu,\"tid\":%d,"
      "\"kind\":\"%s\",\"detail\":\"%s\"}\n",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(s.tNs), s.tid, s.kind, s.detail);
}

/// Oldest seq still plausibly in the ring.
std::uint64_t dumpStart(std::uint64_t next) {
  return next > kCapacity ? next - kCapacity : 0;
}

void crashHandler(int signo) {
  // Record the signal itself so the dump's last line names the cause.
  const char* name = signo == SIGSEGV   ? "SIGSEGV"
                     : signo == SIGABRT ? "SIGABRT"
                     : signo == SIGBUS  ? "SIGBUS"
                                        : "signal";
  record("signal", name);
  if (g_crashPath[0] != '\0') dumpToFile(g_crashPath);
  // Re-raise with the default disposition so the wait status (core dump,
  // termination signal) is what the supervisor expects.
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void record(std::string_view kind, std::string_view detail) {
  const std::uint64_t seq = g_next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = g_ring[seq % kCapacity];
  // Mark the slot as in-flux (0) before touching the payload, so a
  // concurrent dump skips it rather than reading a torn record.
  slot.seq.store(0, std::memory_order_release);
  slot.tNs = nowNs();
  slot.trace = currentTraceId();
  slot.tid = threadId();
  copySanitized(slot.kind, sizeof slot.kind, kind);
  copySanitized(slot.detail, sizeof slot.detail, detail);
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::uint64_t eventCount() {
  return g_next.load(std::memory_order_relaxed);
}

std::string dumpJsonl() {
  std::string out;
  const std::uint64_t next = g_next.load(std::memory_order_acquire);
  char line[512];
  for (std::uint64_t seq = dumpStart(next); seq < next; ++seq) {
    const Slot& slot = g_ring[seq % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
    Slot copy;
    copy.tNs = slot.tNs;
    copy.trace = slot.trace;
    copy.tid = slot.tid;
    std::memcpy(copy.kind, slot.kind, sizeof copy.kind);
    std::memcpy(copy.detail, slot.detail, sizeof copy.detail);
    // Re-check: if a writer lapped us mid-copy the payload is torn.
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
    const int n = formatSlot(line, sizeof line, seq, copy);
    if (n > 0) out.append(line, static_cast<std::size_t>(
                                    std::min<int>(n, sizeof line - 1)));
  }
  return out;
}

void dumpTo(int fd) {
  const std::uint64_t next = g_next.load(std::memory_order_acquire);
  char line[512];
  for (std::uint64_t seq = dumpStart(next); seq < next; ++seq) {
    const Slot& slot = g_ring[seq % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
    const int n = formatSlot(line, sizeof line, seq, slot);
    if (n <= 0) continue;
    const auto len = static_cast<std::size_t>(
        std::min<int>(n, static_cast<int>(sizeof line) - 1));
    std::size_t off = 0;
    while (off < len) {
      const ssize_t w = ::write(fd, line + off, len - off);
      if (w <= 0) return;
      off += static_cast<std::size_t>(w);
    }
  }
}

bool dumpToFile(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dumpTo(fd);
  return ::close(fd) == 0;
}

bool dumpArmedPath() {
  if (g_crashPath[0] == '\0') return false;
  return dumpToFile(g_crashPath);
}

void installCrashHandlers(const std::string& path) {
  std::snprintf(g_crashPath, sizeof g_crashPath, "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &crashHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler restores SIG_DFL itself after dumping,
  // and SIGBUS shares the SIGSEGV treatment on mmap'd I/O failures.
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

void clearForTest() {
  for (Slot& slot : g_ring) slot.seq.store(0, std::memory_order_relaxed);
  g_next.store(0, std::memory_order_relaxed);
}

}  // namespace flightrec
}  // namespace telemetry
}  // namespace mosaic
