file(REMOVE_RECURSE
  "CMakeFiles/ablation_regularization.dir/ablation_regularization.cpp.o"
  "CMakeFiles/ablation_regularization.dir/ablation_regularization.cpp.o.d"
  "ablation_regularization"
  "ablation_regularization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
