/// Tests for the additional OPC method implementations: model-based
/// edge-fragmentation OPC and level-set ILT.

#include <gtest/gtest.h>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "math/stats.hpp"
#include "opc/baselines.hpp"
#include "opc/edge_opc.hpp"
#include "opc/levelset.hpp"
#include "opc/multires.hpp"
#include "suite/testcases.hpp"

namespace mosaic {
namespace {

LithoSimulator& sim8() {
  static LithoSimulator sim([] {
    OpticsConfig o;
    o.pixelNm = 8;
    return o;
  }());
  return sim;
}

BitGrid blockTarget(int n, int r0, int r1, int c0, int c1) {
  BitGrid g(n, n, 0);
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) g(r, c) = 1;
  }
  return g;
}

// ------------------------------------------------------------- fragments

TEST(EdgeFragments, CoverEveryEdgeExactly) {
  const BitGrid target = blockTarget(64, 20, 40, 10, 50);
  const auto fragments = fragmentEdges(target, 8);
  // Each boundary edge of the rect is covered by contiguous fragments.
  long long totalLength = 0;
  for (const auto& f : fragments) {
    totalLength += f.segment.length();
    EXPECT_EQ(f.biasPx, 0);
  }
  // Perimeter of a 20 x 40 pixel block.
  EXPECT_EQ(totalLength, 2 * (20 + 40));
}

TEST(EdgeFragments, RespectMaximumLength) {
  const BitGrid target = blockTarget(64, 20, 40, 10, 50);
  for (const auto& f : fragmentEdges(target, 8)) {
    // count = len / 8; base pieces are >= 8 and < 16.
    EXPECT_LE(f.segment.length(), 15);
    EXPECT_GE(f.segment.length(), 8);
  }
}

TEST(EdgeFragments, ShortEdgeSingleFragment) {
  const BitGrid target = blockTarget(32, 10, 14, 10, 14);  // 4x4 block
  const auto fragments = fragmentEdges(target, 10);
  EXPECT_EQ(fragments.size(), 4u);
}

TEST(EdgeFragments, InvalidLengthThrows) {
  const BitGrid target = blockTarget(16, 4, 8, 4, 8);
  EXPECT_THROW(fragmentEdges(target, 1), InvalidArgument);
}

TEST(EdgeFragments, GrowShrinkGeometry) {
  const BitGrid target = blockTarget(32, 10, 20, 10, 20);
  auto fragments = fragmentEdges(target, 32);  // one fragment per edge
  ASSERT_EQ(fragments.size(), 4u);
  // Grow every edge by 2 px: edges extend along their spans only, so the
  // four 2x2 corner blocks stay empty (14x14 minus 4 corners).
  for (auto& f : fragments) f.biasPx = 2;
  EXPECT_EQ(popcount(applyFragmentBiases(target, fragments)),
            14 * 14 - 4 * 4);
  // Shrink every edge by 2 px: block becomes 6 x 6.
  for (auto& f : fragments) f.biasPx = -2;
  EXPECT_EQ(popcount(applyFragmentBiases(target, fragments)), 6 * 6);
  // Mixed: zero bias reproduces the target.
  for (auto& f : fragments) f.biasPx = 0;
  EXPECT_EQ(applyFragmentBiases(target, fragments), target);
}

TEST(EdgeFragments, SingleEdgeMoveIsLocal) {
  const BitGrid target = blockTarget(32, 10, 20, 10, 20);
  auto fragments = fragmentEdges(target, 32);
  // Move only the top edge (horizontal, insideLow == true) out by 3.
  int moved = 0;
  for (auto& f : fragments) {
    if (f.segment.horizontal && f.segment.insideLow) {
      f.biasPx = 3;
      ++moved;
    }
  }
  ASSERT_EQ(moved, 1);
  const BitGrid out = applyFragmentBiases(target, fragments);
  EXPECT_EQ(popcount(out), 10 * 10 + 3 * 10);
}

// --------------------------------------------------------------- edgeOpc

TEST(EdgeOpc, ImprovesOverNoOpc) {
  const BitGrid target = rasterize(buildTestcase(1), 8);
  const CaseEvaluation before =
      evaluateMask(sim8(), noOpcMask(target), target, 0.0);
  EdgeOpcConfig cfg;
  cfg.maxIterations = 8;
  const EdgeOpcResult res = runEdgeOpc(sim8(), target, cfg);
  const CaseEvaluation after =
      evaluateMask(sim8(), toReal(res.mask), target, 0.0);
  EXPECT_LT(after.score, before.score);
  EXPECT_LE(after.epeViolations, before.epeViolations);
  EXPECT_GE(res.iterations, 1);
}

TEST(EdgeOpc, Deterministic) {
  const BitGrid target = rasterize(buildTestcase(4), 8);
  EdgeOpcConfig cfg;
  cfg.maxIterations = 5;
  const EdgeOpcResult a = runEdgeOpc(sim8(), target, cfg);
  const EdgeOpcResult b = runEdgeOpc(sim8(), target, cfg);
  EXPECT_EQ(a.mask, b.mask);
}

TEST(EdgeOpc, BiasesStayClamped) {
  const BitGrid target = rasterize(buildTestcase(3), 8);
  EdgeOpcConfig cfg;
  cfg.maxIterations = 6;
  cfg.maxBiasNm = 16;  // 2 px at 8 nm
  const EdgeOpcResult res = runEdgeOpc(sim8(), target, cfg);
  for (const auto& f : res.fragments) {
    EXPECT_LE(std::abs(f.biasPx), 2);
  }
}

// -------------------------------------------------------------- levelset

TEST(LevelSet, SignedDistanceSignsAndMagnitudes) {
  const BitGrid mask = blockTarget(16, 6, 10, 6, 10);
  const RealGrid phi = signedDistance(mask);
  // Deep inside is negative, far outside positive.
  EXPECT_LT(phi(8, 8), 0.0);
  EXPECT_GT(phi(0, 0), 0.0);
  // Magnitude grows with distance from the boundary.
  EXPECT_GT(phi(0, 0), phi(4, 8));
  // Boundary pixels sit half a pixel from the interface.
  EXPECT_NEAR(phi(6, 8), -0.5, 1e-12);
  EXPECT_NEAR(phi(5, 8), 0.5, 1e-12);
}

TEST(LevelSet, ZeroLevelSetReproducesMask) {
  const BitGrid mask = rasterize(buildTestcase(6), 8);
  const RealGrid phi = signedDistance(mask);
  for (int r = 0; r < mask.rows(); ++r) {
    for (int c = 0; c < mask.cols(); ++c) {
      EXPECT_EQ(phi(r, c) < 0.0, mask(r, c) != 0);
    }
  }
}

TEST(LevelSet, ImprovesOverNoOpc) {
  const BitGrid target = rasterize(buildTestcase(2), 8);
  const CaseEvaluation before =
      evaluateMask(sim8(), noOpcMask(target), target, 0.0);
  LevelSetConfig cfg;
  cfg.maxIterations = 12;
  const LevelSetResult res = runLevelSetIlt(sim8(), target, cfg);
  const CaseEvaluation after =
      evaluateMask(sim8(), toReal(res.mask), target, 0.0);
  EXPECT_LT(after.score, before.score);
  EXPECT_FALSE(res.objectiveHistory.empty());
}

TEST(LevelSet, BestObjectiveIsMinimumOfHistory) {
  const BitGrid target = rasterize(buildTestcase(1), 8);
  LevelSetConfig cfg;
  cfg.maxIterations = 10;
  const LevelSetResult res = runLevelSetIlt(sim8(), target, cfg);
  double minSeen = res.objectiveHistory.front();
  for (double v : res.objectiveHistory) minSeen = std::min(minSeen, v);
  EXPECT_DOUBLE_EQ(res.bestObjective, minSeen);
}

TEST(LevelSet, Deterministic) {
  const BitGrid target = rasterize(buildTestcase(7), 8);
  LevelSetConfig cfg;
  cfg.maxIterations = 6;
  const LevelSetResult a = runLevelSetIlt(sim8(), target, cfg);
  const LevelSetResult b = runLevelSetIlt(sim8(), target, cfg);
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.objectiveHistory, b.objectiveHistory);
}

// -------------------------------------------------------------- multires

LithoSimulator& sim16() {
  static LithoSimulator sim([] {
    OpticsConfig o;
    o.pixelNm = 16;
    return o;
  }());
  return sim;
}

TEST(Multires, CoarseToFineImprovesOverNoOpc) {
  const BitGrid target = rasterize(buildTestcase(4), 8);
  const CaseEvaluation before =
      evaluateMask(sim8(), noOpcMask(target), target, 0.0);
  MultiresConfig cfg;
  cfg.coarseIterations = 8;
  cfg.fineIterations = 4;
  const OpcResult res = runOpcMultires(sim16(), sim8(), target,
                                       OpcMethod::kMosaicFast, cfg);
  EXPECT_EQ(res.method, "MOSAIC_fast_multires");
  EXPECT_EQ(res.maskBinary.rows(), sim8().gridSize());
  EXPECT_EQ(res.iterations, static_cast<int>(res.history.size()));
  const CaseEvaluation after =
      evaluateMask(sim8(), res.maskTwoLevel, target, 0.0);
  EXPECT_LT(after.score, before.score);
}

TEST(Multires, Deterministic) {
  const BitGrid target = rasterize(buildTestcase(2), 8);
  MultiresConfig cfg;
  cfg.coarseIterations = 4;
  cfg.fineIterations = 2;
  const OpcResult a = runOpcMultires(sim16(), sim8(), target,
                                     OpcMethod::kMosaicFast, cfg);
  const OpcResult b = runOpcMultires(sim16(), sim8(), target,
                                     OpcMethod::kMosaicFast, cfg);
  EXPECT_EQ(a.maskBinary, b.maskBinary);
}

TEST(Multires, RejectsIncompatiblePitches) {
  const BitGrid target = rasterize(buildTestcase(1), 8);
  MultiresConfig cfg;
  // Same pitch: no valid factor.
  EXPECT_THROW(runOpcMultires(sim8(), sim8(), target,
                              OpcMethod::kMosaicFast, cfg),
               InvalidArgument);
  // Swapped coarse/fine.
  EXPECT_THROW(runOpcMultires(sim8(), sim16(),
                              rasterize(buildTestcase(1), 16),
                              OpcMethod::kMosaicFast, cfg),
               InvalidArgument);
}

TEST(LevelSet, InvalidConfigThrows) {
  const BitGrid target = rasterize(buildTestcase(1), 8);
  LevelSetConfig cfg;
  cfg.timeStep = 0.0;
  EXPECT_THROW(runLevelSetIlt(sim8(), target, cfg), InvalidArgument);
  cfg = LevelSetConfig{};
  cfg.maxIterations = 0;
  EXPECT_THROW(runLevelSetIlt(sim8(), target, cfg), InvalidArgument);
}

}  // namespace
}  // namespace mosaic
