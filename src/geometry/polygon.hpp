#pragma once
/// \file polygon.hpp
/// Rectilinear polygons and their decomposition into rectangles. The ICCAD
/// 2013 contest distributes clips as rectilinear polygons (GLP format);
/// the rasterizer and suite work on rectangle unions, so polygons are
/// decomposed on import with a horizontal sweep.

#include <vector>

#include "geometry/layout.hpp"

namespace mosaic {

/// A point in nm coordinates.
struct PointNm {
  int x = 0;
  int y = 0;
  bool operator==(const PointNm&) const = default;
};

/// A simple rectilinear polygon (implicitly closed, vertices in order,
/// alternating horizontal/vertical edges).
struct PolygonNm {
  std::vector<PointNm> vertices;

  [[nodiscard]] std::size_t vertexCount() const { return vertices.size(); }

  /// Signed area (positive for counter-clockwise orientation).
  [[nodiscard]] long long signedArea() const;

  /// |signedArea|.
  [[nodiscard]] long long area() const;

  /// Validates rectilinearity: every edge must be axis-parallel and
  /// non-degenerate, and the polygon needs at least 4 vertices.
  void validate() const;
};

/// Decompose a rectilinear polygon into disjoint axis-aligned rectangles
/// (horizontal slab sweep: one rectangle per maximal y-interval x covered
/// x-range). The union of the result equals the polygon's interior.
std::vector<RectNm> decomposeRectilinear(const PolygonNm& polygon);

/// Convert a rectangle to its 4-vertex polygon (counter-clockwise).
PolygonNm toPolygon(const RectNm& rect);

}  // namespace mosaic
