#include "support/telemetry/prometheus.hpp"

#include <cctype>
#include <cstdio>

#include "support/telemetry/json.hpp"

namespace mosaic {
namespace telemetry {
namespace {

void appendLine(std::string& out, const std::string& series,
                const std::string& labels, double value) {
  out += series;
  out += labels;
  out += ' ';
  out += jsonNumber(value);  // same %.12g rendering; NaN/Inf cannot occur here
  out += '\n';
}

void appendCount(std::string& out, const std::string& series,
                 const std::string& labels, std::uint64_t value) {
  out += series;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void appendType(std::string& out, const std::string& series,
                const char* type) {
  out += "# TYPE ";
  out += series;
  out += ' ';
  out += type;
  out += '\n';
}

/// Upper bound of bucket i as a le= label value. Bounds are exact powers
/// of two in microseconds, so integer rendering is lossless up to the
/// open-ended last bucket.
std::string bucketLabel(int index) {
  if (index >= Histogram::kBuckets - 1) return "+Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", Histogram::bucketUpperUs(index));
  return buf;
}

}  // namespace

std::string prometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string toPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024 + 128 * (snapshot.counters.size() + snapshot.gauges.size()) +
              2048 * snapshot.histograms.size());

  for (const auto& [name, value] : snapshot.counters) {
    std::string series = prometheusName(name);
    // The _total suffix is the Prometheus counter convention; applied
    // unless the source name already ends with it.
    if (series.size() < 6 || series.compare(series.size() - 6, 6, "_total") != 0) {
      series += "_total";
    }
    appendType(out, series, "counter");
    appendCount(out, series, "", value);
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string series = prometheusName(name);
    appendType(out, series, "gauge");
    appendLine(out, series, "", value);
  }

  for (const auto& [name, h] : snapshot.histograms) {
    // Latencies are recorded in microseconds; the unit goes into the name
    // per the Prometheus naming convention.
    const std::string series = prometheusName(name) + "_us";
    appendType(out, series, "histogram");
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h.buckets[static_cast<std::size_t>(i)];
      appendCount(out, series,
                  "_bucket{le=\"" + bucketLabel(i) + "\"}", cumulative);
    }
    appendLine(out, series, "_sum", h.sumUs);
    appendCount(out, series, "_count", h.count);
  }
  return out;
}

}  // namespace telemetry
}  // namespace mosaic
