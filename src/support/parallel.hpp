#pragma once
/// \file parallel.hpp
/// Persistent work-stealing executor behind a parallelFor helper
/// (docs/performance.md, "Threading model").
///
/// The process owns one lazily-started pool of long-lived worker threads,
/// each with its own task deque. parallelFor splits its range into chunk
/// tasks, pushes them onto the deques, and the calling thread helps
/// execute them until the range is done — so a call costs a few enqueue
/// operations and a wakeup, not a spawn+join of fresh std::threads.
/// Nested parallelism composes: a parallelFor issued from inside a task
/// enqueues subtasks onto the executing worker's own deque (LIFO, so the
/// worker keeps cache-hot work) and idle workers steal them — inner
/// pixel/corner loops and outer tile loops share one bounded worker set
/// instead of the inner level degrading to serial.
///
/// Error handling is cooperative: the first exception thrown by a task
/// aborts its task group — sibling chunks that have not started yet are
/// skipped (the abort flag is checked per chunk), and the exception is
/// rethrown on the waiting thread once the group drains.
///
/// Because workers are persistent, their thread-local state (notably the
/// scratch grid pool, math/scratch.hpp) stays warm across parallelFor
/// calls. Workers that stay idle past the trim interval run the
/// registered teardown hooks to drop that state, and every worker runs
/// them on pool resize/shutdown, so scratch.resident_bytes stays bounded.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace mosaic {

/// Number of worker threads the global pool targets (>= 1). This counts
/// the calling thread: a setting of N runs N-1 pool threads plus the
/// caller inside parallelFor.
int hardwareParallelism();

/// Override the global worker count (0 restores the hardware default).
/// If the pool is already running at a different size it is shut down
/// synchronously — every worker runs the registered teardown hooks and
/// joins — and the next parallelFor restarts it at the new size. Must not
/// be called while parallel work is in flight.
void setParallelism(int workers);

/// Run fn(i) for i in [begin, end). Iterations are distributed over the
/// global pool in contiguous chunks; the call returns after all complete.
/// fn must be safe to call concurrently for distinct i. Exceptions thrown
/// by fn are rethrown on the calling thread (first one wins) and cancel
/// chunks that have not started yet.
///
/// Nesting: a parallelFor issued from inside another parallelFor body
/// enqueues its chunks as steal-able subtasks of the same pool — the
/// calling worker executes them LIFO and idle workers steal, so nested
/// loops genuinely run in parallel while the total thread count stays
/// bounded by setParallelism.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// True while the calling thread is executing inside a parallelFor body
/// (i.e. the thread is a pool worker running a task, or a caller helping
/// its own group). Exposed for tests.
bool inParallelRegion();

/// Register a hook that worker threads run right before they exit and
/// when they idle-trim, for thread-local cleanup that must not outlive
/// the thread (the scratch grid pool registers scratch::clearThreadPool
/// here — without it every dead or parked worker pins up to 6 cached
/// full-size grids). Hooks run in registration order. The calling thread
/// of a parallelFor is not torn down (it lives on); long-lived daemon
/// workers (serve) call runWorkerTeardowns() themselves on loop exit.
void registerWorkerTeardown(void (*hook)());

/// Run every registered teardown hook on the calling thread.
void runWorkerTeardowns();

/// Which dispatch engine parallelFor uses. kPool is the product path;
/// kSpawn is the seed spawn-per-call scheduler kept as an equivalence
/// oracle (tests compare chip masks bit-for-bit across the two) and as
/// the baseline bm_parallel measures dispatch overhead against.
enum class ParallelBackend {
  kPool,   ///< persistent work-stealing executor (default)
  kSpawn,  ///< legacy: spawn/join std::threads per call, nested = serial
};

/// Select the dispatch engine (also via env MOSAIC_PARALLEL=pool|spawn,
/// read once at first use; the explicit setter wins). Not meant to be
/// flipped while parallel work is in flight.
void setParallelBackend(ParallelBackend backend);
ParallelBackend parallelBackend();

/// Pin pool workers round-robin onto CPUs (Linux; no-op elsewhere). Also
/// via env MOSAIC_PIN_WORKERS=1. Takes effect when the pool (re)starts.
void setWorkerPinning(bool pin);

/// A pool worker idle for longer than this runs the worker teardown hooks
/// once (dropping its cached scratch grids) and keeps sleeping; the next
/// task re-warms its state. 0 disables trimming. Default 2000 ms, or env
/// MOSAIC_POOL_IDLE_TRIM_MS. Takes effect immediately.
void setPoolIdleTrimMs(int ms);

/// Shut the pool down synchronously: every worker runs the teardown hooks
/// and joins. The next parallelFor lazily restarts it. Called implicitly
/// at process exit and by setParallelism resizes; daemons call it on
/// clean shutdown so sanitizers see the threads join.
void shutdownParallelPool();

/// Executor counters for tests and bench (also exported live as the
/// pool.* metrics, docs/observability.md).
struct PoolStats {
  int configuredWorkers = 0;       ///< what setParallelism resolves to
  int liveThreads = 0;             ///< persistent pool threads running now
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksStolen = 0;   ///< tasks taken from another deque
  std::uint64_t idleTrims = 0;
};
PoolStats poolStats();

/// Structured nested parallelism: a group of subtasks that idle workers
/// steal. parallelFor is built on this; it is public so library code can
/// fan out irregular task sets (not just index ranges) onto the pool.
///
///   TaskGroup g;
///   for (auto& item : items) g.run([&item] { process(item); });
///   g.wait();  // helps execute, rethrows the first task exception
///
/// The first exception cancels tasks that have not started (checked per
/// task) and is rethrown by wait(). The destructor waits but swallows
/// errors — call wait() to observe them. A TaskGroup must be waited on
/// the thread that created it; run() may be called from any thread until
/// wait() returns.
class TaskGroup {
 public:
  TaskGroup();
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue one subtask (executed inline when the pool has no threads).
  void run(std::function<void()> fn);
  /// Help execute until every subtask finished; rethrow the first error.
  void wait();
  /// Cooperatively cancel subtasks that have not started yet.
  void cancel();
  /// True once a task threw or cancel() was called.
  [[nodiscard]] bool canceled() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace mosaic
