/// Unit and property tests for the math library: Grid, FFT, convolution,
/// eigensolvers, stats.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "math/convolution.hpp"
#include "math/eigen.hpp"
#include "math/fft.hpp"
#include "math/grid.hpp"
#include "math/resample.hpp"
#include "math/stats.hpp"
#include "support/rng.hpp"

namespace mosaic {
namespace {

using Cplx = std::complex<double>;
constexpr double kPi = 3.14159265358979323846;

ComplexGrid randomComplexGrid(int rows, int cols, Rng& rng) {
  ComplexGrid g(rows, cols);
  for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return g;
}

RealGrid randomRealGrid(int rows, int cols, Rng& rng) {
  RealGrid g(rows, cols);
  for (auto& v : g) v = rng.uniform(-1, 1);
  return g;
}

// ----------------------------------------------------------------- grid

TEST(Grid, ConstructionAndAccess) {
  RealGrid g(3, 4, 1.5);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g(2, 3), 1.5);
  g(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(g.at(1, 2), 7.0);
}

TEST(Grid, AtThrowsOutOfBounds) {
  RealGrid g(2, 2);
  EXPECT_THROW(g.at(2, 0), InvalidArgument);
  EXPECT_THROW(g.at(0, -1), InvalidArgument);
}

TEST(Grid, NonPositiveDimensionsThrow) {
  EXPECT_THROW(RealGrid(0, 3), InvalidArgument);
  EXPECT_THROW(RealGrid(3, -1), InvalidArgument);
}

TEST(Grid, SameShapeAndEquality) {
  RealGrid a(2, 3, 1.0);
  RealGrid b(2, 3, 1.0);
  RealGrid c(3, 2, 1.0);
  EXPECT_TRUE(a.sameShape(b));
  EXPECT_FALSE(a.sameShape(c));
  EXPECT_EQ(a, b);
  b(0, 0) = 2.0;
  EXPECT_NE(a, b);
}

TEST(Grid, Conversions) {
  RealGrid r(2, 2);
  r(0, 0) = 1.0;
  r(1, 1) = -2.0;
  const ComplexGrid c = toComplex(r);
  EXPECT_EQ(c(0, 0), Cplx(1.0, 0.0));
  const RealGrid back = realPart(c);
  EXPECT_EQ(back, r);
  const RealGrid mag = squaredMagnitude(c);
  EXPECT_DOUBLE_EQ(mag(1, 1), 4.0);
}

TEST(Grid, ThresholdAndBitConversion) {
  RealGrid r(1, 3);
  r(0, 0) = 0.1;
  r(0, 1) = 0.5;
  r(0, 2) = 0.9;
  const BitGrid b = thresholdGrid(r, 0.5);
  EXPECT_EQ(b(0, 0), 0u);
  EXPECT_EQ(b(0, 1), 0u);  // strict >
  EXPECT_EQ(b(0, 2), 1u);
  const RealGrid rr = toReal(b);
  EXPECT_DOUBLE_EQ(rr(0, 2), 1.0);
}

// ---------------------------------------------------------------- stats

TEST(Stats, RmsSumMaxAbs) {
  RealGrid g(1, 4);
  g(0, 0) = 1;
  g(0, 1) = -1;
  g(0, 2) = 1;
  g(0, 3) = -1;
  EXPECT_DOUBLE_EQ(rms(g), 1.0);
  EXPECT_DOUBLE_EQ(sum(g), 0.0);
  EXPECT_DOUBLE_EQ(maxAbs(g), 1.0);
}

TEST(Stats, Popcount) {
  BitGrid g(2, 2, 0);
  g(0, 1) = 1;
  g(1, 1) = 1;
  EXPECT_EQ(popcount(g), 2);
}

// ----------------------------------------------------------------- fft

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(0), InvalidArgument);
  EXPECT_THROW(FftPlan(3), InvalidArgument);
  EXPECT_THROW(FftPlan(12), InvalidArgument);
  EXPECT_NO_THROW(FftPlan(16));
}

TEST(FftPlan, SizeOneIsIdentity) {
  FftPlan plan(1);
  Cplx x[1] = {{3.0, -2.0}};
  plan.forward(x);
  EXPECT_EQ(x[0], Cplx(3.0, -2.0));
  plan.inverse(x);
  EXPECT_EQ(x[0], Cplx(3.0, -2.0));
}

TEST(FftPlan, DeltaTransformsToAllOnes) {
  FftPlan plan(8);
  std::vector<Cplx> x(8, {0, 0});
  x[0] = {1, 0};
  plan.forward(x.data());
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftPlan, ConstantTransformsToDcSpike) {
  FftPlan plan(8);
  std::vector<Cplx> x(8, {2.0, 0});
  plan.forward(x.data());
  EXPECT_NEAR(x[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-12);
}

TEST(FftPlan, SinePeaksAtItsBin) {
  const std::size_t n = 64;
  FftPlan plan(n);
  std::vector<Cplx> x(n);
  const int bin = 5;
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = {std::cos(2 * kPi * bin * static_cast<double>(j) / n), 0.0};
  }
  plan.forward(x.data());
  EXPECT_NEAR(x[static_cast<std::size_t>(bin)].real(), n / 2.0, 1e-9);
  EXPECT_NEAR(x[n - bin].real(), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[0]), 0.0, 1e-9);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseOfForwardIsIdentity) {
  const std::size_t n = GetParam();
  FftPlan plan(n);
  Rng rng(n * 977 + 1);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<Cplx> y = x;
  plan.forward(y.data());
  plan.inverse(y.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  FftPlan plan(n);
  Rng rng(n * 31 + 7);
  std::vector<Cplx> x(n);
  double timeEnergy = 0.0;
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    timeEnergy += std::norm(v);
  }
  plan.forward(x.data());
  double freqEnergy = 0.0;
  for (const auto& v : x) freqEnergy += std::norm(v);
  EXPECT_NEAR(freqEnergy / static_cast<double>(n), timeEnergy,
              1e-9 * timeEnergy + 1e-12);
}

TEST_P(FftRoundTrip, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  if (n > 64) GTEST_SKIP() << "naive DFT too slow";
  FftPlan plan(n);
  Rng rng(n + 5);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<Cplx> naive(n, {0, 0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double a = -2 * kPi * static_cast<double>(k * j % n) / n;
      naive[k] += x[j] * Cplx{std::cos(a), std::sin(a)};
    }
  }
  plan.forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), naive[k].real(), 1e-9);
    EXPECT_NEAR(x[k].imag(), naive[k].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft2d, RoundTripAndShapeChecks) {
  Fft2d fft(8, 16);
  Rng rng(42);
  ComplexGrid g = randomComplexGrid(8, 16, rng);
  ComplexGrid copy = g;
  fft.forward(g);
  fft.inverse(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.data()[i].real(), copy.data()[i].real(), 1e-10);
    EXPECT_NEAR(g.data()[i].imag(), copy.data()[i].imag(), 1e-10);
  }
  ComplexGrid bad(4, 4);
  EXPECT_THROW(fft.forward(bad), InvalidArgument);
}

TEST(Fft2d, TwoDimDeltaIsFlat) {
  Fft2d fft(4, 4);
  ComplexGrid g(4, 4, {0, 0});
  g(0, 0) = {1, 0};
  fft.forward(g);
  for (const auto& v : g) EXPECT_NEAR(std::abs(v - Cplx{1, 0}), 0.0, 1e-12);
}

TEST(Fft2d, SeparableProductMatches1d) {
  const int n = 8;
  Rng rng(3);
  std::vector<Cplx> row(n);
  std::vector<Cplx> col(n);
  for (auto& v : row) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto& v : col) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  ComplexGrid g(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      g(r, c) = col[static_cast<std::size_t>(r)] * row[static_cast<std::size_t>(c)];
    }
  }
  Fft2d fft(n, n);
  fft.forward(g);
  FftPlan plan(n);
  std::vector<Cplx> rowF = row;
  std::vector<Cplx> colF = col;
  plan.forward(rowF.data());
  plan.forward(colF.data());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const Cplx want = colF[static_cast<std::size_t>(r)] *
                        rowF[static_cast<std::size_t>(c)];
      EXPECT_NEAR(std::abs(g(r, c) - want), 0.0, 1e-9);
    }
  }
}

TEST(Fft2d, SharedCacheReturnsSameInstance) {
  const Fft2d& a = fft2dFor(16, 16);
  const Fft2d& b = fft2dFor(16, 16);
  EXPECT_EQ(&a, &b);
  const Fft2d& c = fft2dFor(16, 32);
  EXPECT_NE(&a, &c);
}

// ---------------------------------------------------------- convolution

class ConvolutionSizes : public ::testing::TestWithParam<int> {};

TEST_P(ConvolutionSizes, FftMatchesDirect) {
  const int n = GetParam();
  Rng rng(n * 13 + 1);
  const ComplexGrid a = randomComplexGrid(n, n, rng);
  const ComplexGrid b = randomComplexGrid(n, n, rng);
  const ComplexGrid fast = cyclicConvolve(a, b);
  const ComplexGrid slow = directCyclicConvolve(a, b);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(std::abs(fast.data()[i] - slow.data()[i]), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvolutionSizes, ::testing::Values(2, 4, 8, 16));

TEST(Convolution, DeltaIsIdentity) {
  Rng rng(5);
  const int n = 8;
  const ComplexGrid a = randomComplexGrid(n, n, rng);
  ComplexGrid delta(n, n, {0, 0});
  delta(0, 0) = {1, 0};
  const ComplexGrid out = cyclicConvolve(a, delta);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(out.data()[i] - a.data()[i]), 0.0, 1e-10);
  }
}

TEST(Convolution, ShiftedDeltaShiftsCyclically) {
  const int n = 4;
  ComplexGrid a(n, n, {0, 0});
  a(1, 2) = {1, 0};
  ComplexGrid delta(n, n, {0, 0});
  delta(2, 3) = {1, 0};
  const ComplexGrid out = cyclicConvolve(a, delta);
  // (1+2, 2+3) mod 4 = (3, 1)
  EXPECT_NEAR(std::abs(out(3, 1) - Cplx{1, 0}), 0.0, 1e-10);
  double total = 0.0;
  for (const auto& v : out) total += std::abs(v);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Convolution, FlippedSpectrumIsInvolution) {
  Rng rng(11);
  const ComplexGrid s = randomComplexGrid(8, 8, rng);
  const ComplexGrid twice = flippedSpectrum(flippedSpectrum(s));
  EXPECT_EQ(twice, s);
}

TEST(Convolution, FlippedSpectrumMatchesSpatialFlip) {
  // FFT of h(-x) equals the index-flipped FFT of h.
  const int n = 8;
  Rng rng(17);
  ComplexGrid h = randomComplexGrid(n, n, rng);
  ComplexGrid hFlip(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      hFlip(r, c) = h((n - r) % n, (n - c) % n);
    }
  }
  const Fft2d& fft = fft2dFor(n, n);
  ComplexGrid hHat = h;
  ComplexGrid hFlipHat = hFlip;
  fft.forward(hHat);
  fft.forward(hFlipHat);
  const ComplexGrid flippedHat = flippedSpectrum(hHat);
  for (std::size_t i = 0; i < hHat.size(); ++i) {
    EXPECT_NEAR(std::abs(hFlipHat.data()[i] - flippedHat.data()[i]), 0.0,
                1e-9);
  }
}

TEST(Convolution, ConjugateSpectrum) {
  Rng rng(19);
  const ComplexGrid s = randomComplexGrid(4, 4, rng);
  const ComplexGrid c = conjugateSpectrum(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(c.data()[i], std::conj(s.data()[i]));
  }
}

TEST(Convolution, SpectrumConvolutionPathsAgree) {
  const int n = 16;
  Rng rng(23);
  const ComplexGrid signal = randomComplexGrid(n, n, rng);
  ComplexGrid kernel = randomComplexGrid(n, n, rng);
  const Fft2d& fft = fft2dFor(n, n);
  ComplexGrid kernelHat = kernel;
  fft.forward(kernelHat);
  const ComplexGrid viaSpectrum = convolveWithSpectrum(signal, kernelHat);
  const ComplexGrid direct = cyclicConvolve(signal, kernel);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(std::abs(viaSpectrum.data()[i] - direct.data()[i]), 0.0, 1e-9);
  }
}

TEST(Convolution, ShapeMismatchThrows) {
  ComplexGrid a(4, 4);
  ComplexGrid b(8, 8);
  EXPECT_THROW(cyclicConvolve(a, b), InvalidArgument);
  EXPECT_THROW(multiplySpectra(a, b), InvalidArgument);
}

// ------------------------------------------------------------- resample

TEST(Resample, DownsampleMeanAveragesBlocks) {
  RealGrid fine(4, 4, 0.0);
  fine(0, 0) = 4.0;  // block (0,0): {4,0,0,0} -> 1.0
  fine(2, 2) = 1.0;
  fine(2, 3) = 1.0;
  fine(3, 2) = 1.0;
  fine(3, 3) = 1.0;  // block (1,1): all ones -> 1.0
  const RealGrid coarse = downsampleMean(fine, 2);
  EXPECT_EQ(coarse.rows(), 2);
  EXPECT_DOUBLE_EQ(coarse(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(coarse(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(coarse(1, 1), 1.0);
}

TEST(Resample, DownsampleMajorityThreshold) {
  BitGrid fine(2, 4, 0);
  fine(0, 0) = 1;
  fine(1, 0) = 1;  // left block: 2/4 -> set (>= half)
  fine(0, 2) = 1;  // right block: 1/4 -> clear
  const BitGrid coarse = downsampleMajority(fine, 2);
  EXPECT_EQ(coarse(0, 0), 1u);
  EXPECT_EQ(coarse(0, 1), 0u);
}

TEST(Resample, UpsampleReplicatesPixels) {
  RealGrid coarse(2, 2);
  coarse(0, 0) = 1.0;
  coarse(0, 1) = 2.0;
  coarse(1, 0) = 3.0;
  coarse(1, 1) = 4.0;
  const RealGrid fine = upsampleNearest(coarse, 3);
  EXPECT_EQ(fine.rows(), 6);
  EXPECT_DOUBLE_EQ(fine(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(fine(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(fine(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(fine(5, 5), 4.0);
}

TEST(Resample, UpsampleThenDownsampleIsIdentity) {
  Rng rng(71);
  const RealGrid coarse = randomRealGrid(8, 8, rng);
  const RealGrid roundTrip = downsampleMean(upsampleNearest(coarse, 4), 4);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_NEAR(roundTrip.data()[i], coarse.data()[i], 1e-12);
  }
}

TEST(Resample, ValidationErrors) {
  RealGrid g(6, 6);
  EXPECT_THROW(downsampleMean(g, 4), InvalidArgument);  // not divisible
  EXPECT_THROW(downsampleMean(g, 0), InvalidArgument);
  EXPECT_THROW(upsampleNearest(g, 0), InvalidArgument);
}

// ------------------------------------------------------------- gaussian

TEST(GaussianBlur, ZeroSigmaIsIdentity) {
  Rng rng(31);
  const RealGrid g = randomRealGrid(8, 8, rng);
  EXPECT_EQ(gaussianBlur(g, 0.0), g);
  EXPECT_EQ(gaussianBlur(g, -1.0), g);
}

TEST(GaussianBlur, PreservesMeanAndReducesVariance) {
  Rng rng(37);
  const int n = 32;
  RealGrid g = randomRealGrid(n, n, rng);
  const double meanBefore = sum(g) / static_cast<double>(g.size());
  const RealGrid b = gaussianBlur(g, 2.0);
  const double meanAfter = sum(b) / static_cast<double>(b.size());
  EXPECT_NEAR(meanAfter, meanBefore, 1e-10);
  double varBefore = 0.0;
  double varAfter = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    varBefore += (g.data()[i] - meanBefore) * (g.data()[i] - meanBefore);
    varAfter += (b.data()[i] - meanAfter) * (b.data()[i] - meanAfter);
  }
  EXPECT_LT(varAfter, 0.5 * varBefore);
}

TEST(GaussianBlur, SpreadsADelta) {
  const int n = 32;
  RealGrid g(n, n, 0.0);
  g(16, 16) = 1.0;
  const RealGrid b = gaussianBlur(g, 1.5);
  EXPECT_LT(b(16, 16), 1.0);
  EXPECT_GT(b(16, 16), b(16, 18));
  EXPECT_GT(b(16, 18), 0.0);
  // Radially symmetric around the impulse.
  EXPECT_NEAR(b(16, 18), b(18, 16), 1e-12);
  EXPECT_NEAR(b(16, 14), b(16, 18), 1e-12);
}

TEST(GaussianBlur, SelfAdjoint) {
  // <Blur(a), b> == <a, Blur(b)> -- the property the ILT gradient chain
  // relies on when resist diffusion is enabled.
  Rng rng(41);
  const int n = 16;
  const RealGrid a = randomRealGrid(n, n, rng);
  const RealGrid b = randomRealGrid(n, n, rng);
  const RealGrid ba = gaussianBlur(a, 1.2);
  const RealGrid bb = gaussianBlur(b, 1.2);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    lhs += ba.data()[i] * b.data()[i];
    rhs += a.data()[i] * bb.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::fabs(lhs)));
}

// ---------------------------------------------------------------- eigen

TEST(Eigen, DiagonalMatrixSortedDescending) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const auto r = jacobiEigenSymmetric(m);
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  const auto r = jacobiEigenSymmetric(m);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-12);
  // eigenvector for 3 is (1,1)/sqrt(2) up to sign
  EXPECT_NEAR(std::fabs(r.eigenvectors[0][0]), 1 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(r.eigenvectors[0][0], r.eigenvectors[0][1], 1e-10);
}

TEST(Eigen, AsymmetricInputThrows) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  EXPECT_THROW(jacobiEigenSymmetric(m), InvalidArgument);
  Matrix rect(2, 3);
  EXPECT_THROW(jacobiEigenSymmetric(rect), InvalidArgument);
}

class EigenReconstruction : public ::testing::TestWithParam<int> {};

TEST_P(EigenReconstruction, SymmetricReconstructs) {
  const int n = GetParam();
  Rng rng(n * 7 + 3);
  Matrix m(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      m(r, c) = rng.uniform(-1, 1);
      m(c, r) = m(r, c);
    }
  }
  const auto res = jacobiEigenSymmetric(m);
  // A = sum_k w_k v_k v_k^T
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += res.eigenvalues[static_cast<std::size_t>(k)] *
               res.eigenvectors[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(r)] *
               res.eigenvectors[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(c)];
      }
      EXPECT_NEAR(acc, m(r, c), 1e-9);
    }
  }
  // Orthonormality.
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double dot = 0.0;
      for (int k = 0; k < n; ++k) {
        dot += res.eigenvectors[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(k)] *
               res.eigenvectors[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(k)];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST_P(EigenReconstruction, HermitianReconstructs) {
  const int n = GetParam();
  Rng rng(n * 11 + 1);
  std::vector<Cplx> h(static_cast<std::size_t>(n) * n);
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      if (r == c) {
        h[static_cast<std::size_t>(r) * n + c] = {rng.uniform(-1, 1), 0.0};
      } else {
        const Cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        h[static_cast<std::size_t>(r) * n + c] = v;
        h[static_cast<std::size_t>(c) * n + r] = std::conj(v);
      }
    }
  }
  const auto res = jacobiEigenHermitian(h, n);
  ASSERT_EQ(res.eigenvalues.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      Cplx acc{0, 0};
      for (int k = 0; k < n; ++k) {
        acc += res.eigenvalues[static_cast<std::size_t>(k)] *
               res.eigenvectors[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(r)] *
               std::conj(res.eigenvectors[static_cast<std::size_t>(k)]
                                         [static_cast<std::size_t>(c)]);
      }
      EXPECT_NEAR(std::abs(acc - h[static_cast<std::size_t>(r) * n + c]), 0.0,
                  1e-8);
    }
  }
  // Complex orthonormality.
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      Cplx dot{0, 0};
      for (int k = 0; k < n; ++k) {
        dot += std::conj(res.eigenvectors[static_cast<std::size_t>(i)]
                                         [static_cast<std::size_t>(k)]) *
               res.eigenvectors[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(k)];
      }
      EXPECT_NEAR(std::abs(dot - (i == j ? Cplx{1, 0} : Cplx{0, 0})), 0.0,
                  1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstruction,
                         ::testing::Values(2, 3, 5, 8, 16));

TEST(Eigen, SubspaceTopKMatchesJacobiOnDecayingSpectrum) {
  // PSD matrix with a geometrically decaying spectrum, the shape of the
  // TCC operator that the truncated solver exists for.
  const int n = 40;
  const int k = 6;
  Rng rng(47);
  std::vector<Cplx> h(static_cast<std::size_t>(n) * n, Cplx{0, 0});
  double weight = 1.0;
  for (int term = 0; term < n; ++term, weight *= 0.7) {
    std::vector<Cplx> g(static_cast<std::size_t>(n));
    for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        h[static_cast<std::size_t>(r) * n + c] +=
            weight * g[static_cast<std::size_t>(r)] *
            std::conj(g[static_cast<std::size_t>(c)]);
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      const Cplx sym = 0.5 * (h[static_cast<std::size_t>(r) * n + c] +
                              std::conj(h[static_cast<std::size_t>(c) * n + r]));
      h[static_cast<std::size_t>(r) * n + c] = sym;
      h[static_cast<std::size_t>(c) * n + r] = std::conj(sym);
    }
  }

  const auto full = jacobiEigenHermitian(h, n);
  const auto top = topEigenpairsHermitian(h, n, k);
  ASSERT_EQ(top.eigenvalues.size(), static_cast<std::size_t>(k));
  const double scale = std::max(1.0, std::fabs(full.eigenvalues.front()));
  for (int j = 0; j < k; ++j) {
    EXPECT_NEAR(top.eigenvalues[static_cast<std::size_t>(j)],
                full.eigenvalues[static_cast<std::size_t>(j)], 1e-8 * scale);
    // Residual ||H v - lambda v|| certifies the eigenvector without having
    // to pair it against the dense solver's (phase-ambiguous) vectors.
    double residual = 0.0;
    for (int r = 0; r < n; ++r) {
      Cplx acc{0, 0};
      for (int c = 0; c < n; ++c) {
        acc += h[static_cast<std::size_t>(r) * n + c] *
               top.eigenvectors[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(c)];
      }
      acc -= top.eigenvalues[static_cast<std::size_t>(j)] *
             top.eigenvectors[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(r)];
      residual = std::max(residual, std::abs(acc));
    }
    EXPECT_LT(residual, 1e-6 * scale);
  }
  // Orthonormality of the returned block.
  for (int i = 0; i < k; ++i) {
    for (int j = i; j < k; ++j) {
      Cplx dot{0, 0};
      for (int r = 0; r < n; ++r) {
        dot += std::conj(top.eigenvectors[static_cast<std::size_t>(i)]
                                         [static_cast<std::size_t>(r)]) *
               top.eigenvectors[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(r)];
      }
      EXPECT_NEAR(std::abs(dot - (i == j ? Cplx{1, 0} : Cplx{0, 0})), 0.0,
                  1e-8);
    }
  }
  // Fixed seeding plus the phase convention make reruns bit-identical.
  const auto again = topEigenpairsHermitian(h, n, k);
  EXPECT_EQ(top.eigenvalues, again.eigenvalues);
  EXPECT_EQ(top.eigenvectors, again.eigenvectors);
}

TEST(Eigen, SubspaceRejectsBadArguments) {
  std::vector<Cplx> h = {{2, 0}, {0, 0}, {0, 0}, {1, 0}};
  EXPECT_THROW(topEigenpairsHermitian(h, 2, 0), InvalidArgument);
  EXPECT_THROW(topEigenpairsHermitian(h, 2, 3), InvalidArgument);
}

TEST(Eigen, HermitianRejectsNonHermitian) {
  std::vector<Cplx> h = {{1, 0}, {1, 1}, {1, 1}, {2, 0}};  // h01 != conj(h10)
  EXPECT_THROW(jacobiEigenHermitian(h, 2), InvalidArgument);
}

TEST(Eigen, HermitianPsdHasNonNegativeSpectrum) {
  // H = B B^H is PSD.
  const int n = 6;
  Rng rng(29);
  std::vector<Cplx> b(static_cast<std::size_t>(n) * n);
  for (auto& v : b) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<Cplx> h(static_cast<std::size_t>(n) * n, Cplx{0, 0});
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      Cplx acc{0, 0};
      for (int k = 0; k < n; ++k) {
        acc += b[static_cast<std::size_t>(r) * n + k] *
               std::conj(b[static_cast<std::size_t>(c) * n + k]);
      }
      h[static_cast<std::size_t>(r) * n + c] = acc;
    }
  }
  // Exact Hermitian symmetrization to cancel rounding asymmetry.
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      const Cplx sym = 0.5 * (h[static_cast<std::size_t>(r) * n + c] +
                              std::conj(h[static_cast<std::size_t>(c) * n + r]));
      h[static_cast<std::size_t>(r) * n + c] = sym;
      h[static_cast<std::size_t>(c) * n + r] = std::conj(sym);
    }
  }
  const auto res = jacobiEigenHermitian(h, n);
  for (double w : res.eigenvalues) EXPECT_GT(w, -1e-9);
}

TEST(Eigen, MatrixIdentityFactory) {
  const Matrix id = Matrix::identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

}  // namespace
}  // namespace mosaic
