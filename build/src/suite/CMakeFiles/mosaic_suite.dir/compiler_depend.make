# Empty compiler generated dependencies file for mosaic_suite.
# This may be replaced when dependencies are built.
