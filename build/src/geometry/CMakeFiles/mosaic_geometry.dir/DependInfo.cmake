
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/bitmap_ops.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/bitmap_ops.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/bitmap_ops.cpp.o.d"
  "/root/repo/src/geometry/contour.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/contour.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/contour.cpp.o.d"
  "/root/repo/src/geometry/edges.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/edges.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/edges.cpp.o.d"
  "/root/repo/src/geometry/layout.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/layout.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/layout.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/polygon.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/polygon.cpp.o.d"
  "/root/repo/src/geometry/raster.cpp" "src/geometry/CMakeFiles/mosaic_geometry.dir/raster.cpp.o" "gcc" "src/geometry/CMakeFiles/mosaic_geometry.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mosaic_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
