/// Tests for polygon decomposition and GLP layout I/O.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "geometry/polygon.hpp"
#include "geometry/raster.hpp"
#include "io/glp.hpp"
#include "litho/kernel_cache.hpp"
#include "litho/simulator.hpp"
#include "math/stats.hpp"
#include "suite/testcases.hpp"
#include "support/failpoint.hpp"

namespace mosaic {
namespace {

// -------------------------------------------------------------- polygon

TEST(Polygon, RectanglePolygonRoundTrip) {
  const RectNm rect{10, 20, 50, 60};
  const PolygonNm poly = toPolygon(rect);
  EXPECT_EQ(poly.vertexCount(), 4u);
  EXPECT_EQ(poly.area(), rect.area());
  const auto rects = decomposeRectilinear(poly);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], rect);
}

TEST(Polygon, SignedAreaOrientation) {
  PolygonNm ccw;
  ccw.vertices = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_EQ(ccw.signedArea(), 16);
  PolygonNm cw;
  cw.vertices = {{0, 0}, {0, 4}, {4, 4}, {4, 0}};
  EXPECT_EQ(cw.signedArea(), -16);
  EXPECT_EQ(cw.area(), 16);
}

TEST(Polygon, LShapeDecomposesToTwoRects) {
  // L-shape: 8x8 square minus its top-right 4x4 quadrant.
  PolygonNm poly;
  poly.vertices = {{0, 0}, {8, 0}, {8, 4}, {4, 4}, {4, 8}, {0, 8}};
  const auto rects = decomposeRectilinear(poly);
  long long area = 0;
  for (const auto& r : rects) area += r.area();
  EXPECT_EQ(area, poly.area());
  EXPECT_EQ(area, 48);
  EXPECT_LE(rects.size(), 2u);
}

TEST(Polygon, StaircaseDecomposition) {
  PolygonNm poly;
  poly.vertices = {{0, 0}, {12, 0}, {12, 4}, {8, 4},
                   {8, 8}, {4, 8},  {4, 12}, {0, 12}};
  const auto rects = decomposeRectilinear(poly);
  long long area = 0;
  for (const auto& r : rects) {
    area += r.area();
    for (const auto& other : rects) {
      if (&r != &other) EXPECT_FALSE(r.intersects(other));
    }
  }
  EXPECT_EQ(area, poly.area());
}

TEST(Polygon, UShapeDecomposition) {
  // U-shape: three slabs; inner bay must remain uncovered.
  PolygonNm poly;
  poly.vertices = {{0, 0}, {12, 0}, {12, 10}, {8, 10},
                   {8, 4}, {4, 4},  {4, 10},  {0, 10}};
  const auto rects = decomposeRectilinear(poly);
  long long area = 0;
  for (const auto& r : rects) area += r.area();
  EXPECT_EQ(area, poly.area());
  // The bay center (6, 7) is outside every rect.
  for (const auto& r : rects) EXPECT_FALSE(r.contains(6.0, 7.0));
}

TEST(Polygon, ValidationErrors) {
  PolygonNm tooFew;
  tooFew.vertices = {{0, 0}, {1, 0}, {1, 1}};
  EXPECT_THROW(tooFew.validate(), InvalidArgument);

  PolygonNm diagonal;
  diagonal.vertices = {{0, 0}, {4, 4}, {4, 0}, {0, 4}};
  EXPECT_THROW(diagonal.validate(), InvalidArgument);

  PolygonNm degenerateEdge;
  degenerateEdge.vertices = {{0, 0}, {0, 0}, {4, 4}, {0, 4}};
  EXPECT_THROW(degenerateEdge.validate(), InvalidArgument);
}

// ------------------------------------------------------------------ glp

TEST(Glp, ParsesRectRecords) {
  std::istringstream in(
      "BEGIN\n"
      "EQUIV  1  1000  MICRON  +X,+Y\n"
      "CNAME clip\n"
      "LEVEL M1\n"
      "   RECT N M1 100 200 300 400\n"
      "   RECT N M1 500 200 700 400\n"
      "ENDMSG\n");
  GlpReadOptions opts;
  opts.recenter = false;
  const Layout layout = readGlp(in, "clip", opts);
  ASSERT_EQ(layout.rects.size(), 2u);
  EXPECT_EQ(layout.rects[0], (RectNm{100, 200, 300, 400}));
  EXPECT_EQ(layout.patternArea(), 2 * 200 * 200);
}

TEST(Glp, ParsesPolygonRecords) {
  std::istringstream in(
      "BEGIN\n"
      "PGON N M1 100 100 300 100 300 200\n"
      "  200 200 200 300 100 300\n"
      "ENDMSG\n");
  GlpReadOptions opts;
  opts.recenter = false;
  const Layout layout = readGlp(in, "pgon", opts);
  EXPECT_GE(layout.rects.size(), 2u);
  EXPECT_EQ(layout.patternArea(), 200 * 100 + 100 * 100);
}

TEST(Glp, RecentersPattern) {
  std::istringstream in("RECT N M1 10000 20000 10100 20100\n");
  GlpReadOptions opts;
  opts.clipSizeNm = 1024;
  opts.recenter = true;
  const Layout layout = readGlp(in, "far", opts);
  ASSERT_EQ(layout.rects.size(), 1u);
  const RectNm& r = layout.rects[0];
  EXPECT_EQ(r.width(), 100);
  // Centered: equal margins.
  EXPECT_EQ(r.x0, (1024 - 100) / 2);
  EXPECT_EQ(r.y0, (1024 - 100) / 2);
}

TEST(Glp, RejectsMalformedInput) {
  {
    std::istringstream in("RECT N M1 1 2 3\n");  // missing coordinate
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("FOO bar\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("PGON N M1 0 0 4 0 4\n");  // odd coordinates
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    // Pattern larger than the clip window.
    std::istringstream in("RECT N M1 0 0 5000 5000\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
}

TEST(Glp, RejectsCoordinateOverflow) {
  {
    // Does not fit in an int at all.
    std::istringstream in("RECT N M1 0 0 99999999999999999999 100\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    // Fits in an int but is beyond any plausible layout extent (> 1 m).
    std::istringstream in("RECT N M1 0 0 2000000000 100\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
}

TEST(Glp, RejectsZeroAndNegativeAreaRects) {
  {
    std::istringstream in("RECT N M1 100 100 100 200\n");  // zero width
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("RECT N M1 100 100 200 100\n");  // zero height
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("RECT N M1 300 300 200 400\n");  // inverted x
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
}

TEST(Glp, RejectsTruncatedRecords) {
  {
    std::istringstream in("BEGIN\nEQUIV 1 1000\nENDMSG\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    std::istringstream in("BEGIN\nCNAME\nENDMSG\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
  {
    // PGON that ends before forming a closed polygon (< 4 vertices).
    std::istringstream in("PGON N M1 0 0 100 0\n");
    EXPECT_THROW(readGlp(in, "x"), InvalidArgument);
  }
}

TEST(Glp, ParseFailpointInjectsThrow) {
  failpoint::ScopedFailpoints sfp("io.glp.parse:throw");
  std::istringstream in("RECT N M1 100 200 300 400\n");
  EXPECT_THROW(readGlp(in, "x"), Error);
}

TEST(Glp, WriteReadRoundTripPreservesGeometry) {
  const Layout original = buildTestcase(6);
  std::ostringstream out;
  writeGlp(out, original);
  std::istringstream in(out.str());
  GlpReadOptions opts;
  opts.recenter = false;
  const Layout loaded = readGlp(in, original.name, opts);
  EXPECT_EQ(loaded.patternArea(), original.patternArea());
  // Rasters must be identical.
  EXPECT_EQ(rasterize(loaded, 4), rasterize(original, 4));
}

class GlpSuiteRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GlpSuiteRoundTrip, FileRoundTrip) {
  const Layout original = buildTestcase(GetParam());
  const auto path = std::filesystem::temp_directory_path() /
                    ("mosaic_glp_" + original.name + ".glp");
  writeGlpFile(path.string(), original);
  GlpReadOptions opts;
  opts.recenter = false;
  const Layout loaded = readGlpFile(path.string(), opts);
  EXPECT_EQ(loaded.name, "mosaic_glp_" + original.name);  // file stem
  EXPECT_EQ(rasterize(loaded, 8), rasterize(original, 8));
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(B, GlpSuiteRoundTrip, ::testing::Range(1, 11));

TEST(Glp, MissingFileThrows) {
  EXPECT_THROW(readGlpFile("/nonexistent/dir/x.glp"), InvalidArgument);
}

// ----------------------------------------------------------- kernel cache

TEST(KernelCache, RoundTripPreservesEverything) {
  OpticsConfig optics;
  optics.pixelNm = 16;  // small grid keeps the TCC build fast
  LithoSimulator sim(optics);
  const KernelSet& original = sim.kernels(25.0);

  const auto path = std::filesystem::temp_directory_path() /
                    kernelCacheName(original.gridSize, original.focusNm);
  saveKernelSet(path.string(), original);
  const KernelSet loaded = loadKernelSet(path.string());

  EXPECT_EQ(loaded.gridSize, original.gridSize);
  EXPECT_DOUBLE_EQ(loaded.focusNm, original.focusNm);
  ASSERT_EQ(loaded.kernels.size(), original.kernels.size());
  for (std::size_t k = 0; k < loaded.kernels.size(); ++k) {
    EXPECT_DOUBLE_EQ(loaded.weights[k], original.weights[k]);
    ASSERT_EQ(loaded.kernels[k].flatIndex, original.kernels[k].flatIndex);
    for (std::size_t i = 0; i < loaded.kernels[k].value.size(); ++i) {
      EXPECT_EQ(loaded.kernels[k].value[i], original.kernels[k].value[i]);
    }
  }
  EXPECT_EQ(loaded.combined.flatIndex, original.combined.flatIndex);
  std::filesystem::remove(path);
}

TEST(KernelCache, RejectsGarbageAndMissing) {
  EXPECT_THROW(loadKernelSet("/nonexistent/kernels.bin"), InvalidArgument);
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_bad_kernels.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a kernel cache";
  }
  EXPECT_THROW(loadKernelSet(path.string()), InvalidArgument);
  std::filesystem::remove(path);
}

TEST(KernelCache, CacheNameEncodesGridAndFocus) {
  EXPECT_EQ(kernelCacheName(256, 25.0), "kernels_g256_f250.bin");
  EXPECT_EQ(kernelCacheName(128, 0.0), "kernels_g128_f0.bin");
}

TEST(KernelCache, OpticsAwareNameSeparatesPupilAndSourceSettings) {
  OpticsConfig base;
  base.pixelNm = 16;
  const std::string name = kernelCacheName(base, 25.0);
  EXPECT_EQ(name.find("kernels_g64_f250_o"), 0u) << name;
  EXPECT_EQ(name, kernelCacheName(base, 25.0)) << "name must be deterministic";

  // Every optical knob must change the name, so a cache directory can
  // never serve kernels computed under different settings.
  OpticsConfig na = base;
  na.na = 1.2;
  EXPECT_NE(kernelCacheName(na, 25.0), name);
  OpticsConfig source = base;
  source.sigmaOuter = 0.8;
  EXPECT_NE(kernelCacheName(source, 25.0), name);
  OpticsConfig aberrated = base;
  aberrated.aberrations.comaX = 0.02;
  EXPECT_NE(kernelCacheName(aberrated, 25.0), name);
  OpticsConfig truncated = base;
  truncated.kernelCount = 12;
  EXPECT_NE(kernelCacheName(truncated, 25.0), name);

  // ...while grid-equivalent but differently-expressed geometry matches.
  EXPECT_EQ(opticsParameterHash(base), opticsParameterHash(base));
  EXPECT_EQ(kernelCacheName(base, -25.0), "kernels_g64_f-250_o" +
                                              opticsParameterHash(base) +
                                              ".bin");
}

TEST(KernelCache, SavingEmptySetThrows) {
  KernelSet empty;
  EXPECT_THROW(saveKernelSet("/tmp/should_not_matter.bin", empty),
               InvalidArgument);
}

TEST(KernelCache, SimulatorUsesTheDiskCache) {
  OpticsConfig optics;
  optics.pixelNm = 16;
  const auto dir = std::filesystem::temp_directory_path() / "mosaic_kcache";
  std::filesystem::create_directories(dir);
  const auto file = dir / kernelCacheName(optics, 0.0);
  std::filesystem::remove(file);

  LithoSimulator first(optics);
  first.setKernelCacheDir(dir.string());
  const KernelSet& computed = first.kernels(0.0);
  EXPECT_TRUE(std::filesystem::exists(file)) << "cache file not written";

  LithoSimulator second(optics);
  second.setKernelCacheDir(dir.string());
  const KernelSet& loaded = second.kernels(0.0);
  ASSERT_EQ(loaded.kernels.size(), computed.kernels.size());
  // Aerial images from computed vs loaded kernels must agree exactly.
  RealGrid mask(64, 64, 0.0);
  for (int r = 24; r < 40; ++r) {
    for (int c = 16; c < 48; ++c) mask(r, c) = 1.0;
  }
  const RealGrid a = first.aerial(mask, nominalCorner());
  const RealGrid b = second.aerial(mask, nominalCorner());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mosaic
