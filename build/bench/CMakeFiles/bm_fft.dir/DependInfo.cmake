
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bm_fft.cpp" "bench/CMakeFiles/bm_fft.dir/bm_fft.cpp.o" "gcc" "bench/CMakeFiles/bm_fft.dir/bm_fft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opc/CMakeFiles/mosaic_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mosaic_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/mosaic_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/mosaic_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mosaic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mosaic_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
