#pragma once
/// \file process_window.hpp
/// Focus-exposure process window measurement. The paper optimizes a PV
/// band surrogate; this module measures the window it actually buys: the
/// set of (focus, dose) conditions under which the mask prints in spec
/// (EPE within tolerance everywhere, no shape violations), plus the
/// classic summary metrics -- depth of focus (DOF) at nominal dose and
/// exposure latitude (EL) at nominal focus.

#include <vector>

#include "litho/simulator.hpp"
#include "math/grid.hpp"

namespace mosaic {

struct ProcessWindowConfig {
  double maxFocusNm = 60.0;    ///< sweep focus in [0, maxFocus]
  int focusSteps = 7;          ///< inclusive sample count along focus
  double doseSpan = 0.10;      ///< sweep dose in [1 - span, 1 + span]
  int doseSteps = 11;          ///< inclusive sample count along dose
  double epeToleranceNm = 15.0;  ///< in-spec means zero violations at this
  int sampleSpacingNm = 40;
};

struct FocusExposurePoint {
  double focusNm = 0.0;
  double dose = 1.0;
  int epeViolations = 0;
  int shapeViolations = 0;
  bool inSpec = false;
};

struct ProcessWindowResult {
  std::vector<FocusExposurePoint> matrix;  ///< row-major focus x dose
  int focusSteps = 0;
  int doseSteps = 0;
  /// Largest focus offset (nm) that stays in spec at nominal dose; 0 when
  /// even the nominal condition is out of spec.
  double dofNm = 0.0;
  /// Total in-spec dose latitude at nominal focus, in percent.
  double exposureLatitudePct = 0.0;
  /// Fraction of the swept (focus, dose) grid that is in spec.
  double windowFraction = 0.0;

  [[nodiscard]] const FocusExposurePoint& at(int focusIdx,
                                             int doseIdx) const {
    return matrix[static_cast<std::size_t>(focusIdx) * doseSteps + doseIdx];
  }
};

/// Sweep the focus-exposure matrix for a mask against a target raster.
ProcessWindowResult measureProcessWindow(
    const LithoSimulator& sim, const RealGrid& mask, const BitGrid& target,
    const ProcessWindowConfig& config = {});

}  // namespace mosaic
