#include "geometry/layout.hpp"

namespace mosaic {

long long Layout::patternArea() const {
  validateDisjoint();
  long long area = 0;
  for (const auto& r : rects) area += r.area();
  return area;
}

void Layout::validateDisjoint() const {
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      MOSAIC_CHECK(!rects[i].intersects(rects[j]),
                   "layout " << name << ": rects " << i << " and " << j
                             << " overlap");
    }
  }
}

}  // namespace mosaic
