
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opc/baselines.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/baselines.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/baselines.cpp.o.d"
  "/root/repo/src/opc/edge_opc.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/edge_opc.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/edge_opc.cpp.o.d"
  "/root/repo/src/opc/levelset.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/levelset.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/levelset.cpp.o.d"
  "/root/repo/src/opc/mask_params.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/mask_params.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/mask_params.cpp.o.d"
  "/root/repo/src/opc/mosaic.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/mosaic.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/mosaic.cpp.o.d"
  "/root/repo/src/opc/multires.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/multires.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/multires.cpp.o.d"
  "/root/repo/src/opc/objective.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/objective.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/objective.cpp.o.d"
  "/root/repo/src/opc/optimizer.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/optimizer.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/optimizer.cpp.o.d"
  "/root/repo/src/opc/sraf.cpp" "src/opc/CMakeFiles/mosaic_opc.dir/sraf.cpp.o" "gcc" "src/opc/CMakeFiles/mosaic_opc.dir/sraf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litho/CMakeFiles/mosaic_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mosaic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mosaic_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mosaic_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
