file(REMOVE_RECURSE
  "libmosaic_litho.a"
)
