#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "support/error.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

std::atomic<int> g_workers{0};  // 0 == hardware default
std::atomic<int> g_idleTrimMs{2000};
std::atomic<bool> g_pinWorkers{false};
std::atomic<int> g_backend{-1};  // -1 = unresolved (env), else ParallelBackend

/// Depth of parallelFor bodies executing on this thread. Non-zero inside a
/// task (pool worker or helping caller) and inside serial fallbacks.
thread_local int t_parallelDepth = 0;

struct DepthGuard {
  DepthGuard() { ++t_parallelDepth; }
  ~DepthGuard() { --t_parallelDepth; }
};

std::mutex& teardownMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<void (*)()>& teardownHooks() {
  static std::vector<void (*)()> hooks;
  return hooks;
}

int resolveWorkers() {
  const int requested = g_workers.load();
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelBackend resolveBackend() {
  int b = g_backend.load(std::memory_order_acquire);
  if (b < 0) {
    b = static_cast<int>(ParallelBackend::kPool);
    if (const char* env = std::getenv("MOSAIC_PARALLEL")) {
      if (std::string(env) == "spawn") {
        b = static_cast<int>(ParallelBackend::kSpawn);
      }
    }
    g_backend.store(b, std::memory_order_release);
  }
  return static_cast<ParallelBackend>(b);
}

// ---------------------------------------------------------------- group

/// Shared completion state of one task group. Tasks hold a shared_ptr so
/// the state outlives a TaskGroup abandoned mid-flight.
struct GroupState {
  std::atomic<std::size_t> pending{0};
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable cv;  ///< notified when pending drops to zero
  std::exception_ptr error;    ///< first task exception (guarded by mu)

  void recordError(std::exception_ptr e) {
    abort.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(e);
  }
};

struct Task {
  std::shared_ptr<GroupState> group;
  std::function<void()> fn;
};

// ----------------------------------------------------------------- pool

/// The process-wide executor: one deque per persistent worker, LIFO for
/// the owner, FIFO steals for everyone else. Deques are mutex-guarded —
/// tasks are chunk-sized (microseconds to seconds), so the lock is never
/// the bottleneck and the scheme stays trivially TSan-clean.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  Pool() {
    // Force the metrics registry (and our metric objects) to outlive the
    // pool: worker threads touch them while draining during ~Pool, which
    // runs at static destruction in reverse construction order.
    telemetry::MetricsRegistry& reg = telemetry::metrics();
    tasksCounter_ = &reg.counter("pool.tasks");
    stealsCounter_ = &reg.counter("pool.steals");
    trimsCounter_ = &reg.counter("pool.idle_trims");
    idleHistogram_ = &reg.histogram("pool.idle_ms");
    activeGauge_ = &reg.gauge("pool.active_workers");
    workersGauge_ = &reg.gauge("pool.workers");
  }

  ~Pool() { shutdown(); }

  /// Ensure `threads` persistent workers are running (0 is fine — the
  /// caller then executes everything itself). Restart-on-resize is NOT
  /// done here; setParallelism shuts the pool down explicitly, so a
  /// nested call can never tear threads out from under running tasks.
  void ensureStarted(int threads) {
    if (threads <= 0) return;
    if (started_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(startMu_);
    if (started_.load(std::memory_order_acquire)) return;
    queues_.clear();
    threads_.clear();
    stop_.store(false, std::memory_order_relaxed);
    const bool pin = g_pinWorkers.load(std::memory_order_relaxed);
    for (int i = 0; i < threads; ++i) {
      queues_.push_back(std::make_unique<WorkerQueue>());
    }
    threads_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      threads_.emplace_back([this, i, pin] { workerMain(i, pin); });
    }
    liveThreads_.store(threads, std::memory_order_relaxed);
    workersGauge_->set(static_cast<double>(threads));
    started_.store(true, std::memory_order_release);
  }

  /// Join every worker (each runs the teardown hooks on its way out).
  void shutdown() {
    std::lock_guard<std::mutex> lock(startMu_);
    if (!started_.load(std::memory_order_acquire)) return;
    MOSAIC_ASSERT(outstanding_.load() == 0,
                  "parallel pool shutdown/resize with tasks in flight");
    {
      std::lock_guard<std::mutex> sleepLock(sleepMu_);
      stop_.store(true, std::memory_order_release);
      ++signal_;
    }
    sleepCv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    queues_.clear();
    liveThreads_.store(0, std::memory_order_relaxed);
    workersGauge_->set(0.0);
    started_.store(false, std::memory_order_release);
  }

  [[nodiscard]] bool running() const {
    return started_.load(std::memory_order_acquire);
  }

  [[nodiscard]] int liveThreads() const {
    return liveThreads_.load(std::memory_order_relaxed);
  }

  /// Enqueue one task. Pool workers push to the front of their own deque
  /// (LIFO: nested subtasks stay cache-hot on the producing worker);
  /// external threads scatter round-robin onto the back of the deques.
  void submit(Task task) {
    task.group->pending.fetch_add(1, std::memory_order_acq_rel);
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    const int self = t_workerIndex;
    if (self >= 0) {
      WorkerQueue& q = *queues_[static_cast<std::size_t>(self)];
      std::lock_guard<std::mutex> lock(q.mu);
      q.dq.push_front(std::move(task));
    } else {
      const std::size_t slot =
          rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
      WorkerQueue& q = *queues_[slot];
      std::lock_guard<std::mutex> lock(q.mu);
      q.dq.push_back(std::move(task));
    }
    {
      std::lock_guard<std::mutex> lock(sleepMu_);
      ++signal_;
    }
    sleepCv_.notify_one();
  }

  /// Help until the group drains: run tasks from the current thread's own
  /// deque (anything there descends from this thread's work), steal tasks
  /// of the *same group* from other deques, and otherwise nap briefly on
  /// the group's condition variable. Every participant keeps executing,
  /// so group waits can never deadlock.
  void waitGroup(const std::shared_ptr<GroupState>& group) {
    while (group->pending.load(std::memory_order_acquire) != 0) {
      Task task;
      if (popOwn(&task) || stealFor(group.get(), &task)) {
        execute(task);
        continue;
      }
      std::unique_lock<std::mutex> lock(group->mu);
      group->cv.wait_for(lock, std::chrono::microseconds(50), [&] {
        return group->pending.load(std::memory_order_acquire) == 0;
      });
    }
  }

  PoolStats stats() const {
    PoolStats s;
    s.configuredWorkers = resolveWorkers();
    s.liveThreads = liveThreads();
    s.tasksExecuted = tasksCounter_->value();
    s.tasksStolen = stealsCounter_->value();
    s.idleTrims = trimsCounter_->value();
    return s;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> dq;
  };

  static thread_local int t_workerIndex;  ///< -1 on non-pool threads

  void execute(Task& task) {
    const int active = 1 + activeWorkers_.fetch_add(1, std::memory_order_relaxed);
    activeGauge_->set(static_cast<double>(active));
    {
      DepthGuard depth;
      // Cooperative abort: once a sibling threw (or the group was
      // canceled), remaining chunks are skipped instead of drained.
      if (!task.group->abort.load(std::memory_order_relaxed)) {
        try {
          task.fn();
        } catch (...) {
          task.group->recordError(std::current_exception());
        }
      }
    }
    tasksCounter_->add();
    activeGauge_->set(static_cast<double>(
        activeWorkers_.fetch_sub(1, std::memory_order_relaxed) - 1));
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    if (task.group->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(task.group->mu);
      task.group->cv.notify_all();
    }
  }

  bool popOwn(Task* out) {
    const int self = t_workerIndex;
    if (self < 0 || !started_.load(std::memory_order_acquire)) return false;
    WorkerQueue& q = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.dq.empty()) return false;
    *out = std::move(q.dq.front());
    q.dq.pop_front();
    return true;
  }

  /// Steal from the back of another deque. `group` restricts the steal to
  /// that group's tasks (used while waiting, so a waiter can't wedge
  /// itself under an unrelated long task); nullptr steals anything.
  bool stealFor(const GroupState* group, Task* out) {
    if (!started_.load(std::memory_order_acquire)) return false;
    const std::size_t n = queues_.size();
    const std::size_t start = static_cast<std::size_t>(
        t_workerIndex >= 0 ? t_workerIndex + 1 : 0);
    for (std::size_t k = 0; k < n; ++k) {
      WorkerQueue& q = *queues_[(start + k) % n];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.dq.empty()) continue;
      if (group == nullptr) {
        *out = std::move(q.dq.back());
        q.dq.pop_back();
        stealsCounter_->add();
        return true;
      }
      for (auto it = q.dq.rbegin(); it != q.dq.rend(); ++it) {
        if (it->group.get() == group) {
          *out = std::move(*it);
          q.dq.erase(std::next(it).base());
          stealsCounter_->add();
          return true;
        }
      }
    }
    return false;
  }

  void workerMain(int index, bool pin) {
    t_workerIndex = index;
    if (pin) pinToCpu(index);
    bool trimmed = false;
    bool idleTimed = false;
    WallTimer idleTimer;
    for (;;) {
      Task task;
      if (popOwn(&task) || stealFor(nullptr, &task)) {
        if (idleTimed) {
          idleHistogram_->record(idleTimer.milliseconds());
          idleTimed = false;
        }
        trimmed = false;
        execute(task);
        continue;
      }
      if (!idleTimed) {
        idleTimer.reset();
        idleTimed = true;
      }
      // Brief spin before sleeping: back-to-back parallelFor calls (the
      // dispatch-overhead hot case) hand the next batch to still-warm
      // workers without paying a futex round trip.
      bool found = false;
      for (int spin = 0; spin < 64 && !found; ++spin) {
        std::this_thread::yield();
        found = popOwn(&task) || stealFor(nullptr, &task);
      }
      if (found) {
        idleHistogram_->record(idleTimer.milliseconds());
        idleTimed = false;
        trimmed = false;
        execute(task);
        continue;
      }
      // Read the submit epoch BEFORE the last scan: a task submitted
      // after that scan bumps signal_ past `seen`, so the wait predicate
      // fires instead of napping over ready work.
      std::uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(sleepMu_);
        seen = signal_;
      }
      if (popOwn(&task) || stealFor(nullptr, &task)) {
        idleHistogram_->record(idleTimer.milliseconds());
        idleTimed = false;
        trimmed = false;
        execute(task);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleepMu_);
      if (stop_.load(std::memory_order_acquire)) break;
      const int trimMs = g_idleTrimMs.load(std::memory_order_relaxed);
      const int napMs =
          (trimMs > 0 && !trimmed) ? std::min(trimMs, 100) : 100;
      sleepCv_.wait_for(lock, std::chrono::milliseconds(napMs), [&] {
        return stop_.load(std::memory_order_acquire) || signal_ != seen;
      });
      if (stop_.load(std::memory_order_acquire)) break;
      lock.unlock();
      if (!trimmed && trimMs > 0 && idleTimer.milliseconds() >= trimMs) {
        // Idle long enough: drop thread-local caches (scratch grids) so a
        // parked pool doesn't pin memory. The next task re-warms them.
        runWorkerTeardowns();
        trimsCounter_->add();
        trimmed = true;
      }
    }
    if (idleTimed) idleHistogram_->record(idleTimer.milliseconds());
    runWorkerTeardowns();
    t_workerIndex = -1;
  }

  static void pinToCpu(int index) {
#if defined(__linux__)
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(index) % hw, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)index;
#endif
  }

  std::mutex startMu_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<int> liveThreads_{0};
  std::atomic<std::size_t> rr_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<int> activeWorkers_{0};

  std::mutex sleepMu_;
  std::condition_variable sleepCv_;
  std::uint64_t signal_ = 0;  ///< guarded by sleepMu_

  telemetry::Counter* tasksCounter_ = nullptr;
  telemetry::Counter* stealsCounter_ = nullptr;
  telemetry::Counter* trimsCounter_ = nullptr;
  telemetry::Histogram* idleHistogram_ = nullptr;
  telemetry::Gauge* activeGauge_ = nullptr;
  telemetry::Gauge* workersGauge_ = nullptr;
};

thread_local int Pool::t_workerIndex = -1;

// -------------------------------------------------- legacy spawn engine

/// The seed scheduler, frozen: spawn workers-1 threads per call, chunk by
/// atomic counter, nested calls degrade to serial. Kept selectable as the
/// bit-for-bit equivalence oracle and the bm_parallel baseline.
void parallelForSpawn(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn) {
  const std::size_t n = end - begin;
  const int workers = t_parallelDepth > 0
                          ? 1  // nested call: run serially on this worker
                          : std::min<std::size_t>(resolveWorkers(), n);
  if (workers <= 1) {
    DepthGuard depth;
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const std::size_t chunk = std::max<std::size_t>(1, n / (4 * workers));

  auto worker = [&] {
    DepthGuard depth;
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) {
    threads.emplace_back([&worker] {
      worker();
      runWorkerTeardowns();
    });
  }
  worker();
  for (auto& thread : threads) thread.join();
  if (firstError) std::rethrow_exception(firstError);
}

// --------------------------------------------------- pool-backed ranges

void parallelForPool(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)>& fn) {
  const std::size_t n = end - begin;
  const int workers = resolveWorkers();
  if (workers <= 1 || n == 1) {
    DepthGuard depth;
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  Pool& pool = Pool::instance();
  pool.ensureStarted(workers - 1);

  // Chunking: enough chunks that idle workers can steal meaningful slack
  // (4 per worker, the seed's granularity), never more chunks than items.
  const std::size_t targetChunks =
      std::min<std::size_t>(n, static_cast<std::size_t>(workers) * 4);
  const std::size_t chunk = (n + targetChunks - 1) / targetChunks;

  auto group = std::make_shared<GroupState>();
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit({group, [lo, hi, &fn] {
                   for (std::size_t i = lo; i < hi; ++i) fn(i);
                 }});
  }
  pool.waitGroup(group);

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    error = group->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

// -------------------------------------------------------- public façade

int hardwareParallelism() { return resolveWorkers(); }

void setParallelism(int workers) {
  MOSAIC_CHECK(workers >= 0, "worker count must be >= 0");
  MOSAIC_CHECK(t_parallelDepth == 0,
               "setParallelism inside a parallel region");
  g_workers.store(workers);
  Pool& pool = Pool::instance();
  if (!pool.running()) return;
  // Resize semantics: a change in the effective worker count tears the
  // old pool down right away (teardown hooks run on every worker, so
  // scratch residency drops deterministically); the next parallelFor
  // starts the new one lazily.
  if (pool.liveThreads() != resolveWorkers() - 1) {
    pool.shutdown();
  }
}

bool inParallelRegion() { return t_parallelDepth > 0; }

void registerWorkerTeardown(void (*hook)()) {
  std::lock_guard<std::mutex> lock(teardownMutex());
  teardownHooks().push_back(hook);
}

void runWorkerTeardowns() {
  std::vector<void (*)()> hooks;
  {
    std::lock_guard<std::mutex> lock(teardownMutex());
    hooks = teardownHooks();
  }
  for (void (*hook)() : hooks) hook();
}

void setParallelBackend(ParallelBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
}

ParallelBackend parallelBackend() { return resolveBackend(); }

void setWorkerPinning(bool pin) {
  g_pinWorkers.store(pin, std::memory_order_relaxed);
}

void setPoolIdleTrimMs(int ms) {
  MOSAIC_CHECK(ms >= 0, "idle trim interval must be >= 0");
  g_idleTrimMs.store(ms, std::memory_order_relaxed);
}

void shutdownParallelPool() { Pool::instance().shutdown(); }

PoolStats poolStats() { return Pool::instance().stats(); }

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (resolveBackend() == ParallelBackend::kSpawn) {
    parallelForSpawn(begin, end, fn);
  } else {
    parallelForPool(begin, end, fn);
  }
}

// ------------------------------------------------------------ TaskGroup

struct TaskGroup::State {
  std::shared_ptr<GroupState> group = std::make_shared<GroupState>();
  bool waited = false;
};

TaskGroup::TaskGroup() : state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  if (!state_->waited) {
    Pool::instance().waitGroup(state_->group);  // errors dropped; see hpp
  }
}

void TaskGroup::run(std::function<void()> fn) {
  const int workers = resolveWorkers();
  Pool& pool = Pool::instance();
  if (workers > 1) pool.ensureStarted(workers - 1);
  if (workers <= 1 || !pool.running()) {
    if (state_->group->abort.load(std::memory_order_relaxed)) return;
    DepthGuard depth;
    try {
      fn();
    } catch (...) {
      state_->group->recordError(std::current_exception());
    }
    return;
  }
  pool.submit({state_->group, std::move(fn)});
}

void TaskGroup::wait() {
  Pool::instance().waitGroup(state_->group);
  state_->waited = true;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state_->group->mu);
    error = state_->group->error;
    state_->group->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::cancel() {
  state_->group->abort.store(true, std::memory_order_relaxed);
}

bool TaskGroup::canceled() const {
  return state_->group->abort.load(std::memory_order_relaxed);
}

}  // namespace mosaic
