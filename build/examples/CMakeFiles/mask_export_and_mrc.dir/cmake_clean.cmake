file(REMOVE_RECURSE
  "CMakeFiles/mask_export_and_mrc.dir/mask_export_and_mrc.cpp.o"
  "CMakeFiles/mask_export_and_mrc.dir/mask_export_and_mrc.cpp.o.d"
  "mask_export_and_mrc"
  "mask_export_and_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_export_and_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
