file(REMOVE_RECURSE
  "CMakeFiles/ablation_psm.dir/ablation_psm.cpp.o"
  "CMakeFiles/ablation_psm.dir/ablation_psm.cpp.o.d"
  "ablation_psm"
  "ablation_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
