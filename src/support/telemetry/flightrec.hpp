#pragma once
/// \file flightrec.hpp
/// Always-on crash flight recorder (docs/observability.md).
///
/// A fixed-size in-memory ring of short annotated events — job admissions,
/// state transitions, retries, fail-point hits, checkpoint writes — that
/// costs one atomic increment plus two bounded copies per record, so it
/// stays armed in production. When the process dies on SIGSEGV/SIGABRT (or
/// an explicit fatal-error dump), the ring is written out as JSONL, giving
/// the post-mortem the last ~1k things the process did, each stamped with
/// the thread id and the active trace id (trace.hpp) so the crashing job
/// is identifiable.
///
/// Crash-path constraints shape the design:
///   - recording takes no locks and allocates nothing (a signal handler
///     can itself record the signal before dumping);
///   - event text is sanitized at *record* time (quotes, backslashes and
///     control bytes become spaces), so the dump path is plain snprintf +
///     write(2) with no JSON escaping;
///   - slots carry a sequence number written last (release), so a dump
///     concurrent with writers skips torn slots instead of emitting
///     garbage.

#include <cstdint>
#include <string>
#include <string_view>

namespace mosaic {
namespace telemetry {
namespace flightrec {

/// Ring capacity in events. Old events are overwritten; a dump holds the
/// most recent window.
inline constexpr std::size_t kCapacity = 1024;

/// Record one event. `kind` is a short category ("admit", "state",
/// "retry", "failpoint", "checkpoint", "signal", "fatal"); `detail` is a
/// one-line human payload. Both are truncated to the slot's fixed buffers
/// and sanitized for the raw dump path. Thread id and current trace id
/// are captured implicitly. Safe from any thread and (unlike most of the
/// library) from signal handlers.
void record(std::string_view kind, std::string_view detail);

/// Total events recorded since process start (including overwritten ones).
std::uint64_t eventCount();

/// The ring as JSONL, oldest first: one
///   {"seq":..,"t_ns":..,"tid":..,"trace":"t-..","kind":"..","detail":".."}
/// object per line. For GET /debug/flightrec and tests.
std::string dumpJsonl();

/// Write dumpJsonl()'s content to an open descriptor using only snprintf
/// and write(2). Used by the crash handlers; callable anywhere.
void dumpTo(int fd);

/// Open `path` (truncate), dumpTo() it, close. Returns false on I/O
/// failure instead of throwing (the caller may already be crashing).
bool dumpToFile(const char* path);

/// Dump the ring to the path armed by installCrashHandlers (no-op when no
/// path is armed). For fatal-error exits that bypass the signal path.
/// Returns false if no path is armed or the write failed.
bool dumpArmedPath();

/// Install SIGSEGV/SIGABRT handlers that record the signal, dump the ring
/// to `path`, then restore the default disposition and re-raise so the
/// exit status still reflects the crash. The path is copied into static
/// storage; later calls replace it.
void installCrashHandlers(const std::string& path);

/// Zero the ring (tests only; not safe concurrent with writers).
void clearForTest();

}  // namespace flightrec
}  // namespace telemetry
}  // namespace mosaic
