#include "math/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

namespace mosaic {
namespace {

double offDiagonalNorm(const Matrix& a) {
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (r != c) acc += a(r, c) * a(r, c);
    }
  }
  return std::sqrt(acc);
}

}  // namespace

SymmetricEigenResult jacobiEigenSymmetric(const Matrix& input, int maxSweeps) {
  MOSAIC_CHECK(input.isSquare(), "eigendecomposition needs a square matrix");
  const int n = input.rows();

  double scale = 0.0;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      scale = std::max(scale, std::fabs(input(r, c)));
      MOSAIC_CHECK(std::fabs(input(r, c) - input(c, r)) <=
                       1e-9 * std::max(1.0, scale),
                   "matrix is not symmetric at (" << r << "," << c << ")");
    }
  }

  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double tol = 1e-14 * std::max(1.0, scale) * n;

  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    if (offDiagonalNorm(a) <= tol) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= tol / n) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Classic stable rotation: t = sign(theta) / (|theta| + sqrt(1+theta^2)).
        double t;
        if (std::fabs(theta) > 1e150) {
          t = 1.0 / (2.0 * theta);
        } else {
          t = ((theta >= 0) ? 1.0 : -1.0) /
              (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  MOSAIC_CHECK(offDiagonalNorm(a) <= std::sqrt(tol) * std::max(1.0, scale) + tol * 1e3,
               "Jacobi eigensolver did not converge in " << maxSweeps
                                                         << " sweeps");

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a(x, x) > a(y, y); });

  SymmetricEigenResult result;
  result.eigenvalues.reserve(static_cast<std::size_t>(n));
  result.eigenvectors.reserve(static_cast<std::size_t>(n));
  for (int idx : order) {
    result.eigenvalues.push_back(a(idx, idx));
    std::vector<double> vec(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) vec[static_cast<std::size_t>(k)] = v(k, idx);
    result.eigenvectors.push_back(std::move(vec));
  }
  return result;
}

HermitianEigenResult jacobiEigenHermitian(
    const std::vector<std::complex<double>>& h, int n, int maxSweeps) {
  MOSAIC_CHECK(n > 0, "matrix dimension must be positive");
  MOSAIC_CHECK(h.size() == static_cast<std::size_t>(n) * n,
               "matrix storage size mismatch");

  auto at = [&](int r, int c) -> const std::complex<double>& {
    return h[static_cast<std::size_t>(r) * n + c];
  };
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      MOSAIC_CHECK(std::abs(at(r, c) - std::conj(at(c, r))) <= 1e-9,
                   "matrix is not Hermitian at (" << r << "," << c << ")");
    }
  }

  // Real embedding E = [[Re, -Im], [Im, Re]]; E is symmetric when H is
  // Hermitian. Each eigenvalue of H appears twice in E; the real
  // eigenvector (x; y) maps to the complex eigenvector x + i y.
  Matrix e(2 * n, 2 * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const std::complex<double> val = at(r, c);
      e(r, c) = val.real();
      e(r, c + n) = -val.imag();
      e(r + n, c) = val.imag();
      e(r + n, c + n) = val.real();
    }
  }

  SymmetricEigenResult real = jacobiEigenSymmetric(e, maxSweeps);

  HermitianEigenResult result;
  result.eigenvalues.reserve(static_cast<std::size_t>(n));
  result.eigenvectors.reserve(static_cast<std::size_t>(n));

  // Walk the doubled spectrum; keep one complex vector per true eigenpair
  // by Gram-Schmidt projection against already accepted vectors of nearby
  // eigenvalues (v and i*v collapse to the same complex direction).
  const double span =
      std::max({1.0, std::fabs(real.eigenvalues.front()),
                std::fabs(real.eigenvalues.back())});
  for (std::size_t idx = 0;
       idx < real.eigenvalues.size() &&
       result.eigenvalues.size() < static_cast<std::size_t>(n);
       ++idx) {
    std::vector<std::complex<double>> vec(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vec[static_cast<std::size_t>(i)] = {
          real.eigenvectors[idx][static_cast<std::size_t>(i)],
          real.eigenvectors[idx][static_cast<std::size_t>(i + n)]};
    }
    // Project out previously accepted vectors within the eigenvalue cluster.
    for (std::size_t k = 0; k < result.eigenvalues.size(); ++k) {
      if (std::fabs(result.eigenvalues[k] - real.eigenvalues[idx]) >
          1e-7 * span) {
        continue;
      }
      std::complex<double> dot{0.0, 0.0};
      for (int i = 0; i < n; ++i) {
        dot += std::conj(result.eigenvectors[k][static_cast<std::size_t>(i)]) *
               vec[static_cast<std::size_t>(i)];
      }
      for (int i = 0; i < n; ++i) {
        vec[static_cast<std::size_t>(i)] -=
            dot * result.eigenvectors[k][static_cast<std::size_t>(i)];
      }
    }
    double norm = 0.0;
    for (const auto& z : vec) norm += std::norm(z);
    norm = std::sqrt(norm);
    if (norm < 1e-6) continue;  // duplicate direction (the i*v copy)
    for (auto& z : vec) z /= norm;
    result.eigenvalues.push_back(real.eigenvalues[idx]);
    result.eigenvectors.push_back(std::move(vec));
  }

  MOSAIC_CHECK(result.eigenvalues.size() == static_cast<std::size_t>(n),
               "Hermitian eigensolver recovered "
                   << result.eigenvalues.size() << " of " << n
                   << " eigenpairs");
  return result;
}

namespace {

using ComplexVec = std::vector<std::complex<double>>;

/// Modified Gram-Schmidt over the columns in `basis`. Columns that cancel
/// to (near) zero are replaced by fresh deterministic directions and the
/// pass restarts on them, so the basis always leaves with full rank.
void orthonormalize(std::vector<ComplexVec>& basis, std::uint64_t& seed) {
  auto nextUnit = [&seed](std::size_t dim) {
    ComplexVec v(dim);
    for (auto& z : v) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const double re = static_cast<double>(seed >> 11) * 0x1p-53 - 0.5;
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const double im = static_cast<double>(seed >> 11) * 0x1p-53 - 0.5;
      z = {re, im};
    }
    return v;
  };
  for (std::size_t j = 0; j < basis.size(); ++j) {
    for (int retry = 0; retry < 8; ++retry) {
      for (std::size_t p = 0; p < j; ++p) {
        std::complex<double> dot{0.0, 0.0};
        for (std::size_t i = 0; i < basis[j].size(); ++i) {
          dot += std::conj(basis[p][i]) * basis[j][i];
        }
        for (std::size_t i = 0; i < basis[j].size(); ++i) {
          basis[j][i] -= dot * basis[p][i];
        }
      }
      double norm = 0.0;
      for (const auto& z : basis[j]) norm += std::norm(z);
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (auto& z : basis[j]) z /= norm;
        break;
      }
      basis[j] = nextUnit(basis[j].size());
    }
  }
}

}  // namespace

HermitianEigenResult topEigenpairsHermitian(
    const std::vector<std::complex<double>>& h, int n, int k, int maxIters,
    double tol) {
  MOSAIC_CHECK(n > 0, "matrix dimension must be positive");
  MOSAIC_CHECK(h.size() == static_cast<std::size_t>(n) * n,
               "matrix storage size mismatch");
  MOSAIC_CHECK(k >= 1 && k <= n, "requested eigenpair count out of range");
  MOSAIC_CHECK(maxIters > 0 && tol > 0.0, "iteration budget must be positive");

  auto at = [&](int r, int c) -> const std::complex<double>& {
    return h[static_cast<std::size_t>(r) * n + c];
  };
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      MOSAIC_CHECK(std::abs(at(r, c) - std::conj(at(c, r))) <= 1e-9,
                   "matrix is not Hermitian at (" << r << "," << c << ")");
    }
  }

  // A buffer of extra Ritz directions above k speeds convergence: pair j
  // settles at rate (|lambda_{b+1}| / |lambda_j|)^iter, so the guard band
  // pushes the contaminating tail further down the spectrum.
  const int block = std::min(n, std::max(2 * k, k + 8));
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::vector<ComplexVec> basis(static_cast<std::size_t>(block));
  for (auto& column : basis) column.assign(static_cast<std::size_t>(n), {});
  orthonormalize(basis, seed);  // empty columns are seeded deterministically

  std::vector<ComplexVec> image(static_cast<std::size_t>(block));
  std::vector<double> prevRitz;
  HermitianEigenResult small;
  bool settled = false;
  for (int iter = 0; iter < maxIters && !settled; ++iter) {
    // image = H * basis, one dense row sweep per output entry.
    for (int j = 0; j < block; ++j) {
      auto& y = image[static_cast<std::size_t>(j)];
      y.assign(static_cast<std::size_t>(n), {});
      const auto& x = basis[static_cast<std::size_t>(j)];
      for (int r = 0; r < n; ++r) {
        const std::complex<double>* row = &h[static_cast<std::size_t>(r) * n];
        std::complex<double> acc{0.0, 0.0};
        for (int c = 0; c < n; ++c) acc += row[c] * x[static_cast<std::size_t>(c)];
        y[static_cast<std::size_t>(r)] = acc;
      }
    }
    // Rayleigh-Ritz on the projected block: B = basis^H * image.
    ComplexVec projected(static_cast<std::size_t>(block) * block);
    for (int p = 0; p < block; ++p) {
      for (int q = 0; q < block; ++q) {
        std::complex<double> dot{0.0, 0.0};
        for (int i = 0; i < n; ++i) {
          dot += std::conj(basis[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(i)]) *
                 image[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)];
        }
        projected[static_cast<std::size_t>(p) * block + q] = dot;
      }
    }
    // The projection is Hermitian up to round-off; symmetrize before the
    // small dense solve so its input validation holds.
    for (int p = 0; p < block; ++p) {
      for (int q = p; q < block; ++q) {
        const std::complex<double> mean =
            0.5 * (projected[static_cast<std::size_t>(p) * block + q] +
                   std::conj(projected[static_cast<std::size_t>(q) * block + p]));
        projected[static_cast<std::size_t>(p) * block + q] = mean;
        projected[static_cast<std::size_t>(q) * block + p] = std::conj(mean);
      }
    }
    small = jacobiEigenHermitian(projected, block);

    // Rotate the power-step image into the Ritz basis for the next round.
    std::vector<ComplexVec> rotated(static_cast<std::size_t>(block));
    for (int j = 0; j < block; ++j) {
      auto& column = rotated[static_cast<std::size_t>(j)];
      column.assign(static_cast<std::size_t>(n), {});
      for (int p = 0; p < block; ++p) {
        const std::complex<double> coeff =
            small.eigenvectors[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(p)];
        const auto& y = image[static_cast<std::size_t>(p)];
        for (int i = 0; i < n; ++i) {
          column[static_cast<std::size_t>(i)] +=
              coeff * y[static_cast<std::size_t>(i)];
        }
      }
    }
    basis = std::move(rotated);
    orthonormalize(basis, seed);

    const double scale = std::max(1.0, std::fabs(small.eigenvalues.front()));
    if (!prevRitz.empty()) {
      settled = true;
      for (int j = 0; j < k; ++j) {
        if (std::fabs(small.eigenvalues[static_cast<std::size_t>(j)] -
                      prevRitz[static_cast<std::size_t>(j)]) > tol * scale) {
          settled = false;
          break;
        }
      }
    }
    prevRitz = small.eigenvalues;
  }
  MOSAIC_CHECK(settled, "subspace iteration did not settle in "
                            << maxIters << " iterations");

  // The final basis columns are ordered by descending Ritz value already
  // (the last rotation sorted them); fix each eigenvector's global phase
  // so results are reproducible across runs and solvers.
  HermitianEigenResult result;
  result.eigenvalues.assign(prevRitz.begin(), prevRitz.begin() + k);
  result.eigenvectors.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    ComplexVec vec = basis[static_cast<std::size_t>(j)];
    std::size_t pivot = 0;
    for (std::size_t i = 1; i < vec.size(); ++i) {
      if (std::norm(vec[i]) > std::norm(vec[pivot])) pivot = i;
    }
    const double mag = std::abs(vec[pivot]);
    if (mag > 0.0) {
      const std::complex<double> phase = std::conj(vec[pivot]) / mag;
      for (auto& z : vec) z *= phase;
    }
    result.eigenvectors.push_back(std::move(vec));
  }
  return result;
}

}  // namespace mosaic
