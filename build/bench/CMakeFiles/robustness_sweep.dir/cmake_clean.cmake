file(REMOVE_RECURSE
  "CMakeFiles/robustness_sweep.dir/robustness_sweep.cpp.o"
  "CMakeFiles/robustness_sweep.dir/robustness_sweep.cpp.o.d"
  "robustness_sweep"
  "robustness_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
