#!/usr/bin/env bash
# Tier-1 smoke test for the mosaic_serve daemon (docs/serving.md).
#
# The SIGKILL recovery contract, end to end through real processes:
#   1. Clean reference: a daemon runs one job to completion; record the
#      result's mask hash.
#   2. Kill run: a daemon slowed by an optimizer.step delay fail point is
#      SIGKILLed after the job's first checkpoint lands but before it
#      finishes. kill -9 allows no cleanup of any kind.
#   3. Recovery: a new daemon on the same work dir replays the journal,
#      resumes the job from its checkpoint, and must produce a mask hash
#      bit-identical to the uninterrupted run.
#
# Also covered: the port file handshake, `mosaic_cli submit --wait` /
# `--watch`, and graceful SIGTERM drain exiting with code 3 (interrupted).
#
# Usage: serve_smoke_test.sh <mosaic_serve> <mosaic_cli> <scratch dir>

set -u

SERVE="$1"
CLI="$2"
SCRATCH="$3"

SPEC=(--case B1 --method baseline --pixel 16 --iters 12 --checkpoint-every 3)
DAEMON_PID=""

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
}
trap cleanup EXIT

# start_daemon <work dir> <log file> [extra args...]; sets DAEMON_PID and
# waits for the port file so submissions cannot race the listener.
start_daemon() {
  local dir="$1" log="$2"
  shift 2
  rm -f "$dir/serve.port"
  "$SERVE" --work-dir "$dir" --port 0 --workers 1 "$@" >"$log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 300); do
    [ -s "$dir/serve.port" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died at startup: $(cat "$log")"
    sleep 0.1
  done
  fail "daemon never wrote $dir/serve.port: $(cat "$log")"
}

mask_hash_of() {
  sed -n 's/.*"mask_hash":"\([0-9a-f]*\)".*/\1/p' <<<"$1" | head -1
}

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/clean" "$SCRATCH/kill"

# --- 1. clean reference run -------------------------------------------------
start_daemon "$SCRATCH/clean" "$SCRATCH/clean.log"
OUT=$("$CLI" submit --port-file "$SCRATCH/clean/serve.port" "${SPEC[@]}" --wait) \
  || fail "clean submit --wait failed: $OUT"
REF_HASH=$(mask_hash_of "$OUT")
[ -n "$REF_HASH" ] || fail "no mask_hash in clean result: $OUT"
grep -q '"state":"done"' <<<"$OUT" || fail "clean job not done: $OUT"

# Graceful drain: SIGTERM must exit with the interrupted code (3).
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
CODE=$?
DAEMON_PID=""
[ "$CODE" -eq 3 ] || fail "SIGTERM drain exited $CODE, want 3: $(cat "$SCRATCH/clean.log")"

# --- 2. kill -9 mid-job -----------------------------------------------------
# 150 ms per iteration stretches the 12-iteration job to ~2 s so the kill
# window is wide; we fire as soon as the first checkpoint file exists.
start_daemon "$SCRATCH/kill" "$SCRATCH/kill1.log" \
  --failpoints "optimizer.step:delay=150"
OUT=$("$CLI" submit --port-file "$SCRATCH/kill/serve.port" "${SPEC[@]}") \
  || fail "kill-run submit failed: $OUT"
JOB=$(sed -n 's/.*"job":"\([^"]*\)".*/\1/p' <<<"$OUT" | head -1)
[ -n "$JOB" ] || fail "no job id in submit reply: $OUT"

CKPT="$SCRATCH/kill/ckpt/$JOB.ckpt"
for _ in $(seq 1 300); do
  [ -s "$CKPT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before checkpointing: $(cat "$SCRATCH/kill1.log")"
  sleep 0.05
done
[ -s "$CKPT" ] || fail "no checkpoint appeared at $CKPT"

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""

# --- 3. restart and resume --------------------------------------------------
start_daemon "$SCRATCH/kill" "$SCRATCH/kill2.log"
grep -q "recovered 1 job" "$SCRATCH/kill2.log" \
  || fail "restarted daemon did not report recovery: $(cat "$SCRATCH/kill2.log")"

OUT=$("$CLI" submit --port-file "$SCRATCH/kill/serve.port" --watch "$JOB" --wait) \
  || fail "watch after restart failed: $OUT"
grep -q '"state":"done"' <<<"$OUT" || fail "recovered job not done: $OUT"
RESUMED_HASH=$(mask_hash_of "$OUT")
[ -n "$RESUMED_HASH" ] || fail "no mask_hash in recovered result: $OUT"

[ "$RESUMED_HASH" = "$REF_HASH" ] \
  || fail "resumed mask differs: clean=$REF_HASH resumed=$RESUMED_HASH"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "serve_smoke: OK (job $JOB resumed bit-identically: $REF_HASH)"
exit 0
