/// \file ablation_pvband.cpp
/// Ablation for Sec. 3.4: the process-window term. Sweeps the beta weight
/// (0 = conventional design-target-only ILT) and compares the in-loop
/// corner sets. The paper's claim: adding F_pvb trades a little nominal
/// fidelity for a tighter PV band and a better contest score.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "2,4,8";
  std::string logLevel = "warn";

  CliParser cli("ablation_pvband",
                "beta / corner-set sweep for the F_pvb term (Sec. 3.4)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    TextTable table;
    table.setHeader({"case", "beta scale", "corners", "#EPE", "PVB(nm^2)",
                     "score"});

    const std::vector<double> betaScales = {0.0, 0.5, 1.0, 2.0, 4.0};
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      const IltConfig base = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
      auto runWith = [&](double betaScale,
                         const std::vector<ProcessCorner>& corners,
                         const std::string& cornersLabel) {
        IltConfig cfg = base;
        cfg.maxIterations = iterations;
        cfg.beta = base.beta * betaScale;
        cfg.pvbCorners = corners;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev = evaluateMask(sim, toReal(res.maskBinary),
                                               target, res.runtimeSec);
        table.addRow({layout.name, TextTable::num(betaScale, 1), cornersLabel,
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::num(ev.score, 0)});
      };

      for (double scale : betaScales) {
        runWith(scale, optimizationCorners(), "3 in-loop");
      }
      // Corner-set comparison at the default beta.
      runWith(1.0, evaluationCorners(), "all 6");
    }
    std::printf(
        "=== Ablation: process-window weight beta and corner set ===\n%s\n",
        table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_pvband failed: %s\n", e.what());
    return 1;
  }
}
