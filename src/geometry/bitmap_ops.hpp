#pragma once
/// \file bitmap_ops.hpp
/// Boolean and morphological operations on binary rasters: the building
/// blocks for PV-band area (union minus intersection of corner prints,
/// paper Fig. 4), shape-violation detection (holes / broken features), and
/// rule-based SRAF / OPC bias generation.

#include <vector>

#include "math/grid.hpp"

namespace mosaic {

/// Element-wise boolean ops (shapes must match).
BitGrid bitAnd(const BitGrid& a, const BitGrid& b);
BitGrid bitOr(const BitGrid& a, const BitGrid& b);
BitGrid bitXor(const BitGrid& a, const BitGrid& b);
BitGrid bitNot(const BitGrid& a);
BitGrid bitSub(const BitGrid& a, const BitGrid& b);  ///< a AND NOT b

/// Count of set pixels.
long long countSet(const BitGrid& a);

/// Morphological dilation by a Chebyshev (square) ball of the radius, in
/// pixels: output pixel set iff any input pixel within L-inf distance
/// `radius` is set. radius 0 returns the input.
BitGrid dilateSquare(const BitGrid& a, int radius);

/// Morphological erosion by the same structuring element.
BitGrid erodeSquare(const BitGrid& a, int radius);

/// Multi-source Manhattan (L1) distance to the nearest set pixel, via BFS.
/// Unreachable cells (no set pixel at all) get a distance of rows+cols.
Grid<int> manhattanDistance(const BitGrid& a);

/// Connected-component labelling. Returns label grid (0 = background,
/// labels start at 1) and sets componentCount.
/// \param eightConnected use 8-connectivity (else 4-connectivity).
Grid<int> labelComponents(const BitGrid& a, bool eightConnected,
                          int* componentCount);

/// Number of connected foreground components (4-connected by default, the
/// convention for features).
int countComponents(const BitGrid& a, bool eightConnected = false);

/// Number of holes: background components (4-connected) that do not touch
/// the raster border.
int countHoles(const BitGrid& a);

}  // namespace mosaic
