# Empty compiler generated dependencies file for mosaic_opc.
# This may be replaced when dependencies are built.
