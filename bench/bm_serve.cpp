/// \file bm_serve.cpp
/// Throughput/latency measurement of the mosaic_serve job service
/// (docs/serving.md): drives an in-process JobService with a stream of
/// small OPC jobs at 1, 2 and 4 workers, cold (every job rebuilds its
/// SOCS kernels) vs warm (the shared simulator pool — the serve value
/// proposition), and reports jobs/sec plus p50/p95/p99 sojourn latency.
/// Emits BENCH_serve.json; with --min-warm-speedup X it exits nonzero
/// when warm throughput fails to beat cold by that factor at any worker
/// count (enforced at 1.5x by the serve_throughput ctest).

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace mosaic;

struct RunStats {
  int workers = 0;
  bool warm = false;
  int jobs = 0;
  double jobsPerSec = 0.0;
  double p50Ms = 0.0;
  double p95Ms = 0.0;
  double p99Ms = 0.0;
};

double percentile(std::vector<double> sortedMs, double p) {
  if (sortedMs.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sortedMs.size() - 1) + 0.5);
  return sortedMs[std::min(rank, sortedMs.size() - 1)];
}

serve::JobSpec benchSpec(int index, int pixel, int iters) {
  serve::JobSpec spec;
  spec.caseName = "random:" + std::to_string(9000 + index);
  spec.method = "baseline";
  spec.pixelNm = pixel;
  spec.iterations = iters;
  spec.checkpointEvery = 0x7fffffff;  // measuring serve, not checkpoint I/O
  return spec;
}

RunStats runConfig(int workers, bool warm, int jobs, int pixel, int iters) {
  const std::filesystem::path workDir =
      std::filesystem::temp_directory_path() /
      ("bm_serve_" + std::to_string(workers) + (warm ? "_warm" : "_cold"));
  std::filesystem::remove_all(workDir);

  serve::ServeConfig cfg;
  cfg.workDir = workDir.string();
  cfg.workers = workers;
  cfg.queueCapacity = jobs + 2;
  cfg.reuseSimulators = warm;
  serve::JobService service(cfg);

  if (warm) {
    // Build the shared simulator pool outside the timed window: the warm
    // numbers describe the steady state of a long-lived daemon.
    const serve::SubmitResult warmup =
        service.submit(benchSpec(-1, pixel, 1));
    MOSAIC_CHECK(warmup.status == serve::SubmitStatus::kAccepted,
                 "warmup submit rejected: " << warmup.message);
    serve::JobSnapshot snap;
    while (service.snapshot(warmup.id, &snap) &&
           (snap.state == serve::JobState::kQueued ||
            snap.state == serve::JobState::kRunning)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    MOSAIC_CHECK(snap.state == serve::JobState::kDone,
                 "warmup job did not finish");
  }

  WallTimer clock;
  std::vector<std::string> ids;
  std::vector<double> submitAt;
  std::vector<double> latencyMs(static_cast<std::size_t>(jobs), -1.0);
  ids.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    const serve::SubmitResult res = service.submit(benchSpec(i, pixel, iters));
    MOSAIC_CHECK(res.status == serve::SubmitStatus::kAccepted,
                 "submit " << i << " rejected: " << res.message);
    ids.push_back(res.id);
    submitAt.push_back(clock.seconds());
  }

  double lastDone = 0.0;
  int remaining = jobs;
  while (remaining > 0) {
    MOSAIC_CHECK(clock.seconds() < 600.0, "bm_serve stuck: " << remaining
                                                             << " jobs left");
    for (int i = 0; i < jobs; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (latencyMs[idx] >= 0.0) continue;
      serve::JobSnapshot snap;
      MOSAIC_CHECK(service.snapshot(ids[idx], &snap),
                   "job vanished: " << ids[idx]);
      if (snap.state == serve::JobState::kQueued ||
          snap.state == serve::JobState::kRunning) {
        continue;
      }
      MOSAIC_CHECK(snap.state == serve::JobState::kDone,
                   "job " << ids[idx] << " ended "
                          << serve::jobStateName(snap.state) << ": "
                          << snap.error);
      lastDone = clock.seconds();
      latencyMs[idx] = (lastDone - submitAt[idx]) * 1e3;
      --remaining;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.drain(serve::DrainMode::kFinish);
  std::filesystem::remove_all(workDir);

  std::sort(latencyMs.begin(), latencyMs.end());
  RunStats stats;
  stats.workers = workers;
  stats.warm = warm;
  stats.jobs = jobs;
  stats.jobsPerSec = static_cast<double>(jobs) / std::max(lastDone, 1e-9);
  stats.p50Ms = percentile(latencyMs, 0.50);
  stats.p95Ms = percentile(latencyMs, 0.95);
  stats.p99Ms = percentile(latencyMs, 0.99);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 16;
  int iters = 8;
  int warmJobs = 16;
  int coldJobs = 4;
  double minWarmSpeedup = -1.0;
  std::string jsonPath = "BENCH_serve.json";
  std::string logLevel = "warn";

  CliParser cli("bm_serve",
                "jobs/sec and latency of the serve worker pool, cold vs warm");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iters, "optimizer iterations per job");
  cli.addInt("jobs", &warmJobs, "jobs per warm measurement");
  cli.addInt("cold-jobs", &coldJobs,
             "jobs per cold measurement (each pays a full kernel build)");
  cli.addDouble("min-warm-speedup", &minWarmSpeedup,
                "fail unless warm/cold jobs-per-sec >= this at every worker "
                "count (<0 = report only)");
  cli.addString("json", &jsonPath, "output JSON path");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));
    MOSAIC_CHECK(warmJobs > 0 && coldJobs > 0, "job counts must be positive");

    std::vector<RunStats> runs;
    for (int workers : {1, 2, 4}) {
      runs.push_back(runConfig(workers, false, coldJobs, pixel, iters));
      runs.push_back(runConfig(workers, true, warmJobs, pixel, iters));
    }

    std::printf("== bm_serve: %d-nm pixel, %d iterations/job ==\n", pixel,
                iters);
    TextTable table;
    table.setHeader({"workers", "mode", "jobs", "jobs/s", "p50 ms", "p95 ms",
                     "p99 ms"});
    for (const RunStats& r : runs) {
      table.addRow({TextTable::integer(r.workers), r.warm ? "warm" : "cold",
                    TextTable::integer(r.jobs), TextTable::num(r.jobsPerSec, 2),
                    TextTable::num(r.p50Ms, 1), TextTable::num(r.p95Ms, 1),
                    TextTable::num(r.p99Ms, 1)});
    }
    std::printf("%s", table.render().c_str());

    double worstSpeedup = 0.0;
    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json,
                 "{\n  \"bench\": \"bm_serve\",\n  \"pixel_nm\": %d,\n"
                 "  \"iterations\": %d,\n  \"configs\": [",
                 pixel, iters);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunStats& r = runs[i];
      std::fprintf(json,
                   "%s\n    {\"workers\": %d, \"mode\": \"%s\", "
                   "\"jobs\": %d, \"jobs_per_sec\": %.3f, \"p50_ms\": %.2f, "
                   "\"p95_ms\": %.2f, \"p99_ms\": %.2f}",
                   i == 0 ? "" : ",", r.workers, r.warm ? "warm" : "cold",
                   r.jobs, r.jobsPerSec, r.p50Ms, r.p95Ms, r.p99Ms);
    }
    std::fprintf(json, "\n  ],\n  \"warm_speedup\": {");
    bool first = true;
    for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
      const double speedup = runs[i + 1].jobsPerSec /
                             std::max(runs[i].jobsPerSec, 1e-9);
      if (first || speedup < worstSpeedup) worstSpeedup = speedup;
      first = false;
      std::fprintf(json, "%s\"%dw\": %.2f", i == 0 ? "" : ", ",
                   runs[i].workers, speedup);
      std::printf("warm speedup at %d worker(s): %.1fx\n", runs[i].workers,
                  speedup);
    }
    std::fprintf(json, "}\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (minWarmSpeedup >= 0.0 && worstSpeedup < minWarmSpeedup) {
      std::fprintf(stderr,
                   "bm_serve: warm speedup %.2fx is below the required "
                   "%.2fx\n",
                   worstSpeedup, minWarmSpeedup);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
