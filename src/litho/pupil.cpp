#include "litho/pupil.hpp"

namespace mosaic {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

Pupil::Pupil(const OpticsConfig& optics, double focusNm)
    : cutoff_(optics.cutoffFreq()),
      focusNm_(focusNm),
      kMax_(optics.immersionIndex / optics.wavelengthNm),
      aberrations_(optics.aberrations) {}

std::complex<double> Pupil::value(double fx, double fy) const {
  const double f2 = fx * fx + fy * fy;
  if (f2 > cutoff_ * cutoff_) return {0.0, 0.0};

  double phase = 0.0;
  if (focusNm_ != 0.0) {
    // Defocus phase: propagation over z in the immersion medium. k_z(f) =
    // sqrt((n/lambda)^2 - |f|^2); referencing to the on-axis ray keeps the
    // phase bounded.
    const double kz = std::sqrt(std::max(0.0, kMax_ * kMax_ - f2));
    phase += kTwoPi * focusNm_ * (kz - kMax_);
  }
  if (aberrations_.any()) {
    // Normalized pupil coordinates.
    const double rho2 = f2 / (cutoff_ * cutoff_);
    const double rho = std::sqrt(rho2);
    const double cx = rho > 0 ? fx / (rho * cutoff_) : 0.0;  // cos theta
    const double sy = rho > 0 ? fy / (rho * cutoff_) : 0.0;  // sin theta
    const double cos2t = cx * cx - sy * sy;
    const double sin2t = 2.0 * cx * sy;
    double waves = 0.0;
    waves += aberrations_.astigmatism0 * rho2 * cos2t;
    waves += aberrations_.astigmatism45 * rho2 * sin2t;
    const double comaRadial = 3.0 * rho2 * rho - 2.0 * rho;
    waves += aberrations_.comaX * comaRadial * cx;
    waves += aberrations_.comaY * comaRadial * sy;
    waves += aberrations_.spherical * (6.0 * rho2 * rho2 - 6.0 * rho2 + 1.0);
    phase += kTwoPi * waves;
  }
  if (phase == 0.0) return {1.0, 0.0};
  return {std::cos(phase), std::sin(phase)};
}

std::vector<ProcessCorner> evaluationCorners(double defocusNm,
                                             double doseDelta) {
  return {
      {0.0, 1.0},
      {0.0, 1.0 - doseDelta},
      {0.0, 1.0 + doseDelta},
      {defocusNm, 1.0 - doseDelta},
      {defocusNm, 1.0},
      {defocusNm, 1.0 + doseDelta},
  };
}

std::vector<ProcessCorner> optimizationCorners(double defocusNm,
                                               double doseDelta) {
  // The two extreme conditions (innermost / outermost edges) plus the
  // nominal condition: Eq. 18 sums over "possible process conditions",
  // and keeping the nominal in the sum gives the process-window term a
  // dense pull toward the target everywhere (important for MOSAIC_exact,
  // whose F_epe gradient lives only on the EPE sample windows).
  return {
      {defocusNm, 1.0 - doseDelta},
      {0.0, 1.0},
      {0.0, 1.0 + doseDelta},
  };
}

}  // namespace mosaic
