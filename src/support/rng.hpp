#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation (splitmix64 + xoshiro256**).
/// Every stochastic component of the library takes an explicit seed so runs
/// are bit-reproducible -- required by the determinism integration tests.

#include <cstdint>

namespace mosaic {

/// splitmix64: used to expand a single seed into a full generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** -- small, fast, high-quality PRNG with a 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9042016u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mosaic
