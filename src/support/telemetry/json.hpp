#pragma once
/// \file json.hpp
/// Minimal JSON emission helpers shared by the telemetry sinks (metrics
/// snapshots, Chrome trace export, JSONL run logs) and the structured log
/// sink. Emission only -- the library never parses JSON, so this stays a
/// few dozen lines instead of a dependency.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mosaic {
namespace telemetry {

/// Escape a string for use inside a JSON string literal (quotes not
/// included). Control characters become \u00XX; invalid UTF-8 byte
/// sequences are replaced with U+FFFD so the emitted document is always
/// valid UTF-8 JSON no matter what bytes reach the sink.
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// Replace every invalid UTF-8 sequence in `s` with U+FFFD (the
/// replacement character). Valid input is returned unchanged. Shared by
/// the JSON emitter (jsonEscape) and the parser (jsonin) so the two sides
/// agree on what survives a round trip.
[[nodiscard]] std::string sanitizeUtf8(std::string_view s);

/// Render a double as a JSON number. Non-finite values (which JSON cannot
/// represent) render as null so a NaN in telemetry never produces an
/// unparseable file.
[[nodiscard]] std::string jsonNumber(double value);

/// Order-preserving flat JSON object builder: one heap string per record,
/// rendered with a single pass. Values are serialized on insertion, so a
/// built object is just a join.
class JsonObject {
 public:
  JsonObject& set(std::string_view key, double value);
  JsonObject& set(std::string_view key, long long value);
  JsonObject& set(std::string_view key, unsigned long long value);
  JsonObject& set(std::string_view key, int value);
  JsonObject& set(std::string_view key, bool value);
  JsonObject& set(std::string_view key, std::string_view value);
  JsonObject& set(std::string_view key, const char* value);
  /// Insert a pre-rendered JSON value (array/object) verbatim.
  JsonObject& setRaw(std::string_view key, std::string rawJson);

  /// True iff a field with this key was inserted.
  [[nodiscard]] bool has(std::string_view key) const;

  /// Render as {"k":v,...}.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace telemetry
}  // namespace mosaic
