#pragma once
/// \file queue.hpp
/// Bounded FIFO job queue with non-blocking admission — the backpressure
/// point of the serve daemon (docs/serving.md). Admission control lives
/// here: tryPush() refuses immediately when the queue is at capacity, so a
/// client's queue_full rejection never waits behind running jobs. The
/// recovery path uses forcePush(), which ignores the capacity: jobs that
/// were already admitted before a crash must be re-admitted on restart
/// even if that transiently overfills the queue.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>

namespace mosaic {
namespace serve {

class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit a job id. Returns false — without blocking — when the queue is
  /// full or closed; the caller maps that to the typed queue_full /
  /// shutting_down protocol errors.
  bool tryPush(const std::string& id) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(id);
    }
    cv_.notify_one();
    return true;
  }

  /// Re-admit a recovered job, bypassing the capacity check. Returns false
  /// only when the queue is closed.
  bool forcePush(const std::string& id) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(id);
    }
    cv_.notify_one();
    return true;
  }

  /// Block until a job is available or the queue is closed. Returns false
  /// when closed and drained — the worker-loop exit condition.
  bool pop(std::string* id) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *id = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Remove a still-queued job (client cancel). False if it already left
  /// the queue (running or finished) or was never there.
  bool remove(const std::string& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (*it == id) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Stop admissions and wake every blocked pop(). Queued items are still
  /// drained by pop() before it starts returning false.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Drop all queued items (checkpoint-mode drain: they stay unterminated
  /// in the journal and are re-enqueued on restart). Returns the count.
  std::size_t clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = items_.size();
    items_.clear();
    return n;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace mosaic
