file(REMOVE_RECURSE
  "libmosaic_geometry.a"
)
