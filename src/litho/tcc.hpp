#pragma once
/// \file tcc.hpp
/// Hopkins Transmission Cross Coefficient (TCC) construction and its
/// eigendecomposition into SOCS kernels (paper Sec. 2, Eq. 1-2). This is
/// the substitute for the contest's pre-supplied kernel files: instead of
/// reading opaque kernel blobs we derive them from first principles
/// (annular source, circular pupil, defocus aberration).

#include <vector>

#include "litho/kernels.hpp"
#include "litho/optics.hpp"

namespace mosaic {

/// A frequency lattice site inside the pupil support.
struct PupilSample {
  int row = 0;   ///< FFT row index (wrapped)
  int col = 0;   ///< FFT col index (wrapped)
  double fx = 0; ///< signed spatial frequency, cycles/nm
  double fy = 0;
};

/// Enumerate the FFT lattice sites whose spatial frequency lies within the
/// pupil cutoff NA/lambda.
std::vector<PupilSample> pupilLattice(const OpticsConfig& optics);

/// Build the TCC matrix restricted to the pupil lattice:
/// T(p, q) = (1/S) * sum_s J(s) P(s + f_p) conj(P(s + f_q)),
/// with J a uniform annular source sampled `sourceOversample` times finer
/// than the pupil lattice. Row-major n x n Hermitian, n = lattice size.
std::vector<std::complex<double>> buildTcc(
    const OpticsConfig& optics, double focusNm,
    const std::vector<PupilSample>& lattice);

/// Decompose the TCC into the top `optics.kernelCount` SOCS kernels and
/// normalize so the open-frame (mask == 1 everywhere) intensity is exactly
/// 1.0. Also fills the combined kernel sum_k w_k h_k (Eq. 21), normalized
/// so its open-frame field magnitude is 1.
KernelSet computeKernelSet(const OpticsConfig& optics, double focusNm);

}  // namespace mosaic
