/// \file fig5_examples.cpp
/// Reproduces paper Fig. 5: the result gallery for B4 and B6 under
/// MOSAIC_exact -- target, OPC mask, nominal printed image and PV band --
/// dumped as PGM images, plus the EPE sample-point diagnostics of Fig. 3.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/epe.hpp"
#include "eval/evaluator.hpp"
#include "eval/pvband.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "4,6";
  std::string outDir = "/tmp";
  std::string logLevel = "warn";

  CliParser cli("fig5_examples",
                "Reproduce paper Fig. 5 (OPC result gallery for B4/B6)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("out", &outDir, "output directory");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);
    const int n = sim.gridSize();

    std::printf("=== Fig. 5: MOSAIC_exact result gallery ===\n");
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);

      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicExact, pixel);
      cfg.maxIterations = iterations;
      const OpcResult res = runOpc(sim, target, OpcMethod::kMosaicExact, &cfg);
      const RealGrid binMask = toReal(res.maskBinary);
      const CaseEvaluation ev =
          evaluateMask(sim, binMask, target, res.runtimeSec);

      const BitGrid nominal = sim.print(binMask, nominalCorner());
      const PvBandResult pvb = computePvBand(sim, binMask, evaluationCorners());

      auto dump = [&](const std::string& tag, const RealGrid& img) {
        const std::string path =
            outDir + "/fig5_" + layout.name + "_" + tag + ".pgm";
        writePgm(path, {img.data(), img.size()}, n, n);
      };
      dump("target", toReal(target));
      dump("mask", binMask);
      dump("nominal", toReal(nominal));
      dump("pvband", toReal(pvb.band));

      // Fig. 3 style diagnostics: EPE samples on this clip.
      const auto samples = extractSamples(target, 40 / pixel);
      const auto epe = measureEpe(nominal, target, samples, pixel, 15.0);

      std::printf(
          "%s: %d EPE samples, %d violations, mean |EPE| %.1f nm, max "
          "%.1f nm, PVB %.0f nm^2, score %.0f -> images fig5_%s_*.pgm\n",
          layout.name.c_str(), static_cast<int>(samples.size()),
          epe.violations, epe.meanAbsEpeNm, epe.maxAbsEpeNm, ev.pvbandAreaNm2,
          ev.score, layout.name.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig5_examples failed: %s\n", e.what());
    return 1;
  }
}
