# Empty dependencies file for window_comparison.
# This may be replaced when dependencies are built.
