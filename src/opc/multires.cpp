#include "opc/multires.hpp"

#include "math/resample.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace mosaic {

OpcResult runOpcMultires(const LithoSimulator& coarseSim,
                         const LithoSimulator& fineSim,
                         const BitGrid& fineTarget, OpcMethod method,
                         const MultiresConfig& config,
                         const IltConfig* fineOverride,
                         const SrafConfig& sraf) {
  WallTimer timer;
  const int finePx = fineSim.optics().pixelNm;
  const int coarsePx = coarseSim.optics().pixelNm;
  MOSAIC_CHECK(coarsePx > finePx && coarsePx % finePx == 0,
               "coarse pitch must be an integer multiple of the fine pitch");
  const int factor = coarsePx / finePx;
  MOSAIC_CHECK(config.coarseIterations >= 1 && config.fineIterations >= 1,
               "both stages need at least one iteration");

  // ---- coarse stage: standard run on the downsampled target ----
  const BitGrid coarseTarget = downsampleMajority(fineTarget, factor);
  IltConfig coarseCfg = fineOverride != nullptr
                            ? *fineOverride
                            : defaultIltConfig(method, finePx);
  // Re-derive resolution-dependent weights for the coarse pitch.
  {
    const IltConfig defaults = defaultIltConfig(method, coarsePx);
    coarseCfg.alpha = defaults.alpha;
    coarseCfg.beta = defaults.beta;
  }
  coarseCfg.maxIterations = config.coarseIterations;
  const OpcResult coarse =
      runOpc(coarseSim, coarseTarget, method, &coarseCfg, sraf);

  // ---- fine stage: polish from the upsampled continuous mask ----
  IltConfig fineCfg = fineOverride != nullptr
                          ? *fineOverride
                          : defaultIltConfig(method, finePx);
  fineCfg.maxIterations = config.fineIterations;
  const RealGrid init = upsampleNearest(coarse.maskContinuous, factor);

  IltObjective objective(fineSim, fineTarget, fineCfg);
  OptimizeResult fine = optimizeMask(objective, init);

  OpcResult result;
  result.method = methodName(method) + "_multires";
  result.maskContinuous = std::move(fine.bestMask);
  const MaskTransform transform(fineCfg.thetaM, fineCfg.maskLow,
                                fineCfg.maskHigh);
  result.maskBinary = transform.quantizeFeatures(result.maskContinuous);
  result.maskTwoLevel = transform.materialize(result.maskBinary);
  result.history = coarse.history;
  result.history.insert(result.history.end(), fine.history.begin(),
                        fine.history.end());
  result.iterations = static_cast<int>(result.history.size());
  result.converged = fine.converged;
  result.runtimeSec = timer.seconds();
  LOG_INFO(result.method << " finished: coarse best F "
                         << coarse.history.size() << " iters, fine best F = "
                         << fine.bestObjective << " in " << result.runtimeSec
                         << " s");
  return result;
}

}  // namespace mosaic
