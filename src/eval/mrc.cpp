#include "eval/mrc.hpp"

#include <vector>

#include "geometry/bitmap_ops.hpp"
#include "geometry/contour.hpp"
#include "support/error.hpp"

namespace mosaic {
namespace {

/// Pixels of `mask` that vanish under a morphological opening with the
/// given radius: the loci where the local width is below 2*radius+1 px.
BitGrid openingResidue(const BitGrid& mask, int radius) {
  const BitGrid opened = dilateSquare(erodeSquare(mask, radius), radius);
  return bitSub(mask, opened);
}

}  // namespace

MrcResult checkMask(const BitGrid& mask, int pixelNm, const MrcConfig& config) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  MOSAIC_CHECK(config.minWidthNm > 0 && config.minSpaceNm > 0,
               "MRC rules must be positive");

  MrcResult result;
  result.featurePx = countSet(mask);

  // Width: opening residue at radius floor((minWidth/px - 1) / 2).
  const int widthRadius = (config.minWidthNm / pixelNm - 1) / 2;
  if (widthRadius >= 1) {
    result.widthViolationPx = countSet(openingResidue(mask, widthRadius));
  }

  // Space: same check on the background, restricted to the neighborhood of
  // features (gaps to the clip border are not spaces).
  const int spaceRadius = (config.minSpaceNm / pixelNm - 1) / 2;
  if (spaceRadius >= 1) {
    const BitGrid background = bitNot(mask);
    const BitGrid residue = openingResidue(background, spaceRadius);
    // Only count residue pixels sandwiched between features: within the
    // dilation of the mask by the space rule.
    const BitGrid nearMask =
        dilateSquare(mask, config.minSpaceNm / pixelNm);
    result.spaceViolationPx = countSet(bitAnd(residue, nearMask));
  }

  // Tiny isolated features.
  int componentCount = 0;
  const Grid<int> labels =
      labelComponents(mask, /*eightConnected=*/false, &componentCount);
  result.components = componentCount;
  std::vector<long long> areas(static_cast<std::size_t>(componentCount) + 1,
                               0);
  for (int r = 0; r < labels.rows(); ++r) {
    for (int c = 0; c < labels.cols(); ++c) {
      if (labels(r, c)) ++areas[static_cast<std::size_t>(labels(r, c))];
    }
  }
  const long long minAreaPx =
      (config.minAreaNm2 + pixelNm * pixelNm - 1) / (pixelNm * pixelNm);
  for (int label = 1; label <= componentCount; ++label) {
    if (areas[static_cast<std::size_t>(label)] < minAreaPx) {
      ++result.tinyFeatures;
    }
  }

  // Complexity metrics.
  result.contourVertices = totalVertices(mask);
  result.perimeterNm = totalPerimeter(mask) * pixelNm;
  result.rectangles =
      static_cast<long long>(rasterToRects(mask, pixelNm).size());
  return result;
}

}  // namespace mosaic
