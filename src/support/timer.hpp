#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used by the optimizer telemetry and the
/// runtime tables (paper Table 3), plus a getrusage-based resource probe
/// for the batch/chip status reports and the metrics snapshot.

#include <chrono>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define MOSAIC_HAS_GETRUSAGE 1
#endif

namespace mosaic {

/// Simple wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Point-in-time process resource usage: peak resident set size and
/// cumulative user/system CPU time. Values are zero on platforms without
/// getrusage, so callers can report unconditionally.
struct ResourceProbe {
  double peakRssMb = 0.0;
  double userCpuSec = 0.0;
  double sysCpuSec = 0.0;

  /// Sample the calling process (RUSAGE_SELF).
  [[nodiscard]] static ResourceProbe sample() {
    ResourceProbe probe;
#if defined(MOSAIC_HAS_GETRUSAGE)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
      probe.peakRssMb = static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
      probe.peakRssMb = static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
      probe.userCpuSec = static_cast<double>(usage.ru_utime.tv_sec) +
                         static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
      probe.sysCpuSec = static_cast<double>(usage.ru_stime.tv_sec) +
                        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    }
#endif
    return probe;
  }

  /// One-line human-readable summary for status reports.
  [[nodiscard]] std::string oneLine() const {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "peak RSS %.1f MB, user CPU %.1f s, sys CPU %.1f s",
                  peakRssMb, userCpuSec, sysCpuSec);
    return buf;
  }
};

}  // namespace mosaic
