#include "geometry/contour.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "support/error.hpp"

namespace mosaic {
namespace {

/// Directed boundary edge between pixel corners, interior on the left.
struct DirEdge {
  PointNm from;
  PointNm to;
};

bool lessPoint(const PointNm& a, const PointNm& b) {
  return a.y != b.y ? a.y < b.y : a.x < b.x;
}

}  // namespace

bool Contour::isHole() const {
  long long twice = 0;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PointNm& a = points[i];
    const PointNm& b = points[(i + 1) % n];
    twice += static_cast<long long>(a.x) * b.y -
             static_cast<long long>(b.x) * a.y;
  }
  return twice < 0;  // clockwise
}

long long Contour::perimeter() const {
  long long length = 0;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PointNm& a = points[i];
    const PointNm& b = points[(i + 1) % n];
    length += std::abs(a.x - b.x) + std::abs(a.y - b.y);
  }
  return length;
}

std::vector<Contour> traceContours(const BitGrid& grid) {
  const int rows = grid.rows();
  const int cols = grid.cols();
  auto set = [&](int r, int c) {
    return r >= 0 && r < rows && c >= 0 && c < cols && grid(r, c) != 0;
  };

  // Collect unit boundary edges with the interior on the left.
  std::vector<DirEdge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!set(r, c)) continue;
      if (!set(r - 1, c)) edges.push_back({{c, r}, {c + 1, r}});          // bottom, +x
      if (!set(r, c + 1)) edges.push_back({{c + 1, r}, {c + 1, r + 1}});  // right, +y
      if (!set(r + 1, c)) edges.push_back({{c + 1, r + 1}, {c, r + 1}});  // top, -x
      if (!set(r, c - 1)) edges.push_back({{c, r + 1}, {c, r}});          // left, -y
    }
  }

  // Index edges by start point. A corner where two pixels touch
  // diagonally has two outgoing edges; prefer the left turn relative to
  // the incoming direction so loops stay simple.
  std::multimap<std::pair<int, int>, std::size_t> byStart;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    byStart.emplace(std::make_pair(edges[i].from.x, edges[i].from.y), i);
  }
  std::vector<bool> used(edges.size(), false);

  auto pickNext = [&](const DirEdge& incoming,
                      std::size_t startEdge) -> std::size_t {
    const auto range = byStart.equal_range(
        std::make_pair(incoming.to.x, incoming.to.y));
    std::size_t best = edges.size();
    int bestTurn = -10;
    const int dxIn = incoming.to.x - incoming.from.x;
    const int dyIn = incoming.to.y - incoming.from.y;
    for (auto it = range.first; it != range.second; ++it) {
      // The start edge is a legal continuation (it closes the loop).
      if (used[it->second] && it->second != startEdge) continue;
      const DirEdge& cand = edges[it->second];
      const int dxOut = cand.to.x - cand.from.x;
      const int dyOut = cand.to.y - cand.from.y;
      // Cross product z: +1 = left turn, 0 = straight, -1 = right turn.
      const int cross = dxIn * dyOut - dyIn * dxOut;
      if (cross > bestTurn) {
        bestTurn = cross;
        best = it->second;
      }
    }
    return best;
  };

  std::vector<Contour> contours;
  for (std::size_t start = 0; start < edges.size(); ++start) {
    if (used[start]) continue;
    // Walk the loop.
    std::vector<PointNm> path;
    std::size_t current = start;
    do {
      used[current] = true;
      path.push_back(edges[current].from);
      const std::size_t next = pickNext(edges[current], start);
      MOSAIC_ASSERT(next < edges.size(), "open boundary chain");
      current = next;
    } while (current != start);
    // Merge collinear runs into maximal segments.
    Contour contour;
    const std::size_t n = path.size();
    for (std::size_t i = 0; i < n; ++i) {
      const PointNm& prev = path[(i + n - 1) % n];
      const PointNm& here = path[i];
      const PointNm& next = path[(i + 1) % n];
      const int dx1 = here.x - prev.x;
      const int dy1 = here.y - prev.y;
      const int dx2 = next.x - here.x;
      const int dy2 = next.y - here.y;
      if (dx1 * dy2 - dy1 * dx2 != 0) contour.points.push_back(here);
    }
    MOSAIC_ASSERT(contour.points.size() >= 4, "degenerate contour");
    contours.push_back(std::move(contour));
  }

  // Deterministic order: by smallest vertex.
  std::sort(contours.begin(), contours.end(),
            [](const Contour& a, const Contour& b) {
              PointNm ma = a.points.front();
              for (const auto& p : a.points) {
                if (lessPoint(p, ma)) ma = p;
              }
              PointNm mb = b.points.front();
              for (const auto& p : b.points) {
                if (lessPoint(p, mb)) mb = p;
              }
              return lessPoint(ma, mb);
            });
  return contours;
}

long long totalPerimeter(const BitGrid& grid) {
  long long total = 0;
  for (const auto& contour : traceContours(grid)) {
    total += contour.perimeter();
  }
  return total;
}

long long totalVertices(const BitGrid& grid) {
  long long total = 0;
  for (const auto& contour : traceContours(grid)) {
    total += static_cast<long long>(contour.vertexCount());
  }
  return total;
}

std::vector<RectNm> rasterToRects(const BitGrid& grid, int pixelNm) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  const int rows = grid.rows();
  const int cols = grid.cols();
  std::vector<RectNm> result;
  // Open rectangles keyed by column run [c0, c1).
  std::map<std::pair<int, int>, RectNm> open;
  for (int r = 0; r < rows; ++r) {
    std::map<std::pair<int, int>, RectNm> next;
    int c = 0;
    while (c < cols) {
      if (!grid(r, c)) {
        ++c;
        continue;
      }
      const int c0 = c;
      while (c < cols && grid(r, c)) ++c;
      const std::pair<int, int> key{c0, c};
      auto it = open.find(key);
      if (it != open.end() && it->second.y1 == r * pixelNm) {
        RectNm extended = it->second;
        extended.y1 = (r + 1) * pixelNm;
        next.emplace(key, extended);
        open.erase(it);
      } else {
        next.emplace(key, RectNm{c0 * pixelNm, r * pixelNm, c * pixelNm,
                                 (r + 1) * pixelNm});
      }
    }
    for (auto& [key, rect] : open) result.push_back(rect);
    open = std::move(next);
  }
  for (auto& [key, rect] : open) result.push_back(rect);
  return result;
}

Layout rasterToLayout(const BitGrid& grid, int pixelNm,
                      const std::string& name) {
  Layout layout;
  layout.name = name;
  layout.sizeNm = grid.cols() * pixelNm;
  MOSAIC_CHECK(grid.rows() == grid.cols(), "raster must be square");
  for (const auto& rect : rasterToRects(grid, pixelNm)) {
    layout.addRect(rect.x0, rect.y0, rect.x1, rect.y1);
  }
  return layout;
}

}  // namespace mosaic
