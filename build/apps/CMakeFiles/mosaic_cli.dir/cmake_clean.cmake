file(REMOVE_RECURSE
  "CMakeFiles/mosaic_cli.dir/mosaic_cli.cpp.o"
  "CMakeFiles/mosaic_cli.dir/mosaic_cli.cpp.o.d"
  "mosaic_cli"
  "mosaic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
