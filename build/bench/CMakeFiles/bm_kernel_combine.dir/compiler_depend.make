# Empty compiler generated dependencies file for bm_kernel_combine.
# This may be replaced when dependencies are built.
