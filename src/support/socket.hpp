#pragma once
/// \file socket.hpp
/// Minimal local TCP helpers for the mosaic_serve daemon and its clients
/// (docs/serving.md). Deliberately loopback-oriented: the serve protocol is
/// an operator/automation interface on 127.0.0.1, not an internet-facing
/// endpoint, so there is no TLS, no name resolution beyond dotted quads,
/// and no non-blocking state machine — just RAII file descriptors, a
/// poll-with-timeout accept, and buffered line-delimited I/O matching the
/// one-JSON-object-per-line protocol.

#include <string>
#include <string_view>

namespace mosaic {

/// RAII TCP socket file descriptor (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port;
/// port() reports the bound one. Throws mosaic::Error on failure.
class ServerSocket {
 public:
  explicit ServerSocket(int port, int backlog = 64);

  [[nodiscard]] int port() const { return port_; }

  /// Wait up to timeoutMs for a connection; returns an invalid Socket on
  /// timeout (so accept loops can poll a shutdown flag between waits).
  /// Throws on hard accept errors other than EINTR (EINTR = invalid too,
  /// letting a signal wake the loop).
  [[nodiscard]] Socket accept(int timeoutMs);

  void close() { listener_.close(); }

 private:
  Socket listener_;
  int port_ = 0;
};

/// Connect to host:port (dotted quad, default loopback) with a timeout.
/// Throws mosaic::Error on failure.
[[nodiscard]] Socket connectTcp(const std::string& host, int port,
                                int timeoutMs = 5000);

/// Buffered line-delimited I/O over a connected socket. One instance per
/// connection, single-threaded use.
class LineChannel {
 public:
  explicit LineChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Read one '\n'-terminated line (terminator stripped). Returns false on
  /// clean EOF or timeout (eofSeen() distinguishes the two); throws on
  /// socket errors. timeoutMs < 0 blocks.
  bool readLine(std::string* line, int timeoutMs = -1);

  /// True once the peer has closed its write side (readLine returned false
  /// because of EOF, not a timeout).
  [[nodiscard]] bool eofSeen() const { return eof_; }

  /// Write `line` plus '\n'. Throws on socket errors (including EPIPE —
  /// SIGPIPE is suppressed per call).
  void writeLine(const std::string& line);

  /// Write `data` verbatim (no terminator appended). Same error behavior
  /// as writeLine. Used by the HTTP endpoint, whose responses are not
  /// line-delimited.
  void writeAll(std::string_view data);

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace mosaic
