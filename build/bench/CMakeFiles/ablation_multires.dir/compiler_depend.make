# Empty compiler generated dependencies file for ablation_multires.
# This may be replaced when dependencies are built.
