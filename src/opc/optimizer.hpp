#pragma once
/// \file optimizer.hpp
/// Gradient-descent driver for the ILT objective (paper Alg. 1) with the
/// step-size "jump" technique of Zhao & Chu [12] to escape local minima.
/// The returned mask is the iterate with the lowest objective value seen
/// (Alg. 1 line 9), not necessarily the last one.

#include <functional>
#include <vector>

#include "opc/mask_params.hpp"
#include "opc/objective.hpp"

namespace mosaic {

/// Telemetry for one optimizer iteration (drives the paper's Fig. 6).
struct IterationRecord {
  int iteration = 0;
  double objective = 0.0;
  double targetTerm = 0.0;
  double pvbTerm = 0.0;
  double rmsGradient = 0.0;
  double stepSize = 0.0;
  bool improved = false;
  bool jumped = false;
};

struct OptimizeResult {
  RealGrid bestMask;       ///< continuous mask with the lowest objective
  double bestObjective = 0.0;
  int bestIteration = 0;
  std::vector<IterationRecord> history;
  bool converged = false;  ///< stopped on the RMS-gradient rule
};

/// Called after every iteration with the current (not best) mask.
using IterationCallback =
    std::function<void(const IterationRecord&, const RealGrid& mask)>;

/// Run gradient descent from an initial mask. Steps are taken in P-space
/// (MaskTransform), with the update normalized by the gradient RMS so the
/// configured step size is in P units.
OptimizeResult optimizeMask(const IltObjective& objective,
                            const RealGrid& initialMask,
                            const IterationCallback& callback = {});

}  // namespace mosaic
