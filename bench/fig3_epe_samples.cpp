/// \file fig3_epe_samples.cpp
/// Reproduces paper Fig. 3: EPE measurement sites. Prints the HS/VS
/// sample-point statistics for each benchmark clip (count, per-edge
/// distribution, window geometry) and dumps an overlay image (target in
/// gray, sample sites marked bright) for visual inspection.

#include <cstdio>
#include <exception>
#include <string>

#include "geometry/edges.hpp"
#include "geometry/raster.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int spacingNm = 40;
  int overlayCase = 4;
  std::string outDir = "/tmp";

  CliParser cli("fig3_epe_samples",
                "Reproduce paper Fig. 3 (EPE sample placement)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("spacing", &spacingNm, "sample spacing along edges (paper: 40)");
  cli.addInt("overlay", &overlayCase, "testcase to dump as overlay image");
  cli.addString("out", &outDir, "output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;

    TextTable table;
    table.setHeader({"case", "edges", "HS samples", "VS samples", "total",
                     "line-end samples"});
    for (int caseIdx = 1; caseIdx <= kTestcaseCount; ++caseIdx) {
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);
      const auto edges = extractEdges(target);
      const auto samples = extractSamples(target, spacingNm / pixel);
      int hs = 0;
      int vs = 0;
      for (const auto& s : samples) (s.horizontal ? hs : vs) += 1;
      // Line-end samples: midpoint samples of short runs.
      int lineEnds = 0;
      for (const auto& e : edges) {
        if (e.length() >= 2 && e.length() < spacingNm / pixel) ++lineEnds;
      }
      table.addRow({layout.name,
                    TextTable::integer(static_cast<long long>(edges.size())),
                    TextTable::integer(hs), TextTable::integer(vs),
                    TextTable::integer(hs + vs),
                    TextTable::integer(lineEnds)});
    }
    std::printf("=== Fig. 3: EPE sample placement (every %d nm) ===\n%s\n",
                spacingNm, table.render().c_str());

    // Overlay image for one clip: target 0.35, sample sites 1.0.
    const Layout layout = buildTestcase(overlayCase);
    const BitGrid target = rasterize(layout, pixel);
    const auto samples = extractSamples(target, spacingNm / pixel);
    const int n = target.rows();
    RealGrid overlay(n, n, 0.0);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (target(r, c)) overlay(r, c) = 0.35;
      }
    }
    for (const auto& s : samples) {
      const int r = s.horizontal ? s.boundary : s.along;
      const int c = s.horizontal ? s.along : s.boundary;
      for (int dr = -1; dr <= 0; ++dr) {
        for (int dc = -1; dc <= 0; ++dc) {
          if (overlay.inBounds(r + dr, c + dc)) {
            overlay(r + dr, c + dc) = 1.0;
          }
        }
      }
    }
    const std::string path =
        outDir + "/fig3_" + layout.name + "_samples.pgm";
    writePgm(path, {overlay.data(), overlay.size()}, n, n);
    std::printf("overlay written to %s (%zu samples)\n", path.c_str(),
                samples.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig3_epe_samples failed: %s\n", e.what());
    return 1;
  }
}
