/// \file fig4_pvband.cpp
/// Reproduces paper Fig. 4: the PV band as the boolean composition of the
/// printed images across process corners. Prints the per-corner printed
/// area and the resulting band, and dumps the images as PGM files.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/pvband.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIndex = 4;
  int pixel = 4;
  std::string outDir = "/tmp";
  std::string logLevel = "warn";

  CliParser cli("fig4_pvband", "Reproduce paper Fig. 4 (PV band assembly)");
  cli.addInt("case", &caseIndex, "testcase index (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addString("out", &outDir, "output directory for PGM dumps");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);
    const Layout layout = buildTestcase(caseIndex);
    const BitGrid target = rasterize(layout, pixel);
    const RealGrid mask = noOpcMask(target);

    const auto corners = evaluationCorners();
    TextTable table;
    table.setHeader({"corner", "focus(nm)", "dose", "printed px",
                     "vs nominal +", "vs nominal -"});
    const ComplexGrid spectrum = sim.maskSpectrum(mask);
    const BitGrid nominal =
        sim.printBinary(sim.aerialFromSpectrum(spectrum, nominalCorner()));
    const int n = sim.gridSize();
    int idx = 0;
    for (const auto& corner : corners) {
      const BitGrid print =
          sim.printBinary(sim.aerialFromSpectrum(spectrum, corner));
      table.addRow({"(" + std::string(1, static_cast<char>('a' + idx)) + ")",
                    TextTable::num(corner.focusNm, 0),
                    TextTable::num(corner.dose, 2),
                    TextTable::integer(countSet(print)),
                    TextTable::integer(countSet(bitSub(print, nominal))),
                    TextTable::integer(countSet(bitSub(nominal, print)))});
      writePgm(outDir + "/fig4_corner_" + std::to_string(idx) + ".pgm",
               {toReal(print).data(), static_cast<std::size_t>(n) * n}, n, n);
      ++idx;
    }

    const PvBandResult pvb = computePvBand(sim, mask, corners);
    writePgm(outDir + "/fig4_band.pgm",
             {toReal(pvb.band).data(), static_cast<std::size_t>(n) * n}, n, n);

    std::printf("=== Fig. 4: PV band construction on %s ===\n",
                layout.name.c_str());
    std::printf("%s\n", table.render().c_str());
    std::printf("outer (union) px: %lld, inner (intersection) px: %lld\n",
                countSet(pvb.outer), countSet(pvb.inner));
    std::printf("PV band: %lld px = %.0f nm^2 (images in %s/fig4_*.pgm)\n",
                pvb.bandPixels, pvb.bandAreaNm2, outDir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_pvband failed: %s\n", e.what());
    return 1;
  }
}
