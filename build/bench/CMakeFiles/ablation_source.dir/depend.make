# Empty dependencies file for ablation_source.
# This may be replaced when dependencies are built.
