#pragma once
/// \file protocol.hpp
/// The serve wire protocol (docs/serving.md): one JSON object per line in
/// each direction. Requests carry an "op"; responses always carry
/// "ok":true|false, and failures add a typed "error" code from the fixed
/// taxonomy (queue_full, bad_request, not_found, not_ready, shutting_down,
/// internal) plus a human-readable "message". This layer is pure
/// request->response string mapping over a JobService, shared by the TCP
/// server and in-process tests — it never touches a socket.

#include <memory>
#include <string>

#include "serve/service.hpp"

namespace mosaic {
namespace serve {

/// Outcome of handling one request line.
struct ProtocolResult {
  std::string response;   ///< one JSON line (no trailing newline)
  bool shutdown = false;  ///< a shutdown op: stop the server after replying
  DrainMode shutdownMode = DrainMode::kFinish;
  /// Set by the watch op: after writing `response`, the server switches
  /// this connection into streaming mode, pushing one JSON line per
  /// progress event until the subscription finishes.
  std::shared_ptr<ProgressSubscription> watch;
};

/// Handle one request line against the service. Never throws: malformed
/// JSON, unknown ops, and internal errors all become error responses.
[[nodiscard]] ProtocolResult handleRequestLine(JobService& service,
                                               const std::string& line);

/// Render one job snapshot as the protocol's job object (shared by the
/// status and result ops and by mosaic_cli's client-side printing).
[[nodiscard]] std::string snapshotToJson(const JobSnapshot& snap);

/// Render one streamed progress event as its wire line ("ev":"progress"
/// samples, "ev":"end" terminal). Shared by the server push loop and the
/// tests that assert the schema.
[[nodiscard]] std::string progressEventToJson(const ProgressEvent& event);

}  // namespace serve
}  // namespace mosaic
