# Integration test for `mosaic_cli batch` fault isolation.
#
# Fail-point hits on `batch.clip` are counted globally across clips and
# attempts: clip 1 is hit 1, clip 2 is hit 2, clip 3's first attempt is hit 3
# and its retry is hit 4. Arming throws on hits 3 and 4 makes exactly one
# clip fail permanently, so the run must exit with the partial-failure code
# (2) while still reporting a status row for every clip.
#
# Invoke with:
#   cmake -DMOSAIC_CLI=<path-to-mosaic_cli> -P batch_runner_test.cmake

if(NOT DEFINED MOSAIC_CLI)
  message(FATAL_ERROR "pass -DMOSAIC_CLI=<path to mosaic_cli>")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "MOSAIC_FAILPOINTS=batch.clip:throw@iter=3,batch.clip:throw@iter=4"
          ${MOSAIC_CLI} batch --method baseline --pixel 16 --iters 1
          --backoff-ms 1
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL 2)
  message(FATAL_ERROR
    "expected partial-failure exit code 2, got '${code}'\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()

foreach(clip RANGE 1 10)
  string(FIND "${out}" "B${clip}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "clip B${clip} missing from batch report:\n${out}")
  endif()
endforeach()

string(FIND "${out}" "FAILED" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected a FAILED row in the batch report:\n${out}")
endif()

string(FIND "${out}" "9/10 clips succeeded" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected '9/10 clips succeeded' summary:\n${out}")
endif()
